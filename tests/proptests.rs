//! Property-based tests on the core data structures and the full
//! stack: wire-codec round trips and robustness against truncation,
//! matcher semantics, cache-model invariants, DES determinism and
//! randomized end-to-end transfer integrity.

use bytes::Bytes;
use openmx_repro::hw::cache::{CacheModel, RegionKey};
use openmx_repro::hw::{CoreId, HwParams, SubchipId};
use openmx_repro::omx::cluster::ClusterParams;
use openmx_repro::omx::config::OmxConfig;
use openmx_repro::omx::harness::{run_pingpong, PingPongConfig, Placement};
use openmx_repro::omx::matching::{matches, Matcher, PostedRecv};
use openmx_repro::omx::proto::Packet;
use openmx_repro::omx::ReqId;
use openmx_repro::sim::{Ps, Rate, Sim};
use proptest::prelude::*;

fn arb_packet() -> impl Strategy<Value = Packet> {
    let data = proptest::collection::vec(any::<u8>(), 0..4096).prop_map(Bytes::from);
    prop_oneof![
        (
            any::<u8>(),
            any::<u8>(),
            any::<u64>(),
            any::<u32>(),
            data.clone()
        )
            .prop_map(|(src_ep, dst_ep, match_info, msg_seq, data)| Packet::Tiny {
                src_ep,
                dst_ep,
                match_info,
                msg_seq,
                data
            }),
        (
            any::<u8>(),
            any::<u8>(),
            any::<u64>(),
            any::<u32>(),
            any::<u32>(),
            any::<u16>(),
            any::<u16>(),
            any::<u32>(),
            data.clone()
        )
            .prop_map(
                |(
                    src_ep,
                    dst_ep,
                    match_info,
                    msg_seq,
                    msg_len,
                    frag_idx,
                    frag_count,
                    offset,
                    data,
                )| {
                    Packet::MediumFrag {
                        src_ep,
                        dst_ep,
                        match_info,
                        msg_seq,
                        msg_len,
                        frag_idx,
                        frag_count,
                        offset,
                        data,
                    }
                }
            ),
        (
            any::<u8>(),
            any::<u8>(),
            any::<u64>(),
            any::<u32>(),
            any::<u64>(),
            any::<u32>()
        )
            .prop_map(
                |(src_ep, dst_ep, match_info, msg_seq, msg_len, sender_handle)| Packet::RndvReq {
                    src_ep,
                    dst_ep,
                    match_info,
                    msg_seq,
                    msg_len,
                    sender_handle
                }
            ),
        (
            any::<u8>(),
            any::<u8>(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>()
        )
            .prop_map(
                |(src_ep, dst_ep, sender_handle, recv_handle, frag_start, frag_count)| {
                    Packet::PullReq {
                        src_ep,
                        dst_ep,
                        sender_handle,
                        recv_handle,
                        frag_start,
                        frag_count,
                    }
                }
            ),
        (
            any::<u8>(),
            any::<u8>(),
            any::<u32>(),
            any::<u32>(),
            any::<u64>(),
            data
        )
            .prop_map(|(src_ep, dst_ep, recv_handle, frag_idx, offset, data)| {
                Packet::LargeFrag {
                    src_ep,
                    dst_ep,
                    recv_handle,
                    frag_idx,
                    offset,
                    data,
                }
            }),
        (any::<u8>(), any::<u8>(), any::<u32>()).prop_map(|(src_ep, dst_ep, msg_seq)| {
            Packet::Ack {
                src_ep,
                dst_ep,
                msg_seq,
            }
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn packet_round_trip(pkt in arb_packet()) {
        let bytes = pkt.pack();
        let back = Packet::parse(&bytes).expect("round trip parses");
        prop_assert_eq!(pkt, back);
    }

    #[test]
    fn truncated_packets_never_panic(pkt in arb_packet(), cut in 0usize..64) {
        let bytes = pkt.pack();
        let cut = cut.min(bytes.len());
        let short = bytes.slice(..cut);
        // Either a parse error or a (shorter) packet — never a panic.
        let _ = Packet::parse(&short);
    }

    #[test]
    fn match_predicate_is_mask_respecting(info in any::<u64>(), mask in any::<u64>(), msg in any::<u64>()) {
        let hit = matches(info, mask, msg);
        prop_assert_eq!(hit, (msg & mask) == (info & mask));
        // Wildcard always matches; exact mask means equality.
        prop_assert!(matches(info, 0, msg));
        prop_assert_eq!(matches(info, u64::MAX, msg), info == msg);
    }

    #[test]
    fn matcher_conserves_requests(infos in proptest::collection::vec(any::<u8>(), 1..40)) {
        // Post receives for even infos, feed all infos: each message
        // either matches exactly one posted receive or none; posted
        // count decreases by exactly the number of hits.
        let mut m = Matcher::new();
        let posted: Vec<u64> = infos.iter().filter(|i| **i % 2 == 0).map(|i| *i as u64).collect();
        for (k, info) in posted.iter().enumerate() {
            m.post_recv(PostedRecv { req: ReqId(k as u64), match_info: *info, mask: u64::MAX, len: 64 });
        }
        let mut hits = 0usize;
        for info in &infos {
            if m.match_incoming(*info as u64).is_some() {
                hits += 1;
            }
        }
        prop_assert_eq!(m.posted_len(), posted.len() - hits);
        prop_assert!(hits <= posted.len());
    }

    #[test]
    fn cache_occupancy_never_exceeds_capacity(
        ops in proptest::collection::vec((0u64..8, 1u64..(8 << 20)), 1..60)
    ) {
        let hw = HwParams::default();
        let mut c = CacheModel::new();
        let cap = hw.l2_usable_bytes();
        for (key, bytes) in ops {
            c.touch(&hw, SubchipId(0), RegionKey(key), bytes);
            prop_assert!(c.occupancy(SubchipId(0)) <= cap);
            let frac = c.hit_fraction(SubchipId(0), RegionKey(key), bytes);
            prop_assert!((0.0..=1.0).contains(&frac));
        }
    }

    #[test]
    fn rate_conversions_are_consistent(bytes in 1u64..(1 << 30), mibs in 1u64..20_000) {
        let r = Rate::mib_per_sec(mibs);
        let t = r.time_for(bytes);
        prop_assert!(t > Ps::ZERO);
        let back = Rate::from_transfer(bytes, t).expect("nonzero");
        // Round-up in time_for means recovered ≤ original, within 1 ps
        // per byte of slack.
        prop_assert!(back <= r);
        prop_assert!(back.as_bytes_per_sec() as f64 >= r.as_bytes_per_sec() as f64 * 0.999);
    }

    #[test]
    fn bh_copy_cost_chunked_is_monotone_and_bounded_below(
        bytes in 0u64..(8 << 20),
        extra in 0u64..(8 << 20),
        chunk in 1u64..(64 << 10),
    ) {
        use openmx_repro::omx::cluster::Cluster;
        let cl = Cluster::new(ClusterParams::default());
        // More bytes never cost less at a fixed chunk size.
        let small = cl.bh_copy_cost_chunked(bytes, chunk);
        let big = cl.bh_copy_cost_chunked(bytes + extra, chunk);
        prop_assert!(big >= small, "chunked cost not monotone: {big} < {small}");
        // At page granularity the chunked model can only add
        // per-chunk overhead over the contiguous copy, never remove
        // cost (equality holds for page-aligned sizes).
        let page = 4096;
        let chunked = cl.bh_copy_cost_chunked(bytes, page);
        let contiguous = cl.bh_copy_cost(bytes);
        prop_assert!(
            chunked >= contiguous,
            "page-chunked {chunked} cheaper than contiguous {contiguous} for {bytes} B"
        );
    }

    #[test]
    fn des_engine_is_deterministic(times in proptest::collection::vec(0u64..1_000_000, 1..100)) {
        let run = |times: &[u64]| {
            let mut sim: Sim<Vec<u64>> = Sim::new();
            let mut world = Vec::new();
            for &t in times {
                sim.schedule_at(Ps::ns(t), move |w: &mut Vec<u64>, _| w.push(t));
            }
            sim.run(&mut world);
            world
        };
        let a = run(&times);
        let b = run(&times);
        prop_assert_eq!(&a, &b);
        let mut sorted = times.clone();
        sorted.sort_unstable();
        prop_assert_eq!(a, sorted);
    }
}

proptest! {
    // End-to-end cases are expensive; keep the case count low but the
    // coverage broad: random sizes across all message classes, random
    // I/OAT on/off, both placements.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_transfers_are_integral(
        size in 1u64..(2 << 20),
        ioat in any::<bool>(),
        local in any::<bool>(),
    ) {
        let params = ClusterParams::with_cfg(if ioat { OmxConfig::with_ioat() } else { OmxConfig::default() });
        let placement = if local {
            Placement::SameNode { core_a: CoreId(0), core_b: CoreId(4) }
        } else {
            Placement::TwoNodes { core_a: CoreId(2), core_b: CoreId(2) }
        };
        let mut cfg = PingPongConfig::new(params, size, placement);
        cfg.iters = 3;
        cfg.warmup = 1;
        let r = run_pingpong(cfg);
        prop_assert!(r.verified, "corrupted at {} B (ioat={}, local={})", size, ioat, local);
        prop_assert!(r.throughput_mibs > 0.0);
    }
}
