//! The paper's headline quantitative claims, asserted as tests. Every
//! figure regenerator prints these; here they gate the build.

use openmx_repro::hw::{CoreId, HwParams};
use openmx_repro::omx::cluster::ClusterParams;
use openmx_repro::omx::config::OmxConfig;
use openmx_repro::omx::harness::copybench::{copy_rate_mibs, cpu_breakeven_bytes, CopyEngine};
use openmx_repro::omx::harness::{
    run_pingpong, run_stream, PingPongConfig, Placement, StreamConfig,
};

fn net_pingpong(size: u64, cfg: OmxConfig) -> f64 {
    let params = ClusterParams::with_cfg(cfg);
    let r = run_pingpong(PingPongConfig::new(
        params,
        size,
        Placement::TwoNodes {
            core_a: CoreId(2),
            core_b: CoreId(2),
        },
    ));
    assert!(r.verified);
    r.throughput_mibs
}

#[test]
fn abstract_claim_receive_throughput_up_30_percent() {
    // "increases the receive throughput by 30 %" — large messages.
    let base = net_pingpong(4 << 20, OmxConfig::default());
    let ioat = net_pingpong(4 << 20, OmxConfig::with_ioat());
    let gain = ioat / base - 1.0;
    assert!(
        gain > 0.30,
        "I/OAT gain {gain:.2} below the paper's 30 % at 4 MB"
    );
}

#[test]
fn abstract_claim_line_rate_for_large_messages() {
    // "enables Open-MX to reach 10 gigabit/s Ethernet line rate";
    // §IV-B1: 1114 of 1186 MiB/s.
    let ioat = net_pingpong(16 << 20, OmxConfig::with_ioat());
    assert!(
        ioat > 1100.0 && ioat < 1186.5,
        "line-rate saturation expected, got {ioat}"
    );
}

#[test]
fn fig3_openmx_plateaus_near_800() {
    let base = net_pingpong(4 << 20, OmxConfig::default());
    assert!(
        (740.0..860.0).contains(&base),
        "no-I/OAT plateau {base}, paper ≈800 MiB/s"
    );
}

#[test]
fn fig3_counterfactual_approaches_line_rate() {
    let cfg = OmxConfig {
        ignore_bh_copy: true,
        ..OmxConfig::default()
    };
    let r = net_pingpong(4 << 20, cfg);
    assert!(r > 1120.0, "no-copy prediction {r} should near line rate");
}

#[test]
fn fig7_copy_rates() {
    let hw = HwParams::default();
    let ioat4k = copy_rate_mibs(&hw, CopyEngine::Ioat, 1 << 20, 4096) / 1024.0;
    let mc4k = copy_rate_mibs(&hw, CopyEngine::Memcpy, 1 << 20, 4096) / 1024.0;
    let ioat256 = copy_rate_mibs(&hw, CopyEngine::Ioat, 1 << 20, 256);
    let mc256 = copy_rate_mibs(&hw, CopyEngine::Memcpy, 1 << 20, 256);
    assert!(
        (2.3..2.5).contains(&ioat4k),
        "I/OAT 4 kB chunks ≈2.4 GiB/s: {ioat4k}"
    );
    assert!((1.4..1.65).contains(&mc4k), "memcpy ≈1.5 GiB/s: {mc4k}");
    assert!(ioat256 < mc256, "256 B chunks must favor memcpy");
    let be = cpu_breakeven_bytes(&hw);
    assert!((500..700).contains(&be), "≈600 B break-even: {be}");
}

#[test]
fn fig9_cpu_usage_drop() {
    // "the overall CPU usage drops ... from 95 % to 60 % for
    // multi-megabyte messages" — we assert the qualitative band.
    let base = run_stream(StreamConfig::new(ClusterParams::default(), 4 << 20));
    let p = ClusterParams::with_cfg(OmxConfig::with_ioat());
    let ioat = run_stream(StreamConfig::new(p, 4 << 20));
    assert!(base.verified && ioat.verified);
    assert!(base.bh_util > 0.90, "memcpy BH saturates: {}", base.bh_util);
    assert!(
        ioat.bh_util < base.bh_util - 0.25,
        "offload relief: {} vs {}",
        ioat.bh_util,
        base.bh_util
    );
    assert!(ioat.throughput_mibs > base.throughput_mibs * 1.3);
}

#[test]
fn fig10_shm_rates() {
    let shm = |core_b: u32, cfg: OmxConfig, size: u64| {
        let params = ClusterParams::with_cfg(cfg);
        let r = run_pingpong(PingPongConfig::new(
            params,
            size,
            Placement::SameNode {
                core_a: CoreId(0),
                core_b: CoreId(core_b),
            },
        ));
        assert!(r.verified);
        r.throughput_mibs / 1024.0
    };
    // Shared L2 ≈ 5-6 GiB/s below the cache size.
    let shared = shm(1, OmxConfig::default(), 512 << 10);
    assert!((4.5..6.0).contains(&shared), "shared-L2 {shared} GiB/s");
    // Cross socket ≈ 1.2 GiB/s.
    let cross = shm(4, OmxConfig::default(), 4 << 20);
    assert!((1.0..1.35).contains(&cross), "cross-socket {cross} GiB/s");
    // I/OAT ≈ 2.3 GiB/s, ≈ +80 % over uncached memcpy.
    let ioat_cfg = OmxConfig {
        ioat_shm_threshold: 32 << 10,
        ..OmxConfig::with_ioat()
    };
    let ioat = shm(4, ioat_cfg, 4 << 20);
    assert!((2.1..2.5).contains(&ioat), "I/OAT sync {ioat} GiB/s");
    assert!(ioat / cross > 1.6, "≈+80 % over uncached memcpy");
    // Beyond the shared cache, the shared-L2 advantage collapses.
    let spilled = shm(1, OmxConfig::default(), 16 << 20);
    assert!(spilled < shared / 2.0, "cache spill: {spilled} vs {shared}");
}

#[test]
fn fig11_regcache_matters_less_than_ioat() {
    let full = net_pingpong(4 << 20, OmxConfig::with_ioat());
    let no_rc = net_pingpong(
        4 << 20,
        OmxConfig {
            regcache: false,
            ..OmxConfig::with_ioat()
        },
    );
    let no_ioat = net_pingpong(4 << 20, OmxConfig::default());
    let rc_loss = full - no_rc;
    let ioat_loss = full - no_ioat;
    assert!(rc_loss > 0.0, "regcache must help some");
    assert!(
        ioat_loss > 2.0 * rc_loss,
        "I/OAT ({ioat_loss}) must matter far more than regcache ({rc_loss})"
    );
}

#[test]
fn skbuff_holding_is_bounded() {
    // §III-B: the cleanup routine bounds skbuffs held by pending
    // copies even for very large messages.
    let p = ClusterParams::with_cfg(OmxConfig::with_ioat());
    let r = run_stream(StreamConfig::new(p, 16 << 20));
    assert!(r.verified);
    assert!(r.max_skbuffs_held > 0, "async copies hold skbuffs");
    assert!(
        r.max_skbuffs_held <= 64,
        "cleanup must bound held skbuffs, saw {}",
        r.max_skbuffs_held
    );
}
