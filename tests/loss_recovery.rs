//! Failure injection: frames are dropped on the wire and the
//! retransmission machinery (acks, pull watchdogs, rendezvous
//! re-announcement) must still deliver every byte intact.

use openmx_repro::hw::CoreId;
use openmx_repro::omx::cluster::ClusterParams;
use openmx_repro::omx::config::OmxConfig;
use openmx_repro::omx::harness::{run_pingpong, PingPongConfig, Placement};

fn lossy(one_in: u64, seed: u64) -> OmxConfig {
    OmxConfig {
        loss_one_in: Some(one_in),
        seed,
        ..OmxConfig::default()
    }
}

fn run(size: u64, cfg: OmxConfig) -> (f64, u64, u64) {
    let params = ClusterParams::with_cfg(cfg);
    let mut c = PingPongConfig::new(
        params,
        size,
        Placement::TwoNodes {
            core_a: CoreId(2),
            core_b: CoreId(2),
        },
    );
    c.iters = 6;
    c.warmup = 1;
    let r = run_pingpong(c);
    assert!(r.verified, "loss corrupted a payload at {size} B");
    (r.throughput_mibs, 0, 0)
}

#[test]
fn eager_messages_survive_loss() {
    // Tiny/small/medium rely on per-message acks and full resends.
    for (size, seed) in [(16u64, 1u64), (100, 2), (4096, 3), (16 << 10, 4)] {
        run(size, lossy(40, seed));
    }
}

#[test]
fn large_pulls_survive_loss() {
    // Lost LargeFrags / PullReqs are recovered by the pull watchdog;
    // lost RndvReq/Notify by the sender's re-announcement.
    for seed in [5u64, 6, 7] {
        run(256 << 10, lossy(200, seed));
    }
}

#[test]
fn large_pulls_survive_loss_with_ioat() {
    let cfg = OmxConfig {
        loss_one_in: Some(200),
        seed: 11,
        ..OmxConfig::with_ioat()
    };
    run(512 << 10, cfg);
}

#[test]
fn heavy_loss_still_delivers_eventually() {
    // One frame in eight vanishes; throughput collapses but integrity
    // holds.
    run(8 << 10, lossy(8, 9));
}

#[test]
fn retransmissions_are_counted() {
    // Drive the cluster directly so the stats counters are visible.
    use openmx_repro::omx::app::{App, AppCtx, Completion};
    use openmx_repro::omx::cluster::Cluster;
    use openmx_repro::omx::{EpAddr, EpIdx, NodeId};
    use openmx_repro::sim::Sim;
    use std::cell::Cell;
    use std::rc::Rc;

    struct Sender {
        peer: EpAddr,
        left: u32,
    }
    impl App for Sender {
        fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
            ctx.isend(self.peer, 1, vec![3u8; 8 << 10], None);
        }
        fn on_completion(&mut self, ctx: &mut AppCtx<'_>, comp: Completion) {
            if matches!(comp, Completion::Send { .. }) && self.left > 0 {
                self.left -= 1;
                ctx.isend(self.peer, 1, vec![3u8; 8 << 10], None);
            }
        }
        fn is_done(&self) -> bool {
            true
        }
    }
    struct Receiver {
        got: Rc<Cell<u32>>,
        want: u32,
    }
    impl App for Receiver {
        fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
            ctx.irecv(1, u64::MAX, 8 << 10, None);
        }
        fn on_completion(&mut self, ctx: &mut AppCtx<'_>, comp: Completion) {
            if let Completion::Recv { data, .. } = comp {
                assert!(data.iter().all(|&b| b == 3), "payload intact under loss");
                self.got.set(self.got.get() + 1);
                if self.got.get() < self.want {
                    ctx.irecv(1, u64::MAX, 8 << 10, None);
                }
            }
        }
        fn is_done(&self) -> bool {
            self.got.get() >= self.want
        }
    }

    let got = Rc::new(Cell::new(0u32));
    let params = ClusterParams::with_cfg(lossy(10, 13));
    let mut cluster = Cluster::new(params);
    let mut sim: Sim<Cluster> = Sim::new();
    let peer = EpAddr {
        node: NodeId(1),
        ep: EpIdx(0),
    };
    let want = 40;
    cluster.add_endpoint(
        NodeId(0),
        CoreId(2),
        Box::new(Sender {
            peer,
            left: want - 1,
        }),
    );
    cluster.add_endpoint(
        NodeId(1),
        CoreId(2),
        Box::new(Receiver {
            got: got.clone(),
            want,
        }),
    );
    cluster.start(&mut sim);
    sim.run(&mut cluster);
    assert_eq!(got.get(), want, "all messages delivered despite loss");
    assert!(cluster.stats.frames_lost > 0, "loss injection fired");
    assert!(
        cluster.stats.retransmissions > 0,
        "retransmissions recovered the losses"
    );
    assert!(
        cluster.stats.duplicates_dropped > 0 || cluster.stats.retransmissions > 0,
        "duplicate suppression exercised"
    );
}

#[test]
fn retransmit_exhaustion_fails_send_without_leaks() {
    // A peer that never receives anything (every frame dropped) must
    // not hang the sender forever: after MAX_RETX_ATTEMPTS the driver
    // completes the send with `failed: true` and reaps every piece of
    // state it held — the `sends` entry, the pinned region backing a
    // large send, the tx-large handle, any held skbuffs — and the
    // retransmission timer chain stops so the simulation drains.
    use openmx_repro::omx::app::{App, AppCtx, Completion};
    use openmx_repro::omx::cluster::Cluster;
    use openmx_repro::omx::{EpAddr, EpIdx, NodeId};
    use openmx_repro::sim::Sim;
    use std::cell::Cell;
    use std::rc::Rc;

    struct DoomedSender {
        peer: EpAddr,
        size: u64,
        failed: Rc<Cell<bool>>,
    }
    impl App for DoomedSender {
        fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
            ctx.isend(self.peer, 7, vec![9u8; self.size as usize], None);
        }
        fn on_completion(&mut self, _ctx: &mut AppCtx<'_>, comp: Completion) {
            if let Completion::Send { failed, .. } = comp {
                self.failed.set(failed);
            }
        }
        fn is_done(&self) -> bool {
            true
        }
    }
    struct Deaf;
    impl App for Deaf {
        fn on_start(&mut self, _ctx: &mut AppCtx<'_>) {}
        fn on_completion(&mut self, _ctx: &mut AppCtx<'_>, _c: Completion) {}
        fn is_done(&self) -> bool {
            true
        }
    }

    // Medium (ack-completed) and large (rendezvous + pinned region).
    for size in [16u64 << 10, 256 << 10] {
        let failed = Rc::new(Cell::new(false));
        let cfg = OmxConfig {
            loss_one_in: Some(1), // every frame vanishes: peer unreachable
            regcache: false,      // so pinned_count() == 0 proves release
            ..OmxConfig::default()
        };
        let mut cluster = Cluster::new(ClusterParams::with_cfg(cfg));
        let mut sim: Sim<Cluster> = Sim::new();
        let me = EpAddr {
            node: NodeId(0),
            ep: EpIdx(0),
        };
        let peer = EpAddr {
            node: NodeId(1),
            ep: EpIdx(0),
        };
        cluster.add_endpoint(
            NodeId(0),
            CoreId(2),
            Box::new(DoomedSender {
                peer,
                size,
                failed: failed.clone(),
            }),
        );
        cluster.add_endpoint(NodeId(1), CoreId(2), Box::new(Deaf));
        cluster.start(&mut sim);
        sim.run(&mut cluster);
        assert!(failed.get(), "{size} B: app must see the error completion");
        assert_eq!(cluster.stats.sends_failed, 1, "{size} B");
        assert!(
            cluster.stats.retransmissions >= 10,
            "{size} B: exhaustion needs the full attempt budget, saw {}",
            cluster.stats.retransmissions
        );
        let ep = cluster.ep(me);
        assert!(ep.sends.is_empty(), "{size} B: send state leaked");
        assert_eq!(
            ep.regions.pinned_count(),
            0,
            "{size} B: pinned region leaked"
        );
        let drv = &cluster.node(NodeId(0)).driver;
        assert!(drv.tx_large.is_empty(), "{size} B: tx-large handle leaked");
        assert_eq!(drv.skbuffs_held, 0, "{size} B: skbuffs leaked");
    }
}

#[test]
fn deterministic_loss_pattern_reproduces() {
    let a = run(64 << 10, lossy(50, 42)).0;
    let b = run(64 << 10, lossy(50, 42)).0;
    assert_eq!(a, b, "same seed, same simulation");
    let c = run(64 << 10, lossy(50, 43)).0;
    // Different seeds drop different frames; timings differ (almost
    // surely — if this ever flakes the loss pattern is not seeded).
    assert_ne!(a, c, "different seeds should diverge");
}
