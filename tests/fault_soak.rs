//! Fault-injection soak: named fault plans (bursty loss, reordering,
//! duplication, FCS corruption, I/OAT channel stalls/deaths) must
//! degrade the stack gracefully — every workload completes with
//! byte-verified payloads, no leaked skbuffs or pinned regions, the
//! recovery machinery (memcpy fallback, channel quarantine, adaptive
//! retransmit backoff) actually fires, and the slowdown stays bounded.
//!
//! The flip side is also proven here: an inert fault plan costs
//! nothing — same seeds, same timings, bit for bit.

use openmx_repro::hw::CoreId;
use openmx_repro::mpi::{run_kernel, Kernel, Layout};
use openmx_repro::omx::cluster::ClusterParams;
use openmx_repro::omx::config::OmxConfig;
use openmx_repro::omx::fault::{FaultPlan, IoatChannelFault, NodeFaultParams};
use openmx_repro::omx::harness::{
    run_pingpong, run_stream, PingPongConfig, PingPongResult, Placement, StreamConfig,
};
use openmx_repro::sim::Ps;

const SEEDS: [u64; 3] = [11, 23, 47];

/// An I/OAT-enabled configuration under `plan`. The registration cache
/// is disabled so `end_pinned_regions == 0` proves every region was
/// actually released (a cached region legitimately stays pinned).
fn faulty_cfg(plan: FaultPlan, seed: u64) -> OmxConfig {
    OmxConfig {
        fault_plan: plan,
        seed,
        regcache: false,
        ..OmxConfig::with_ioat()
    }
}

fn pingpong(cfg: OmxConfig, size: u64, iters: u32) -> PingPongResult {
    let mut c = PingPongConfig::new(
        ClusterParams::with_cfg(cfg),
        size,
        Placement::TwoNodes {
            core_a: CoreId(2),
            core_b: CoreId(2),
        },
    );
    c.iters = iters;
    c.warmup = 1;
    run_pingpong(c)
}

#[test]
fn flaky_10g_pingpong_recovers_with_fallback_and_backoff() {
    for seed in SEEDS {
        let r = pingpong(faulty_cfg(FaultPlan::flaky_10g(), seed), 256 << 10, 12);
        assert!(r.verified, "seed {seed}: payload corrupted or send failed");
        assert_eq!(r.end_skbuffs_held, 0, "seed {seed}: leaked skbuffs");
        assert_eq!(
            r.end_pinned_regions, 0,
            "seed {seed}: leaked pinned regions"
        );
        assert!(
            r.stats.ioat_fallback_copies >= 1,
            "seed {seed}: the stalled channel must force at least one memcpy fallback, stats {:?}",
            r.stats
        );
        assert!(
            r.stats.backoff_escalations >= 1,
            "seed {seed}: bursty loss must escalate at least one retransmit timeout, stats {:?}",
            r.stats
        );
        assert!(
            r.stats.frames_lost > 0,
            "seed {seed}: ≈1 % bursty loss must actually drop frames"
        );
    }
}

#[test]
fn flaky_10g_stream_recovers_with_fallback_and_backoff() {
    for seed in SEEDS {
        let params = ClusterParams::with_cfg(faulty_cfg(FaultPlan::flaky_10g(), seed));
        let mut cfg = StreamConfig::new(params, 1 << 20);
        cfg.count = 12;
        let r = run_stream(cfg);
        assert!(r.verified, "seed {seed}: payload corrupted or send failed");
        assert_eq!(r.end_skbuffs_held, 0, "seed {seed}: leaked skbuffs");
        assert_eq!(
            r.end_pinned_regions, 0,
            "seed {seed}: leaked pinned regions"
        );
        assert!(
            r.stats.ioat_fallback_copies >= 1,
            "seed {seed}: no memcpy fallback recorded, stats {:?}",
            r.stats
        );
        assert!(
            r.stats.backoff_escalations >= 1,
            "seed {seed}: no backoff escalation recorded, stats {:?}",
            r.stats
        );
    }
}

#[test]
fn flaky_10g_alltoall_recovers_with_fallback_and_backoff() {
    for seed in SEEDS {
        let params = ClusterParams {
            nodes: 2,
            ..ClusterParams::with_cfg(faulty_cfg(FaultPlan::flaky_10g(), seed))
        };
        let r = run_kernel(Kernel::Alltoall, Layout::TwoPerNode, 4 << 20, 2, params);
        assert!(
            r.verified,
            "seed {seed}: alltoall send failed or wire dirty"
        );
        assert_eq!(r.end_skbuffs_held, 0, "seed {seed}: leaked skbuffs");
        assert_eq!(
            r.end_pinned_regions, 0,
            "seed {seed}: leaked pinned regions"
        );
        assert!(
            r.stats.ioat_fallback_copies >= 1,
            "seed {seed}: no memcpy fallback recorded, stats {:?}",
            r.stats
        );
        assert!(
            r.stats.backoff_escalations >= 1,
            "seed {seed}: no backoff escalation recorded, stats {:?}",
            r.stats
        );
    }
}

#[test]
fn remaining_named_plans_complete_verified() {
    // The other named plans each stress one hazard in isolation; every
    // one must still deliver verified payloads without leaks.
    for name in ["dirty-fiber", "dup-storm", "ring-pressure", "ioat-dead"] {
        let plan = FaultPlan::named(name).expect("known plan");
        let r = pingpong(faulty_cfg(plan, 7), 256 << 10, 8);
        assert!(r.verified, "{name}: payload corrupted or send failed");
        assert_eq!(r.end_skbuffs_held, 0, "{name}: leaked skbuffs");
        assert_eq!(r.end_pinned_regions, 0, "{name}: leaked pinned regions");
    }
}

#[test]
fn dead_channel_forces_fallback_and_quarantine() {
    let r = pingpong(faulty_cfg(FaultPlan::ioat_dead(), 3), 512 << 10, 8);
    assert!(r.verified);
    assert!(
        r.stats.ioat_fallback_copies >= 1,
        "a permanently dead channel must be rescued onto the CPU, stats {:?}",
        r.stats
    );
    assert!(
        r.stats.ioat_quarantines >= 1,
        "the dead channel must be quarantined, stats {:?}",
        r.stats
    );
    assert_eq!(r.end_skbuffs_held, 0);
    assert_eq!(r.end_pinned_regions, 0);
}

#[test]
fn duplicate_everything_is_idempotent() {
    // Every frame delivered twice: pull fragments, rendezvous
    // announcements, acks, notifies. Completions must stay
    // byte-identical and unique (a double RecvLargeDone would corrupt
    // the ping-pong pattern sequence), and no skbuff may drift.
    let plan = FaultPlan {
        default_link: openmx_repro::ethernet::fault::LinkFaultParams {
            dup_prob: 1.0,
            ..Default::default()
        },
        ..FaultPlan::default()
    };
    for (size, iters) in [(256u64 << 10, 8u32), (16 << 10, 8), (100, 8)] {
        let r = pingpong(faulty_cfg(plan.clone(), 5), size, iters);
        assert!(r.verified, "{size} B: duplicate delivery corrupted data");
        assert!(
            r.stats.duplicates_dropped > 0,
            "{size} B: duplicates must be detected and dropped"
        );
        assert!(
            r.stats.frames_duplicated > 0,
            "{size} B: injection must actually duplicate frames"
        );
        assert_eq!(r.end_skbuffs_held, 0, "{size} B: skbuff drift");
        assert_eq!(r.end_pinned_regions, 0, "{size} B: pinned-region drift");
    }
}

#[test]
fn inactive_plan_is_zero_cost() {
    // The fault machinery must be free when it cannot fire. Two
    // configurations: no plan at all, and a plan whose only entry is an
    // I/OAT stall scheduled far beyond the end of the run (the plan is
    // "active", so every per-copy check still executes). Timings must
    // be bit-identical.
    let base = pingpong(
        OmxConfig {
            seed: 9,
            regcache: false,
            ..OmxConfig::with_ioat()
        },
        256 << 10,
        8,
    );
    let far_future = FaultPlan {
        nodes: vec![NodeFaultParams {
            node: 0,
            rx_ring_size: None,
            ioat_faults: vec![IoatChannelFault {
                channel: 0,
                at: Ps::secs(3000),
                duration: Some(Ps::ms(1)),
            }],
        }],
        ..FaultPlan::default()
    };
    let armed = pingpong(faulty_cfg(far_future, 9), 256 << 10, 8);
    assert_eq!(
        base.rtts, armed.rtts,
        "inert plan changed per-iteration timing"
    );
    assert_eq!(
        base.end_time, armed.end_time,
        "inert plan changed the run length"
    );
    assert_eq!(
        base.stats.ioat_fallback_copies + base.stats.backoff_escalations,
        0,
        "clean run must record no recovery events"
    );
    assert_eq!(armed.stats.ioat_fallback_copies, 0);
}

#[test]
fn flaky_slowdown_is_bounded() {
    // Graceful degradation, not collapse: the flaky wire may cost
    // retransmits and fallbacks but must stay within an order of
    // magnitude of the clean run.
    let clean = pingpong(
        OmxConfig {
            seed: 13,
            regcache: false,
            ..OmxConfig::with_ioat()
        },
        256 << 10,
        8,
    );
    let flaky = pingpong(faulty_cfg(FaultPlan::flaky_10g(), 13), 256 << 10, 8);
    assert!(clean.verified && flaky.verified);
    let ratio = flaky.end_time.as_secs_f64() / clean.end_time.as_secs_f64();
    assert!(
        ratio < 10.0,
        "flaky-10g slowed the run {ratio:.1}× (clean {}, flaky {})",
        clean.end_time,
        flaky.end_time
    );
}
