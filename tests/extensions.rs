//! Integration tests for the extension features and the per-endpoint
//! counters, plus consistency checks between the analytic MX model and
//! the event-driven MXoE stack.

use openmx_repro::hw::CoreId;
use openmx_repro::mx::curve::pingpong_throughput_mibs;
use openmx_repro::omx::app::{App, AppCtx, Completion};
use openmx_repro::omx::cluster::{Cluster, ClusterParams};
use openmx_repro::omx::config::{OmxConfig, StackKind, SyncWaitPolicy};
use openmx_repro::omx::harness::{run_pingpong, PingPongConfig, Placement};
use openmx_repro::omx::{EpAddr, EpIdx, NodeId};
use openmx_repro::sim::{Ps, Sim};
use std::cell::Cell;
use std::rc::Rc;

fn net_rate(size: u64, cfg: OmxConfig) -> f64 {
    let params = ClusterParams::with_cfg(cfg);
    let r = run_pingpong(PingPongConfig::new(
        params,
        size,
        Placement::TwoNodes {
            core_a: CoreId(2),
            core_b: CoreId(2),
        },
    ));
    assert!(r.verified);
    r.throughput_mibs
}

#[test]
fn dca_lifts_the_memcpy_plateau_but_not_past_offload() {
    let plain = net_rate(4 << 20, OmxConfig::default());
    let dca = net_rate(
        4 << 20,
        OmxConfig {
            dca_enabled: true,
            ..OmxConfig::default()
        },
    );
    let ioat = net_rate(4 << 20, OmxConfig::with_ioat());
    assert!(
        dca > plain * 1.1,
        "DCA must help the copy: {dca} vs {plain}"
    );
    assert!(
        ioat > dca,
        "overlap still beats a warmer copy: {ioat} vs {dca}"
    );
}

struct OneShotSender {
    peer: EpAddr,
    size: u64,
}
impl App for OneShotSender {
    fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
        ctx.isend(self.peer, 1, vec![9u8; self.size as usize], Some(1));
    }
    fn on_completion(&mut self, _ctx: &mut AppCtx<'_>, _c: Completion) {}
    fn is_done(&self) -> bool {
        true
    }
}

struct VectoredReceiver {
    size: u64,
    seg: u64,
    done_at: Rc<Cell<Ps>>,
}
impl App for VectoredReceiver {
    fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
        ctx.irecv_vectored(1, u64::MAX, self.size, self.seg, Some(2));
    }
    fn on_completion(&mut self, ctx: &mut AppCtx<'_>, c: Completion) {
        if let Completion::Recv { data, .. } = c {
            assert!(data.iter().all(|&b| b == 9), "vectored payload intact");
            self.done_at.set(ctx.now());
        }
    }
    fn is_done(&self) -> bool {
        self.done_at.get() > Ps::ZERO
    }
}

fn vectored_run(seg: u64, frag_threshold: u64) -> (Ps, u64, u64) {
    let done_at = Rc::new(Cell::new(Ps::ZERO));
    let params = ClusterParams::with_cfg(OmxConfig {
        ioat_frag_threshold: frag_threshold,
        ..OmxConfig::with_ioat()
    });
    let mut cluster = Cluster::new(params);
    let mut sim: Sim<Cluster> = Sim::new();
    let peer = EpAddr {
        node: NodeId(1),
        ep: EpIdx(0),
    };
    cluster.add_endpoint(
        NodeId(0),
        CoreId(2),
        Box::new(OneShotSender {
            peer,
            size: 1 << 20,
        }),
    );
    cluster.add_endpoint(
        NodeId(1),
        CoreId(2),
        Box::new(VectoredReceiver {
            size: 1 << 20,
            seg,
            done_at: done_at.clone(),
        }),
    );
    cluster.start(&mut sim);
    sim.run(&mut cluster);
    let c = cluster.ep(peer).counters;
    assert!(done_at.get() > Ps::ZERO, "transfer completed");
    (done_at.get(), c.copies_offloaded, c.copies_memcpy)
}

#[test]
fn fragment_threshold_protects_vectorial_buffers() {
    // Contiguous: everything offloads.
    let (t_cont, off, _) = vectored_run(u64::MAX, 1 << 10);
    assert_eq!(off, 256, "256 fragments offloaded");
    // 256 B segments with the paper's 1 kB threshold: no offloads, and
    // the transfer is *faster* than forcing tiny-descriptor offloads.
    let (t_thresh, off_thresh, mem_thresh) = vectored_run(256, 1 << 10);
    assert_eq!(off_thresh, 0, "threshold rejects 256 B chunks");
    assert_eq!(mem_thresh, 256);
    let (t_forced, off_forced, _) = vectored_run(256, 1);
    assert_eq!(off_forced, 256);
    assert!(
        t_thresh < t_forced,
        "threshold must beat forced tiny offloads: {t_thresh} vs {t_forced}"
    );
    assert!(t_cont < t_thresh, "contiguous is fastest: {t_cont}");
}

#[test]
fn counters_track_message_classes_and_copy_paths() {
    struct MultiSender {
        peer: EpAddr,
        step: usize,
    }
    impl App for MultiSender {
        fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
            ctx.isend(self.peer, 10, vec![1u8; 16], Some(1)); // tiny
        }
        fn on_completion(&mut self, ctx: &mut AppCtx<'_>, c: Completion) {
            if !matches!(c, Completion::Send { .. }) {
                return;
            }
            self.step += 1;
            match self.step {
                1 => {
                    ctx.isend(self.peer, 11, vec![2u8; 100], Some(2)); // small
                }
                2 => {
                    ctx.isend(self.peer, 12, vec![3u8; 8 << 10], Some(3)); // medium
                }
                3 => {
                    ctx.isend(self.peer, 13, vec![4u8; 128 << 10], Some(4)); // large
                }
                _ => {}
            }
        }
        fn is_done(&self) -> bool {
            true
        }
    }
    struct MultiReceiver {
        got: Rc<Cell<u32>>,
    }
    impl App for MultiReceiver {
        fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
            ctx.irecv(10, u64::MAX, 16, None);
            ctx.irecv(11, u64::MAX, 100, None);
            ctx.irecv(12, u64::MAX, 8 << 10, None);
            ctx.irecv(13, u64::MAX, 128 << 10, None);
        }
        fn on_completion(&mut self, _ctx: &mut AppCtx<'_>, c: Completion) {
            if matches!(c, Completion::Recv { .. }) {
                self.got.set(self.got.get() + 1);
            }
        }
        fn is_done(&self) -> bool {
            self.got.get() == 4
        }
    }
    let got = Rc::new(Cell::new(0u32));
    let params = ClusterParams::with_cfg(OmxConfig::with_ioat());
    let mut cluster = Cluster::new(params);
    let mut sim: Sim<Cluster> = Sim::new();
    let peer = EpAddr {
        node: NodeId(1),
        ep: EpIdx(0),
    };
    let sender = EpAddr {
        node: NodeId(0),
        ep: EpIdx(0),
    };
    cluster.add_endpoint(
        NodeId(0),
        CoreId(2),
        Box::new(MultiSender { peer, step: 0 }),
    );
    cluster.add_endpoint(
        NodeId(1),
        CoreId(2),
        Box::new(MultiReceiver { got: got.clone() }),
    );
    cluster.start(&mut sim);
    sim.run(&mut cluster);
    assert_eq!(got.get(), 4);

    let tx = cluster.ep(sender).counters;
    assert_eq!(tx.tx_tiny, 1);
    assert_eq!(tx.tx_small, 1);
    assert_eq!(tx.tx_medium, 1);
    assert_eq!(tx.tx_large, 1);
    assert_eq!(tx.tx_medium_frags, 2, "8 kB = two 4 kB fragments");
    assert_eq!(tx.tx_bytes, 16 + 100 + (8 << 10) + (128 << 10));
    assert_eq!(tx.regcache_misses, 1, "one large send pinned once");

    let rx = cluster.ep(peer).counters;
    assert_eq!(rx.rx_tiny, 1);
    assert_eq!(rx.rx_small, 1);
    assert_eq!(rx.rx_medium_frags, 2);
    assert_eq!(rx.rx_rndv, 1);
    assert_eq!(rx.rx_large_frags, 32, "128 kB = 32 fragments");
    assert_eq!(rx.copies_offloaded, 32, "≥64 kB message offloads all frags");
    assert_eq!(rx.bytes_offloaded, 128 << 10);
    assert!(rx.copies_memcpy >= 3, "small + medium fragments memcpy'd");
    assert_eq!(rx.rx_bytes, 16 + 100 + (8 << 10) + (128 << 10));
    assert_eq!(rx.unexpected, 0, "receives were pre-posted");
    assert!(
        rx.events >= 6,
        "tiny + small + 2 medium frags + rndv + done"
    );
    // Tiny payloads ride inside the event (no BH copy), so the copy
    // accounting covers small + medium + large only.
    assert_eq!(rx.offload_fraction(), {
        let off = (128u64 << 10) as f64;
        off / (off + 100.0 + (8u64 << 10) as f64)
    });
}

#[test]
fn sleep_predicted_frees_driver_cpu() {
    // Compare the receiving driver's busy time for the same local
    // transfers under busy-poll vs sleep-predicted waits.
    fn driver_busy(wait: SyncWaitPolicy) -> Ps {
        let params = ClusterParams::with_cfg(OmxConfig {
            sync_wait: wait,
            ioat_shm_threshold: 64 << 10,
            ..OmxConfig::with_ioat()
        });
        let mut cfg = PingPongConfig::new(
            params.clone(),
            4 << 20,
            Placement::SameNode {
                core_a: CoreId(0),
                core_b: CoreId(4),
            },
        );
        cfg.iters = 6;
        cfg.warmup = 2;
        // The harness hides the cluster; rebuild the experiment
        // directly to read the meter.
        let r = run_pingpong(cfg);
        assert!(r.verified);
        // Use the throughput as a proxy sanity check, then measure the
        // driver category with a one-shot cluster below.
        let done = Rc::new(Cell::new(Ps::ZERO));
        let mut cluster = Cluster::new(params);
        let mut sim: Sim<Cluster> = Sim::new();
        let peer = EpAddr {
            node: NodeId(0),
            ep: EpIdx(1),
        };
        struct Recv1 {
            done: Rc<Cell<Ps>>,
        }
        impl App for Recv1 {
            fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
                ctx.irecv(1, u64::MAX, 4 << 20, Some(7));
            }
            fn on_completion(&mut self, ctx: &mut AppCtx<'_>, c: Completion) {
                if matches!(c, Completion::Recv { .. }) {
                    self.done.set(ctx.now());
                }
            }
            fn is_done(&self) -> bool {
                self.done.get() > Ps::ZERO
            }
        }
        cluster.add_endpoint(
            NodeId(0),
            CoreId(0),
            Box::new(OneShotSender {
                peer,
                size: 4 << 20,
            }),
        );
        cluster.add_endpoint(NodeId(0), CoreId(4), Box::new(Recv1 { done: done.clone() }));
        cluster.start(&mut sim);
        sim.run(&mut cluster);
        assert!(done.get() > Ps::ZERO);
        cluster
            .node(NodeId(0))
            .cpus
            .merged_meter()
            .total(openmx_repro::hw::cpu::category::DRIVER)
    }
    let busy = driver_busy(SyncWaitPolicy::BusyPoll);
    let slept = driver_busy(SyncWaitPolicy::SleepPredicted);
    assert!(
        slept < busy / 2,
        "prediction must free most of the copy wait: {slept} vs {busy}"
    );
}

#[test]
fn mx_event_driven_matches_analytic_curve() {
    // The event-driven MXoE endpoints and the closed-form curve are
    // two implementations of the same model; they must agree within a
    // few percent across the sweep (the event-driven one adds queueing
    // that the closed form approximates).
    use omx_mpi::runner::{run_kernel, Layout};
    use omx_mpi::Kernel;
    let mxp = openmx_repro::mx::MxParams::default();
    let link = openmx_repro::ethernet::LinkParams::default();
    for size in [4096u64, 64 << 10, 1 << 20, 4 << 20] {
        let analytic = pingpong_throughput_mibs(&mxp, &link, size);
        let params = ClusterParams::with_cfg(OmxConfig {
            stack: StackKind::Mxoe,
            ..OmxConfig::default()
        });
        let r = run_kernel(Kernel::PingPong, Layout::OnePerNode, size, 8, params);
        let measured = r.pingpong_mibs(size);
        let ratio = measured / analytic;
        assert!(
            (0.85..1.15).contains(&ratio),
            "{size} B: event-driven {measured:.1} vs analytic {analytic:.1} (ratio {ratio:.3})"
        );
    }
}

#[test]
fn warm_copy_head_is_memcpyd_offload_covers_rest() {
    let done = Rc::new(Cell::new(Ps::ZERO));
    let params = ClusterParams::with_cfg(OmxConfig {
        warm_copy_head_bytes: 64 << 10,
        ..OmxConfig::with_ioat()
    });
    let mut cluster = Cluster::new(params);
    let mut sim: Sim<Cluster> = Sim::new();
    let peer = EpAddr {
        node: NodeId(1),
        ep: EpIdx(0),
    };
    struct Recv1 {
        done: Rc<Cell<Ps>>,
    }
    impl App for Recv1 {
        fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
            ctx.irecv(1, u64::MAX, 1 << 20, None);
        }
        fn on_completion(&mut self, ctx: &mut AppCtx<'_>, c: Completion) {
            if let Completion::Recv { data, .. } = c {
                assert!(data.iter().all(|&b| b == 9));
                self.done.set(ctx.now());
            }
        }
        fn is_done(&self) -> bool {
            self.done.get() > Ps::ZERO
        }
    }
    cluster.add_endpoint(
        NodeId(0),
        CoreId(2),
        Box::new(OneShotSender {
            peer,
            size: 1 << 20,
        }),
    );
    cluster.add_endpoint(NodeId(1), CoreId(2), Box::new(Recv1 { done: done.clone() }));
    cluster.start(&mut sim);
    sim.run(&mut cluster);
    assert!(done.get() > Ps::ZERO);
    let c = cluster.ep(peer).counters;
    assert_eq!(c.copies_memcpy, 16, "64 kB head = 16 memcpy'd fragments");
    assert_eq!(c.copies_offloaded, 240, "remaining 960 kB offloaded");
}
