//! Debug-build SimSanitizer integration: lifecycle violations on real
//! handle types (I/OAT descriptors minted by the engine, skbuffs,
//! pinned regions) must panic with the allocation site, and clean
//! workloads must pass the teardown quiesce check.
//!
//! Everything here is `debug_assertions`-gated — in release builds the
//! sanitizer is a zero-sized no-op and these scenarios are
//! unobservable by design.
#![cfg(debug_assertions)]

use openmx_repro::ethernet::Skbuff;
use openmx_repro::hw::{HwParams, IoatEngine};
use openmx_repro::sim::sanitize::{Kind, SimSanitizer};
use openmx_repro::sim::Ps;

#[test]
#[should_panic(expected = "double-complete")]
fn double_complete_of_ioat_descriptor_is_caught() {
    // The real submission path: the engine mints the descriptor token
    // in the submitted state. A driver bug that reaps the same
    // completion twice must be caught on the spot.
    let hw = HwParams::default();
    let mut e = IoatEngine::new(&hw);
    let h = e.submit(&hw, Ps::ZERO, 0, 64 << 10, 16);
    SimSanitizer::complete(h.san);
    SimSanitizer::complete(h.san);
}

#[test]
#[should_panic(expected = "use-after-release")]
fn use_after_release_of_descriptor_is_caught() {
    let hw = HwParams::default();
    let mut e = IoatEngine::new(&hw);
    let h = e.submit(&hw, Ps::ZERO, 0, 4096, 1);
    SimSanitizer::complete(h.san);
    SimSanitizer::release(h.san);
    SimSanitizer::complete(h.san);
}

#[test]
#[should_panic(expected = "not released at teardown")]
fn leaked_skbuff_fails_teardown() {
    let skb = Skbuff::new(0, bytes::Bytes::from(vec![0u8; 128]), Ps::ZERO);
    SimSanitizer::submit(skb.token());
    // Nobody completes/releases the skbuff: teardown must name it.
    SimSanitizer::assert_quiesced();
}

#[test]
fn clean_lifecycle_passes_teardown() {
    let t = SimSanitizer::alloc(Kind::PullHandle);
    SimSanitizer::submit(t);
    SimSanitizer::complete(t);
    SimSanitizer::release(t);
    SimSanitizer::assert_quiesced();
}

#[test]
fn panic_message_names_the_allocation_site() {
    let hw = HwParams::default();
    let result = std::panic::catch_unwind(|| {
        let mut e = IoatEngine::new(&hw);
        let h = e.submit(&hw, Ps::ZERO, 0, 4096, 1);
        SimSanitizer::complete(h.san);
        SimSanitizer::complete(h.san);
    });
    let err = result.expect_err("double-complete must panic");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(
        msg.contains("sanitizer.rs"),
        "panic must point at the allocation site, got: {msg}"
    );
    // The failed thread-local registry still holds the released entry;
    // clear it so this test's state cannot leak into assertions run
    // later on the same test thread.
    SimSanitizer::clear();
}
