//! Memory footprint of an idle large cluster: a 10k-endpoint world
//! must stay lean enough that the scale ablation's 1k–10k-rank runs
//! fit comfortably in memory. The receive slot pools dominate the
//! naive footprint — `recvq_slots` (256) × `frag_size` (4 KiB) would
//! be 1 MiB per endpoint, 10 GiB for the cluster — so this test pins
//! the lazy-commit behaviour of `SlotPool` (slots are backed only on
//! first use) with a byte-counting global allocator.

use openmx_repro::hw::CoreId;
use openmx_repro::omx::app::{App, AppCtx, Completion};
use openmx_repro::omx::cluster::{Cluster, ClusterParams};
use openmx_repro::omx::NodeId;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

struct CountingAlloc;

/// Live heap bytes (allocated minus freed).
static LIVE: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, l: Layout) -> *mut u8 {
        LIVE.fetch_add(l.size() as u64, Relaxed);
        System.alloc(l)
    }
    unsafe fn dealloc(&self, p: *mut u8, l: Layout) {
        LIVE.fetch_sub(l.size() as u64, Relaxed);
        System.dealloc(p, l)
    }
    unsafe fn realloc(&self, p: *mut u8, l: Layout, n: usize) -> *mut u8 {
        LIVE.fetch_add(n as u64, Relaxed);
        LIVE.fetch_sub(l.size() as u64, Relaxed);
        System.realloc(p, l, n)
    }
    unsafe fn alloc_zeroed(&self, l: Layout) -> *mut u8 {
        LIVE.fetch_add(l.size() as u64, Relaxed);
        System.alloc_zeroed(l)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn live() -> u64 {
    LIVE.load(Relaxed)
}

/// An app that never posts anything — the endpoint exists, with all
/// its driver-side structures, but stays idle.
struct Idle;

impl App for Idle {
    fn on_start(&mut self, _ctx: &mut AppCtx<'_>) {}
    fn on_completion(&mut self, _ctx: &mut AppCtx<'_>, _comp: Completion) {}
}

const NODES: usize = 40;
const EPS_PER_NODE: usize = 250;
const ENDPOINTS: u64 = (NODES * EPS_PER_NODE) as u64;

fn build(eps_per_node: usize) -> Cluster {
    let params = ClusterParams {
        nodes: NODES,
        ..ClusterParams::default()
    };
    let mut c = Cluster::new(params);
    for n in 0..NODES {
        for _ in 0..eps_per_node {
            c.add_endpoint(NodeId(n as u32), CoreId(0), Box::new(Idle));
        }
    }
    c
}

/// The pinned budget: average heap bytes one idle endpoint may cost on
/// top of its node. The eager slot pool alone would be 1 MiB; the lean
/// endpoint (lazy slots, empty maps, no partner windows) measures a
/// few hundred bytes, so 64 KiB leaves room for honest growth while
/// still failing instantly if slot backing ever becomes eager again.
const PER_ENDPOINT_BUDGET: u64 = 64 * 1024;

#[test]
fn ten_k_endpoint_cluster_stays_under_budget() {
    // Node-only baseline: same world, no endpoints. Subtracting it
    // isolates the endpoint cost from NIC/driver/metrics fixtures.
    let baseline = build(0);
    let before = live();
    let cluster = build(EPS_PER_NODE);
    let with_eps = live() - before;
    let per_ep = with_eps / ENDPOINTS;
    assert!(
        per_ep <= PER_ENDPOINT_BUDGET,
        "idle endpoint costs {per_ep} heap bytes (budget {PER_ENDPOINT_BUDGET}); \
         did slot backing become eager?"
    );
    drop(cluster);
    drop(baseline);
}
