//! Run-to-run determinism: the same seed must produce byte-identical
//! serialized results — aggregate `Stats` (protocol counters included)
//! and the component time breakdown — for every workload under every
//! named fault plan. This is the property the whole experimental
//! record rests on: any wall-clock read, unordered-map iteration or
//! stray RNG would show up here as a diff between two identical runs.
//!
//! `omx-lint` proves the absence of those hazard *sources* statically;
//! this test proves the end-to-end consequence dynamically.

use openmx_repro::hw::CoreId;
use openmx_repro::mpi::{run_kernel, Kernel, Layout};
use openmx_repro::omx::cluster::ClusterParams;
use openmx_repro::omx::config::OmxConfig;
use openmx_repro::omx::fault::FaultPlan;
use openmx_repro::omx::harness::{
    run_incast, run_pingpong, run_stream, IncastConfig, PingPongConfig, Placement, StreamConfig,
};

const SEED: u64 = 17;

/// Clean plus every named fault plan.
fn plans() -> Vec<(&'static str, FaultPlan)> {
    let mut v = vec![("clean", FaultPlan::default())];
    for name in FaultPlan::NAMES {
        v.push((name, FaultPlan::named(name).expect("known plan")));
    }
    v
}

fn cfg(plan: FaultPlan) -> OmxConfig {
    OmxConfig {
        fault_plan: plan,
        seed: SEED,
        regcache: false,
        ..OmxConfig::with_ioat()
    }
}

/// Serialized fingerprint of one run: aggregate stats (with the full
/// counter set) plus the component breakdown, as JSON bytes.
fn fingerprint<S: serde::Serialize, B: serde::Serialize>(stats: &S, breakdown: &B) -> String {
    let s = serde_json::to_string(stats).expect("stats serialize");
    let b = serde_json::to_string(breakdown).expect("breakdown serialize");
    format!("{s}\n{b}")
}

fn pingpong_fingerprint(plan: FaultPlan) -> String {
    let mut c = PingPongConfig::new(
        ClusterParams::with_cfg(cfg(plan)),
        256 << 10,
        Placement::TwoNodes {
            core_a: CoreId(2),
            core_b: CoreId(2),
        },
    );
    c.iters = 6;
    c.warmup = 1;
    let r = run_pingpong(c);
    fingerprint(&r.stats, &r.breakdown)
}

fn stream_fingerprint(plan: FaultPlan) -> String {
    let params = ClusterParams::with_cfg(cfg(plan));
    let mut c = StreamConfig::new(params, 1 << 20);
    c.count = 4;
    let r = run_stream(c);
    fingerprint(&r.stats, &r.breakdown)
}

fn alltoall_fingerprint(plan: FaultPlan) -> String {
    let params = ClusterParams {
        nodes: 2,
        ..ClusterParams::with_cfg(cfg(plan))
    };
    let r = run_kernel(Kernel::Alltoall, Layout::TwoPerNode, 1 << 20, 2, params);
    fingerprint(&r.stats, &r.breakdown)
}

#[test]
fn pingpong_is_bit_deterministic_under_every_plan() {
    for (name, plan) in plans() {
        let a = pingpong_fingerprint(plan.clone());
        let b = pingpong_fingerprint(plan);
        assert_eq!(a, b, "pingpong under `{name}` diverged between two runs");
    }
}

#[test]
fn stream_is_bit_deterministic_under_every_plan() {
    for (name, plan) in plans() {
        let a = stream_fingerprint(plan.clone());
        let b = stream_fingerprint(plan);
        assert_eq!(a, b, "stream under `{name}` diverged between two runs");
    }
}

fn incast_fingerprint(plan: FaultPlan) -> String {
    // Small credit-enabled incast: the grant FIFO, AIMD budget and
    // NACK path all run on the sim's ordered timeline, so two runs
    // must agree bit for bit like every other workload.
    let mut params = ClusterParams::with_cfg(OmxConfig {
        pull_credits: true,
        ..cfg(plan)
    });
    params.nic.num_queues = 4;
    let r = run_incast(IncastConfig::new(params, 8, 96 << 10, 2));
    fingerprint(&r.stats, &r.breakdown)
}

#[test]
fn credit_incast_is_bit_deterministic_under_every_plan() {
    for (name, plan) in plans() {
        let a = incast_fingerprint(plan.clone());
        let b = incast_fingerprint(plan);
        assert_eq!(
            a, b,
            "credit-enabled incast under `{name}` diverged between two runs"
        );
    }
}

#[test]
fn alltoall_is_bit_deterministic_under_every_plan() {
    for (name, plan) in plans() {
        let a = alltoall_fingerprint(plan.clone());
        let b = alltoall_fingerprint(plan);
        assert_eq!(a, b, "alltoall under `{name}` diverged between two runs");
    }
}

/// The partitioned-engine determinism gate: for pingpong, alltoall and
/// credit-incast under `clean` and `flaky-10g`, every combination of
/// `partitions ∈ {1, 4}` × `partition_workers ∈ {1, 8}` must produce
/// the byte-identical Stats + breakdown JSON — and the `partitions: 1`
/// fingerprint IS the pre-partitioning single-engine fingerprint, so
/// this pins both "jobs don't matter" and "partitioning doesn't
/// matter" in one sweep.
#[test]
fn partitioning_and_workers_leave_every_fingerprint_unchanged() {
    let plans = [
        ("clean", FaultPlan::default()),
        (
            "flaky-10g",
            FaultPlan::named("flaky-10g").expect("known plan"),
        ),
    ];
    let grid = [(1usize, 1usize), (1, 8), (4, 1), (4, 8)];
    for (name, plan) in plans {
        for (label, fp) in [
            (
                "pingpong",
                &partitioned_pingpong_fingerprint as &dyn Fn(FaultPlan, usize, usize) -> String,
            ),
            ("alltoall", &partitioned_alltoall_fingerprint),
            ("incast", &partitioned_incast_fingerprint),
        ] {
            let base = fp(plan.clone(), 1, 1);
            for (parts, workers) in grid.iter().skip(1) {
                let got = fp(plan.clone(), *parts, *workers);
                assert_eq!(
                    got, base,
                    "{label} under `{name}`: partitions={parts} workers={workers} \
                     diverged from the single-engine fingerprint"
                );
            }
        }
    }
}

fn with_partitions(mut params: ClusterParams, parts: usize, workers: usize) -> ClusterParams {
    params.partitions = parts;
    params.partition_workers = workers;
    params
}

fn partitioned_pingpong_fingerprint(plan: FaultPlan, parts: usize, workers: usize) -> String {
    let mut c = PingPongConfig::new(
        with_partitions(ClusterParams::with_cfg(cfg(plan)), parts, workers),
        256 << 10,
        Placement::TwoNodes {
            core_a: CoreId(2),
            core_b: CoreId(2),
        },
    );
    c.iters = 6;
    c.warmup = 1;
    let r = run_pingpong(c);
    fingerprint(&r.stats, &r.breakdown)
}

fn partitioned_alltoall_fingerprint(plan: FaultPlan, parts: usize, workers: usize) -> String {
    // One rank per node on 8 nodes so a 4-way partitioning actually
    // spreads the job (TwoPerNode would leave half the shards empty).
    let params = with_partitions(ClusterParams::with_cfg(cfg(plan)), parts, workers);
    let r = run_kernel(Kernel::Alltoall, Layout::Nodes(8), 256 << 10, 2, params);
    fingerprint(&r.stats, &r.breakdown)
}

fn partitioned_incast_fingerprint(plan: FaultPlan, parts: usize, workers: usize) -> String {
    let mut params = ClusterParams::with_cfg(OmxConfig {
        pull_credits: true,
        ..cfg(plan)
    });
    params.nic.num_queues = 4;
    let params = with_partitions(params, parts, workers);
    let r = run_incast(IncastConfig::new(params, 8, 96 << 10, 2));
    fingerprint(&r.stats, &r.breakdown)
}

fn batch_pingpong(plan: FaultPlan, size: u64, batch: bool) -> (Vec<openmx_repro::sim::Ps>, String) {
    let mut c = PingPongConfig::new(
        ClusterParams::with_cfg(OmxConfig {
            ioat_batch: batch,
            ..cfg(plan)
        }),
        size,
        Placement::TwoNodes {
            core_a: CoreId(2),
            core_b: CoreId(2),
        },
    );
    c.iters = 6;
    c.warmup = 1;
    let r = run_pingpong(c);
    assert!(r.verified);
    (r.rtts, fingerprint(&r.stats, &r.breakdown))
}

#[test]
fn ioat_batching_is_bit_identical_under_every_plan() {
    // Batched doorbells only change how the submitting CPU's cost is
    // charged; with the default calibration (chain cost == submit
    // cost) flipping `ioat_batch` must be invisible bit for bit —
    // including on the quarantine/re-probe/memcpy-fallback recovery
    // paths, which poll the completion word of chained descriptors and
    // re-derive deadlines from the batch's handles. Medium (synchronous
    // offload, per-fragment descriptors) and large (pull + multichannel
    // split) sizes cover every batched submit site.
    for (name, plan) in plans() {
        for size in [16 << 10, 256 << 10] {
            let (rtts_off, fp_off) = batch_pingpong(plan.clone(), size, false);
            let (rtts_on, fp_on) = batch_pingpong(plan.clone(), size, true);
            assert_eq!(
                rtts_off, rtts_on,
                "{size}B under `{name}`: batching changed per-iteration timings"
            );
            assert_eq!(
                fp_off, fp_on,
                "{size}B under `{name}`: batching changed stats or breakdown"
            );
        }
    }
}

#[test]
fn snapshot_carries_aggregated_counters() {
    // The D3 contract end-to-end: serialized stats must contain the
    // aggregated per-endpoint counters, and a large-message exchange
    // must have counted actual traffic into them.
    let mut c = PingPongConfig::new(
        ClusterParams::with_cfg(cfg(FaultPlan::default())),
        256 << 10,
        Placement::TwoNodes {
            core_a: CoreId(2),
            core_b: CoreId(2),
        },
    );
    c.iters = 4;
    c.warmup = 1;
    let r = run_pingpong(c);
    assert!(r.verified);
    assert!(
        r.stats.counters.tx_large > 0,
        "stats {:?}",
        r.stats.counters
    );
    assert!(r.stats.counters.tx_bytes > 0);
    let json = serde_json::to_string(&r.stats).expect("serialize");
    assert!(
        json.contains("\"counters\"") && json.contains("\"tx_large\""),
        "serialized stats must surface the counter block: {json}"
    );
}
