//! Incast survival soak: a 64-sender large-message incast with the
//! receiver-driven credit budget enabled must complete — every message
//! delivered byte-verified, nothing leaked — on a clean wire, on a
//! ring shrunken to 8 slots, and on a flaky 1 %-loss link, across
//! seeds. The credits-off collapse is pinned as a contrast (fragment
//! waste, shed frames), and the whole path is bit-deterministic.

use openmx_repro::omx::cluster::ClusterParams;
use openmx_repro::omx::config::OmxConfig;
use openmx_repro::omx::fault::FaultPlan;
use openmx_repro::omx::harness::{run_incast, IncastConfig, IncastResult};

const SEEDS: [u64; 3] = [11, 23, 47];
const SENDERS: u32 = 64;
const SIZE: u64 = 96 << 10;
const COUNT: u32 = 2;

/// Credit-enabled incast config: four RSS queues on the receiver and
/// the registration cache off so `end_pinned_regions == 0` proves
/// every region was actually released.
fn incast(credits: bool, plan: FaultPlan, seed: u64) -> IncastResult {
    let mut params = ClusterParams::with_cfg(OmxConfig {
        fault_plan: plan,
        seed,
        regcache: false,
        pull_credits: credits,
        ..OmxConfig::default()
    });
    params.nic.num_queues = 4;
    run_incast(IncastConfig::new(params, SENDERS, SIZE, COUNT))
}

#[test]
fn incast_with_credits_survives_every_plan() {
    for plan_name in ["clean", "ring-pressure", "flaky-10g"] {
        let plan = FaultPlan::named(plan_name).unwrap_or_default();
        for seed in SEEDS {
            let r = incast(true, plan.clone(), seed);
            assert_eq!(
                r.delivered, r.expected,
                "{plan_name} seed {seed}: incast lost messages"
            );
            assert_eq!(r.corrupt, 0, "{plan_name} seed {seed}: corrupt payloads");
            assert!(
                r.verified,
                "{plan_name} seed {seed}: send failed or wire dirty"
            );
            assert_eq!(
                r.end_skbuffs_held, 0,
                "{plan_name} seed {seed}: leaked skbuffs"
            );
            assert_eq!(
                r.end_pinned_regions, 0,
                "{plan_name} seed {seed}: leaked pinned regions"
            );
        }
    }
}

#[test]
fn credits_beat_the_collapse_on_a_pressured_ring() {
    // The contrast panel: on the 8-slot ring the per-pull windows shed
    // frames and waste fragments; the shared budget must waste less on
    // both axes while the AIMD controller visibly engages.
    let seed = SEEDS[0];
    let off = incast(false, FaultPlan::ring_pressure(), seed);
    let on = incast(true, FaultPlan::ring_pressure(), seed);
    assert_eq!(on.delivered, on.expected);
    assert!(
        on.excess_frag_pct < off.excess_frag_pct,
        "credits must waste fewer fragments: {:.2}% vs {:.2}%",
        on.excess_frag_pct,
        off.excess_frag_pct
    );
    assert!(
        on.ring_dropped_injected < off.ring_dropped_injected,
        "credits must shed fewer frames: {} vs {}",
        on.ring_dropped_injected,
        off.ring_dropped_injected
    );
    assert!(on.stats.credit_shrinks > 0, "AIMD shrink never fired");
    assert_eq!(
        off.stats.credit_shrinks, 0,
        "credits-off run must not touch the controller"
    );
}

#[test]
fn ring_drop_blame_is_split_by_cause() {
    // Satellite check for the stats split: every drop on the shrunken
    // ring is attributable to the injected override, none to genuine
    // overload — and a clean credits-on run drops nothing at all.
    let pressured = incast(true, FaultPlan::ring_pressure(), SEEDS[0]);
    assert!(pressured.ring_dropped_injected > 0);
    assert_eq!(
        pressured.ring_dropped_genuine, 0,
        "all ring-pressure drops stem from the injected 8-slot ring"
    );
    let clean = incast(true, FaultPlan::default(), SEEDS[0]);
    assert_eq!(clean.ring_dropped_injected, 0);
    assert_eq!(clean.ring_dropped_genuine, 0);
}

#[test]
fn incast_with_credits_is_bit_deterministic() {
    for plan_name in ["clean", "ring-pressure", "flaky-10g"] {
        let plan = FaultPlan::named(plan_name).unwrap_or_default();
        let a = incast(true, plan.clone(), SEEDS[0]);
        let b = incast(true, plan, SEEDS[0]);
        let fp = |r: &IncastResult| {
            format!(
                "{}\n{}",
                serde_json::to_string(&r.stats).expect("stats serialize"),
                serde_json::to_string(&r.breakdown).expect("breakdown serialize"),
            )
        };
        assert_eq!(
            fp(&a),
            fp(&b),
            "{plan_name}: credit-enabled incast diverged between two runs"
        );
        assert_eq!(a.elapsed, b.elapsed, "{plan_name}: elapsed diverged");
    }
}
