//! Cross-crate integration: full-stack transfers with payload
//! verification across every message class, configuration and path.

use openmx_repro::hw::CoreId;
use openmx_repro::omx::cluster::ClusterParams;
use openmx_repro::omx::config::{OmxConfig, StackKind, SyncWaitPolicy};
use openmx_repro::omx::harness::{run_pingpong, PingPongConfig, Placement};

fn pingpong(size: u64, cfg: OmxConfig, placement: Placement) -> f64 {
    let params = ClusterParams::with_cfg(cfg);
    let mut c = PingPongConfig::new(params, size, placement);
    c.iters = 6;
    c.warmup = 2;
    let r = run_pingpong(c);
    assert!(r.verified, "payload corrupted at {size} B");
    r.throughput_mibs
}

fn net() -> Placement {
    Placement::TwoNodes {
        core_a: CoreId(2),
        core_b: CoreId(2),
    }
}

#[test]
fn every_message_class_delivers_verified_payloads() {
    // Tiny, small, medium (single and multi fragment), large across
    // the rendezvous threshold, multi-block pulls.
    for size in [
        1u64,
        32,
        33,
        128,
        129,
        4096,
        4097,
        32 << 10,
        (32 << 10) + 1,
        256 << 10,
    ] {
        pingpong(size, OmxConfig::default(), net());
    }
}

#[test]
fn every_class_with_ioat_enabled() {
    for size in [16u64, 4096, 32 << 10, 64 << 10, 1 << 20] {
        pingpong(size, OmxConfig::with_ioat(), net());
    }
}

#[test]
fn counterfactual_and_regcache_toggles_stay_correct() {
    let nocopy = OmxConfig {
        ignore_bh_copy: true,
        ..OmxConfig::default()
    };
    pingpong(1 << 20, nocopy, net());
    let mut nrc = OmxConfig::with_ioat();
    nrc.regcache = false;
    pingpong(1 << 20, nrc, net());
}

#[test]
fn extension_paths_stay_correct() {
    // Kernel matching (single event per medium message).
    let kmatch = OmxConfig {
        kernel_matching: true,
        ..OmxConfig::with_ioat()
    };
    for size in [4096u64, 16 << 10, 32 << 10] {
        pingpong(size, kmatch.clone(), net());
    }
    // Synchronous medium offload.
    let msync = OmxConfig {
        ioat_medium_sync: true,
        ..OmxConfig::with_ioat()
    };
    pingpong(16 << 10, msync, net());
    // Warm-copy head.
    let warm = OmxConfig {
        warm_copy_head_bytes: 32 << 10,
        ..OmxConfig::with_ioat()
    };
    pingpong(1 << 20, warm, net());
    // Multi-channel split + sleep-predicted sync waits (shm).
    let multi = OmxConfig {
        ioat_multichannel_split: true,
        sync_wait: SyncWaitPolicy::SleepPredicted,
        ioat_shm_threshold: 64 << 10,
        ..OmxConfig::with_ioat()
    };
    pingpong(
        2 << 20,
        multi,
        Placement::SameNode {
            core_a: CoreId(0),
            core_b: CoreId(4),
        },
    );
}

#[test]
fn shm_placements_deliver() {
    for size in [16u64, 4096, 32 << 10, 1 << 20, 4 << 20] {
        pingpong(
            size,
            OmxConfig::default(),
            Placement::SameNode {
                core_a: CoreId(0),
                core_b: CoreId(1),
            },
        );
        pingpong(
            size,
            OmxConfig::with_ioat(),
            Placement::SameNode {
                core_a: CoreId(0),
                core_b: CoreId(4),
            },
        );
    }
}

#[test]
fn mxoe_baseline_delivers_and_outruns_openmx_when_it_should() {
    let mx = OmxConfig {
        stack: StackKind::Mxoe,
        ..OmxConfig::default()
    };
    for size in [16u64, 4096, 32 << 10, 1 << 20] {
        let mx_rate = pingpong(size, mx.clone(), net());
        let omx_rate = pingpong(size, OmxConfig::default(), net());
        assert!(
            mx_rate > omx_rate,
            "zero-copy MX must beat plain Open-MX at {size} B: {mx_rate} vs {omx_rate}"
        );
    }
}

#[test]
fn ioat_crossover_sits_at_the_threshold() {
    // Below the 64 kB offload threshold the two configs are identical.
    let below_base = pingpong(32 << 10, OmxConfig::default(), net());
    let below_ioat = pingpong(32 << 10, OmxConfig::with_ioat(), net());
    assert!((below_base - below_ioat).abs() < 1.0);
    // Above it, I/OAT clearly wins.
    let above_base = pingpong(256 << 10, OmxConfig::default(), net());
    let above_ioat = pingpong(256 << 10, OmxConfig::with_ioat(), net());
    assert!(above_ioat > above_base * 1.2);
}

#[test]
fn unexpected_messages_are_buffered_and_adopted() {
    // The ponger posts its receive *late*: messages arrive unexpected
    // and must be matched by the subsequent irecv.
    use openmx_repro::omx::app::{App, AppCtx, Completion};
    use openmx_repro::omx::cluster::Cluster;
    use openmx_repro::omx::{EpAddr, EpIdx, NodeId};
    use openmx_repro::sim::{Ps, Sim};
    use std::cell::RefCell;
    use std::rc::Rc;

    struct LateReceiver {
        got: Rc<RefCell<Vec<Vec<u8>>>>,
    }
    impl App for LateReceiver {
        fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
            // Post the receives 300 us after the sends happened.
            ctx.compute(Ps::us(300));
            ctx.irecv(7, u64::MAX, 64 << 10, None);
            ctx.irecv(8, u64::MAX, 100, None);
            ctx.irecv(9, u64::MAX, 8 << 10, None);
        }
        fn on_completion(&mut self, _ctx: &mut AppCtx<'_>, comp: Completion) {
            if let Completion::Recv { data, .. } = comp {
                self.got.borrow_mut().push(data);
            }
        }
        fn is_done(&self) -> bool {
            self.got.borrow().len() == 3
        }
    }
    struct EarlySender {
        peer: EpAddr,
    }
    impl App for EarlySender {
        fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
            ctx.isend(self.peer, 7, vec![7u8; 64 << 10], None); // large rndv
            ctx.isend(self.peer, 8, vec![8u8; 100], None); // small
            ctx.isend(self.peer, 9, vec![9u8; 8 << 10], None); // medium
        }
        fn on_completion(&mut self, _ctx: &mut AppCtx<'_>, _c: Completion) {}
        fn is_done(&self) -> bool {
            true
        }
    }

    let got = Rc::new(RefCell::new(Vec::new()));
    let mut cluster = Cluster::new(ClusterParams::default());
    let mut sim: Sim<Cluster> = Sim::new();
    let peer = EpAddr {
        node: NodeId(1),
        ep: EpIdx(0),
    };
    cluster.add_endpoint(NodeId(0), CoreId(2), Box::new(EarlySender { peer }));
    cluster.add_endpoint(
        NodeId(1),
        CoreId(2),
        Box::new(LateReceiver { got: got.clone() }),
    );
    cluster.start(&mut sim);
    sim.run(&mut cluster);
    let got = got.borrow();
    assert_eq!(got.len(), 3, "all unexpected messages adopted");
    let mut lens: Vec<usize> = got.iter().map(|d| d.len()).collect();
    lens.sort_unstable();
    assert_eq!(lens, vec![100, 8 << 10, 64 << 10]);
    for d in got.iter() {
        let tag = match d.len() {
            100 => 8u8,
            8192 => 9,
            _ => 7,
        };
        assert!(d.iter().all(|&b| b == tag), "adopted payload intact");
    }
}
