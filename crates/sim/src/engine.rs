//! The discrete-event engine.
//!
//! [`Sim<W>`] owns a priority queue of events, each a boxed `FnOnce`
//! closure over a user-supplied world type `W`. Events scheduled for the
//! same instant fire in FIFO order (a monotone sequence number breaks
//! ties), which makes runs deterministic regardless of queue internals.
//!
//! The world is passed in at [`Sim::run`] time rather than stored inside
//! the engine so that closures can borrow the engine (`&mut Sim<W>`,
//! for scheduling follow-up events) and the world (`&mut W`) at once.

use crate::time::Ps;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

type EventFn<W> = Box<dyn FnOnce(&mut W, &mut Sim<W>)>;

struct Scheduled<W> {
    at: Ps,
    seq: u64,
    run: EventFn<W>,
}

// Order by (time, sequence) only; the closure does not participate.
impl<W> PartialEq for Scheduled<W> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<W> Eq for Scheduled<W> {}
impl<W> PartialOrd for Scheduled<W> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for Scheduled<W> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A single-threaded deterministic discrete-event simulator.
pub struct Sim<W> {
    now: Ps,
    seq: u64,
    executed: u64,
    queue: BinaryHeap<Reverse<Scheduled<W>>>,
}

impl<W> Default for Sim<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> Sim<W> {
    /// A fresh simulator at time zero with an empty queue.
    pub fn new() -> Self {
        Sim {
            now: Ps::ZERO,
            seq: 0,
            executed: 0,
            queue: BinaryHeap::new(),
        }
    }

    /// Current simulated time. Inside an event handler this is the
    /// event's own timestamp.
    #[inline]
    pub fn now(&self) -> Ps {
        self.now
    }

    /// Number of events executed so far (for budget checks and tests).
    #[inline]
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events still pending.
    #[inline]
    pub fn events_pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedule `f` to run at absolute time `at`. Scheduling in the past
    /// is a logic error and panics — it would silently reorder causality.
    pub fn schedule_at(&mut self, at: Ps, f: impl FnOnce(&mut W, &mut Sim<W>) + 'static) {
        assert!(
            at >= self.now,
            "event scheduled in the past: at={at} now={}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(Scheduled {
            at,
            seq,
            run: Box::new(f),
        }));
    }

    /// Schedule `f` to run `delay` after the current time.
    pub fn schedule_in(&mut self, delay: Ps, f: impl FnOnce(&mut W, &mut Sim<W>) + 'static) {
        let at = self
            .now
            .checked_add(delay)
            .expect("simulation clock overflow");
        self.schedule_at(at, f);
    }

    /// Run until the queue is empty. Returns the final time.
    pub fn run(&mut self, world: &mut W) -> Ps {
        self.run_until(world, Ps::MAX)
    }

    /// Run until the queue is empty or the next event would fire after
    /// `deadline`. Events exactly at the deadline still run. Returns the
    /// time of the last executed event (or the unchanged clock if none
    /// ran).
    pub fn run_until(&mut self, world: &mut W, deadline: Ps) -> Ps {
        while let Some(Reverse(head)) = self.queue.peek() {
            if head.at > deadline {
                break;
            }
            let Reverse(ev) = self.queue.pop().expect("peeked entry vanished");
            debug_assert!(ev.at >= self.now, "event queue went backwards");
            self.now = ev.at;
            self.executed += 1;
            (ev.run)(world, self);
        }
        self.now
    }

    /// Run at most `n` more events (test helper for stepping through a
    /// protocol exchange).
    pub fn step(&mut self, world: &mut W, n: u64) -> u64 {
        let mut done = 0;
        while done < n {
            match self.queue.pop() {
                Some(Reverse(ev)) => {
                    self.now = ev.at;
                    self.executed += 1;
                    (ev.run)(world, self);
                    done += 1;
                }
                None => break,
            }
        }
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_run_in_time_order() {
        let mut sim: Sim<Vec<u32>> = Sim::new();
        let mut world = Vec::new();
        sim.schedule_at(Ps::ns(30), |w: &mut Vec<u32>, _| w.push(3));
        sim.schedule_at(Ps::ns(10), |w: &mut Vec<u32>, _| w.push(1));
        sim.schedule_at(Ps::ns(20), |w: &mut Vec<u32>, _| w.push(2));
        let end = sim.run(&mut world);
        assert_eq!(world, vec![1, 2, 3]);
        assert_eq!(end, Ps::ns(30));
        assert_eq!(sim.events_executed(), 3);
    }

    #[test]
    fn same_time_events_fifo() {
        let mut sim: Sim<Vec<u32>> = Sim::new();
        let mut world = Vec::new();
        for i in 0..100 {
            sim.schedule_at(Ps::ns(5), move |w: &mut Vec<u32>, _| w.push(i));
        }
        sim.run(&mut world);
        assert_eq!(world, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_schedule_events() {
        let mut sim: Sim<u64> = Sim::new();
        let mut world = 0u64;
        fn tick(w: &mut u64, sim: &mut Sim<u64>) {
            *w += 1;
            if *w < 5 {
                sim.schedule_in(Ps::ns(100), tick);
            }
        }
        sim.schedule_at(Ps::ZERO, tick);
        let end = sim.run(&mut world);
        assert_eq!(world, 5);
        assert_eq!(end, Ps::ns(400));
    }

    #[test]
    fn run_until_stops_at_deadline_inclusive() {
        let mut sim: Sim<Vec<u64>> = Sim::new();
        let mut world = Vec::new();
        for t in [10u64, 20, 30, 40] {
            sim.schedule_at(Ps::ns(t), move |w: &mut Vec<u64>, _| w.push(t));
        }
        sim.run_until(&mut world, Ps::ns(20));
        assert_eq!(world, vec![10, 20]);
        assert_eq!(sim.events_pending(), 2);
        sim.run(&mut world);
        assert_eq!(world, vec![10, 20, 30, 40]);
    }

    #[test]
    fn step_runs_bounded_number() {
        let mut sim: Sim<u32> = Sim::new();
        let mut world = 0u32;
        for _ in 0..10 {
            sim.schedule_in(Ps::ns(1), |w: &mut u32, _| *w += 1);
        }
        assert_eq!(sim.step(&mut world, 4), 4);
        assert_eq!(world, 4);
        assert_eq!(sim.step(&mut world, 100), 6);
        assert_eq!(world, 10);
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut sim: Sim<()> = Sim::new();
        let mut world = ();
        sim.schedule_at(Ps::ns(100), |_, sim| {
            sim.schedule_at(Ps::ns(50), |_, _| {});
        });
        sim.run(&mut world);
    }

    #[test]
    fn clock_does_not_move_without_events() {
        let mut sim: Sim<()> = Sim::new();
        let mut world = ();
        assert_eq!(sim.run(&mut world), Ps::ZERO);
        assert_eq!(sim.now(), Ps::ZERO);
    }
}
