//! The discrete-event engine.
//!
//! [`Sim<W>`] schedules closures over a user-supplied world type `W`.
//! Events scheduled for the same instant fire in FIFO order (a monotone
//! sequence number breaks ties), which makes runs deterministic
//! regardless of queue internals. The world is passed in at
//! [`Sim::run`] time rather than stored inside the engine so that
//! closures can borrow the engine (`&mut Sim<W>`, for scheduling
//! follow-up events) and the world (`&mut W`) at once.
//!
//! # Queue structure
//!
//! The engine replaced its original `BinaryHeap<(time, seq)>` — one
//! O(log n) comparison cascade per schedule and per pop, one boxed
//! closure allocation per event — with three cooperating structures
//! whose observable execution order is *bit-identical* to the heap's
//! (the determinism suite and the figure goldens are the oracle):
//!
//! * **current slot** — a `VecDeque` holding the events of the slot
//!   the cursor is on, sorted by `(time, seq)` once when the slot is
//!   adopted (seqs are unique, so the sort reconstructs the exact
//!   global schedule order). Execution is a pure `pop_front` run;
//!   scheduling into the executing slot (`now`, or anything else
//!   within its ~131 ns) is an O(1) append in the common monotone case
//!   and a binary-search insert otherwise.
//! * **timing wheel** ([`crate::wheel`]) — 512 slots of ~131 ns
//!   covering ≈ 67 µs past the last executed instant. In-window
//!   scheduling is an O(1) intrusive-list push into a shared node
//!   slab; finding the next instant is a bitmap scan plus a cached
//!   per-slot minimum.
//! * **overflow heap** — `(time, seq)`-ordered `BinaryHeap` of
//!   small boxed-closure nodes for events beyond the wheel's coverage
//!   (retransmit timers, watchdogs). They cascade into the wheel as
//!   the cursor advances. [`Sim::with_wheel_levels`]`(2)` extends the
//!   slab-resident coverage to ~34 ms with a coarser second ring, so
//!   only truly-far events (seconds-scale watchdogs) pay the box.
//!
//! Closures are packed by [`crate::event::EventFn`]: up to three words
//! inline in the queue node, medium captures in pooled free-list
//! slots, so steady-state scheduling performs no heap allocation.
//!
//! # Cancellation
//!
//! [`Sim::schedule_at_cancellable`] returns a [`TimerId`] that
//! [`Sim::cancel`] revokes in O(log n). Cancellation tombstones the
//! event rather than unlinking it: the closure is destroyed when its
//! instant is reached, the handler never runs, but the clock still
//! passes through the instant (both this engine and
//! [`crate::reference::ReferenceSim`] define it that way). The
//! tombstone sets are empty unless cancellation is actually used, in
//! which case lookups cost one `is_empty` check on the hot path.

use crate::event::{EventFn, EventPool, PoolSlot};
use crate::time::Ps;
use crate::wheel::{slot_of, Entry, FarEntry, FarHeap, Wheel};
use std::collections::{BTreeSet, VecDeque};

/// Handle to a cancellable scheduled event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct TimerId(pub(crate) u64);

/// A single-threaded deterministic discrete-event simulator.
pub struct Sim<W> {
    now: Ps,
    seq: u64,
    executed: u64,
    /// Live (not yet executed, not cancelled) event count.
    pending: usize,
    /// High-water mark of `pending` over the simulation's lifetime —
    /// a deterministic proxy for the engine's peak memory footprint
    /// (event pool + wheel occupancy track the pending population).
    pending_peak: usize,
    /// Events of the slot the cursor is on, sorted by `(time, seq)`,
    /// held as indices into the wheel's node slab so the sort and any
    /// mid-drain inserts move 4-byte handles instead of whole entries;
    /// each closure moves exactly once, at fire time. This deque — not
    /// the wheel bucket — is the canonical home of cursor-slot
    /// entries; the wheel's own cursor bucket is empty except
    /// transiently during a cascade.
    current: VecDeque<u32>,
    wheel: Wheel<W>,
    far: FarHeap<W>,
    pool: EventPool,
    /// Sequence numbers of cancellable events not yet fired/cancelled.
    live: BTreeSet<u64>,
    /// Sequence numbers cancelled but not yet reaped from the queues.
    cancelled: BTreeSet<u64>,
}

impl<W> Default for Sim<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> Sim<W> {
    /// A fresh simulator at time zero with an empty queue.
    pub fn new() -> Self {
        Self::with_wheel_levels(1)
    }

    /// A fresh simulator with an explicit timing-wheel depth. `1` is
    /// the default single ring (~67 µs window, overflow boxed on the
    /// far heap); `2` layers a coarser ring on top so events up to
    /// ~34 ms out stay slab-resident and allocation-free. The executed
    /// schedule is bit-identical either way — level count is purely a
    /// throughput knob (`wheel_levels` in `OmxConfig`).
    pub fn with_wheel_levels(levels: u32) -> Self {
        Sim {
            now: Ps::ZERO,
            seq: 0,
            executed: 0,
            pending: 0,
            pending_peak: 0,
            current: VecDeque::new(),
            wheel: Wheel::with_levels(levels),
            far: FarHeap::new(),
            pool: EventPool::new(),
            live: BTreeSet::new(),
            cancelled: BTreeSet::new(),
        }
    }

    /// Current simulated time. Inside an event handler this is the
    /// event's own timestamp.
    #[inline]
    pub fn now(&self) -> Ps {
        self.now
    }

    /// Number of events executed so far (for budget checks and tests).
    #[inline]
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events still pending (cancelled events excluded).
    #[inline]
    pub fn events_pending(&self) -> usize {
        self.pending
    }

    /// High-water mark of [`Sim::events_pending`] since construction:
    /// the peak simultaneous event population, which bounds the event
    /// pool and wheel slab footprint. Deterministic (a property of the
    /// schedule, not the host), so it can appear in golden files as a
    /// per-shard peak-memory proxy.
    #[inline]
    pub fn events_peak_pending(&self) -> usize {
        self.pending_peak
    }

    /// Earliest pending instant — the timestamp of the next event that
    /// would fire — or `None` when the queue is empty. Unlike the
    /// internal [`Sim::next_instant`] this includes entries a bounded
    /// [`Sim::run_until`] left behind in the cursor slot, so it is safe
    /// to use as the horizon base of a conservative time-window
    /// protocol (`crates/sim/src/partition.rs`). A cancelled-but-not-
    /// yet-reaped tombstone may be reported here; that is conservative
    /// (the window only shrinks, never admits an out-of-order event).
    pub fn next_event_at(&self) -> Option<Ps> {
        let cur = self.current.front().map(|&i| self.wheel.node_at(i));
        match (cur, self.next_instant()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Schedule `f` to run at absolute time `at`. Scheduling in the past
    /// is a logic error and panics — it would silently reorder causality.
    pub fn schedule_at(&mut self, at: Ps, f: impl FnOnce(&mut W, &mut Sim<W>) + 'static) {
        let f = EventFn::new(f, &mut self.pool);
        self.insert(at, f);
    }

    /// Schedule `f` to run `delay` after the current time.
    pub fn schedule_in(&mut self, delay: Ps, f: impl FnOnce(&mut W, &mut Sim<W>) + 'static) {
        let at = self
            .now
            .checked_add(delay)
            .expect("simulation clock overflow");
        self.schedule_at(at, f);
    }

    /// Like [`Sim::schedule_at`], returning a handle that can revoke
    /// the event via [`Sim::cancel`].
    pub fn schedule_at_cancellable(
        &mut self,
        at: Ps,
        f: impl FnOnce(&mut W, &mut Sim<W>) + 'static,
    ) -> TimerId {
        let f = EventFn::new(f, &mut self.pool);
        let seq = self.insert(at, f);
        self.live.insert(seq);
        TimerId(seq)
    }

    /// Like [`Sim::schedule_in`], returning a cancellation handle.
    pub fn schedule_in_cancellable(
        &mut self,
        delay: Ps,
        f: impl FnOnce(&mut W, &mut Sim<W>) + 'static,
    ) -> TimerId {
        let at = self
            .now
            .checked_add(delay)
            .expect("simulation clock overflow");
        self.schedule_at_cancellable(at, f)
    }

    /// Revoke a cancellable event. Returns whether it was revoked here:
    /// `false` if it already fired or was already cancelled. The
    /// closure of a revoked event never runs (its captures are dropped
    /// when its instant is reached), but the clock still passes through
    /// the instant.
    pub fn cancel(&mut self, id: TimerId) -> bool {
        if self.live.remove(&id.0) {
            self.cancelled.insert(id.0);
            self.pending -= 1;
            true
        } else {
            false
        }
    }

    #[inline]
    fn insert(&mut self, at: Ps, f: EventFn<W>) -> u64 {
        assert!(
            at >= self.now,
            "event scheduled in the past: at={at} now={}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.pending += 1;
        self.pending_peak = self.pending_peak.max(self.pending);
        if slot_of(at) == self.wheel.cursor() {
            // The cursor slot lives in `current`, kept sorted. The new
            // entry carries the highest seq, so it sorts after every
            // entry with the same or an earlier timestamp — which in
            // the common case (monotone schedules) is the back.
            let sorted_at_back = match self.current.back() {
                Some(&b) => self.wheel.node_at(b) <= at,
                None => true,
            };
            let node = self.wheel.adopt(Entry { at, seq, f });
            if sorted_at_back {
                self.current.push_back(node);
            } else {
                let wheel = &self.wheel;
                let pos = self.current.partition_point(|&i| wheel.node_at(i) <= at);
                self.current.insert(pos, node);
            }
        } else if self.wheel.in_window(at) {
            self.wheel.push(Entry { at, seq, f });
        } else {
            self.far.push(std::cmp::Reverse(FarEntry {
                at,
                seq,
                // omx-lint: allow(hot-path-alloc) truly-far overflow heap only; events inside the wheel coverage (~67 µs, or ~34 ms with wheel_levels=2) stay slab-resident and steady state never lands here [test: crates/sim/tests/alloc_count.rs::steady_state_far_future_timers_allocate_nothing_with_two_levels]
                f: Box::new(f),
            }));
        }
        seq
    }

    /// Give a consumed pooled-closure slot back to the free list
    /// (called by the `call_pooled` thunk in `event.rs`).
    #[inline]
    pub(crate) fn recycle_slot(&mut self, slot: *mut PoolSlot) {
        self.pool.put(slot);
    }

    /// Earliest pending instant outside `current`, without mutating any
    /// structure. Wheel entries always precede overflow entries: the
    /// overflow holds only slots at or beyond the window end.
    #[inline]
    fn next_instant(&self) -> Option<Ps> {
        match self.wheel.min_at() {
            Some(t) => Some(t),
            None => self.far.peek().map(|rev| rev.0.at),
        }
    }

    /// Commit to executing the slot holding instant `t` (the queue
    /// minimum): advance the window — cascading overflow entries, some
    /// of which may land in the very slot being adopted — then take
    /// the whole slot as the new `current` run queue and sort it once.
    fn take_slot(&mut self, t: Ps) {
        debug_assert!(self.current.is_empty());
        let s = slot_of(t);
        if self.wheel.is_empty() {
            // Everything due comes straight off the overflow heap,
            // which pops in (time, seq) order: entries of the due slot
            // go directly into `current` — already sorted, no bucket
            // swap — and the rest of the new window cascades normally.
            self.wheel.jump_to(s);
            while let Some(std::cmp::Reverse(head)) = self.far.peek() {
                if !self.wheel.in_window(head.at) {
                    break;
                }
                let std::cmp::Reverse(e) = self.far.pop().expect("peeked entry vanished");
                if slot_of(e.at) == s {
                    let node = self.wheel.adopt(e.into_entry());
                    self.current.push_back(node);
                } else {
                    self.wheel.push(e.into_entry());
                }
            }
            return;
        }
        self.wheel.advance_to(s, &mut self.far);
        self.wheel.take_cursor_slot(&mut self.current);
        // Unstable sort is exact here (seqs are unique) and, unlike a
        // stable sort, allocation-free.
        let wheel = &self.wheel;
        self.current
            .make_contiguous()
            .sort_unstable_by_key(|&i| wheel.node_key(i));
    }

    /// Pop the next runnable event of the current slot, reaping
    /// tombstones of cancelled events along the way.
    #[inline]
    fn pop_runnable(&mut self) -> Option<(Ps, u64, EventFn<W>)> {
        while let Some(idx) = self.current.pop_front() {
            let (at, seq, f) = self.wheel.consume(idx);
            if !self.cancelled.is_empty() && self.cancelled.remove(&seq) {
                // Cancelled: destroy the closure, keep the clock
                // consistent with the instant having been reached.
                debug_assert!(at >= self.now, "event queue went backwards");
                self.now = at;
                drop(f);
                continue;
            }
            return Some((at, seq, f));
        }
        None
    }

    #[inline]
    fn fire(&mut self, world: &mut W, at: Ps, seq: u64, f: EventFn<W>) {
        debug_assert!(at >= self.now, "event queue went backwards");
        self.now = at;
        self.executed += 1;
        self.pending -= 1;
        if !self.live.is_empty() {
            self.live.remove(&seq);
        }
        f.invoke(world, self);
    }

    /// Run until the queue is empty. Returns the final time.
    pub fn run(&mut self, world: &mut W) -> Ps {
        self.run_until(world, Ps::MAX)
    }

    /// Run until the queue is empty or the next event would fire after
    /// `deadline`. Events exactly at the deadline still run. Returns the
    /// time of the last executed event (or the unchanged clock if none
    /// ran).
    pub fn run_until(&mut self, world: &mut W, deadline: Ps) -> Ps {
        loop {
            // Drain the current slot up to the deadline. The deadline
            // re-applies after every pop: a reaped tombstone must not
            // let a later event slip past it.
            loop {
                match self.current.front() {
                    Some(&i) if self.wheel.node_at(i) <= deadline => {}
                    _ => break,
                }
                let idx = self.current.pop_front().expect("peeked entry vanished");
                let (at, seq, f) = self.wheel.consume(idx);
                if !self.cancelled.is_empty() && self.cancelled.remove(&seq) {
                    debug_assert!(at >= self.now, "event queue went backwards");
                    self.now = at;
                    drop(f);
                    continue;
                }
                self.fire(world, at, seq, f);
            }
            if !self.current.is_empty() {
                // Leftover entries beyond the deadline stay queued.
                break;
            }
            let Some(t) = self.next_instant() else { break };
            if t > deadline {
                break;
            }
            self.take_slot(t);
        }
        self.now
    }

    /// Run at most `n` more events (test helper for stepping through a
    /// protocol exchange).
    pub fn step(&mut self, world: &mut W, n: u64) -> u64 {
        let mut done = 0;
        while done < n {
            if let Some((at, seq, f)) = self.pop_runnable() {
                self.fire(world, at, seq, f);
                done += 1;
                continue;
            }
            let Some(t) = self.next_instant() else { break };
            self.take_slot(t);
        }
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_run_in_time_order() {
        let mut sim: Sim<Vec<u32>> = Sim::new();
        let mut world = Vec::new();
        sim.schedule_at(Ps::ns(30), |w: &mut Vec<u32>, _| w.push(3));
        sim.schedule_at(Ps::ns(10), |w: &mut Vec<u32>, _| w.push(1));
        sim.schedule_at(Ps::ns(20), |w: &mut Vec<u32>, _| w.push(2));
        let end = sim.run(&mut world);
        assert_eq!(world, vec![1, 2, 3]);
        assert_eq!(end, Ps::ns(30));
        assert_eq!(sim.events_executed(), 3);
    }

    #[test]
    fn same_time_events_fifo() {
        let mut sim: Sim<Vec<u32>> = Sim::new();
        let mut world = Vec::new();
        for i in 0..100 {
            sim.schedule_at(Ps::ns(5), move |w: &mut Vec<u32>, _| w.push(i));
        }
        sim.run(&mut world);
        assert_eq!(world, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_schedule_events() {
        let mut sim: Sim<u64> = Sim::new();
        let mut world = 0u64;
        fn tick(w: &mut u64, sim: &mut Sim<u64>) {
            *w += 1;
            if *w < 5 {
                sim.schedule_in(Ps::ns(100), tick);
            }
        }
        sim.schedule_at(Ps::ZERO, tick);
        let end = sim.run(&mut world);
        assert_eq!(world, 5);
        assert_eq!(end, Ps::ns(400));
    }

    #[test]
    fn run_until_stops_at_deadline_inclusive() {
        let mut sim: Sim<Vec<u64>> = Sim::new();
        let mut world = Vec::new();
        for t in [10u64, 20, 30, 40] {
            sim.schedule_at(Ps::ns(t), move |w: &mut Vec<u64>, _| w.push(t));
        }
        sim.run_until(&mut world, Ps::ns(20));
        assert_eq!(world, vec![10, 20]);
        assert_eq!(sim.events_pending(), 2);
        sim.run(&mut world);
        assert_eq!(world, vec![10, 20, 30, 40]);
    }

    #[test]
    fn step_runs_bounded_number() {
        let mut sim: Sim<u32> = Sim::new();
        let mut world = 0u32;
        for _ in 0..10 {
            sim.schedule_in(Ps::ns(1), |w: &mut u32, _| *w += 1);
        }
        assert_eq!(sim.step(&mut world, 4), 4);
        assert_eq!(world, 4);
        assert_eq!(sim.step(&mut world, 100), 6);
        assert_eq!(world, 10);
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut sim: Sim<()> = Sim::new();
        let mut world = ();
        sim.schedule_at(Ps::ns(100), |_, sim| {
            sim.schedule_at(Ps::ns(50), |_, _| {});
        });
        sim.run(&mut world);
    }

    #[test]
    fn clock_does_not_move_without_events() {
        let mut sim: Sim<()> = Sim::new();
        let mut world = ();
        assert_eq!(sim.run(&mut world), Ps::ZERO);
        assert_eq!(sim.now(), Ps::ZERO);
    }

    #[test]
    fn far_events_cascade_into_the_wheel() {
        // Events far beyond the wheel window must still run in (time,
        // seq) order, including a same-timestamp pair straddling the
        // overflow heap and a near event scheduled later.
        let mut sim: Sim<Vec<u32>> = Sim::new();
        let mut world = Vec::new();
        let far = Ps::ms(5); // well beyond the ~67 µs window
        sim.schedule_at(far, |w: &mut Vec<u32>, _| w.push(2));
        sim.schedule_at(far, |w: &mut Vec<u32>, _| w.push(3));
        sim.schedule_at(Ps::ns(10), move |w: &mut Vec<u32>, sim| {
            w.push(1);
            sim.schedule_at(far, |w: &mut Vec<u32>, _| w.push(4));
        });
        let end = sim.run(&mut world);
        assert_eq!(world, vec![1, 2, 3, 4]);
        assert_eq!(end, far);
    }

    #[test]
    fn cancel_revokes_exactly_once() {
        let mut sim: Sim<Vec<u32>> = Sim::new();
        let mut world = Vec::new();
        sim.schedule_at(Ps::ns(10), |w: &mut Vec<u32>, _| w.push(1));
        let id = sim.schedule_at_cancellable(Ps::ns(20), |w: &mut Vec<u32>, _| w.push(2));
        sim.schedule_at(Ps::ns(30), |w: &mut Vec<u32>, _| w.push(3));
        assert_eq!(sim.events_pending(), 3);
        assert!(sim.cancel(id));
        assert_eq!(sim.events_pending(), 2);
        assert!(!sim.cancel(id), "double cancel must be a no-op");
        sim.run(&mut world);
        assert_eq!(world, vec![1, 3]);
        assert_eq!(sim.events_executed(), 2);
        assert_eq!(sim.events_pending(), 0);
    }

    #[test]
    fn cancel_after_fire_is_a_no_op() {
        let mut sim: Sim<u32> = Sim::new();
        let mut world = 0u32;
        let id = sim.schedule_at_cancellable(Ps::ns(5), |w: &mut u32, _| *w += 1);
        sim.run(&mut world);
        assert_eq!(world, 1);
        assert!(!sim.cancel(id));
        assert_eq!(world, 1);
    }

    #[test]
    fn pending_events_drop_cleanly_with_the_sim() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let alive = Rc::new(RefCell::new(0u32));
        {
            let mut sim: Sim<()> = Sim::new();
            for at in [Ps::ns(1), Ps::ms(50)] {
                let a = alive.clone();
                *alive.borrow_mut() += 1;
                sim.schedule_at(at, move |_: &mut (), _| {
                    let _ = &a;
                });
            }
            assert_eq!(Rc::strong_count(&alive), 3);
        }
        assert_eq!(Rc::strong_count(&alive), 1, "captures leaked");
    }
}
