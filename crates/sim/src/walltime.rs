//! Host wall-clock measurement for the benchmark harness.
//!
//! Nothing inside a simulation may read the host clock — omx-lint's D1
//! rule bans `std::time::Instant` everywhere outside `crates/sim`, and
//! the determinism suite would catch any leak into simulated state.
//! The benchmark *runner*, however, exists precisely to measure how
//! fast the simulator itself executes on the host, so the one
//! sanctioned wall-clock read lives here, in the crate the lint rule
//! exempts, behind an API that cannot feed back into event timing: a
//! [`Stopwatch`] hands out elapsed host time as plain numbers, never as
//! [`crate::time::Ps`] simulation time.

use std::time::Instant;

/// A started wall-clock timer. Host-time only; results must never be
/// converted into simulated [`crate::time::Ps`] values.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Start timing now.
    pub fn start() -> Self {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Elapsed host time in seconds.
    pub fn elapsed_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Elapsed host time in nanoseconds.
    pub fn elapsed_nanos(&self) -> u128 {
        self.start.elapsed().as_nanos()
    }
}

/// Host core count, for gating wall-clock *assertions* (a speedup
/// claim a 1-core host cannot physically express is skipped, never
/// faked). Host introspection lives here for the same reason the
/// [`Stopwatch`] does: the lint's thread rule bans `std::thread`
/// outside `crates/sim`, and this is the one sanctioned read. The
/// result must never influence simulated state — partitioning output
/// is byte-identical for every worker count, so it cannot.
pub fn host_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_is_monotone() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_nanos();
        let b = sw.elapsed_nanos();
        assert!(b >= a);
        assert!(sw.elapsed_secs() >= 0.0);
    }
}
