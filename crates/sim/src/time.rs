//! Simulation time and data rates.
//!
//! Time is an integer number of **picoseconds** stored in a `u64`. That
//! gives sub-nanosecond resolution (needed because a byte at 2.4 GiB/s
//! takes ~0.39 ns) while still covering more than two months of
//! simulated time, far beyond any experiment here. Using integers keeps
//! every run exactly reproducible: there is no accumulation of floating
//! point rounding in the event queue.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in simulated time or a duration, in picoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Ps(pub u64);

#[allow(clippy::self_named_constructors)]
impl Ps {
    /// Zero time — the epoch of every simulation.
    pub const ZERO: Ps = Ps(0);
    /// The largest representable time; used as an "infinite" deadline.
    pub const MAX: Ps = Ps(u64::MAX);

    /// `n` picoseconds.
    #[inline]
    pub const fn ps(n: u64) -> Ps {
        Ps(n)
    }
    /// `n` nanoseconds.
    #[inline]
    pub const fn ns(n: u64) -> Ps {
        Ps(n * 1_000)
    }
    /// `n` microseconds.
    #[inline]
    pub const fn us(n: u64) -> Ps {
        Ps(n * 1_000_000)
    }
    /// `n` milliseconds.
    #[inline]
    pub const fn ms(n: u64) -> Ps {
        Ps(n * 1_000_000_000)
    }
    /// `n` seconds.
    #[inline]
    pub const fn secs(n: u64) -> Ps {
        Ps(n * 1_000_000_000_000)
    }

    /// Value in picoseconds.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }
    /// Value in (truncated) nanoseconds.
    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0 / 1_000
    }
    /// Value in fractional nanoseconds.
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }
    /// Value in fractional microseconds.
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }
    /// Value in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Saturating subtraction: `self - rhs`, clamped at zero.
    #[inline]
    pub fn saturating_sub(self, rhs: Ps) -> Ps {
        Ps(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition.
    #[inline]
    pub fn checked_add(self, rhs: Ps) -> Option<Ps> {
        self.0.checked_add(rhs.0).map(Ps)
    }

    /// The later of two times.
    #[inline]
    pub fn max(self, rhs: Ps) -> Ps {
        if self >= rhs {
            self
        } else {
            rhs
        }
    }

    /// The earlier of two times.
    #[inline]
    pub fn min(self, rhs: Ps) -> Ps {
        if self <= rhs {
            self
        } else {
            rhs
        }
    }

    /// Scale a duration by a dimensionless `f64` factor (used by cost
    /// models that interpolate between calibrated rates). Rounds to the
    /// nearest picosecond; panics on negative factors.
    pub fn scale(self, factor: f64) -> Ps {
        assert!(factor >= 0.0, "cannot scale a duration by {factor}");
        Ps((self.0 as f64 * factor).round() as u64)
    }
}

impl Add for Ps {
    type Output = Ps;
    #[inline]
    fn add(self, rhs: Ps) -> Ps {
        Ps(self.0 + rhs.0)
    }
}

impl AddAssign for Ps {
    #[inline]
    fn add_assign(&mut self, rhs: Ps) {
        self.0 += rhs.0;
    }
}

impl Sub for Ps {
    type Output = Ps;
    #[inline]
    fn sub(self, rhs: Ps) -> Ps {
        Ps(self.0 - rhs.0)
    }
}

impl SubAssign for Ps {
    #[inline]
    fn sub_assign(&mut self, rhs: Ps) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Ps {
    type Output = Ps;
    #[inline]
    fn mul(self, rhs: u64) -> Ps {
        Ps(self.0 * rhs)
    }
}

impl Div<u64> for Ps {
    type Output = Ps;
    #[inline]
    fn div(self, rhs: u64) -> Ps {
        Ps(self.0 / rhs)
    }
}

impl Sum for Ps {
    fn sum<I: Iterator<Item = Ps>>(iter: I) -> Ps {
        iter.fold(Ps::ZERO, Add::add)
    }
}

impl fmt::Display for Ps {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps >= 1_000_000_000_000 {
            write!(f, "{:.3}s", ps as f64 / 1e12)
        } else if ps >= 1_000_000_000 {
            write!(f, "{:.3}ms", ps as f64 / 1e9)
        } else if ps >= 1_000_000 {
            write!(f, "{:.3}us", ps as f64 / 1e6)
        } else if ps >= 1_000 {
            write!(f, "{:.3}ns", ps as f64 / 1e3)
        } else {
            write!(f, "{ps}ps")
        }
    }
}

/// A data rate in bytes per second.
///
/// All conversions between byte counts and durations go through 128-bit
/// integer arithmetic so that the result is exact to the picosecond and
/// identical on every platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Rate {
    bytes_per_sec: u64,
}

impl Rate {
    /// A rate of `n` bytes per second. Zero rates are rejected — they
    /// would make durations infinite.
    pub fn bytes_per_sec(n: u64) -> Rate {
        assert!(n > 0, "a Rate must be positive");
        Rate { bytes_per_sec: n }
    }

    /// A rate of `n` mebibytes (2^20 bytes) per second.
    pub fn mib_per_sec(n: u64) -> Rate {
        Rate::bytes_per_sec(n * (1 << 20))
    }

    /// A rate of `n` gibibytes (2^30 bytes) per second.
    pub fn gib_per_sec(n: u64) -> Rate {
        Rate::bytes_per_sec(n * (1 << 30))
    }

    /// A rate given in fractional GiB/s (convenience for calibration
    /// constants quoted like "1.6 GiB/s" in the paper).
    pub fn gib_per_sec_f64(n: f64) -> Rate {
        assert!(n > 0.0);
        Rate::bytes_per_sec((n * (1u64 << 30) as f64).round() as u64)
    }

    /// A rate given in megabits per second (used for the 9953 Mbit/s
    /// effective 10 GbE data rate the paper quotes).
    pub fn mbit_per_sec(n: u64) -> Rate {
        Rate::bytes_per_sec(n * 1_000_000 / 8)
    }

    /// Raw value in bytes per second.
    #[inline]
    pub fn as_bytes_per_sec(self) -> u64 {
        self.bytes_per_sec
    }

    /// Value in fractional MiB/s (for reporting).
    #[inline]
    pub fn as_mib_per_sec(self) -> f64 {
        self.bytes_per_sec as f64 / (1u64 << 20) as f64
    }

    /// Exact time to move `bytes` at this rate, rounded up to the next
    /// picosecond (rounding up keeps a server conservative: it can never
    /// finish "early" and violate causality elsewhere).
    #[inline]
    pub fn time_for(self, bytes: u64) -> Ps {
        let num = bytes as u128 * 1_000_000_000_000u128;
        let den = self.bytes_per_sec as u128;
        Ps(num.div_ceil(den) as u64)
    }

    /// The rate that moves `bytes` in `elapsed` (for reporting measured
    /// throughput). Returns `None` when `elapsed` is zero.
    pub fn from_transfer(bytes: u64, elapsed: Ps) -> Option<Rate> {
        if elapsed == Ps::ZERO {
            return None;
        }
        let bps = bytes as u128 * 1_000_000_000_000u128 / elapsed.0 as u128;
        if bps == 0 {
            // Slower than one byte per second: clamp to the minimum
            // representable positive rate.
            return Some(Rate::bytes_per_sec(1));
        }
        Some(Rate::bytes_per_sec(bps.min(u64::MAX as u128) as u64))
    }
}

impl fmt::Display for Rate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} MiB/s", self.as_mib_per_sec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_convert_units() {
        assert_eq!(Ps::ns(1), Ps(1_000));
        assert_eq!(Ps::us(3), Ps(3_000_000));
        assert_eq!(Ps::ms(2), Ps(2_000_000_000));
        assert_eq!(Ps::secs(1), Ps(1_000_000_000_000));
        assert_eq!(Ps::secs(1).as_ns(), 1_000_000_000);
    }

    #[test]
    fn arithmetic_behaves() {
        let a = Ps::ns(10);
        let b = Ps::ns(4);
        assert_eq!(a + b, Ps::ns(14));
        assert_eq!(a - b, Ps::ns(6));
        assert_eq!(b.saturating_sub(a), Ps::ZERO);
        assert_eq!(a * 3, Ps::ns(30));
        assert_eq!(a / 2, Ps::ns(5));
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(format!("{}", Ps::ps(12)), "12ps");
        assert_eq!(format!("{}", Ps::ns(350)), "350.000ns");
        assert_eq!(format!("{}", Ps::us(5)), "5.000us");
        assert_eq!(format!("{}", Ps::secs(2)), "2.000s");
    }

    #[test]
    fn rate_time_for_is_exact() {
        // 1 GiB/s moves 1 GiB in exactly one second.
        let r = Rate::gib_per_sec(1);
        assert_eq!(r.time_for(1 << 30), Ps::secs(1));
        // One byte takes ceil(1e12 / 2^30) ps.
        assert_eq!(r.time_for(1), Ps(932));
        // Zero bytes take zero time.
        assert_eq!(r.time_for(0), Ps::ZERO);
    }

    #[test]
    fn rate_round_trips_through_transfer() {
        let r = Rate::mib_per_sec(800);
        let t = r.time_for(64 << 20);
        let back = Rate::from_transfer(64 << 20, t).unwrap();
        // Round-up in time_for makes the recovered rate at most the
        // original and very close to it.
        assert!(back <= r);
        assert!(back.as_mib_per_sec() > 799.9);
    }

    #[test]
    fn rate_mbit_matches_paper_line_rate() {
        // The paper: 9953 Mbit/s = 1244 MB/s ≈ 1186 MiB/s.
        let r = Rate::mbit_per_sec(9953);
        assert_eq!(r.as_bytes_per_sec(), 1_244_125_000);
        let mib = r.as_mib_per_sec();
        assert!((mib - 1186.5).abs() < 1.0, "got {mib}");
    }

    #[test]
    fn scale_rounds_to_nearest() {
        assert_eq!(Ps::ns(100).scale(0.5), Ps::ns(50));
        assert_eq!(Ps::ps(3).scale(0.5), Ps::ps(2)); // 1.5 rounds to 2
        assert_eq!(Ps::ns(1).scale(0.0), Ps::ZERO);
    }

    #[test]
    #[should_panic]
    fn negative_scale_panics() {
        let _ = Ps::ns(1).scale(-1.0);
    }

    #[test]
    fn from_transfer_handles_edges() {
        assert!(Rate::from_transfer(10, Ps::ZERO).is_none());
        // Sub-byte-per-second transfers clamp to 1 B/s.
        let r = Rate::from_transfer(1, Ps::secs(1_000)).unwrap();
        assert_eq!(r.as_bytes_per_sec(), 1);
    }

    #[test]
    fn sum_of_durations() {
        let total: Ps = [Ps::ns(1), Ps::ns(2), Ps::ns(3)].into_iter().sum();
        assert_eq!(total, Ps::ns(6));
    }
}
