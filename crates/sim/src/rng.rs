//! A tiny deterministic pseudo-random generator.
//!
//! The simulation core must be reproducible across platforms and crate
//! versions, so it uses this self-contained SplitMix64 instead of an
//! external RNG. SplitMix64 passes BigCrush for the uses here (workload
//! jitter, loss injection, channel selection) and is a single multiply-
//! xor-shift chain, so it costs almost nothing per draw.

/// SplitMix64 generator (public-domain algorithm by Sebastiano Vigna).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeded generator. Equal seeds yield equal streams forever.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. `bound` must be nonzero. Uses
    /// Lemire's multiply-shift reduction; the slight modulo bias is
    /// irrelevant for simulation workloads.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Fisher-Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// An independent generator derived from this one's *current*
    /// state and a stream `tag`, without consuming any draws from
    /// `self`. Subsystems that need their own reproducible stream
    /// (e.g. retransmit-backoff jitter vs. loss injection) derive one
    /// each with distinct tags, so adding draws to one subsystem never
    /// shifts the sequence another sees.
    pub fn derive(&self, tag: u64) -> SplitMix64 {
        let mut mix = SplitMix64 {
            state: self.state ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        };
        // One scramble round decorrelates derived streams from the
        // parent even for small tags.
        let state = mix.next_u64();
        SplitMix64 { state }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn next_below_stays_in_range() {
        let mut r = SplitMix64::new(7);
        for bound in [1u64, 2, 10, 1000] {
            for _ in 0..200 {
                assert!(r.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = SplitMix64::new(9);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn chance_extremes() {
        let mut r = SplitMix64::new(3);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }

    #[test]
    fn derived_streams_are_independent_and_reproducible() {
        let parent = SplitMix64::new(42);
        let mut a = parent.derive(1);
        let mut b = parent.derive(1);
        let mut c = parent.derive(2);
        let mut p = parent.clone();
        let av: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let bv: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let cv: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        let pv: Vec<u64> = (0..64).map(|_| p.next_u64()).collect();
        assert_eq!(av, bv, "same tag, same stream");
        assert_ne!(av, cv, "different tags diverge");
        assert_ne!(av, pv, "derived stream differs from the parent");
        // Deriving consumes nothing from the parent.
        let mut p2 = parent.clone();
        assert_eq!(p2.next_u64(), pv[0]);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SplitMix64::new(11);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        // With 50 elements the identity permutation is vanishingly
        // unlikely; catching it guards against a no-op shuffle.
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }
}
