//! Debug-build lifecycle sanitizer for simulation resources.
//!
//! The end-of-run leak counters (`end_skbuffs_held`,
//! `end_pinned_regions`) can tell you *that* a resource drifted, but
//! not *which* allocation leaked or *where* it was misused. This
//! module upgrades those counters into precise diagnoses: every
//! skbuff, pinned region, I/OAT copy descriptor, pull handle and
//! promised bottom-half run carries a [`Token`] minted by
//! [`SimSanitizer::alloc`], and each
//! lifecycle transition is checked against the state machine
//!
//! ```text
//! allocated → submitted → completed → released
//! ```
//!
//! Illegal transitions panic immediately with the allocation site
//! (captured via `#[track_caller]`):
//!
//! * **use-after-release** — any operation on a released token,
//! * **double-complete** — completing a descriptor twice,
//! * **completed-before-submit** — completing work never submitted,
//! * **not-released-at-teardown** — [`SimSanitizer::assert_quiesced`]
//!   lists every token still allocated or submitted.
//!
//! Two completion flavors exist because two kinds of handle exist:
//!
//! * [`SimSanitizer::complete`] is *strict* (exactly once), for
//!   single-owner descriptors like I/OAT copies;
//! * [`SimSanitizer::park`] is *idempotent*, for shared handles like
//!   registration-cache regions that are legitimately re-submitted
//!   and re-parked many times before their final release. Parked
//!   (`Completed`) tokens are not flagged at teardown — a cached
//!   region staying pinned is deferred deregistration, not a leak.
//!
//! Everything is gated on `debug_assertions`: release builds carry a
//! zero-sized [`Token`] and every call compiles to nothing, so the
//! paper-claims numbers are unaffected. The registry is thread-local;
//! `cargo test` runs each test on its own thread, which gives each
//! test an isolated registry for free.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Which lifecycle family a token belongs to (diagnostics only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// An RX ring skbuff (NIC deposit → BH → protocol consume).
    Skbuff,
    /// A pinned (registered) memory region.
    Region,
    /// One submitted I/OAT copy descriptor batch.
    IoatDescriptor,
    /// One in-progress pull-engine handle.
    PullHandle,
    /// A promised bottom-half run: minted when a `BottomHalfQueue`
    /// asks its caller to schedule a run, completed when that run
    /// begins. A dropped re-schedule (lost wakeup) surfaces at
    /// teardown instead of hanging silently.
    BhRun,
}

impl fmt::Display for Kind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Kind::Skbuff => "skbuff",
            Kind::Region => "pinned region",
            Kind::IoatDescriptor => "I/OAT descriptor",
            Kind::PullHandle => "pull handle",
            Kind::BhRun => "scheduled BH run",
        })
    }
}

/// Opaque lifecycle handle carried inside a sanitized resource.
///
/// Tokens are deliberately inert for everything except the sanitizer:
/// they compare equal to each other, hash to nothing and serialize as
/// a constant, so embedding one in a `PartialEq`/`Hash`/`Serialize`
/// type changes none of that type's observable behavior (and never
/// leaks a registry index into serialized output). In release builds
/// the token is zero-sized.
#[derive(Clone, Copy)]
pub struct Token {
    #[cfg(debug_assertions)]
    id: u64,
}

impl fmt::Debug for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Token")
    }
}

impl PartialEq for Token {
    fn eq(&self, _other: &Token) -> bool {
        true
    }
}

impl Eq for Token {}

impl std::hash::Hash for Token {
    fn hash<H: std::hash::Hasher>(&self, _state: &mut H) {}
}

impl Serialize for Token {
    fn to_value(&self) -> Value {
        Value::U64(0)
    }
}

impl Deserialize for Token {}

#[cfg(debug_assertions)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Allocated,
    Submitted,
    Completed,
    Released,
}

#[cfg(debug_assertions)]
impl fmt::Display for State {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            State::Allocated => "allocated",
            State::Submitted => "submitted",
            State::Completed => "completed",
            State::Released => "released",
        })
    }
}

#[cfg(debug_assertions)]
struct Entry {
    kind: Kind,
    state: State,
    site: &'static std::panic::Location<'static>,
}

#[cfg(debug_assertions)]
thread_local! {
    static REGISTRY: std::cell::RefCell<Vec<Entry>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// The lifecycle registry (see module docs). All methods are
/// associated functions over a thread-local registry; in release
/// builds every one of them is a no-op.
pub struct SimSanitizer;

impl SimSanitizer {
    /// Mint a token in the `Allocated` state, recording the caller as
    /// the allocation site reported by every later diagnostic.
    #[track_caller]
    #[inline]
    pub fn alloc(kind: Kind) -> Token {
        #[cfg(debug_assertions)]
        {
            let site = std::panic::Location::caller();
            let id = REGISTRY.with(|r| {
                let mut r = r.borrow_mut();
                r.push(Entry {
                    kind,
                    state: State::Allocated,
                    site,
                });
                (r.len() - 1) as u64
            });
            Token { id }
        }
        #[cfg(not(debug_assertions))]
        {
            let _ = kind;
            Token {}
        }
    }

    /// `Allocated | Submitted | Completed → Submitted`. Re-submission
    /// is legal (shared handles like cached regions are handed out
    /// again); any use of a released token panics.
    #[track_caller]
    #[inline]
    pub fn submit(token: Token) {
        #[cfg(debug_assertions)]
        Self::transition(token, "submit", |kind, state, site| match state {
            State::Released => Err(use_after_release(kind, "submit", site)),
            _ => Ok(State::Submitted),
        });
        #[cfg(not(debug_assertions))]
        let _ = token;
    }

    /// Strict completion: `Submitted → Completed`, exactly once.
    /// Panics on **double-complete**, on completion of work never
    /// submitted, and on any use of a released token.
    #[track_caller]
    #[inline]
    pub fn complete(token: Token) {
        #[cfg(debug_assertions)]
        Self::transition(token, "complete", |kind, state, site| match state {
            State::Submitted => Ok(State::Completed),
            State::Completed => Err(format!(
                "SimSanitizer: double-complete of {kind} allocated at {site}"
            )),
            State::Allocated => Err(format!(
                "SimSanitizer: {kind} allocated at {site} completed before it was submitted"
            )),
            State::Released => Err(use_after_release(kind, "complete", site)),
        });
        #[cfg(not(debug_assertions))]
        let _ = token;
    }

    /// Idempotent completion for shared handles:
    /// `Allocated | Submitted | Completed → Completed`. A parked token
    /// is not flagged at teardown (deferred deregistration); only use
    /// of a released token panics.
    #[track_caller]
    #[inline]
    pub fn park(token: Token) {
        #[cfg(debug_assertions)]
        Self::transition(token, "park", |kind, state, site| match state {
            State::Released => Err(use_after_release(kind, "park", site)),
            _ => Ok(State::Completed),
        });
        #[cfg(not(debug_assertions))]
        let _ = token;
    }

    /// Final transition: `Allocated | Submitted | Completed →
    /// Released`. Releasing twice panics (**use-after-release**).
    #[track_caller]
    #[inline]
    pub fn release(token: Token) {
        #[cfg(debug_assertions)]
        Self::transition(token, "release", |kind, state, site| match state {
            State::Released => Err(format!(
                "SimSanitizer: double-release (use-after-release) of {kind} allocated at {site}"
            )),
            _ => Ok(State::Released),
        });
        #[cfg(not(debug_assertions))]
        let _ = token;
    }

    /// Teardown check: panic if any token is still `Allocated` or
    /// `Submitted`, listing each leak with its kind and allocation
    /// site. `Completed` tokens are legitimately parked (e.g. the
    /// registration cache) and pass.
    pub fn assert_quiesced() {
        #[cfg(debug_assertions)]
        REGISTRY.with(|r| {
            let r = r.borrow();
            let leaks: Vec<String> = r
                .iter()
                .filter(|e| matches!(e.state, State::Allocated | State::Submitted))
                .map(|e| {
                    format!(
                        "  {} {} at teardown, allocated at {}",
                        e.kind, e.state, e.site
                    )
                })
                .collect();
            if !leaks.is_empty() {
                panic!(
                    "SimSanitizer: {} lifecycle handle(s) not released at teardown:\n{}",
                    leaks.len(),
                    leaks.join("\n")
                );
            }
        });
    }

    /// Tokens currently `Allocated` or `Submitted` (0 in release
    /// builds).
    pub fn outstanding() -> usize {
        #[cfg(debug_assertions)]
        {
            REGISTRY.with(|r| {
                r.borrow()
                    .iter()
                    .filter(|e| matches!(e.state, State::Allocated | State::Submitted))
                    .count()
            })
        }
        #[cfg(not(debug_assertions))]
        {
            0
        }
    }

    /// Forget every token on this thread (test isolation helper; the
    /// registry otherwise keeps released tombstones to detect
    /// use-after-release).
    pub fn clear() {
        #[cfg(debug_assertions)]
        REGISTRY.with(|r| r.borrow_mut().clear());
    }

    /// Pre-grow the registry for `tokens` more entries. The registry
    /// is append-only (released tombstones stay behind to catch
    /// use-after-release), so in debug builds minting a token can
    /// reallocate its backing storage; allocation-accounting tests
    /// call this before their measured span so that growth never
    /// lands inside it. No-op in release builds.
    pub fn reserve(tokens: usize) {
        #[cfg(debug_assertions)]
        REGISTRY.with(|r| r.borrow_mut().reserve(tokens));
        #[cfg(not(debug_assertions))]
        let _ = tokens;
    }

    #[cfg(debug_assertions)]
    #[track_caller]
    fn transition(
        token: Token,
        op: &str,
        f: impl FnOnce(Kind, State, &'static std::panic::Location<'static>) -> Result<State, String>,
    ) {
        REGISTRY.with(|r| {
            let mut r = r.borrow_mut();
            let entry = r
                .get_mut(token.id as usize)
                .unwrap_or_else(|| panic!("SimSanitizer: {op} on a token from another thread"));
            match f(entry.kind, entry.state, entry.site) {
                Ok(next) => entry.state = next,
                Err(msg) => panic!("{msg}"),
            }
        });
    }
}

#[cfg(debug_assertions)]
fn use_after_release(kind: Kind, op: &str, site: &'static std::panic::Location<'static>) -> String {
    format!("SimSanitizer: use-after-release ({op}) of {kind} allocated at {site}")
}

#[cfg(all(test, debug_assertions))]
mod tests {
    use super::*;

    #[test]
    fn clean_lifecycle_quiesces() {
        SimSanitizer::clear();
        let t = SimSanitizer::alloc(Kind::IoatDescriptor);
        SimSanitizer::submit(t);
        SimSanitizer::complete(t);
        SimSanitizer::release(t);
        assert_eq!(SimSanitizer::outstanding(), 0);
        SimSanitizer::assert_quiesced();
    }

    #[test]
    fn parked_handles_pass_teardown() {
        SimSanitizer::clear();
        let t = SimSanitizer::alloc(Kind::Region);
        SimSanitizer::submit(t);
        SimSanitizer::park(t);
        // A cached region is re-registered and re-parked repeatedly.
        SimSanitizer::submit(t);
        SimSanitizer::park(t);
        SimSanitizer::park(t);
        SimSanitizer::assert_quiesced();
        SimSanitizer::release(t);
    }

    #[test]
    #[should_panic(expected = "double-complete")]
    fn double_complete_panics() {
        let t = SimSanitizer::alloc(Kind::IoatDescriptor);
        SimSanitizer::submit(t);
        SimSanitizer::complete(t);
        SimSanitizer::complete(t);
    }

    #[test]
    #[should_panic(expected = "use-after-release")]
    fn submit_after_release_panics() {
        let t = SimSanitizer::alloc(Kind::Skbuff);
        SimSanitizer::submit(t);
        SimSanitizer::release(t);
        SimSanitizer::submit(t);
    }

    #[test]
    #[should_panic(expected = "use-after-release")]
    fn double_release_panics() {
        let t = SimSanitizer::alloc(Kind::PullHandle);
        SimSanitizer::release(t);
        SimSanitizer::release(t);
    }

    #[test]
    #[should_panic(expected = "before it was submitted")]
    fn complete_before_submit_panics() {
        let t = SimSanitizer::alloc(Kind::IoatDescriptor);
        SimSanitizer::complete(t);
    }

    #[test]
    #[should_panic(expected = "not released at teardown")]
    fn leaked_submit_fails_teardown() {
        SimSanitizer::clear();
        let t = SimSanitizer::alloc(Kind::Skbuff);
        SimSanitizer::submit(t);
        SimSanitizer::assert_quiesced();
    }

    #[test]
    fn tokens_are_inert_for_equality_hash_and_serde() {
        let a = SimSanitizer::alloc(Kind::Skbuff);
        let b = SimSanitizer::alloc(Kind::Region);
        assert_eq!(a, b);
        assert_eq!(a.to_value(), Value::U64(0));
        assert_eq!(format!("{a:?}"), "Token");
    }
}
