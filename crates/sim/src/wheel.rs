//! Hierarchical timing wheel: the near-term half of the event queue.
//!
//! The wheel covers a sliding window of [`WHEEL_SLOTS`] slots of
//! `2^SLOT_SHIFT` picoseconds each (512 × ~131 ns ≈ 67 µs) starting
//! at the cursor — the slot of the most recently executed instant.
//! Storage is kernel-timer style: every slot is the head of an
//! intrusive singly-linked list whose nodes live in one shared slab
//! (`Vec` plus an index free list), so pushing is O(1) — write one
//! slab node, link it in — and the only growing allocation is the slab
//! itself, amortised exactly like a binary heap's backing vector.
//! Events beyond the window live in an overflow binary heap owned by
//! the engine and cascade into the wheel as the cursor advances.
//!
//! Finding the next instant is a bitmap scan from the cursor (64-bit
//! words, so at most 9 word reads across the whole window) followed by
//! an O(1) read of the cached per-slot minimum. The engine never
//! extracts individual instants from the wheel: when the cursor lands
//! on a slot, [`Wheel::take_cursor_slot`] unlinks the *entire* slot
//! list into the engine's current-slot run queue, which the engine
//! sorts by `(time, seq)` once. Because sequence numbers are unique,
//! that sort reconstructs the exact global schedule order — slot lists
//! are free to be unordered (they are LIFO), and determinism rests
//! only on the sort key (see `engine.rs`).

use crate::event::EventFn;
use crate::time::Ps;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// log2 of the slot width in picoseconds (~131 ns per slot). Wide
/// slots keep the ring small (the whole occupancy structure is a few
/// cache lines) and amortise per-slot work over more events; the
/// engine sorts a slot once when it adopts it, so slot width does not
/// affect execution order.
pub(crate) const SLOT_SHIFT: u32 = 17;
/// Number of slots in the sliding window (window span ≈ 67 µs).
pub(crate) const WHEEL_SLOTS: u64 = 512;
const MASK: u64 = WHEEL_SLOTS - 1;
const WORDS: usize = (WHEEL_SLOTS / 64) as usize;
const SLOTS: usize = WHEEL_SLOTS as usize;
/// Null link in the slab lists.
const NIL: u32 = u32::MAX;

/// Absolute slot index of a timestamp.
#[inline]
pub(crate) fn slot_of(at: Ps) -> u64 {
    at.0 >> SLOT_SHIFT
}

/// One scheduled event: timestamp, FIFO tiebreak, packed closure.
pub(crate) struct Entry<W> {
    pub(crate) at: Ps,
    pub(crate) seq: u64,
    pub(crate) f: EventFn<W>,
}

/// Overflow entry: the closure is boxed so heap nodes are small (24
/// bytes — sift-downs move less than the old all-heap engine's 32-byte
/// nodes). The box costs one allocation per *beyond-window* event,
/// which is exactly what the old engine paid for every event; the
/// steady-state no-allocation guarantee covers the in-window hot path.
pub(crate) struct FarEntry<W> {
    pub(crate) at: Ps,
    pub(crate) seq: u64,
    pub(crate) f: Box<EventFn<W>>,
}

impl<W> FarEntry<W> {
    /// Unbox into a wheel/current entry (on cascade).
    pub(crate) fn into_entry(self) -> Entry<W> {
        Entry {
            at: self.at,
            seq: self.seq,
            f: *self.f,
        }
    }
}

impl<W> PartialEq for FarEntry<W> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<W> Eq for FarEntry<W> {}
impl<W> PartialOrd for FarEntry<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for FarEntry<W> {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The overflow heap type: min-heap over `(at, seq)`.
pub(crate) type FarHeap<W> = BinaryHeap<std::cmp::Reverse<FarEntry<W>>>;

/// One slab node: an entry plus its intrusive link. The closure sits
/// in an `Option` (same size as `EventFn` thanks to the fn-pointer
/// niche): `Some` while the node is linked into a slot, `None` while
/// it is on the free list — so dropping the slab drops exactly the
/// closures that never ran.
struct Node<W> {
    at: Ps,
    seq: u64,
    next: u32,
    f: Option<EventFn<W>>,
}

/// The sliding-window wheel.
pub(crate) struct Wheel<W> {
    /// Head node index per physical slot (`NIL` if empty).
    heads: [u32; SLOTS],
    /// Exact minimum timestamp per occupied slot (`Ps::MAX` if empty),
    /// maintained on push and cleared on adoption — never rescanned.
    slot_min: [Ps; SLOTS],
    /// Occupancy bitmap over physical slots.
    words: [u64; WORDS],
    /// Shared node slab for all slot lists.
    nodes: Vec<Node<W>>,
    /// Head of the slab free list (`NIL` if empty).
    free: u32,
    /// Absolute slot index the window starts at.
    cursor: u64,
    /// Total entries in the wheel.
    len: usize,
}

impl<W> Wheel<W> {
    pub(crate) fn new() -> Self {
        Wheel {
            heads: [NIL; SLOTS],
            slot_min: [Ps::MAX; SLOTS],
            words: [0; WORDS],
            nodes: Vec::new(),
            free: NIL,
            cursor: 0,
            len: 0,
        }
    }

    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Move the cursor of an empty wheel without a cascade scan — the
    /// engine's fast path when the next instant comes straight off the
    /// overflow heap.
    #[inline]
    pub(crate) fn jump_to(&mut self, slot: u64) {
        debug_assert_eq!(self.len, 0, "jump_to on a non-empty wheel");
        debug_assert!(slot >= self.cursor, "cursor moved backwards");
        self.cursor = slot;
    }

    #[inline]
    pub(crate) fn cursor(&self) -> u64 {
        self.cursor
    }

    /// True if `at` falls inside the current window.
    #[inline]
    pub(crate) fn in_window(&self, at: Ps) -> bool {
        slot_of(at) < self.cursor + WHEEL_SLOTS
    }

    /// Insert an entry whose slot lies inside the window.
    #[inline]
    pub(crate) fn push(&mut self, e: Entry<W>) {
        let Entry { at, seq, f } = e;
        let s = slot_of(at);
        debug_assert!(
            s >= self.cursor && s < self.cursor + WHEEL_SLOTS,
            "slot {s} outside window [{}, {})",
            self.cursor,
            self.cursor + WHEEL_SLOTS
        );
        let phys = (s & MASK) as usize;
        let head = self.heads[phys];
        if head == NIL {
            self.words[phys / 64] |= 1u64 << (phys % 64);
            self.slot_min[phys] = at;
        } else if at < self.slot_min[phys] {
            self.slot_min[phys] = at;
        }
        // Link in at the head (LIFO — order is reconstructed by the
        // engine's adoption sort).
        let idx = if self.free != NIL {
            let idx = self.free;
            let n = &mut self.nodes[idx as usize];
            self.free = n.next;
            *n = Node {
                at,
                seq,
                next: head,
                f: Some(f),
            };
            idx
        } else {
            let idx = self.nodes.len() as u32;
            self.nodes.push(Node {
                at,
                seq,
                next: head,
                f: Some(f),
            });
            idx
        };
        self.heads[phys] = idx;
        self.len += 1;
    }

    /// Earliest timestamp anywhere in the wheel, if non-empty. A bitmap
    /// scan in window order (cursor first, wrapping), then the cached
    /// slot minimum. Does not mutate — calling this must stay safe even
    /// when the engine then declines to run the instant (deadline).
    #[inline]
    pub(crate) fn min_at(&self) -> Option<Ps> {
        if self.len == 0 {
            return None;
        }
        let c = (self.cursor & MASK) as usize;
        let (cw, cb) = (c / 64, c % 64);
        let first = self.words[cw] & (!0u64 << cb);
        if first != 0 {
            return Some(self.slot_min[cw * 64 + first.trailing_zeros() as usize]);
        }
        for i in 1..=WORDS {
            let wi = (cw + i) % WORDS;
            let mut w = self.words[wi];
            if i == WORDS {
                // Wrapped back to the cursor's own word: only the low
                // bits (physically before the cursor) are unseen.
                w &= !(!0u64 << cb);
            }
            if w != 0 {
                return Some(self.slot_min[wi * 64 + w.trailing_zeros() as usize]);
            }
        }
        unreachable!("wheel len={} but no occupied slot", self.len)
    }

    /// Slide the window start forward to `slot` and cascade every
    /// overflow entry that now falls inside the window. The heap pops
    /// in `(at, seq)` order, so cascaded entries append to the slot
    /// FIFOs in exactly the order a fresh schedule would have.
    pub(crate) fn advance_to(&mut self, slot: u64, far: &mut FarHeap<W>) {
        debug_assert!(slot >= self.cursor, "cursor moved backwards");
        self.cursor = slot;
        let horizon = slot + WHEEL_SLOTS;
        while let Some(std::cmp::Reverse(head)) = far.peek() {
            if slot_of(head.at) >= horizon {
                break;
            }
            let std::cmp::Reverse(e) = far.pop().expect("peeked entry vanished");
            self.push(e.into_entry());
        }
    }

    /// Unlink the entire (non-empty) cursor slot into `out` as node
    /// indices, clearing the slot's occupancy. The indices arrive in
    /// list (reverse-push) order; the engine sorts them by `(time,
    /// seq)` once, which reconstructs the exact schedule order. The
    /// nodes stay allocated until [`Wheel::consume`] frees them.
    #[inline]
    pub(crate) fn take_cursor_slot(&mut self, out: &mut VecDeque<u32>) {
        debug_assert!(out.is_empty());
        let phys = (self.cursor & MASK) as usize;
        let mut idx = self.heads[phys];
        debug_assert_ne!(idx, NIL, "taking an empty cursor slot");
        self.heads[phys] = NIL;
        self.slot_min[phys] = Ps::MAX;
        self.words[phys / 64] &= !(1u64 << (phys % 64));
        while idx != NIL {
            out.push_back(idx);
            self.len -= 1;
            idx = self.nodes[idx as usize].next;
        }
    }

    /// `(time, seq)` key of a live node (sort key, deadline checks).
    #[inline]
    pub(crate) fn node_key(&self, idx: u32) -> (Ps, u64) {
        let n = &self.nodes[idx as usize];
        (n.at, n.seq)
    }

    /// Timestamp of a live node.
    #[inline]
    pub(crate) fn node_at(&self, idx: u32) -> Ps {
        self.nodes[idx as usize].at
    }

    /// Allocate an unlinked slab node for an entry the engine adopts
    /// straight into its current run queue (cursor-slot schedules and
    /// the overflow fast path). Not counted in `len` — the entry is
    /// the engine's, only its storage lives here.
    #[inline]
    pub(crate) fn adopt(&mut self, e: Entry<W>) -> u32 {
        let Entry { at, seq, f } = e;
        if self.free != NIL {
            let idx = self.free;
            let n = &mut self.nodes[idx as usize];
            self.free = n.next;
            *n = Node {
                at,
                seq,
                next: NIL,
                f: Some(f),
            };
            idx
        } else {
            let idx = self.nodes.len() as u32;
            self.nodes.push(Node {
                at,
                seq,
                next: NIL,
                f: Some(f),
            });
            idx
        }
    }

    /// Consume a node handed out by [`Wheel::take_cursor_slot`] or
    /// [`Wheel::adopt`]: move its closure out and free-list the node.
    #[inline]
    pub(crate) fn consume(&mut self, idx: u32) -> (Ps, u64, EventFn<W>) {
        let n = &mut self.nodes[idx as usize];
        let f = n.f.take().expect("consuming a free node");
        let key = (n.at, n.seq);
        n.next = self.free;
        self.free = idx;
        (key.0, key.1, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventPool;

    fn entry(pool: &mut EventPool, at: Ps, seq: u64) -> Entry<()> {
        Entry {
            at,
            seq,
            f: EventFn::new(|_: &mut (), _: &mut crate::Sim<()>| {}, pool),
        }
    }

    fn far_entry(pool: &mut EventPool, at: Ps, seq: u64) -> FarEntry<()> {
        let Entry { at, seq, f } = entry(pool, at, seq);
        FarEntry {
            at,
            seq,
            f: Box::new(f),
        }
    }

    #[test]
    fn min_at_scans_across_wrap() {
        let mut pool = EventPool::new();
        let mut w: Wheel<()> = Wheel::new();
        let mut far: FarHeap<()> = BinaryHeap::new();
        // Advance the cursor so the window wraps the physical array.
        w.advance_to(WHEEL_SLOTS - 2, &mut far);
        // A slot physically *before* the cursor (wrapped part of the
        // window) must still be found, and in window order.
        let near = Ps((WHEEL_SLOTS - 1) << SLOT_SHIFT); // phys 4095
        let wrapped = Ps((WHEEL_SLOTS + 5) << SLOT_SHIFT); // phys 5
        w.push(entry(&mut pool, wrapped, 1));
        assert_eq!(w.min_at(), Some(wrapped));
        w.push(entry(&mut pool, near, 2));
        assert_eq!(w.min_at(), Some(near));
    }

    #[test]
    fn take_cursor_slot_hands_over_all_entries_and_clears() {
        let mut pool = EventPool::new();
        let mut w: Wheel<()> = Wheel::new();
        // Two timestamps in slot 0, interleaved, plus one in a later
        // slot that must survive the take.
        let (a, b) = (Ps(10), Ps(20));
        let later = Ps(5 << SLOT_SHIFT);
        w.push(entry(&mut pool, b, 0));
        w.push(entry(&mut pool, a, 1));
        w.push(entry(&mut pool, later, 2));
        w.push(entry(&mut pool, a, 3));
        assert_eq!(w.min_at(), Some(a));
        let mut out = VecDeque::new();
        w.take_cursor_slot(&mut out);
        // Arbitrary (list) order — the engine sorts once on adoption.
        let mut seqs: Vec<_> = out.iter().map(|&i| w.node_key(i).1).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, vec![0, 1, 3]);
        assert_eq!(w.len(), 1);
        assert_eq!(w.min_at(), Some(later));
        out.clear();
        w.advance_to(5, &mut BinaryHeap::new());
        w.take_cursor_slot(&mut out);
        let idx = out.pop_front().expect("entry");
        assert_eq!(w.consume(idx).1, 2);
        assert_eq!(w.len(), 0);
        assert_eq!(w.min_at(), None);
    }

    #[test]
    fn cascade_preserves_time_seq_order() {
        let mut pool = EventPool::new();
        let mut w: Wheel<()> = Wheel::new();
        let mut far: FarHeap<()> = BinaryHeap::new();
        let beyond = Ps((WHEEL_SLOTS + 100) << SLOT_SHIFT);
        // Two far entries at the same timestamp, pushed out of seq
        // order, plus one earlier.
        far.push(std::cmp::Reverse(far_entry(&mut pool, beyond, 8)));
        far.push(std::cmp::Reverse(far_entry(&mut pool, beyond, 3)));
        let earlier = Ps(beyond.0 - 7); // lands in the previous slot
        far.push(std::cmp::Reverse(far_entry(&mut pool, earlier, 5)));
        // The engine advances to the slot of the earliest instant; the
        // cascade lands each entry in the slot its timestamp selects.
        w.advance_to(slot_of(earlier), &mut far);
        assert!(far.is_empty(), "everything is inside the new window");
        assert_eq!(w.len(), 3);
        let mut out = VecDeque::new();
        w.take_cursor_slot(&mut out);
        let idx = out.pop_front().expect("entry");
        assert_eq!(w.consume(idx).1, 5);
        assert!(out.is_empty());
        w.advance_to(slot_of(beyond), &mut far);
        w.take_cursor_slot(&mut out);
        let mut seqs: Vec<_> = out.iter().map(|&i| w.node_key(i).1).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, vec![3, 8]);
    }
}
