//! Hierarchical timing wheel: the near-term half of the event queue.
//!
//! The wheel covers a sliding window of [`WHEEL_SLOTS`] slots of
//! `2^SLOT_SHIFT` picoseconds each (512 × ~131 ns ≈ 67 µs) starting
//! at the cursor — the slot of the most recently executed instant.
//! Storage is kernel-timer style: every slot is the head of an
//! intrusive singly-linked list whose nodes live in one shared slab
//! (`Vec` plus an index free list), so pushing is O(1) — write one
//! slab node, link it in — and the only growing allocation is the slab
//! itself, amortised exactly like a binary heap's backing vector.
//! Events beyond the window live in an overflow binary heap owned by
//! the engine and cascade into the wheel as the cursor advances.
//!
//! With [`Wheel::with_levels`]`(2)` a second, coarser ring is layered
//! on top, kernel-`timer_list` style: each level-1 slot spans the
//! entire level-0 window (512 × ~67 µs ≈ 34 ms of coverage), and its
//! entries live in the *same* node slab as level 0. An event beyond
//! the level-0 window but inside level-1 coverage is an O(1) push into
//! a level-1 list; only events further than ~34 ms out fall back to
//! the boxed overflow heap. When the cursor crosses into a new level-1
//! slot, that slot's nodes are relinked — no copy, no allocation —
//! into the level-0 slots their timestamps select. Because the engine
//! sorts a slot once on adoption by the unique `(time, seq)` key,
//! cascading changes no observable execution order: level count is a
//! pure throughput knob (`wheel_levels` in `OmxConfig`).
//!
//! Finding the next instant is a bitmap scan from the cursor (64-bit
//! words, so at most 9 word reads across the whole window) followed by
//! an O(1) read of the cached per-slot minimum. The engine never
//! extracts individual instants from the wheel: when the cursor lands
//! on a slot, [`Wheel::take_cursor_slot`] unlinks the *entire* slot
//! list into the engine's current-slot run queue, which the engine
//! sorts by `(time, seq)` once. Because sequence numbers are unique,
//! that sort reconstructs the exact global schedule order — slot lists
//! are free to be unordered (they are LIFO), and determinism rests
//! only on the sort key (see `engine.rs`).

use crate::event::EventFn;
use crate::time::Ps;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// log2 of the slot width in picoseconds (~131 ns per slot). Wide
/// slots keep the ring small (the whole occupancy structure is a few
/// cache lines) and amortise per-slot work over more events; the
/// engine sorts a slot once when it adopts it, so slot width does not
/// affect execution order.
pub(crate) const SLOT_SHIFT: u32 = 17;
/// Number of slots in the sliding window (window span ≈ 67 µs).
pub(crate) const WHEEL_SLOTS: u64 = 512;
/// log2 of [`WHEEL_SLOTS`]: level-0 slots per level-1 slot, so one
/// level-1 slot covers exactly one level-0 window (~67 µs) and the
/// level-1 ring covers ≈ 34 ms.
const L1_BITS: u32 = WHEEL_SLOTS.trailing_zeros();
const MASK: u64 = WHEEL_SLOTS - 1;
const WORDS: usize = (WHEEL_SLOTS / 64) as usize;
const SLOTS: usize = WHEEL_SLOTS as usize;
/// Null link in the slab lists.
const NIL: u32 = u32::MAX;

/// Absolute slot index of a timestamp.
#[inline]
pub(crate) fn slot_of(at: Ps) -> u64 {
    at.0 >> SLOT_SHIFT
}

/// Absolute level-1 slot index of a timestamp.
#[inline]
fn slot1_of(at: Ps) -> u64 {
    at.0 >> (SLOT_SHIFT + L1_BITS)
}

/// One scheduled event: timestamp, FIFO tiebreak, packed closure.
pub(crate) struct Entry<W> {
    pub(crate) at: Ps,
    pub(crate) seq: u64,
    pub(crate) f: EventFn<W>,
}

/// Overflow entry: the closure is boxed so heap nodes are small (24
/// bytes — sift-downs move less than the old all-heap engine's 32-byte
/// nodes). The box costs one allocation per *beyond-window* event,
/// which is exactly what the old engine paid for every event; the
/// steady-state no-allocation guarantee covers the in-window hot path.
pub(crate) struct FarEntry<W> {
    pub(crate) at: Ps,
    pub(crate) seq: u64,
    pub(crate) f: Box<EventFn<W>>,
}

impl<W> FarEntry<W> {
    /// Unbox into a wheel/current entry (on cascade).
    pub(crate) fn into_entry(self) -> Entry<W> {
        Entry {
            at: self.at,
            seq: self.seq,
            f: *self.f,
        }
    }
}

impl<W> PartialEq for FarEntry<W> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<W> Eq for FarEntry<W> {}
impl<W> PartialOrd for FarEntry<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for FarEntry<W> {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The overflow heap type: min-heap over `(at, seq)`.
pub(crate) type FarHeap<W> = BinaryHeap<std::cmp::Reverse<FarEntry<W>>>;

/// One slab node: an entry plus its intrusive link. The closure sits
/// in an `Option` (same size as `EventFn` thanks to the fn-pointer
/// niche): `Some` while the node is linked into a slot, `None` while
/// it is on the free list — so dropping the slab drops exactly the
/// closures that never ran.
struct Node<W> {
    at: Ps,
    seq: u64,
    next: u32,
    f: Option<EventFn<W>>,
}

/// The sliding-window wheel.
pub(crate) struct Wheel<W> {
    /// Head node index per physical slot (`NIL` if empty).
    heads: [u32; SLOTS],
    /// Exact minimum timestamp per occupied slot (`Ps::MAX` if empty),
    /// maintained on push and cleared on adoption — never rescanned.
    slot_min: [Ps; SLOTS],
    /// Occupancy bitmap over physical slots.
    words: [u64; WORDS],
    /// Level-1 ring: head node index per physical level-1 slot. Only
    /// populated when `levels == 2`; shares the node slab with level 0.
    heads1: [u32; SLOTS],
    /// Exact minimum timestamp per occupied level-1 slot.
    slot_min1: [Ps; SLOTS],
    /// Occupancy bitmap over physical level-1 slots.
    words1: [u64; WORDS],
    /// Shared node slab for all slot lists (both levels).
    nodes: Vec<Node<W>>,
    /// Head of the slab free list (`NIL` if empty).
    free: u32,
    /// Absolute slot index the window starts at.
    cursor: u64,
    /// Total entries in the wheel (both levels).
    len: usize,
    /// Entries currently resident in level-1 slots.
    len1: usize,
    /// Active wheel levels: 1 (level-0 ring only, overflow straight to
    /// the far heap) or 2 (level-1 ring absorbs ≲ 34 ms overflow).
    levels: u32,
}

impl<W> Wheel<W> {
    pub(crate) fn with_levels(levels: u32) -> Self {
        assert!(
            (1..=2).contains(&levels),
            "wheel_levels must be 1 or 2, got {levels}"
        );
        Wheel {
            heads: [NIL; SLOTS],
            slot_min: [Ps::MAX; SLOTS],
            words: [0; WORDS],
            heads1: [NIL; SLOTS],
            slot_min1: [Ps::MAX; SLOTS],
            words1: [0; WORDS],
            nodes: Vec::new(),
            free: NIL,
            cursor: 0,
            len: 0,
            len1: 0,
            levels,
        }
    }

    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    #[cfg(test)]
    pub(crate) fn len1(&self) -> usize {
        self.len1
    }

    /// First absolute level-1 slot that may hold entries: the one
    /// after the slot the cursor is in. Level-1 slots at or before the
    /// cursor's own have already been cascaded into level 0 (entries
    /// land in level 1 only when beyond the level-0 window, which
    /// always lies past the cursor's level-1 slot).
    #[inline]
    fn k1(&self) -> u64 {
        (self.cursor >> L1_BITS) + 1
    }

    #[inline]
    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Move the cursor of an empty wheel without a cascade scan — the
    /// engine's fast path when the next instant comes straight off the
    /// overflow heap.
    #[inline]
    pub(crate) fn jump_to(&mut self, slot: u64) {
        debug_assert_eq!(self.len, 0, "jump_to on a non-empty wheel");
        debug_assert!(slot >= self.cursor, "cursor moved backwards");
        self.cursor = slot;
    }

    #[inline]
    pub(crate) fn cursor(&self) -> u64 {
        self.cursor
    }

    /// True if `at` falls inside the wheel's coverage: the level-0
    /// window for a 1-level wheel, the level-1 window (~34 ms) when
    /// the second level is active.
    #[inline]
    pub(crate) fn in_window(&self, at: Ps) -> bool {
        if self.levels == 1 {
            slot_of(at) < self.cursor + WHEEL_SLOTS
        } else {
            slot1_of(at) < self.k1() + WHEEL_SLOTS
        }
    }

    /// Insert an entry whose slot lies inside the wheel's coverage,
    /// routing to the level its timestamp selects.
    #[inline]
    pub(crate) fn push(&mut self, e: Entry<W>) {
        let Entry { at, seq, f } = e;
        let s = slot_of(at);
        if s < self.cursor + WHEEL_SLOTS {
            debug_assert!(
                s >= self.cursor,
                "slot {s} before window start {}",
                self.cursor
            );
            let phys = (s & MASK) as usize;
            let head = self.heads[phys];
            if head == NIL {
                self.words[phys / 64] |= 1u64 << (phys % 64);
                self.slot_min[phys] = at;
            } else if at < self.slot_min[phys] {
                self.slot_min[phys] = at;
            }
            // Link in at the head (LIFO — order is reconstructed by
            // the engine's adoption sort).
            let idx = self.alloc_node(at, seq, head, f);
            self.heads[phys] = idx;
        } else {
            let l1 = s >> L1_BITS;
            debug_assert!(
                self.levels == 2 && l1 >= self.k1() && l1 < self.k1() + WHEEL_SLOTS,
                "level-1 slot {l1} outside window [{}, {}) (levels={})",
                self.k1(),
                self.k1() + WHEEL_SLOTS,
                self.levels
            );
            let phys = (l1 & MASK) as usize;
            let head = self.heads1[phys];
            if head == NIL {
                self.words1[phys / 64] |= 1u64 << (phys % 64);
                self.slot_min1[phys] = at;
            } else if at < self.slot_min1[phys] {
                self.slot_min1[phys] = at;
            }
            let idx = self.alloc_node(at, seq, head, f);
            self.heads1[phys] = idx;
            self.len1 += 1;
        }
        self.len += 1;
    }

    /// Grab a slab node (free list first) holding `(at, seq, f)` with
    /// its link set to `next`.
    #[inline]
    fn alloc_node(&mut self, at: Ps, seq: u64, next: u32, f: EventFn<W>) -> u32 {
        if self.free != NIL {
            let idx = self.free;
            let n = &mut self.nodes[idx as usize];
            self.free = n.next;
            *n = Node {
                at,
                seq,
                next,
                f: Some(f),
            };
            idx
        } else {
            let idx = self.nodes.len() as u32;
            self.nodes.push(Node {
                at,
                seq,
                next,
                f: Some(f),
            });
            idx
        }
    }

    /// Earliest timestamp anywhere in the wheel, if non-empty. A bitmap
    /// scan in window order (cursor first, wrapping), then the cached
    /// slot minimum; with two levels, the exact minimum of both rings
    /// (an unaligned cursor lets a level-1 resident undercut the tail
    /// of the level-0 window, so neither ring alone is authoritative).
    /// Does not mutate — calling this must stay safe even when the
    /// engine then declines to run the instant (deadline).
    #[inline]
    pub(crate) fn min_at(&self) -> Option<Ps> {
        if self.len == 0 {
            return None;
        }
        let m0 = if self.len > self.len1 {
            scan_min(&self.words, &self.slot_min, (self.cursor & MASK) as usize)
        } else {
            Ps::MAX
        };
        let m1 = if self.len1 > 0 {
            scan_min(&self.words1, &self.slot_min1, (self.k1() & MASK) as usize)
        } else {
            Ps::MAX
        };
        let m = m0.min(m1);
        debug_assert_ne!(m, Ps::MAX, "wheel len={} but no occupied slot", self.len);
        Some(m)
    }

    /// Slide the window start forward to `slot`, cascade level-1 slots
    /// the cursor has reached down into level 0 (node relinks in the
    /// shared slab — no copy, no allocation), then cascade every
    /// overflow entry that now falls inside the wheel's coverage.
    /// Cascade order is free: slot lists are unordered and the engine
    /// sorts a slot by its unique `(at, seq)` keys on adoption, so the
    /// observable schedule is identical to a fresh insert of every
    /// entry.
    pub(crate) fn advance_to(&mut self, slot: u64, far: &mut FarHeap<W>) {
        debug_assert!(slot >= self.cursor, "cursor moved backwards");
        let old_k1 = self.k1();
        self.cursor = slot;
        if self.len1 > 0 {
            let new_k = slot >> L1_BITS;
            if new_k >= old_k1 {
                self.cascade_level1(old_k1, new_k);
            }
        }
        while let Some(std::cmp::Reverse(head)) = far.peek() {
            if !self.in_window(head.at) {
                break;
            }
            let std::cmp::Reverse(e) = far.pop().expect("peeked entry vanished");
            self.push(e.into_entry());
        }
    }

    /// Drain every occupied level-1 slot in `[from, upto]` into the
    /// level-0 ring; a drained node is relinked in place. In engine
    /// use only the cursor's own level-1 slot can actually be occupied
    /// (an earlier occupied slot would contain the queue minimum and
    /// the cursor never overtakes the minimum), but the range form
    /// keeps the structure safe for arbitrary advances.
    fn cascade_level1(&mut self, from: u64, upto: u64) {
        if upto - from < WHEEL_SLOTS {
            // The engine advances one queue minimum at a time, so the
            // crossed range is a slot or two: probe exactly those
            // occupancy bits. (A bitmap sweep here would visit every
            // resident slot on every advance — O(live slots) per
            // executed event once hundreds of far timers are pending.)
            for s in from..=upto {
                let phys = (s & MASK) as usize;
                if self.words1[phys / 64] & (1u64 << (phys % 64)) != 0 {
                    self.drain_level1_slot(phys);
                    if self.len1 == 0 {
                        return;
                    }
                }
            }
            return;
        }
        // The jump spans the whole ring, so every occupied slot is in
        // range: sweep the bitmap, bounded by live slots.
        for wi in 0..WORDS {
            let mut w = self.words1[wi];
            while w != 0 {
                let b = w.trailing_zeros() as usize;
                w &= w - 1;
                self.drain_level1_slot(wi * 64 + b);
                if self.len1 == 0 {
                    return;
                }
            }
        }
    }

    /// Relink every node of one level-1 slot into the level-0 slot its
    /// timestamp selects. Callable only once the cursor has advanced
    /// far enough that the whole slot fits the level-0 window.
    fn drain_level1_slot(&mut self, phys: usize) {
        let mut idx = self.heads1[phys];
        debug_assert_ne!(idx, NIL, "draining an empty level-1 slot");
        self.heads1[phys] = NIL;
        self.slot_min1[phys] = Ps::MAX;
        self.words1[phys / 64] &= !(1u64 << (phys % 64));
        while idx != NIL {
            let next = self.nodes[idx as usize].next;
            let at = self.nodes[idx as usize].at;
            let s = slot_of(at);
            debug_assert!(
                s >= self.cursor && s < self.cursor + WHEEL_SLOTS,
                "cascaded level-1 entry (slot {s}) outside the level-0 window [{}, {})",
                self.cursor,
                self.cursor + WHEEL_SLOTS
            );
            let p0 = (s & MASK) as usize;
            let head = self.heads[p0];
            if head == NIL {
                self.words[p0 / 64] |= 1u64 << (p0 % 64);
                self.slot_min[p0] = at;
            } else if at < self.slot_min[p0] {
                self.slot_min[p0] = at;
            }
            self.nodes[idx as usize].next = head;
            self.heads[p0] = idx;
            self.len1 -= 1;
            idx = next;
        }
    }

    /// Unlink the entire (non-empty) cursor slot into `out` as node
    /// indices, clearing the slot's occupancy. The indices arrive in
    /// list (reverse-push) order; the engine sorts them by `(time,
    /// seq)` once, which reconstructs the exact schedule order. The
    /// nodes stay allocated until [`Wheel::consume`] frees them.
    #[inline]
    pub(crate) fn take_cursor_slot(&mut self, out: &mut VecDeque<u32>) {
        debug_assert!(out.is_empty());
        let phys = (self.cursor & MASK) as usize;
        let mut idx = self.heads[phys];
        debug_assert_ne!(idx, NIL, "taking an empty cursor slot");
        self.heads[phys] = NIL;
        self.slot_min[phys] = Ps::MAX;
        self.words[phys / 64] &= !(1u64 << (phys % 64));
        while idx != NIL {
            out.push_back(idx);
            self.len -= 1;
            idx = self.nodes[idx as usize].next;
        }
    }

    /// `(time, seq)` key of a live node (sort key, deadline checks).
    #[inline]
    pub(crate) fn node_key(&self, idx: u32) -> (Ps, u64) {
        let n = &self.nodes[idx as usize];
        (n.at, n.seq)
    }

    /// Timestamp of a live node.
    #[inline]
    pub(crate) fn node_at(&self, idx: u32) -> Ps {
        self.nodes[idx as usize].at
    }

    /// Allocate an unlinked slab node for an entry the engine adopts
    /// straight into its current run queue (cursor-slot schedules and
    /// the overflow fast path). Not counted in `len` — the entry is
    /// the engine's, only its storage lives here.
    #[inline]
    pub(crate) fn adopt(&mut self, e: Entry<W>) -> u32 {
        let Entry { at, seq, f } = e;
        self.alloc_node(at, seq, NIL, f)
    }

    /// Consume a node handed out by [`Wheel::take_cursor_slot`] or
    /// [`Wheel::adopt`]: move its closure out and free-list the node.
    #[inline]
    pub(crate) fn consume(&mut self, idx: u32) -> (Ps, u64, EventFn<W>) {
        let n = &mut self.nodes[idx as usize];
        let f = n.f.take().expect("consuming a free node");
        let key = (n.at, n.seq);
        n.next = self.free;
        self.free = idx;
        (key.0, key.1, f)
    }
}

/// Earliest cached slot minimum of one ring, scanning the occupancy
/// bitmap in window order from physical slot `start` (wrapping).
/// Returns `Ps::MAX` when the ring is empty.
#[inline]
fn scan_min(words: &[u64; WORDS], slot_min: &[Ps; SLOTS], start: usize) -> Ps {
    let (cw, cb) = (start / 64, start % 64);
    let first = words[cw] & (!0u64 << cb);
    if first != 0 {
        return slot_min[cw * 64 + first.trailing_zeros() as usize];
    }
    for i in 1..=WORDS {
        let wi = (cw + i) % WORDS;
        let mut w = words[wi];
        if i == WORDS {
            // Wrapped back to the start's own word: only the low bits
            // (physically before the start slot) are unseen.
            w &= !(!0u64 << cb);
        }
        if w != 0 {
            return slot_min[wi * 64 + w.trailing_zeros() as usize];
        }
    }
    Ps::MAX
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventPool;

    fn entry(pool: &mut EventPool, at: Ps, seq: u64) -> Entry<()> {
        Entry {
            at,
            seq,
            f: EventFn::new(|_: &mut (), _: &mut crate::Sim<()>| {}, pool),
        }
    }

    fn far_entry(pool: &mut EventPool, at: Ps, seq: u64) -> FarEntry<()> {
        let Entry { at, seq, f } = entry(pool, at, seq);
        FarEntry {
            at,
            seq,
            f: Box::new(f),
        }
    }

    #[test]
    fn min_at_scans_across_wrap() {
        let mut pool = EventPool::new();
        let mut w: Wheel<()> = Wheel::with_levels(1);
        let mut far: FarHeap<()> = BinaryHeap::new();
        // Advance the cursor so the window wraps the physical array.
        w.advance_to(WHEEL_SLOTS - 2, &mut far);
        // A slot physically *before* the cursor (wrapped part of the
        // window) must still be found, and in window order.
        let near = Ps((WHEEL_SLOTS - 1) << SLOT_SHIFT); // phys 4095
        let wrapped = Ps((WHEEL_SLOTS + 5) << SLOT_SHIFT); // phys 5
        w.push(entry(&mut pool, wrapped, 1));
        assert_eq!(w.min_at(), Some(wrapped));
        w.push(entry(&mut pool, near, 2));
        assert_eq!(w.min_at(), Some(near));
    }

    #[test]
    fn take_cursor_slot_hands_over_all_entries_and_clears() {
        let mut pool = EventPool::new();
        let mut w: Wheel<()> = Wheel::with_levels(1);
        // Two timestamps in slot 0, interleaved, plus one in a later
        // slot that must survive the take.
        let (a, b) = (Ps(10), Ps(20));
        let later = Ps(5 << SLOT_SHIFT);
        w.push(entry(&mut pool, b, 0));
        w.push(entry(&mut pool, a, 1));
        w.push(entry(&mut pool, later, 2));
        w.push(entry(&mut pool, a, 3));
        assert_eq!(w.min_at(), Some(a));
        let mut out = VecDeque::new();
        w.take_cursor_slot(&mut out);
        // Arbitrary (list) order — the engine sorts once on adoption.
        let mut seqs: Vec<_> = out.iter().map(|&i| w.node_key(i).1).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, vec![0, 1, 3]);
        assert_eq!(w.len(), 1);
        assert_eq!(w.min_at(), Some(later));
        out.clear();
        w.advance_to(5, &mut BinaryHeap::new());
        w.take_cursor_slot(&mut out);
        let idx = out.pop_front().expect("entry");
        assert_eq!(w.consume(idx).1, 2);
        assert_eq!(w.len(), 0);
        assert_eq!(w.min_at(), None);
    }

    #[test]
    fn cascade_preserves_time_seq_order() {
        let mut pool = EventPool::new();
        let mut w: Wheel<()> = Wheel::with_levels(1);
        let mut far: FarHeap<()> = BinaryHeap::new();
        let beyond = Ps((WHEEL_SLOTS + 100) << SLOT_SHIFT);
        // Two far entries at the same timestamp, pushed out of seq
        // order, plus one earlier.
        far.push(std::cmp::Reverse(far_entry(&mut pool, beyond, 8)));
        far.push(std::cmp::Reverse(far_entry(&mut pool, beyond, 3)));
        let earlier = Ps(beyond.0 - 7); // lands in the previous slot
        far.push(std::cmp::Reverse(far_entry(&mut pool, earlier, 5)));
        // The engine advances to the slot of the earliest instant; the
        // cascade lands each entry in the slot its timestamp selects.
        w.advance_to(slot_of(earlier), &mut far);
        assert!(far.is_empty(), "everything is inside the new window");
        assert_eq!(w.len(), 3);
        let mut out = VecDeque::new();
        w.take_cursor_slot(&mut out);
        let idx = out.pop_front().expect("entry");
        assert_eq!(w.consume(idx).1, 5);
        assert!(out.is_empty());
        w.advance_to(slot_of(beyond), &mut far);
        w.take_cursor_slot(&mut out);
        let mut seqs: Vec<_> = out.iter().map(|&i| w.node_key(i).1).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, vec![3, 8]);
    }

    #[test]
    fn two_level_wheel_absorbs_beyond_window_pushes() {
        let mut pool = EventPool::new();
        let mut w: Wheel<()> = Wheel::with_levels(2);
        let mut far: FarHeap<()> = BinaryHeap::new();
        // Just past the level-0 window: level-1 resident, no far heap.
        let past_l0 = Ps((WHEEL_SLOTS + 3) << SLOT_SHIFT);
        assert!(w.in_window(past_l0));
        w.push(entry(&mut pool, past_l0, 0));
        assert_eq!((w.len(), w.len1()), (1, 1));
        assert_eq!(w.min_at(), Some(past_l0));
        // Near the end of level-1 coverage: still in window.
        let deep_l1 = Ps(((WHEEL_SLOTS + 1) << (SLOT_SHIFT + L1_BITS)) - 1);
        assert!(w.in_window(deep_l1));
        w.push(entry(&mut pool, deep_l1, 1));
        assert_eq!((w.len(), w.len1()), (2, 2));
        // One past level-1 coverage: the engine's far heap takes it.
        let beyond = Ps((WHEEL_SLOTS + 1) << (SLOT_SHIFT + L1_BITS));
        assert!(!w.in_window(beyond));
        // Advancing to the first resident's slot cascades it into
        // level 0 (the cursor slot), leaving the deep one in level 1.
        w.advance_to(slot_of(past_l0), &mut far);
        assert_eq!((w.len(), w.len1()), (2, 1));
        let mut out = VecDeque::new();
        w.take_cursor_slot(&mut out);
        let idx = out.pop_front().expect("cascaded entry");
        assert_eq!(w.consume(idx).1, 0);
        assert_eq!(w.min_at(), Some(deep_l1));
    }

    #[test]
    fn level1_cascade_fans_one_slot_across_level0() {
        // A whole level-1 slot's worth of entries, spread over many
        // level-0 slots plus a same-slot cluster, cascades in one
        // advance and lands each entry in the slot its timestamp
        // selects.
        let mut pool = EventPool::new();
        let mut w: Wheel<()> = Wheel::with_levels(2);
        let mut far: FarHeap<()> = BinaryHeap::new();
        let base = (WHEEL_SLOTS + 7) << SLOT_SHIFT; // inside level-1 slot 1
        let times: Vec<Ps> = (0..8)
            .map(|i| Ps(base + (i % 4) * (3 << SLOT_SHIFT) + i))
            .collect();
        for (i, &t) in times.iter().enumerate() {
            w.push(entry(&mut pool, t, i as u64));
        }
        assert_eq!(w.len1(), 8);
        let earliest = *times.iter().min().expect("nonempty");
        assert_eq!(w.min_at(), Some(earliest));
        w.advance_to(slot_of(earliest), &mut far);
        assert_eq!(w.len1(), 0, "whole level-1 slot drained");
        // Drain every slot in order and check (at, seq) global order.
        let mut fired: Vec<(Ps, u64)> = Vec::new();
        let mut out = VecDeque::new();
        while let Some(t) = w.min_at() {
            w.advance_to(slot_of(t), &mut far);
            w.take_cursor_slot(&mut out);
            let mut keys: Vec<_> = out.drain(..).map(|i| w.consume(i)).collect();
            keys.sort_unstable_by_key(|&(at, seq, _)| (at, seq));
            fired.extend(keys.iter().map(|&(at, seq, _)| (at, seq)));
        }
        let mut want: Vec<(Ps, u64)> = times.iter().copied().zip(0u64..).collect();
        want.sort_unstable();
        assert_eq!(fired, want);
    }
}
