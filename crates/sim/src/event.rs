//! Compact event closures for the engine's hot path.
//!
//! The previous engine boxed every event (`Box<dyn FnOnce>`): one heap
//! allocation per scheduled event, one free per executed event. Almost
//! every closure in the simulation captures at most a couple of ids and
//! a timestamp, so [`EventFn`] stores closures of up to three words
//! (24 bytes, alignment ≤ 8) inline in the event record itself. Larger
//! captures — up to [`SLOT_BYTES`] — go to a fixed-size slot recycled
//! through a free list ([`EventPool`]), so steady-state scheduling of
//! medium closures allocates nothing either. Only closures bigger than
//! a pool slot fall back to a plain `Box`.
//!
//! The representation is a hand-rolled vtable of exactly two function
//! pointers: `call` consumes the payload and runs it, `drop_fn` destroys
//! a payload that never ran (cancelled event, simulator dropped with
//! pending events). The storage kind is baked into which monomorphized
//! thunk the pointers reference, so there is no discriminant byte and
//! `EventFn` is five words total.

use crate::engine::Sim;
use std::marker::PhantomData;
use std::mem::{align_of, size_of, ManuallyDrop, MaybeUninit};
use std::ptr;

/// Words of inline closure storage.
const INLINE_WORDS: usize = 3;
/// Inline capacity in bytes: closures at most this big (and at most
/// word-aligned) are stored inside the event record.
pub const INLINE_BYTES: usize = INLINE_WORDS * size_of::<usize>();
/// Pooled-slot capacity in bytes: closures at most this big are stored
/// in a recycled [`EventPool`] slot.
pub const SLOT_BYTES: usize = 128;
/// Free-list depth; slots beyond this are returned to the allocator.
const POOL_CAP: usize = 256;

/// One recyclable closure slot ([`SLOT_BYTES`] bytes, word-aligned).
pub(crate) struct PoolSlot {
    _data: [MaybeUninit<usize>; SLOT_BYTES / size_of::<usize>()],
}

impl PoolSlot {
    fn new_boxed() -> Box<PoolSlot> {
        Box::new(PoolSlot {
            _data: [MaybeUninit::uninit(); SLOT_BYTES / size_of::<usize>()],
        })
    }
}

/// Free list of [`PoolSlot`]s. Slots are handed out raw; a slot is
/// owned either by the pool (on the free list) or by exactly one
/// pooled [`EventFn`], never both.
pub(crate) struct EventPool {
    free: Vec<*mut PoolSlot>,
}

impl EventPool {
    pub(crate) fn new() -> Self {
        EventPool { free: Vec::new() }
    }

    fn get(&mut self) -> *mut PoolSlot {
        self.free
            .pop()
            .unwrap_or_else(|| Box::into_raw(PoolSlot::new_boxed()))
    }

    /// Return a slot whose payload has already been moved out.
    pub(crate) fn put(&mut self, slot: *mut PoolSlot) {
        if self.free.len() < POOL_CAP {
            self.free.push(slot);
        } else {
            // SAFETY: `slot` came from `Box::into_raw` in `get` and the
            // payload was consumed by the caller; nothing else owns it.
            drop(unsafe { Box::from_raw(slot) });
        }
    }
}

impl Drop for EventPool {
    fn drop(&mut self) {
        for slot in self.free.drain(..) {
            // SAFETY: free-listed slots are empty and exclusively ours.
            drop(unsafe { Box::from_raw(slot) });
        }
    }
}

/// A scheduled closure in its compact representation. Semantically a
/// `FnOnce(&mut W, &mut Sim<W>)`: consumed by [`EventFn::invoke`], or
/// destroyed by `Drop` if it never runs.
pub(crate) struct EventFn<W> {
    data: [MaybeUninit<usize>; INLINE_WORDS],
    call: unsafe fn(*mut MaybeUninit<usize>, &mut W, &mut Sim<W>),
    drop_fn: unsafe fn(*mut MaybeUninit<usize>),
    /// `EventFn` may hold raw pointers to heap payloads: not Send/Sync.
    _mark: PhantomData<*mut W>,
}

impl<W> EventFn<W> {
    /// Pack `f`, choosing inline, pooled or boxed storage by size.
    #[inline]
    pub(crate) fn new<F>(f: F, pool: &mut EventPool) -> Self
    where
        F: FnOnce(&mut W, &mut Sim<W>) + 'static,
    {
        let mut data = [MaybeUninit::uninit(); INLINE_WORDS];
        if size_of::<F>() <= INLINE_BYTES && align_of::<F>() <= align_of::<usize>() {
            // SAFETY: `f` fits the inline buffer in size and alignment;
            // the matching `call_inline::<W, F>` / `drop_inline::<F>`
            // thunks read it back with the same type exactly once.
            unsafe { ptr::write(data.as_mut_ptr().cast::<F>(), f) };
            EventFn {
                data,
                call: call_inline::<W, F>,
                drop_fn: drop_inline::<F>,
                _mark: PhantomData,
            }
        } else if size_of::<F>() <= SLOT_BYTES && align_of::<F>() <= align_of::<usize>() {
            let slot = pool.get();
            // SAFETY: `f` fits a slot; the slot is exclusively ours
            // until `call_pooled` recycles it or `drop_pooled` frees it.
            unsafe {
                ptr::write(slot.cast::<F>(), f);
                ptr::write(data.as_mut_ptr().cast::<*mut PoolSlot>(), slot);
            }
            EventFn {
                data,
                call: call_pooled::<W, F>,
                drop_fn: drop_pooled::<F>,
                _mark: PhantomData,
            }
        } else {
            // omx-lint: allow(hot-path-alloc) fallback for closures too big for a pool slot; the simulation's own closures all fit and recycle [test: crates/sim/tests/alloc_count.rs::pooled_closures_recycle_their_slots]
            let raw = Box::into_raw(Box::new(f));
            // SAFETY: a thin raw pointer fits one inline word.
            unsafe { ptr::write(data.as_mut_ptr().cast::<*mut F>(), raw) };
            EventFn {
                data,
                call: call_boxed::<W, F>,
                drop_fn: drop_boxed::<F>,
                _mark: PhantomData,
            }
        }
    }

    /// Run the closure, consuming the event.
    #[inline]
    pub(crate) fn invoke(self, world: &mut W, sim: &mut Sim<W>) {
        let mut this = ManuallyDrop::new(self);
        // SAFETY: the payload is live (invoke takes `self` by value, so
        // it cannot have been consumed before) and `ManuallyDrop`
        // prevents the `Drop` impl from destroying it a second time.
        unsafe { (this.call)(this.data.as_mut_ptr(), world, sim) }
    }
}

impl<W> Drop for EventFn<W> {
    fn drop(&mut self) {
        // SAFETY: `Drop` only runs on events that were never invoked
        // (invoke wraps `self` in `ManuallyDrop`), so the payload is
        // still live and owned by us.
        unsafe { (self.drop_fn)(self.data.as_mut_ptr()) }
    }
}

unsafe fn call_inline<W, F: FnOnce(&mut W, &mut Sim<W>)>(
    data: *mut MaybeUninit<usize>,
    world: &mut W,
    sim: &mut Sim<W>,
) {
    let f = ptr::read(data.cast::<F>());
    f(world, sim);
}

unsafe fn drop_inline<F>(data: *mut MaybeUninit<usize>) {
    ptr::drop_in_place(data.cast::<F>());
}

unsafe fn call_pooled<W, F: FnOnce(&mut W, &mut Sim<W>)>(
    data: *mut MaybeUninit<usize>,
    world: &mut W,
    sim: &mut Sim<W>,
) {
    let slot = ptr::read(data.cast::<*mut PoolSlot>());
    let f = ptr::read(slot.cast::<F>());
    // The payload has been moved out, so the slot can go straight back
    // on the free list — before running `f`, which may well schedule
    // new pooled events and want the warm slot.
    sim.recycle_slot(slot);
    f(world, sim);
}

unsafe fn drop_pooled<F>(data: *mut MaybeUninit<usize>) {
    let slot = ptr::read(data.cast::<*mut PoolSlot>());
    ptr::drop_in_place(slot.cast::<F>());
    // No pool access inside `Drop`: give the slot back to the
    // allocator instead of the free list. Cancellation and teardown
    // are cold paths.
    drop(Box::from_raw(slot));
}

unsafe fn call_boxed<W, F: FnOnce(&mut W, &mut Sim<W>)>(
    data: *mut MaybeUninit<usize>,
    world: &mut W,
    sim: &mut Sim<W>,
) {
    let f = Box::from_raw(ptr::read(data.cast::<*mut F>()));
    (*f)(world, sim);
}

unsafe fn drop_boxed<F>(data: *mut MaybeUninit<usize>) {
    drop(Box::from_raw(ptr::read(data.cast::<*mut F>())));
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn inline_pooled_and_boxed_all_invoke() {
        let mut pool = EventPool::new();
        let mut sim: Sim<Vec<u64>> = Sim::new();
        let mut world: Vec<u64> = Vec::new();

        // Inline: captures 16 bytes.
        let (a, b) = (7u64, 35u64);
        let ev = EventFn::new(
            move |w: &mut Vec<u64>, _: &mut Sim<Vec<u64>>| w.push(a + b),
            &mut pool,
        );
        assert!(size_of::<(u64, u64)>() <= INLINE_BYTES);
        ev.invoke(&mut world, &mut sim);

        // Pooled: captures 64 bytes.
        let big = [1u64; 8];
        let ev = EventFn::new(
            move |w: &mut Vec<u64>, _: &mut Sim<Vec<u64>>| w.push(big.iter().sum()),
            &mut pool,
        );
        ev.invoke(&mut world, &mut sim);

        // Boxed: captures 256 bytes.
        let huge = [2u64; 32];
        let ev = EventFn::new(
            move |w: &mut Vec<u64>, _: &mut Sim<Vec<u64>>| w.push(huge.iter().sum()),
            &mut pool,
        );
        ev.invoke(&mut world, &mut sim);

        assert_eq!(world, vec![42, 8, 64]);
    }

    #[test]
    fn uninvoked_events_drop_their_captures() {
        // A capture with a destructor must be destroyed exactly once
        // when the event is dropped without running, for every storage
        // class.
        let witness: Rc<RefCell<u32>> = Rc::new(RefCell::new(0));
        struct Bump(Rc<RefCell<u32>>);
        impl Drop for Bump {
            fn drop(&mut self) {
                *self.0.borrow_mut() += 1;
            }
        }
        let mut pool = EventPool::new();
        // Inline (8 bytes), pooled (8 + 64), boxed (8 + 256).
        let bump = Bump(witness.clone());
        drop(EventFn::<()>::new(
            move |_: &mut (), _: &mut Sim<()>| drop(bump),
            &mut pool,
        ));
        let bump = (Bump(witness.clone()), [0u64; 8]);
        drop(EventFn::<()>::new(
            move |_: &mut (), _: &mut Sim<()>| drop(bump),
            &mut pool,
        ));
        let bump = (Bump(witness.clone()), [0u64; 32]);
        drop(EventFn::<()>::new(
            move |_: &mut (), _: &mut Sim<()>| drop(bump),
            &mut pool,
        ));
        assert_eq!(*witness.borrow(), 3);
        assert_eq!(Rc::strong_count(&witness), 1);
    }

    #[test]
    fn pool_recycles_slots() {
        let mut pool = EventPool::new();
        let a = pool.get();
        pool.put(a);
        let b = pool.get();
        assert_eq!(a, b, "free list must hand back the warm slot");
        pool.put(b);
    }
}
