//! Per-component observability: a metrics registry and an optional
//! structured event trace.
//!
//! The registry holds three families of instruments, all keyed by a
//! `(scope, name)` pair where `scope` is a small integer chosen by the
//! embedder (this workspace uses the node id) and `name` is a static
//! dotted path like `"ioat.channel"`:
//!
//! * **counters** — monotonic `u64` totals (frames, bytes, drops),
//! * **gauges** — last-value and high-watermark `i64`s (queue depths),
//! * **busy integrals** — accumulated [`Ps`] of resource occupancy
//!   (wire serialization, DMA channel busy, memcpy time).
//!
//! A [`Metrics`] value is a cheap handle: clones share one registry.
//! The disabled handle ([`Metrics::disabled`]) is an `Option::None`
//! inside, so every recording call is a branch-and-return — near-zero
//! overhead. Crucially, recording **never charges simulated time**:
//! enabling or disabling observability cannot change any simulation
//! result, only what is reported about it.
//!
//! The optional trace is a bounded ring of [`TraceEvent`] records
//! (oldest evicted first). It is off by default and sized explicitly
//! via [`Metrics::with_trace`].

use crate::time::Ps;
use serde::Serialize;
use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;

type Key = (u32, &'static str);

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<Key, u64>,
    gauges: BTreeMap<Key, i64>,
    busy: BTreeMap<Key, Ps>,
    trace: Option<TraceRing>,
}

#[derive(Debug)]
struct TraceRing {
    capacity: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

/// One structured trace record: something `component` did at `at`,
/// with two free-form operands (byte counts, handles, sizes — the
/// `what` string documents their meaning).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TraceEvent {
    /// Simulation time of the event.
    pub at: Ps,
    /// Scope (node id) the event belongs to.
    pub scope: u32,
    /// Component path, e.g. `"driver.bh"`.
    pub component: &'static str,
    /// Event kind, e.g. `"rx_frag"`.
    pub what: &'static str,
    /// First operand (meaning depends on `what`).
    pub a: u64,
    /// Second operand (meaning depends on `what`).
    pub b: u64,
}

/// A serializable point-in-time view of the registry. Keys are
/// rendered as `"s<scope>.<name>"`; busy integrals are reported in
/// nanoseconds.
#[derive(Debug, Clone, Serialize)]
pub struct MetricsSnapshot {
    /// Monotonic counters.
    pub counters: BTreeMap<String, u64>,
    /// Gauges (last value or high watermark).
    pub gauges: BTreeMap<String, i64>,
    /// Busy-time integrals in nanoseconds.
    pub busy_ns: BTreeMap<String, f64>,
    /// Trace events evicted from the ring because it was full.
    pub trace_dropped: u64,
}

/// Shared handle to a metrics registry (see module docs).
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    inner: Option<Rc<RefCell<Inner>>>,
}

impl Metrics {
    /// An enabled registry without an event trace.
    pub fn new() -> Metrics {
        Metrics {
            inner: Some(Rc::new(RefCell::new(Inner::default()))),
        }
    }

    /// An enabled registry with a trace ring of `capacity` events.
    pub fn with_trace(capacity: usize) -> Metrics {
        let m = Metrics::new();
        if capacity > 0 {
            m.inner.as_ref().unwrap().borrow_mut().trace = Some(TraceRing {
                capacity,
                events: VecDeque::with_capacity(capacity.min(4096)),
                dropped: 0,
            });
        }
        m
    }

    /// The no-op handle: every recording call returns immediately.
    pub fn disabled() -> Metrics {
        Metrics { inner: None }
    }

    /// Whether recording is active.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Whether an event trace ring is attached.
    pub fn trace_enabled(&self) -> bool {
        self.inner
            .as_ref()
            .map(|i| i.borrow().trace.is_some())
            .unwrap_or(false)
    }

    /// Add `delta` to the counter `(scope, name)`.
    #[inline]
    pub fn count(&self, scope: u32, name: &'static str, delta: u64) {
        if let Some(inner) = &self.inner {
            *inner
                .borrow_mut()
                .counters
                .entry((scope, name))
                .or_insert(0) += delta;
        }
    }

    /// Set the gauge `(scope, name)` to `value`.
    #[inline]
    pub fn gauge_set(&self, scope: u32, name: &'static str, value: i64) {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().gauges.insert((scope, name), value);
        }
    }

    /// Raise the gauge `(scope, name)` to `value` if it is higher than
    /// the stored value (high-watermark semantics).
    #[inline]
    pub fn gauge_max(&self, scope: u32, name: &'static str, value: i64) {
        if let Some(inner) = &self.inner {
            let mut inner = inner.borrow_mut();
            let g = inner.gauges.entry((scope, name)).or_insert(i64::MIN);
            *g = (*g).max(value);
        }
    }

    /// Accumulate `service` into the busy integral `(scope, name)`.
    #[inline]
    pub fn busy(&self, scope: u32, name: &'static str, service: Ps) {
        if let Some(inner) = &self.inner {
            let mut inner = inner.borrow_mut();
            let b = inner.busy.entry((scope, name)).or_insert(Ps::ZERO);
            *b += service;
        }
    }

    /// Append a trace event (dropped silently when no ring is attached;
    /// evicts the oldest event when the ring is full).
    #[inline]
    pub fn trace(
        &self,
        at: Ps,
        scope: u32,
        component: &'static str,
        what: &'static str,
        a: u64,
        b: u64,
    ) {
        if let Some(inner) = &self.inner {
            if let Some(ring) = inner.borrow_mut().trace.as_mut() {
                if ring.events.len() >= ring.capacity {
                    ring.events.pop_front();
                    ring.dropped += 1;
                }
                ring.events.push_back(TraceEvent {
                    at,
                    scope,
                    component,
                    what,
                    a,
                    b,
                });
            }
        }
    }

    /// Read a counter (0 when absent or disabled).
    pub fn counter(&self, scope: u32, name: &'static str) -> u64 {
        self.inner
            .as_ref()
            .and_then(|i| i.borrow().counters.get(&(scope, name)).copied())
            .unwrap_or(0)
    }

    /// Read a gauge.
    pub fn gauge(&self, scope: u32, name: &'static str) -> Option<i64> {
        self.inner
            .as_ref()
            .and_then(|i| i.borrow().gauges.get(&(scope, name)).copied())
    }

    /// Read a busy integral (zero when absent or disabled).
    pub fn busy_total(&self, scope: u32, name: &'static str) -> Ps {
        self.inner
            .as_ref()
            .and_then(|i| i.borrow().busy.get(&(scope, name)).copied())
            .unwrap_or(Ps::ZERO)
    }

    /// Sum of a busy integral across all scopes.
    pub fn busy_total_all_scopes(&self, name: &'static str) -> Ps {
        match &self.inner {
            None => Ps::ZERO,
            Some(i) => i
                .borrow()
                .busy
                .iter()
                .filter(|((_, n), _)| *n == name)
                .fold(Ps::ZERO, |acc, (_, t)| acc + *t),
        }
    }

    /// Sum of a counter across all scopes.
    pub fn counter_all_scopes(&self, name: &'static str) -> u64 {
        match &self.inner {
            None => 0,
            Some(i) => i
                .borrow()
                .counters
                .iter()
                .filter(|((_, n), _)| *n == name)
                .map(|(_, v)| *v)
                .sum(),
        }
    }

    /// A serializable snapshot of every instrument.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot {
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            busy_ns: BTreeMap::new(),
            trace_dropped: 0,
        };
        if let Some(inner) = &self.inner {
            let inner = inner.borrow();
            for ((scope, name), v) in &inner.counters {
                snap.counters.insert(format!("s{scope}.{name}"), *v);
            }
            for ((scope, name), v) in &inner.gauges {
                snap.gauges.insert(format!("s{scope}.{name}"), *v);
            }
            for ((scope, name), v) in &inner.busy {
                snap.busy_ns
                    .insert(format!("s{scope}.{name}"), v.as_ps() as f64 / 1e3);
            }
            if let Some(ring) = &inner.trace {
                snap.trace_dropped = ring.dropped;
            }
        }
        snap
    }

    /// The traced events currently in the ring, oldest first.
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.inner
            .as_ref()
            .and_then(|i| {
                i.borrow()
                    .trace
                    .as_ref()
                    .map(|r| r.events.iter().cloned().collect())
            })
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing() {
        let m = Metrics::disabled();
        m.count(0, "x", 5);
        m.busy(0, "x", Ps::ns(100));
        m.gauge_max(0, "x", 9);
        m.trace(Ps::ZERO, 0, "c", "w", 1, 2);
        assert!(!m.is_enabled());
        assert_eq!(m.counter(0, "x"), 0);
        assert_eq!(m.busy_total(0, "x"), Ps::ZERO);
        assert!(m.snapshot().counters.is_empty());
        assert!(m.trace_events().is_empty());
    }

    #[test]
    fn clones_share_one_registry() {
        let m = Metrics::new();
        let m2 = m.clone();
        m.count(1, "frames", 2);
        m2.count(1, "frames", 3);
        m2.busy(1, "wire", Ps::ns(40));
        m.busy(2, "wire", Ps::ns(60));
        assert_eq!(m.counter(1, "frames"), 5);
        assert_eq!(m.busy_total_all_scopes("wire"), Ps::ns(100));
        assert_eq!(m.counter_all_scopes("frames"), 5);
    }

    #[test]
    fn gauges_track_watermarks() {
        let m = Metrics::new();
        m.gauge_max(0, "depth", 3);
        m.gauge_max(0, "depth", 1);
        assert_eq!(m.gauge(0, "depth"), Some(3));
        m.gauge_set(0, "depth", 1);
        assert_eq!(m.gauge(0, "depth"), Some(1));
    }

    #[test]
    fn trace_ring_is_bounded() {
        let m = Metrics::with_trace(2);
        assert!(m.trace_enabled());
        for i in 0..5u64 {
            m.trace(Ps::ns(i), 0, "c", "tick", i, 0);
        }
        let ev = m.trace_events();
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].a, 3);
        assert_eq!(ev[1].a, 4);
        assert_eq!(m.snapshot().trace_dropped, 3);
    }

    #[test]
    fn snapshot_renders_scoped_keys() {
        let m = Metrics::new();
        m.count(0, "nic.frames", 7);
        m.busy(1, "ioat.channel", Ps::us(3));
        let s = m.snapshot();
        assert_eq!(s.counters["s0.nic.frames"], 7);
        assert!((s.busy_ns["s1.ioat.channel"] - 3000.0).abs() < 1e-9);
    }
}
