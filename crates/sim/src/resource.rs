//! Serially-reusable resources.
//!
//! A [`FifoServer`] models anything that serves one job at a time in
//! arrival order: the Ethernet wire, an I/OAT DMA channel, a CPU core.
//! Admission returns the job's `(start, finish)` interval; the server
//! integrates its busy time so utilization can be reported afterwards
//! (that integral is what Figure 9 of the paper plots, per category).

use crate::metrics::Metrics;
use crate::time::Ps;

/// A FIFO single-server queue with busy-time integration.
///
/// The server itself holds no job payloads; callers keep their own state
/// and use the returned completion times to schedule events.
///
/// A server can optionally carry a meter ([`Self::attach_meter`]): each
/// admitted job then also accumulates into a named busy integral and
/// job counter in a shared [`Metrics`] registry, so per-resource
/// occupancy shows up in snapshots without the owner exposing every
/// internal server.
#[derive(Debug, Clone)]
pub struct FifoServer {
    /// Time at which the server next becomes idle.
    busy_until: Ps,
    /// Total busy time integrated over all admitted jobs.
    busy_total: Ps,
    /// Number of jobs admitted.
    jobs: u64,
    /// Optional metrics destination for admitted jobs.
    meter: Option<Meter>,
}

#[derive(Debug, Clone)]
struct Meter {
    metrics: Metrics,
    scope: u32,
    name: &'static str,
}

impl Default for FifoServer {
    fn default() -> Self {
        Self::new()
    }
}

impl FifoServer {
    /// An idle server.
    pub fn new() -> Self {
        FifoServer {
            busy_until: Ps::ZERO,
            busy_total: Ps::ZERO,
            jobs: 0,
            meter: None,
        }
    }

    /// Report every admitted job's service time and count to
    /// `metrics` under `(scope, name)`. Replaces any earlier meter.
    pub fn attach_meter(&mut self, metrics: Metrics, scope: u32, name: &'static str) {
        self.meter = if metrics.is_enabled() {
            Some(Meter {
                metrics,
                scope,
                name,
            })
        } else {
            None
        };
    }

    /// Admit a job of length `service` at time `now`.
    ///
    /// The job starts when the server frees up (`max(now, busy_until)`)
    /// and occupies it for `service`. Returns `(start, finish)`.
    pub fn admit(&mut self, now: Ps, service: Ps) -> (Ps, Ps) {
        let start = now.max(self.busy_until);
        let finish = start + service;
        self.busy_until = finish;
        self.busy_total += service;
        self.jobs += 1;
        if let Some(meter) = &self.meter {
            meter.metrics.busy(meter.scope, meter.name, service);
            meter.metrics.count(meter.scope, meter.name, 1);
        }
        (start, finish)
    }

    /// When the server next becomes idle (equals the finish time of the
    /// last admitted job, or zero if none).
    #[inline]
    pub fn busy_until(&self) -> Ps {
        self.busy_until
    }

    /// Whether a job admitted at `now` would have to queue.
    #[inline]
    pub fn is_busy_at(&self, now: Ps) -> bool {
        self.busy_until > now
    }

    /// Backlog seen by an arrival at `now`: how long it would wait
    /// before starting service.
    #[inline]
    pub fn backlog_at(&self, now: Ps) -> Ps {
        self.busy_until.saturating_sub(now)
    }

    /// Total integrated busy time.
    #[inline]
    pub fn busy_total(&self) -> Ps {
        self.busy_total
    }

    /// Number of jobs admitted so far.
    #[inline]
    pub fn jobs(&self) -> u64 {
        self.jobs
    }

    /// Fraction of `[0, horizon]` the server spent busy. The horizon is
    /// usually the experiment end time. Clamped to `[0, 1]` — a job that
    /// overruns the horizon only counts up to it.
    pub fn utilization(&self, horizon: Ps) -> f64 {
        if horizon == Ps::ZERO {
            return 0.0;
        }
        let busy = self.busy_total.min(horizon);
        busy.as_ps() as f64 / horizon.as_ps() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_server_starts_immediately() {
        let mut s = FifoServer::new();
        let (start, finish) = s.admit(Ps::ns(10), Ps::ns(5));
        assert_eq!(start, Ps::ns(10));
        assert_eq!(finish, Ps::ns(15));
        assert_eq!(s.busy_until(), Ps::ns(15));
    }

    #[test]
    fn busy_server_queues_fifo() {
        let mut s = FifoServer::new();
        s.admit(Ps::ZERO, Ps::ns(100));
        let (start, finish) = s.admit(Ps::ns(10), Ps::ns(50));
        assert_eq!(start, Ps::ns(100));
        assert_eq!(finish, Ps::ns(150));
        // A third job arriving after the backlog drains starts on time.
        let (start, _) = s.admit(Ps::ns(500), Ps::ns(1));
        assert_eq!(start, Ps::ns(500));
    }

    #[test]
    fn busy_accounting_integrates_service_only() {
        let mut s = FifoServer::new();
        s.admit(Ps::ZERO, Ps::ns(100));
        s.admit(Ps::ns(300), Ps::ns(100)); // idle gap 100..300 not counted
        assert_eq!(s.busy_total(), Ps::ns(200));
        assert_eq!(s.jobs(), 2);
        let u = s.utilization(Ps::ns(400));
        assert!((u - 0.5).abs() < 1e-9, "got {u}");
    }

    #[test]
    fn utilization_edge_cases() {
        let s = FifoServer::new();
        assert_eq!(s.utilization(Ps::ZERO), 0.0);
        assert_eq!(s.utilization(Ps::ns(10)), 0.0);
        let mut s = FifoServer::new();
        s.admit(Ps::ZERO, Ps::ns(100));
        // Horizon shorter than busy time clamps to 1.0.
        assert_eq!(s.utilization(Ps::ns(50)), 1.0);
    }

    #[test]
    fn attached_meter_mirrors_busy_time() {
        let m = Metrics::new();
        let mut s = FifoServer::new();
        s.attach_meter(m.clone(), 3, "wire");
        s.admit(Ps::ZERO, Ps::ns(100));
        s.admit(Ps::ns(500), Ps::ns(50));
        assert_eq!(m.busy_total(3, "wire"), s.busy_total());
        assert_eq!(m.counter(3, "wire"), s.jobs());
        // A disabled registry never attaches, keeping admit at two
        // compares and three adds.
        let mut s2 = FifoServer::new();
        s2.attach_meter(Metrics::disabled(), 0, "wire");
        s2.admit(Ps::ZERO, Ps::ns(1));
        assert_eq!(Metrics::disabled().counter(0, "wire"), 0);
    }

    #[test]
    fn backlog_reports_waiting_time() {
        let mut s = FifoServer::new();
        s.admit(Ps::ZERO, Ps::ns(100));
        assert_eq!(s.backlog_at(Ps::ns(40)), Ps::ns(60));
        assert_eq!(s.backlog_at(Ps::ns(100)), Ps::ZERO);
        assert!(s.is_busy_at(Ps::ns(99)));
        assert!(!s.is_busy_at(Ps::ns(100)));
    }
}
