//! Conservative time-window execution of a partitioned simulation.
//!
//! One big simulation is split into `P` shards, each owning a subset
//! of the model (for the cluster: a subset of nodes) with its own
//! [`Sim`] engine — its own timing wheel, clock and event pool.
//! Shards interact only through explicit cross-partition messages
//! whose delivery time is bounded below by a **lookahead** `L`: a
//! message emitted at time `t` can only fire at `t + L` or later (for
//! the cluster, `L` is the modeled wire latency — tx latency +
//! propagation + rx latency — which every inter-node frame pays
//! before it can touch the destination node).
//!
//! That bound makes the classic conservative window protocol exact:
//!
//! 1. `h` = minimum next-event instant over all shards (the global
//!    horizon base);
//! 2. every shard runs its local events in the window `[h, h + L)`.
//!    No message produced inside the window can fire inside it
//!    (`t + L >= h + L`), so shards cannot causally affect each other
//!    mid-window and may run concurrently;
//! 3. outboxes are exchanged, sorted by the canonical message key and
//!    injected; repeat until every queue is empty.
//!
//! Execution order *within* a shard is the engine's usual
//! `(time, seq)` order; execution order *across* shards is fixed by
//! the canonical sort in step 3. Neither depends on the number of
//! worker threads or on which worker runs which shard, so the result
//! is bit-identical for any worker count — including the sequential
//! path, which runs the very same rounds on the caller's thread.
//!
//! The window is *conservative* (never executes an event until it is
//! provably safe), not optimistic: there is no rollback machinery, no
//! anti-messages, and determinism is structural rather than repaired
//! after the fact. See DESIGN.md §"Partitioned engine".

use crate::engine::Sim;
use crate::time::Ps;
use std::sync::{Barrier, Mutex};

/// A world type that can run as one shard of a partitioned
/// simulation.
pub trait Shard: Sized {
    /// Cross-partition message. The `Ord` implementation must order by
    /// the canonical injection key, and that key must be unique across
    /// all messages of one exchange round (e.g. it embeds the sending
    /// shard and a per-shard emission sequence), so the post-exchange
    /// sort reconstructs one global order regardless of which worker
    /// delivered which message first.
    type Msg: Ord + Send;

    /// The instant at which `msg` will fire on the receiving shard.
    /// Used to enforce the lookahead contract (`fire >= emit + L`) in
    /// debug builds.
    fn msg_at(msg: &Self::Msg) -> Ps;

    /// Drain the messages this shard emitted since the last drain, as
    /// `(destination shard, message)` pairs.
    fn take_outbox(&mut self) -> Vec<(usize, Self::Msg)>;

    /// Schedule one inbound message. Called in sorted `Msg` order;
    /// `Shard::msg_at(&msg)` is strictly beyond the window that
    /// produced it, so scheduling is never in the shard's past.
    fn inject(&mut self, sim: &mut Sim<Self>, msg: Self::Msg);
}

/// Last instant (inclusive, for [`Sim::run_until`]) of the window
/// based at `h`: the window covers `[h, h + lookahead)`, and
/// `run_until` treats its deadline as inclusive, so the deadline is
/// one picosecond short of the exclusive bound. A message emitted at
/// any `t <= h + lookahead - 1` fires at `t + lookahead > deadline` —
/// even a frame landing *exactly* on the window boundary is outside
/// the window that emitted it.
fn window_deadline(h: Ps, lookahead: Ps) -> Ps {
    h.checked_add(lookahead)
        .expect("partition window overflows the clock")
        - Ps::ps(1)
}

/// One shard's bundle: its engine, its world, and caller-side state
/// `S` (e.g. result collectors shared with the shard's apps) that
/// never crosses threads.
type Bundle<W, S> = (Sim<W>, W, S);

/// A deferred shard constructor. Shard worlds are usually `!Send`
/// (boxed apps, `Rc` result collectors), so each shard is *built* on
/// the worker thread that will run it and never moves. The lifetime
/// lets builders borrow caller state (scoped threads permit it).
pub type ShardBuilder<'a, W, S> = Box<dyn FnOnce() -> Bundle<W, S> + Send + 'a>;

/// Run a partitioned simulation to completion and reduce each shard
/// with `finish` (called exactly once per shard, on the thread that
/// ran it, after every queue is empty). Returns the per-shard results
/// in shard order.
///
/// `workers` is clamped to `[1, shards]`; `workers <= 1` runs the
/// identical round protocol sequentially on the caller's thread with
/// no thread machinery at all. The output is bit-identical for every
/// worker count by construction.
pub fn run_shards<W, S, R, F>(
    builders: Vec<ShardBuilder<'_, W, S>>,
    lookahead: Ps,
    workers: usize,
    finish: F,
) -> Vec<R>
where
    W: Shard,
    R: Send,
    F: Fn(usize, &mut Sim<W>, &mut W, S) -> R + Sync,
{
    assert!(lookahead >= Ps::ps(1), "lookahead must be positive");
    let n = builders.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, n);
    if workers == 1 {
        return run_shards_seq(builders, lookahead, &finish);
    }
    run_shards_threaded(builders, lookahead, workers, &finish)
}

/// The sequential round loop: same protocol, caller's thread.
fn run_shards_seq<W, S, R, F>(
    builders: Vec<ShardBuilder<'_, W, S>>,
    lookahead: Ps,
    finish: &F,
) -> Vec<R>
where
    W: Shard,
    F: Fn(usize, &mut Sim<W>, &mut W, S) -> R,
{
    let n = builders.len();
    let mut shards: Vec<Bundle<W, S>> = builders.into_iter().map(|b| b()).collect();
    let mut inboxes: Vec<Vec<W::Msg>> = (0..n).map(|_| Vec::new()).collect();
    loop {
        let h = shards
            .iter()
            .filter_map(|(sim, _, _)| sim.next_event_at())
            .min();
        let Some(h) = h else { break };
        let deadline = window_deadline(h, lookahead);
        for (sim, world, _) in shards.iter_mut() {
            sim.run_until(world, deadline);
        }
        for (_, world, _) in shards.iter_mut() {
            for (dst, msg) in world.take_outbox() {
                debug_assert!(
                    W::msg_at(&msg) > deadline,
                    "cross-partition message violates the lookahead contract"
                );
                inboxes[dst].push(msg);
            }
        }
        for (i, inbox) in inboxes.iter_mut().enumerate() {
            inbox.sort_unstable();
            let (sim, world, _) = &mut shards[i];
            for msg in inbox.drain(..) {
                world.inject(sim, msg);
            }
        }
    }
    shards
        .into_iter()
        .enumerate()
        .map(|(i, (mut sim, mut world, state))| finish(i, &mut sim, &mut world, state))
        .collect()
}

/// The threaded round loop: worker `w` owns shards `i % workers == w`
/// and runs them in index order within each barrier-delimited round.
fn run_shards_threaded<W, S, R, F>(
    builders: Vec<ShardBuilder<'_, W, S>>,
    lookahead: Ps,
    workers: usize,
    finish: &F,
) -> Vec<R>
where
    W: Shard,
    R: Send,
    F: Fn(usize, &mut Sim<W>, &mut W, S) -> R + Sync,
{
    let n = builders.len();
    // Deal builders round-robin so each worker owns a fixed shard set.
    let mut dealt: Vec<Vec<(usize, ShardBuilder<W, S>)>> =
        (0..workers).map(|_| Vec::new()).collect();
    for (i, b) in builders.into_iter().enumerate() {
        dealt[i % workers].push((i, b));
    }
    let barrier = Barrier::new(workers);
    let mins: Vec<Mutex<Option<Ps>>> = (0..workers).map(|_| Mutex::new(None)).collect();
    let inboxes: Vec<Mutex<Vec<W::Msg>>> = (0..n).map(|_| Mutex::new(Vec::new())).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for (w, owned) in dealt.into_iter().enumerate() {
            let barrier = &barrier;
            let mins = &mins;
            let inboxes = &inboxes;
            let results = &results;
            scope.spawn(move || {
                let mut shards: Vec<(usize, Bundle<W, S>)> =
                    owned.into_iter().map(|(i, b)| (i, b())).collect();
                loop {
                    // Round phase 1: publish the local horizon base.
                    let local = shards
                        .iter()
                        .filter_map(|(_, (sim, _, _))| sim.next_event_at())
                        .min();
                    *mins[w].lock().expect("mins poisoned") = local;
                    barrier.wait();
                    // Phase 2: every worker derives the same global
                    // minimum (reads happen strictly between the two
                    // barriers that bracket the writes).
                    let h = mins
                        .iter()
                        .filter_map(|m| *m.lock().expect("mins poisoned"))
                        .min();
                    let Some(h) = h else { break };
                    let deadline = window_deadline(h, lookahead);
                    // Phase 3: run the window and post outboxes.
                    for (_, (sim, world, _)) in shards.iter_mut() {
                        sim.run_until(world, deadline);
                    }
                    for (_, (_, world, _)) in shards.iter_mut() {
                        for (dst, msg) in world.take_outbox() {
                            debug_assert!(
                                W::msg_at(&msg) > deadline,
                                "cross-partition message violates the lookahead contract"
                            );
                            inboxes[dst].lock().expect("inbox poisoned").push(msg);
                        }
                    }
                    barrier.wait();
                    // Phase 4: drain own inboxes in canonical order.
                    for (i, (sim, world, _)) in shards.iter_mut() {
                        let mut inbox = inboxes[*i].lock().expect("inbox poisoned");
                        inbox.sort_unstable();
                        for msg in inbox.drain(..) {
                            world.inject(sim, msg);
                        }
                    }
                    barrier.wait();
                }
                for (i, (mut sim, mut world, state)) in shards.into_iter() {
                    let r = finish(i, &mut sim, &mut world, state);
                    *results[i].lock().expect("results poisoned") = Some(r);
                }
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("results poisoned")
                .expect("worker produced no result")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy shard over `nodes` logical nodes dealt round-robin onto
    /// `parts` shards; each bounce forwards to the next logical node,
    /// arriving exactly at the lookahead bound. The log records
    /// `(time, logical node)`, which must not depend on how nodes are
    /// dealt onto shards.
    struct Toy {
        parts: usize,
        nodes: usize,
        log: Vec<(u64, usize)>,
        outbox: Vec<(usize, ToyMsg)>,
        emitted: u64,
    }

    #[derive(PartialEq, Eq, PartialOrd, Ord)]
    struct ToyMsg {
        at: Ps,
        node: usize,
        seq: u64,
        hops: u32,
    }

    const LA: Ps = Ps::ns(100);
    const NODES: usize = 8;

    impl Toy {
        fn bounce(&mut self, sim: &mut Sim<Toy>, node: usize, hops: u32) {
            self.log.push((sim.now().as_ps(), node));
            if hops == 0 {
                return;
            }
            let next = (node + 1) % self.nodes;
            let msg = ToyMsg {
                at: sim.now() + LA,
                node: next,
                seq: self.emitted,
                hops: hops - 1,
            };
            self.emitted += 1;
            self.outbox.push((next % self.parts, msg));
        }
    }

    impl Shard for Toy {
        type Msg = ToyMsg;
        fn msg_at(msg: &ToyMsg) -> Ps {
            msg.at
        }
        fn take_outbox(&mut self) -> Vec<(usize, ToyMsg)> {
            std::mem::take(&mut self.outbox)
        }
        fn inject(&mut self, sim: &mut Sim<Toy>, msg: ToyMsg) {
            let (node, hops) = (msg.node, msg.hops);
            sim.schedule_at(msg.at, move |w: &mut Toy, s| w.bounce(s, node, hops));
        }
    }

    fn run_ring(parts: usize, workers: usize) -> Vec<(u64, usize)> {
        let builders: Vec<ShardBuilder<Toy, ()>> = (0..parts)
            .map(|i| {
                let b: ShardBuilder<Toy, ()> = Box::new(move || {
                    let mut sim = Sim::new();
                    if i == 0 {
                        // Logical node 0 lives on shard 0 under every
                        // round-robin deal.
                        sim.schedule_at(Ps::ZERO, |w: &mut Toy, s| w.bounce(s, 0, 16));
                    }
                    let toy = Toy {
                        parts,
                        nodes: NODES,
                        log: Vec::new(),
                        outbox: Vec::new(),
                        emitted: 0,
                    };
                    (sim, toy, ())
                });
                b
            })
            .collect();
        let mut logs = run_shards(builders, LA, workers, |_, _, w, _| {
            std::mem::take(&mut w.log)
        });
        let mut all: Vec<_> = logs.drain(..).flatten().collect();
        all.sort_unstable();
        all
    }

    #[test]
    fn ring_is_identical_across_partitionings_and_workers() {
        let base = run_ring(1, 1);
        assert_eq!(base.len(), 17, "16 hops + the seed event");
        for parts in [2, 4, 8] {
            for workers in [1, 2, 4] {
                assert_eq!(
                    run_ring(parts, workers),
                    base,
                    "{parts} partitions / {workers} workers diverged"
                );
            }
        }
    }

    #[test]
    fn boundary_exact_arrival_is_outside_the_emitting_window() {
        // A message emitted at the window base lands exactly at
        // h + lookahead — one past the inclusive deadline. It must be
        // delivered (not lost, not executed a round early).
        let logs = run_ring(2, 2);
        for pair in logs.windows(2) {
            assert_eq!(
                pair[1].0 - pair[0].0,
                LA.as_ps(),
                "hops must be spaced exactly one lookahead apart"
            );
        }
    }

    #[test]
    fn empty_builder_list_is_fine() {
        let r: Vec<u32> = run_shards(Vec::<ShardBuilder<Toy, ()>>::new(), LA, 4, |_, _, _, _| {
            0u32
        });
        assert!(r.is_empty());
    }
}
