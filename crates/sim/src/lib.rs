//! Deterministic discrete-event simulation (DES) engine.
//!
//! The whole reproduction runs on this engine: the cluster, its NICs,
//! wires, CPU cores, I/OAT DMA channels and the Open-MX protocol state
//! machines are all driven by events on a single integer-picosecond
//! clock. The engine is deliberately single-threaded so that every
//! experiment regenerates bit-identically; parallelism in the benchmark
//! harness happens *across* independent simulations, never inside one.
//!
//! Main pieces:
//!
//! * [`time::Ps`] — picosecond time points/durations and [`time::Rate`]
//!   (bytes/second) with exact 128-bit arithmetic,
//! * [`engine::Sim`] — the event queue, generic over a user world type,
//! * [`resource::FifoServer`] — a serially-reusable resource (a wire, a
//!   DMA channel, a CPU core) with busy-time integration,
//! * [`stats`] — busy meters, throughput series and summary statistics,
//! * [`metrics`] — a cross-crate metrics registry (counters, gauges,
//!   busy-time integrals) plus an optional bounded event trace; purely
//!   observational, it never charges simulated time,
//! * [`rng`] — a tiny deterministic SplitMix64 generator,
//! * [`sanitize`] — debug-build lifecycle state machines (skbuffs,
//!   pinned regions, I/OAT descriptors, pull handles) that turn leaks
//!   and reuse bugs into panics with the allocation site.

pub mod engine;
pub(crate) mod event;
pub mod metrics;
pub mod partition;
pub mod reference;
pub mod resource;
pub mod rng;
pub mod sanitize;
pub mod stats;
pub mod time;
pub mod walltime;
pub(crate) mod wheel;

pub use engine::{Sim, TimerId};
pub use metrics::{Metrics, MetricsSnapshot, TraceEvent};
pub use partition::{run_shards, Shard, ShardBuilder};
pub use reference::ReferenceSim;
pub use resource::FifoServer;
pub use rng::SplitMix64;
pub use sanitize::{Kind as SanitizeKind, SimSanitizer, Token as SanitizeToken};
pub use stats::{BusyMeter, Series, Summary};
pub use time::{Ps, Rate};
