//! The original `BinaryHeap`-based engine, kept verbatim as a
//! reference scheduler.
//!
//! [`ReferenceSim`] is the engine the figures were first generated
//! with: a `(time, seq)`-ordered binary heap of boxed closures. It is
//! deliberately simple — its execution order is easy to audit — and it
//! serves two purposes:
//!
//! * the **equivalence proptest** (`crates/sim/tests/equivalence.rs`)
//!   drives random schedule/cancel/run workloads through both engines
//!   and asserts identical execution traces, which is what lets the
//!   timing-wheel engine claim bit-identical determinism;
//! * the **benchmarks** (`crates/bench`) measure the wheel against it
//!   so the `BENCH_*.json` trajectory always has a live baseline.
//!
//! It mirrors the public API of [`crate::Sim`], including the
//! cancellation extension with the same tombstone semantics (the clock
//! still passes through a cancelled instant).

use crate::engine::TimerId;
use crate::time::Ps;
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap};

type EventFn<W> = Box<dyn FnOnce(&mut W, &mut ReferenceSim<W>)>;

struct Scheduled<W> {
    at: Ps,
    seq: u64,
    run: EventFn<W>,
}

// Order by (time, sequence) only; the closure does not participate.
impl<W> PartialEq for Scheduled<W> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<W> Eq for Scheduled<W> {}
impl<W> PartialOrd for Scheduled<W> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for Scheduled<W> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The original heap-based deterministic discrete-event simulator.
pub struct ReferenceSim<W> {
    now: Ps,
    seq: u64,
    executed: u64,
    pending: usize,
    queue: BinaryHeap<Reverse<Scheduled<W>>>,
    live: BTreeSet<u64>,
    cancelled: BTreeSet<u64>,
}

impl<W> Default for ReferenceSim<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> ReferenceSim<W> {
    /// A fresh simulator at time zero with an empty queue.
    pub fn new() -> Self {
        ReferenceSim {
            now: Ps::ZERO,
            seq: 0,
            executed: 0,
            pending: 0,
            queue: BinaryHeap::new(),
            live: BTreeSet::new(),
            cancelled: BTreeSet::new(),
        }
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> Ps {
        self.now
    }

    /// Number of events executed so far.
    #[inline]
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events still pending (cancelled events excluded).
    #[inline]
    pub fn events_pending(&self) -> usize {
        self.pending
    }

    /// Schedule `f` to run at absolute time `at`.
    pub fn schedule_at(&mut self, at: Ps, f: impl FnOnce(&mut W, &mut ReferenceSim<W>) + 'static) {
        // omx-lint: allow(hot-path-alloc) differential-testing reference scheduler; it is never on the cluster path, only compared against the wheel [test: crates/sim/tests/equivalence.rs::fifo_order_holds_at_one_million_same_instant_events]
        self.insert(at, Box::new(f));
    }

    /// Schedule `f` to run `delay` after the current time.
    pub fn schedule_in(
        &mut self,
        delay: Ps,
        f: impl FnOnce(&mut W, &mut ReferenceSim<W>) + 'static,
    ) {
        let at = self
            .now
            .checked_add(delay)
            .expect("simulation clock overflow");
        self.schedule_at(at, f);
    }

    /// Schedule with a cancellation handle.
    pub fn schedule_at_cancellable(
        &mut self,
        at: Ps,
        f: impl FnOnce(&mut W, &mut ReferenceSim<W>) + 'static,
    ) -> TimerId {
        let seq = self.insert(at, Box::new(f));
        self.live.insert(seq);
        TimerId(seq)
    }

    /// Schedule a delay with a cancellation handle.
    pub fn schedule_in_cancellable(
        &mut self,
        delay: Ps,
        f: impl FnOnce(&mut W, &mut ReferenceSim<W>) + 'static,
    ) -> TimerId {
        let at = self
            .now
            .checked_add(delay)
            .expect("simulation clock overflow");
        self.schedule_at_cancellable(at, f)
    }

    /// Revoke a cancellable event; same semantics as [`crate::Sim::cancel`].
    pub fn cancel(&mut self, id: TimerId) -> bool {
        if self.live.remove(&id.0) {
            self.cancelled.insert(id.0);
            self.pending -= 1;
            true
        } else {
            false
        }
    }

    fn insert(&mut self, at: Ps, run: EventFn<W>) -> u64 {
        assert!(
            at >= self.now,
            "event scheduled in the past: at={at} now={}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.pending += 1;
        self.queue.push(Reverse(Scheduled { at, seq, run }));
        seq
    }

    fn pop_runnable(&mut self) -> Option<Scheduled<W>> {
        while let Some(Reverse(ev)) = self.queue.pop() {
            if !self.cancelled.is_empty() && self.cancelled.remove(&ev.seq) {
                debug_assert!(ev.at >= self.now, "event queue went backwards");
                self.now = ev.at;
                continue;
            }
            return Some(ev);
        }
        None
    }

    fn fire(&mut self, world: &mut W, ev: Scheduled<W>) {
        debug_assert!(ev.at >= self.now, "event queue went backwards");
        self.now = ev.at;
        self.executed += 1;
        self.pending -= 1;
        if !self.live.is_empty() {
            self.live.remove(&ev.seq);
        }
        (ev.run)(world, self);
    }

    /// Run until the queue is empty. Returns the final time.
    pub fn run(&mut self, world: &mut W) -> Ps {
        self.run_until(world, Ps::MAX)
    }

    /// Run until the queue is empty or the next event would fire after
    /// `deadline` (inclusive).
    pub fn run_until(&mut self, world: &mut W, deadline: Ps) -> Ps {
        loop {
            match self.queue.peek() {
                Some(Reverse(head)) if head.at <= deadline => {}
                _ => break,
            }
            // Re-apply the deadline check after every pop: a reaped
            // tombstone must not let a later event slip past it.
            let Reverse(ev) = self.queue.pop().expect("peeked entry vanished");
            if !self.cancelled.is_empty() && self.cancelled.remove(&ev.seq) {
                debug_assert!(ev.at >= self.now, "event queue went backwards");
                self.now = ev.at;
                continue;
            }
            self.fire(world, ev);
        }
        self.now
    }

    /// Run at most `n` more events.
    pub fn step(&mut self, world: &mut W, n: u64) -> u64 {
        let mut done = 0;
        while done < n {
            match self.pop_runnable() {
                Some(ev) => {
                    self.fire(world, ev);
                    done += 1;
                }
                None => break,
            }
        }
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_matches_original_semantics() {
        let mut sim: ReferenceSim<Vec<u32>> = ReferenceSim::new();
        let mut world = Vec::new();
        sim.schedule_at(Ps::ns(30), |w: &mut Vec<u32>, _| w.push(3));
        sim.schedule_at(Ps::ns(10), |w: &mut Vec<u32>, _| w.push(1));
        sim.schedule_at(Ps::ns(20), |w: &mut Vec<u32>, _| w.push(2));
        let end = sim.run(&mut world);
        assert_eq!(world, vec![1, 2, 3]);
        assert_eq!(end, Ps::ns(30));
        assert_eq!(sim.events_executed(), 3);
        assert_eq!(sim.events_pending(), 0);
    }

    #[test]
    fn reference_cancel_matches_wheel_semantics() {
        let mut sim: ReferenceSim<Vec<u32>> = ReferenceSim::new();
        let mut world = Vec::new();
        let id = sim.schedule_at_cancellable(Ps::ns(20), |w: &mut Vec<u32>, _| w.push(2));
        sim.schedule_at(Ps::ns(10), |w: &mut Vec<u32>, _| w.push(1));
        assert!(sim.cancel(id));
        assert!(!sim.cancel(id));
        sim.run(&mut world);
        assert_eq!(world, vec![1]);
        // The clock passes through the cancelled instant.
        assert_eq!(sim.now(), Ps::ns(20));
        assert_eq!(sim.events_pending(), 0);
    }
}
