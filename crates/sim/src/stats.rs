//! Measurement helpers: busy-time meters, (x, y) series and summary
//! statistics used by the figure regenerators.

use crate::time::Ps;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Integrates busy time per named category over a simulation run.
///
/// This is the accounting behind the paper's Figure 9: user-library,
/// driver-command and bottom-half CPU time on the receiving host are
/// each a category, and utilization is the integral divided by the
/// experiment duration.
#[derive(Debug, Clone, Default)]
pub struct BusyMeter {
    by_category: BTreeMap<&'static str, Ps>,
}

impl BusyMeter {
    /// An empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charge `amount` of busy time to `category`.
    pub fn charge(&mut self, category: &'static str, amount: Ps) {
        *self.by_category.entry(category).or_insert(Ps::ZERO) += amount;
    }

    /// Total charged to one category.
    pub fn total(&self, category: &str) -> Ps {
        self.by_category.get(category).copied().unwrap_or(Ps::ZERO)
    }

    /// Total across all categories.
    pub fn grand_total(&self) -> Ps {
        self.by_category.values().copied().sum()
    }

    /// Utilization of one category over `[0, horizon]`, in `[0, 1]`.
    pub fn utilization(&self, category: &str, horizon: Ps) -> f64 {
        if horizon == Ps::ZERO {
            return 0.0;
        }
        self.total(category).as_ps() as f64 / horizon.as_ps() as f64
    }

    /// Iterate `(category, busy)` pairs in category order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, Ps)> + '_ {
        self.by_category.iter().map(|(k, v)| (*k, *v))
    }

    /// Fold another meter into this one (used when merging per-core
    /// meters into a host-wide view).
    pub fn merge(&mut self, other: &BusyMeter) {
        for (k, v) in other.iter() {
            self.charge(k, v);
        }
    }

    /// Reset all categories to zero.
    pub fn reset(&mut self) {
        self.by_category.clear();
    }
}

/// One point of a figure series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// X value (message size in bytes for most figures).
    pub x: f64,
    /// Y value (MiB/s, percent CPU, ... depending on the figure).
    pub y: f64,
}

/// A named (x, y) series, e.g. one curve of one paper figure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Series {
    /// Curve label as it appears in the figure legend.
    pub name: String,
    /// Points in x order.
    pub points: Vec<Point>,
}

impl Series {
    /// An empty series with the given legend label.
    pub fn new(name: impl Into<String>) -> Self {
        Series {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Append a point. Callers append in x order; this is asserted so
    /// figure output is always sorted.
    pub fn push(&mut self, x: f64, y: f64) {
        if let Some(last) = self.points.last() {
            assert!(
                x >= last.x,
                "series '{}' points must be x-sorted",
                self.name
            );
        }
        self.points.push(Point { x, y });
    }

    /// Y value at exactly `x`, if present.
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|p| (p.x - x).abs() < 1e-9)
            .map(|p| p.y)
    }

    /// Maximum y value in the series (None when empty).
    pub fn y_max(&self) -> Option<f64> {
        self.points.iter().map(|p| p.y).fold(None, |acc, y| {
            Some(acc.map_or(y, |m: f64| if y > m { y } else { m }))
        })
    }

    /// Render a set of series that share x values as an aligned text
    /// table, one row per x — the exact format the `fig*` binaries print.
    pub fn table(series: &[Series], x_label: &str) -> String {
        let mut out = String::new();
        out.push_str(&format!("{:>12}", x_label));
        for s in series {
            out.push_str(&format!(" {:>28}", s.name));
        }
        out.push('\n');
        let rows = series.iter().map(|s| s.points.len()).max().unwrap_or(0);
        for i in 0..rows {
            let x = series
                .iter()
                .find_map(|s| s.points.get(i))
                .map(|p| p.x)
                .unwrap_or(f64::NAN);
            out.push_str(&format!("{:>12}", format_bytes(x)));
            for s in series {
                match s.points.get(i) {
                    Some(p) => out.push_str(&format!(" {:>28.1}", p.y)),
                    None => out.push_str(&format!(" {:>28}", "-")),
                }
            }
            out.push('\n');
        }
        out
    }
}

/// Format a byte count the way the paper's axes do: 16B, 4kB, 1MB.
pub fn format_bytes(bytes: f64) -> String {
    if !bytes.is_finite() {
        return "-".into();
    }
    let b = bytes as u64;
    if b >= 1 << 20 && b.is_multiple_of(1 << 20) {
        format!("{}MB", b >> 20)
    } else if b >= 1 << 10 && b.is_multiple_of(1 << 10) {
        format!("{}kB", b >> 10)
    } else {
        format!("{b}B")
    }
}

/// Summary statistics over a sample of durations (per-iteration times of
/// a ping-pong, for instance).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Minimum, in picoseconds.
    pub min: Ps,
    /// Maximum, in picoseconds.
    pub max: Ps,
    /// Mean, in picoseconds.
    pub mean: Ps,
    /// Median, in picoseconds.
    pub median: Ps,
}

impl Summary {
    /// Summarize a non-empty sample. Returns `None` on an empty slice.
    pub fn of(samples: &[Ps]) -> Option<Summary> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted: Vec<Ps> = samples.to_vec();
        sorted.sort_unstable();
        let n = sorted.len();
        let sum: u128 = sorted.iter().map(|p| p.as_ps() as u128).sum();
        let median = if n % 2 == 1 {
            sorted[n / 2]
        } else {
            Ps(((sorted[n / 2 - 1].as_ps() as u128 + sorted[n / 2].as_ps() as u128) / 2) as u64)
        };
        Some(Summary {
            n,
            min: sorted[0],
            max: sorted[n - 1],
            mean: Ps((sum / n as u128) as u64),
            median,
        })
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} min={} median={} mean={} max={}",
            self.n, self.min, self.median, self.mean, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_meter_accumulates_and_merges() {
        let mut m = BusyMeter::new();
        m.charge("bh", Ps::ns(100));
        m.charge("bh", Ps::ns(50));
        m.charge("driver", Ps::ns(25));
        assert_eq!(m.total("bh"), Ps::ns(150));
        assert_eq!(m.total("missing"), Ps::ZERO);
        assert_eq!(m.grand_total(), Ps::ns(175));

        let mut other = BusyMeter::new();
        other.charge("bh", Ps::ns(10));
        other.charge("user", Ps::ns(5));
        m.merge(&other);
        assert_eq!(m.total("bh"), Ps::ns(160));
        assert_eq!(m.total("user"), Ps::ns(5));
    }

    #[test]
    fn busy_meter_utilization() {
        let mut m = BusyMeter::new();
        m.charge("bh", Ps::ns(250));
        assert!((m.utilization("bh", Ps::ns(1000)) - 0.25).abs() < 1e-12);
        assert_eq!(m.utilization("bh", Ps::ZERO), 0.0);
        m.reset();
        assert_eq!(m.grand_total(), Ps::ZERO);
    }

    #[test]
    fn series_accumulates_sorted_points() {
        let mut s = Series::new("MX");
        s.push(16.0, 10.0);
        s.push(256.0, 100.0);
        s.push(4096.0, 900.0);
        assert_eq!(s.y_at(256.0), Some(100.0));
        assert_eq!(s.y_at(1.0), None);
        assert_eq!(s.y_max(), Some(900.0));
    }

    #[test]
    #[should_panic(expected = "x-sorted")]
    fn series_rejects_unsorted_points() {
        let mut s = Series::new("bad");
        s.push(100.0, 1.0);
        s.push(50.0, 2.0);
    }

    #[test]
    fn table_renders_aligned_rows() {
        let mut a = Series::new("A");
        a.push(1024.0, 1.0);
        a.push(2048.0, 2.0);
        let mut b = Series::new("B");
        b.push(1024.0, 3.0);
        b.push(2048.0, 4.0);
        let t = Series::table(&[a, b], "size");
        assert!(t.contains("1kB"));
        assert!(t.contains("2kB"));
        assert!(t.lines().count() == 3);
    }

    #[test]
    fn format_bytes_matches_paper_axis_style() {
        assert_eq!(format_bytes(16.0), "16B");
        assert_eq!(format_bytes(4096.0), "4kB");
        assert_eq!(format_bytes((1 << 20) as f64), "1MB");
        assert_eq!(format_bytes((16 << 20) as f64), "16MB");
        assert_eq!(format_bytes(1500.0), "1500B");
    }

    #[test]
    fn summary_statistics() {
        let s = Summary::of(&[Ps::ns(10), Ps::ns(30), Ps::ns(20)]).unwrap();
        assert_eq!(s.n, 3);
        assert_eq!(s.min, Ps::ns(10));
        assert_eq!(s.max, Ps::ns(30));
        assert_eq!(s.mean, Ps::ns(20));
        assert_eq!(s.median, Ps::ns(20));
        // Even count takes the midpoint of the central pair.
        let s = Summary::of(&[Ps::ns(10), Ps::ns(20), Ps::ns(30), Ps::ns(40)]).unwrap();
        assert_eq!(s.median, Ps::ns(25));
        assert!(Summary::of(&[]).is_none());
    }
}
