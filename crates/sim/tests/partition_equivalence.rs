//! The partitioned-engine equivalence wall.
//!
//! Randomized message-passing topologies are run three ways — through
//! [`ReferenceSim`] as one world, through the partitioned protocol
//! with 1/2/4/8 shards sequentially, and with multiple workers — and
//! every observable must agree: per-node delivery traces (time, source,
//! sequence, payload), per-node accumulators (order-scrambled on
//! purpose, so a reordered delivery shows up), the total executed event
//! count, and the final clock (which passes through cancelled-timer
//! tombstones in both engines).
//!
//! The model is a cascade: each delivered frame spawns 1–2 children
//! derived *purely from the frame's content* (so generation is
//! independent of intra-instant execution order), children cross
//! logical nodes with a delay of at least the lookahead `LA` — and
//! sometimes exactly `LA`, landing on the window boundary — plus
//! optional same-node echo events with sub-lookahead delays that stay
//! inside a shard. Every node also arms a cancellable watchdog that any
//! inbound frame revokes: the deterministic tests below aim a relayed
//! cross-partition frame to arrive one picosecond before (and one
//! after) the watchdog instant, pinning cancellation of an in-flight
//! cross-partition race on both sides of the boundary.

use omx_sim::Ps;
use omx_sim::{run_shards, ReferenceSim, Shard, ShardBuilder, Sim, TimerId};
use proptest::prelude::*;

/// Lookahead: the modeled "wire latency" of this toy topology.
const LA: Ps = Ps::ns(100);

/// Watchdog instant. Odd on purpose: every frame arrival in the random
/// cascade lands on an even picosecond, so a frame can never tie with
/// a watchdog and turn the cancel race into an intra-instant ordering
/// question (which the targeted tests pin separately, 1 ps apart).
const WD_AT: Ps = Ps::ps(5_000_001);

/// Trace marker for a watchdog that actually fired.
const WATCHDOG_SEQ: u64 = u64::MAX;

/// Payload magic that turns the cascade into a deterministic relay
/// chain (`dst -> dst+1`, exactly `LA` apart) for the targeted tests.
const RELAY: u64 = 0x5E1A_F00D_5E1A_F00D;

/// A cross-node frame (or same-node echo). The derived `Ord` — `at`,
/// then `src`, then `seq` — is the canonical injection key required by
/// [`Shard`]; `seq` values are splitmix-derived and unique per cascade
/// for every practical purpose, and the remaining fields make the
/// order total regardless.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Msg {
    at: Ps,
    src: usize,
    seq: u64,
    dst: usize,
    hops: u8,
    payload: u64,
}

/// One delivery record: `(time ps, source node, seq, payload)`.
type Rec = (u64, usize, u64, u64);

#[derive(Default)]
struct NodeCell {
    trace: Vec<Rec>,
    acc: u64,
    watchdog: Option<TimerId>,
}

/// Fibonacci/splitmix-style finalizer: the one source of randomness,
/// fully determined by its input (no global RNG, no execution-order
/// dependence).
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Children of a delivered frame, derived from its content alone.
/// Every child pays at least the lookahead; a quarter of them pay
/// *exactly* the lookahead and land on the next window's base.
fn children(msg: &Msg, nodes: usize) -> Vec<Msg> {
    if msg.hops == 0 {
        return Vec::new();
    }
    if msg.payload == RELAY {
        // Deterministic relay: next node, boundary-exact arrival.
        return vec![Msg {
            at: msg.at + LA,
            src: msg.dst,
            seq: mix(msg.seq),
            dst: (msg.dst + 1) % nodes,
            hops: msg.hops - 1,
            payload: RELAY,
        }];
    }
    let fanout = 1 + (mix(msg.seq ^ 0xFA) % 2) as usize;
    (0..fanout)
        .map(|i| {
            let seq = mix(msg.seq ^ ((i as u64 + 1) << 32));
            let extra = if seq.is_multiple_of(4) {
                0 // boundary-exact: arrival lands on h + LA precisely
            } else {
                2 * ((seq >> 8) % 1500) // even, keeps arrivals off WD_AT
            };
            Msg {
                at: msg.at + LA + Ps::ps(extra),
                src: msg.dst,
                seq,
                dst: (mix(seq) % nodes as u64) as usize,
                hops: msg.hops - 1,
                payload: mix(seq ^ msg.payload),
            }
        })
        .collect()
}

/// Optional same-node echo with a sub-lookahead delay — local wheel
/// traffic interleaved inside the window, never crossing a partition.
fn echo(msg: &Msg) -> Option<Msg> {
    (msg.payload != RELAY && msg.seq.is_multiple_of(5)).then(|| Msg {
        at: msg.at + Ps::ps(2 + 2 * (msg.seq % 47)),
        src: msg.dst,
        seq: mix(msg.seq ^ 0xEC),
        dst: msg.dst,
        hops: 0,
        payload: msg.payload.rotate_left(7),
    })
}

/// Record a delivery. The accumulator folds a per-delivery hash that
/// includes the *time*, commutatively: a delivery moved to a different
/// instant (or dropped, or duplicated) changes it, while intra-instant
/// execution order — which the two engines legitimately resolve
/// differently (global schedule order vs canonical key order) — does
/// not.
fn apply(cell: &mut NodeCell, msg: &Msg) {
    cell.trace
        .push((msg.at.as_ps(), msg.src, msg.seq, msg.payload));
    cell.acc = cell
        .acc
        .wrapping_add(mix(msg.payload ^ msg.seq ^ msg.at.as_ps()));
}

/// The frame a firing watchdog emits to its neighbor.
fn watchdog_msg(node: usize, nodes: usize, at: Ps) -> Msg {
    Msg {
        at: at + LA,
        src: node,
        seq: mix(0xD06 ^ ((node as u64) << 8)),
        dst: (node + 1) % nodes,
        hops: 1,
        payload: mix(node as u64),
    }
}

/// A fully-specified workload: the topology size and the initial
/// frames (each injected at its own absolute time).
#[derive(Clone)]
struct Scenario {
    nodes: usize,
    roots: Vec<Msg>,
}

impl Scenario {
    fn random(nodes: usize, seed: u64, roots: usize, hops: u8) -> Scenario {
        let roots = (0..roots)
            .map(|k| {
                let seq = mix(seed ^ ((k as u64) << 40));
                let dst = (mix(seq ^ 1) % nodes as u64) as usize;
                Msg {
                    at: Ps::ps(1_000_000 + 2 * (seq % 1000)),
                    src: (dst + 1) % nodes,
                    seq,
                    dst,
                    hops,
                    payload: mix(seq ^ 2),
                }
            })
            .collect();
        Scenario { nodes, roots }
    }
}

/// Everything observable about one run, in canonical form: per-node
/// `(sorted trace, accumulator)`, total executed events, final clock.
#[derive(Debug, PartialEq, Eq)]
struct Outcome {
    per_node: Vec<(Vec<Rec>, u64)>,
    executed: u64,
    end_ps: u64,
}

/// Canonicalize a node's trace. Within one instant the reference
/// engine runs events in global schedule order while the partitioned
/// engine runs injected frames in canonical key order, so the raw
/// intra-instant *append* order is an engine artifact; the set of
/// deliveries, their times, sources, seqs and payloads are not. (The
/// accumulator catches cross-instant moves, and the cluster-level
/// byte-identity tests pin the production tie order.)
fn canon(mut trace: Vec<Rec>) -> Vec<Rec> {
    trace.sort_unstable();
    trace
}

// ---------------------------------------------------------------
// Reference side: the whole topology in one ReferenceSim.
// ---------------------------------------------------------------

struct RefWorld {
    cells: Vec<NodeCell>,
}

fn ref_deliver(w: &mut RefWorld, sim: &mut ReferenceSim<RefWorld>, msg: Msg) {
    apply(&mut w.cells[msg.dst], &msg);
    if msg.src != msg.dst {
        if let Some(id) = w.cells[msg.dst].watchdog.take() {
            sim.cancel(id);
        }
    }
    for c in children(&msg, w.cells.len()) {
        sim.schedule_at(c.at, move |w: &mut RefWorld, s| ref_deliver(w, s, c));
    }
    if let Some(e) = echo(&msg) {
        sim.schedule_at(e.at, move |w: &mut RefWorld, s| ref_deliver(w, s, e));
    }
}

fn run_reference(scn: &Scenario) -> Outcome {
    let mut sim = ReferenceSim::new();
    let mut w = RefWorld {
        cells: (0..scn.nodes).map(|_| NodeCell::default()).collect(),
    };
    let nodes = scn.nodes;
    for n in 0..nodes {
        let id = sim.schedule_at_cancellable(WD_AT, move |w: &mut RefWorld, s| {
            w.cells[n].watchdog = None;
            w.cells[n].trace.push((WD_AT.as_ps(), n, WATCHDOG_SEQ, 0));
            let m = watchdog_msg(n, nodes, WD_AT);
            s.schedule_at(m.at, move |w: &mut RefWorld, s| ref_deliver(w, s, m));
        });
        w.cells[n].watchdog = Some(id);
    }
    for m in scn.roots.clone() {
        sim.schedule_at(m.at, move |w: &mut RefWorld, s| ref_deliver(w, s, m));
    }
    let end = sim.run(&mut w);
    Outcome {
        per_node: w
            .cells
            .into_iter()
            .map(|c| (canon(c.trace), c.acc))
            .collect(),
        executed: sim.events_executed(),
        end_ps: end.as_ps(),
    }
}

// ---------------------------------------------------------------
// Partitioned side: nodes dealt round-robin onto P shards.
// ---------------------------------------------------------------

fn owner(node: usize, parts: usize) -> usize {
    node % parts
}

struct PartWorld {
    my: usize,
    parts: usize,
    nodes: usize,
    cells: Vec<NodeCell>,
    outbox: Vec<(usize, Msg)>,
}

impl PartWorld {
    fn route(&mut self, sim: &mut Sim<PartWorld>, m: Msg) {
        let dst_shard = owner(m.dst, self.parts);
        if dst_shard == self.my {
            sim.schedule_at(m.at, move |w: &mut PartWorld, s| part_deliver(w, s, m));
        } else {
            self.outbox.push((dst_shard, m));
        }
    }
}

fn part_deliver(w: &mut PartWorld, sim: &mut Sim<PartWorld>, msg: Msg) {
    debug_assert_eq!(owner(msg.dst, w.parts), w.my, "frame delivered off-shard");
    apply(&mut w.cells[msg.dst], &msg);
    if msg.src != msg.dst {
        if let Some(id) = w.cells[msg.dst].watchdog.take() {
            sim.cancel(id);
        }
    }
    for c in children(&msg, w.nodes) {
        w.route(sim, c);
    }
    if let Some(e) = echo(&msg) {
        sim.schedule_at(e.at, move |w: &mut PartWorld, s| part_deliver(w, s, e));
    }
}

impl Shard for PartWorld {
    type Msg = Msg;
    fn msg_at(m: &Msg) -> Ps {
        m.at
    }
    fn take_outbox(&mut self) -> Vec<(usize, Msg)> {
        std::mem::take(&mut self.outbox)
    }
    fn inject(&mut self, sim: &mut Sim<PartWorld>, m: Msg) {
        sim.schedule_at(m.at, move |w: &mut PartWorld, s| part_deliver(w, s, m));
    }
}

fn run_partitioned(scn: &Scenario, parts: usize, workers: usize) -> Outcome {
    let builders: Vec<ShardBuilder<PartWorld, ()>> = (0..parts)
        .map(|p| {
            let scn = scn.clone();
            let b: ShardBuilder<PartWorld, ()> = Box::new(move || {
                let mut sim = Sim::new();
                let mut w = PartWorld {
                    my: p,
                    parts,
                    nodes: scn.nodes,
                    cells: (0..scn.nodes).map(|_| NodeCell::default()).collect(),
                    outbox: Vec::new(),
                };
                let nodes = scn.nodes;
                for n in (0..nodes).filter(|&n| owner(n, parts) == p) {
                    let id = sim.schedule_at_cancellable(
                        WD_AT,
                        move |w: &mut PartWorld, s: &mut Sim<PartWorld>| {
                            w.cells[n].watchdog = None;
                            w.cells[n].trace.push((WD_AT.as_ps(), n, WATCHDOG_SEQ, 0));
                            let m = watchdog_msg(n, nodes, WD_AT);
                            w.route(s, m);
                        },
                    );
                    w.cells[n].watchdog = Some(id);
                }
                for m in scn.roots.iter().filter(|m| owner(m.dst, parts) == p) {
                    let m = m.clone();
                    sim.schedule_at(m.at, move |w: &mut PartWorld, s| part_deliver(w, s, m));
                }
                (sim, w, ())
            });
            b
        })
        .collect();
    let shard_outs = run_shards(builders, LA, workers, |_, sim, w, ()| {
        let cells: Vec<(usize, Vec<Rec>, u64)> = (0..w.nodes)
            .filter(|&n| owner(n, w.parts) == w.my)
            .map(|n| {
                let cell = &mut w.cells[n];
                (n, std::mem::take(&mut cell.trace), cell.acc)
            })
            .collect();
        (cells, sim.events_executed(), sim.now().as_ps())
    });
    let mut per_node = vec![(Vec::new(), 0u64); scn.nodes];
    let mut executed = 0;
    let mut end_ps = 0;
    for (cells, ex, now) in shard_outs {
        for (n, trace, acc) in cells {
            per_node[n] = (canon(trace), acc);
        }
        executed += ex;
        end_ps = end_ps.max(now);
    }
    Outcome {
        per_node,
        executed,
        end_ps,
    }
}

/// The wall itself: one scenario, every partitioning, every worker
/// count, all equal to the reference.
fn assert_equivalent(scn: &Scenario) {
    let reference = run_reference(scn);
    assert!(
        reference.per_node.iter().any(|(t, _)| !t.is_empty()),
        "degenerate scenario: nothing was delivered"
    );
    for parts in [1usize, 2, 4, 8] {
        for workers in [1usize, 4] {
            let got = run_partitioned(scn, parts, workers);
            assert_eq!(
                got,
                reference,
                "{parts} partitions / {workers} workers diverged from ReferenceSim \
                 on {} nodes / {} roots",
                scn.nodes,
                scn.roots.len()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Randomized topologies: node count, seed, root count and cascade
    /// depth all vary; 1/2/4/8 partitions × 1/4 workers must match the
    /// reference engine exactly (including shard counts exceeding the
    /// node count, which leaves some shards permanently empty).
    #[test]
    fn random_topologies_match_reference(
        nodes in 2usize..10,
        seed in any::<u64>(),
        roots in 1usize..6,
        hops in 1u8..6,
    ) {
        assert_equivalent(&Scenario::random(nodes, seed, roots, hops));
    }
}

/// A relay chain whose every hop lands exactly on the window boundary
/// (`arrival == h + LA`): the most partition-hostile schedule there is.
/// Frames must be delivered exactly once, exactly `LA` apart, and the
/// whole cascade must match the reference bit for bit.
#[test]
fn boundary_exact_relay_matches_reference() {
    let scn = Scenario {
        nodes: 5,
        roots: vec![Msg {
            at: Ps::ps(1_000_000),
            src: 4,
            seq: mix(1),
            dst: 0,
            hops: 12,
            payload: RELAY,
        }],
    };
    assert_equivalent(&scn);
    // And the spacing property itself: relay deliveries are exactly one
    // lookahead apart.
    let outcome = run_partitioned(&scn, 4, 2);
    let mut relay_times: Vec<u64> = outcome
        .per_node
        .iter()
        .flat_map(|(t, _)| t.iter())
        .filter(|r| r.3 == RELAY)
        .map(|r| r.0)
        .collect();
    relay_times.sort_unstable();
    assert_eq!(relay_times.len(), 13, "12 hops + the root delivery");
    for pair in relay_times.windows(2) {
        assert_eq!(
            pair[1] - pair[0],
            LA.as_ps(),
            "hops must be exactly LA apart"
        );
    }
}

/// Cancel race, cancel-wins side: a relayed frame crosses the
/// partition boundary in flight and arrives one picosecond *before*
/// the destination node's watchdog, which must therefore be revoked on
/// every partitioning — and the whole outcome must equal the
/// reference's.
#[test]
fn in_flight_cross_partition_frame_cancels_the_watchdog() {
    // Root fires on node 0 (shard 0 of 2); its relay child crosses to
    // node 1 (shard 1) arriving at WD_AT - 1 ps.
    let scn = Scenario {
        nodes: 2,
        roots: vec![Msg {
            at: WD_AT - LA - Ps::ps(1),
            src: 1,
            seq: mix(7),
            dst: 0,
            hops: 1,
            payload: RELAY,
        }],
    };
    assert_equivalent(&scn);
    let outcome = run_partitioned(&scn, 2, 2);
    let node1_watchdog_fired = outcome.per_node[1].0.iter().any(|r| r.2 == WATCHDOG_SEQ);
    assert!(
        !node1_watchdog_fired,
        "frame arrived 1 ps before the watchdog; the cancel must win"
    );
}

/// Cancel race, fire-wins side: the same relay shifted two picoseconds
/// later arrives one picosecond *after* the watchdog instant — the
/// watchdog fires first on every partitioning, and the late frame's
/// cancel is a no-op. Still bit-identical to the reference.
#[test]
fn watchdog_fires_when_the_cross_partition_frame_is_late() {
    let scn = Scenario {
        nodes: 2,
        roots: vec![Msg {
            at: WD_AT - LA + Ps::ps(1),
            src: 1,
            seq: mix(7),
            dst: 0,
            hops: 1,
            payload: RELAY,
        }],
    };
    assert_equivalent(&scn);
    let outcome = run_partitioned(&scn, 2, 2);
    let node1_watchdog_fired = outcome.per_node[1].0.iter().any(|r| r.2 == WATCHDOG_SEQ);
    assert!(
        node1_watchdog_fired,
        "frame arrived 1 ps after the watchdog instant; the fire must win"
    );
}
