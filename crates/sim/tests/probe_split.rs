//! Manual diagnostic (not run in CI): splits the distinct-ns shape
//! into schedule and drain phases for both engines. Run with
//! `cargo test --release -p omx-sim --test probe_split -- --ignored --nocapture`.

use omx_sim::walltime::Stopwatch;
use omx_sim::{Ps, ReferenceSim, Sim};

#[test]
#[ignore]
fn probe_schedule_vs_drain() {
    const N: u64 = 10_000;
    for rep in 0..5 {
        let mut sim: Sim<u64> = Sim::new();
        let mut world = 0u64;
        let sw = Stopwatch::start();
        for i in 0..N {
            sim.schedule_at(Ps::ns(i), |w: &mut u64, _| *w += 1);
        }
        let sched = sw.elapsed_secs();
        let sw = Stopwatch::start();
        sim.run(&mut world);
        let drain = sw.elapsed_secs();

        let mut rsim: ReferenceSim<u64> = ReferenceSim::new();
        let mut rworld = 0u64;
        let sw = Stopwatch::start();
        for i in 0..N {
            rsim.schedule_at(Ps::ns(i), |w: &mut u64, _| *w += 1);
        }
        let rsched = sw.elapsed_secs();
        let sw = Stopwatch::start();
        rsim.run(&mut rworld);
        let rdrain = sw.elapsed_secs();

        println!(
            "rep {rep}: wheel sched {:6.1} drain {:6.1} | heap sched {:6.1} drain {:6.1} (ns/ev)",
            sched * 1e9 / N as f64,
            drain * 1e9 / N as f64,
            rsched * 1e9 / N as f64,
            rdrain * 1e9 / N as f64,
        );
        assert_eq!(world, rworld);
    }
}
