//! Scheduler equivalence: the timing-wheel engine must execute any
//! workload in exactly the order of the reference `BinaryHeap`
//! scheduler it replaced. A property test drives both engines through
//! random op sequences (schedules across every delay class, timer
//! cancellations, bounded runs, stepping) and compares full execution
//! traces; deterministic stress tests pin the documented edge cases —
//! FIFO at a million same-instant events and the overflow-wheel
//! cascade.

use omx_sim::{Ps, ReferenceSim, Sim, SplitMix64};
use proptest::prelude::*;

/// One scripted action against an engine.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Schedule a plain event (delay class, magnitude).
    Schedule(u8, u64),
    /// Schedule a cancellable event.
    ScheduleCancellable(u8, u64),
    /// Cancel the i-th (mod len) timer handed out so far.
    Cancel(usize),
    /// Run until `now + delta(class, magnitude)`.
    RunUntil(u8, u64),
    /// Run at most `n` events.
    Step(u64),
}

/// Map a (class, magnitude) pair onto the engine's interesting delay
/// regimes: same instant, within the cursor slot, inside the wheel
/// window, beyond it (level-1 territory for a two-level wheel, the
/// overflow heap otherwise, ≳ 67 µs out), and straddling the ~34 ms
/// level-1 boundary (the far heap in both configurations past it).
fn delay(class: u8, mag: u64) -> Ps {
    match class % 5 {
        0 => Ps::ZERO,
        1 => Ps::ns(1 + mag % 200),
        2 => Ps::us(1 + mag % 60),
        3 => Ps::us(70 + mag % 5000),
        _ => Ps::ms(30 + mag % 20),
    }
}

/// Run `ops` against an engine type, returning the trace of executed
/// events as (label, firing time) plus the final clock. Written as a
/// macro because `Sim` and `ReferenceSim` share an API surface but no
/// trait.
macro_rules! run_ops {
    ($SimTy:ident, $ops:expr) => {
        run_ops!($SimTy::new(), $ops)
    };
    ($ctor:expr, $ops:expr) => {{
        let mut sim = $ctor;
        let mut world: Vec<(u32, u64)> = Vec::new();
        let mut timers = Vec::new();
        let mut label = 0u32;
        for op in $ops.iter() {
            match *op {
                Op::Schedule(class, mag) => {
                    let l = label;
                    label += 1;
                    sim.schedule_in(delay(class, mag), move |w: &mut Vec<(u32, u64)>, s| {
                        let now = s.now().0;
                        w.push((l, now));
                    });
                }
                Op::ScheduleCancellable(class, mag) => {
                    let l = label;
                    label += 1;
                    let id = sim.schedule_in_cancellable(
                        delay(class, mag),
                        move |w: &mut Vec<(u32, u64)>, s| {
                            let now = s.now().0;
                            w.push((l, now));
                        },
                    );
                    timers.push(id);
                }
                Op::Cancel(i) => {
                    if !timers.is_empty() {
                        let id = timers[i % timers.len()];
                        sim.cancel(id);
                    }
                }
                Op::RunUntil(class, mag) => {
                    let deadline = Ps(sim.now().0 + delay(class, mag).0);
                    sim.run_until(&mut world, deadline);
                }
                Op::Step(n) => {
                    sim.step(&mut world, n % 16);
                }
            }
        }
        sim.run(&mut world);
        (sim.now().0, sim.events_executed(), world)
    }};
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Plain schedules repeated to bias the mix toward them.
    prop_oneof![
        (any::<u8>(), any::<u64>()).prop_map(|(c, m)| Op::Schedule(c, m)),
        (any::<u8>(), any::<u64>()).prop_map(|(c, m)| Op::Schedule(c, m)),
        (any::<u8>(), any::<u64>()).prop_map(|(c, m)| Op::ScheduleCancellable(c, m)),
        any::<usize>().prop_map(Op::Cancel),
        (any::<u8>(), any::<u64>()).prop_map(|(c, m)| Op::RunUntil(c, m)),
        any::<u64>().prop_map(Op::Step),
    ]
}

proptest! {
    /// Bit-identical execution order for arbitrary op sequences, at
    /// both wheel depths.
    #[test]
    fn wheel_matches_reference_scheduler(ops in proptest::collection::vec(op_strategy(), 0..200)) {
        let heap = run_ops!(ReferenceSim, ops);
        let wheel = run_ops!(Sim, ops);
        prop_assert_eq!(&wheel, &heap);
        let wheel2 = run_ops!(Sim::with_wheel_levels(2), ops);
        prop_assert_eq!(&wheel2, &heap);
    }
}

#[test]
fn fifo_order_holds_at_one_million_same_instant_events() {
    const N: u32 = 1_000_000;
    let mut sim: Sim<Vec<u32>> = Sim::new();
    let mut world = Vec::with_capacity(N as usize);
    let at = Ps::us(3);
    for i in 0..N {
        sim.schedule_at(at, move |w: &mut Vec<u32>, _| w.push(i));
    }
    let end = sim.run(&mut world);
    assert_eq!(end, at);
    assert_eq!(world.len(), N as usize);
    assert!(
        world.iter().enumerate().all(|(i, &v)| v == i as u32),
        "same-instant events executed out of schedule order"
    );
}

#[test]
fn overflow_cascade_preserves_global_order() {
    // Pseudo-random timestamps spread far beyond the wheel window, so
    // most events start on the overflow heap and cascade in as the
    // cursor advances. Both engines must agree exactly.
    const N: u64 = 4_000;
    let times: Vec<u64> = {
        let mut rng = SplitMix64::new(0x9E37_79B9_7F4A_7C15);
        (0..N).map(|_| rng.next_u64() % 10_000_000_000).collect()
    };
    let run = |times: &[u64], levels: u32| {
        let mut sim: Sim<Vec<(u32, u64)>> = Sim::with_wheel_levels(levels);
        let mut world = Vec::new();
        for (i, &t) in times.iter().enumerate() {
            let l = i as u32;
            sim.schedule_at(Ps(t), move |w: &mut Vec<(u32, u64)>, s| {
                let now = s.now().0;
                w.push((l, now));
            });
        }
        sim.run(&mut world);
        world
    };
    let run_ref = |times: &[u64]| {
        let mut sim: ReferenceSim<Vec<(u32, u64)>> = ReferenceSim::new();
        let mut world = Vec::new();
        for (i, &t) in times.iter().enumerate() {
            let l = i as u32;
            sim.schedule_at(Ps(t), move |w: &mut Vec<(u32, u64)>, s| {
                let now = s.now().0;
                w.push((l, now));
            });
        }
        sim.run(&mut world);
        world
    };
    let wheel = run(&times, 1);
    let heap = run_ref(&times);
    assert_eq!(wheel.len(), N as usize);
    assert_eq!(wheel, heap);
    // The 10 ms spread keeps most events in level-1 territory for the
    // two-level wheel: same trace required.
    assert_eq!(run(&times, 2), heap);
    // And the trace really is (time, schedule-order) sorted.
    let mut sorted = wheel.clone();
    sorted.sort_by_key(|&(l, t)| (t, l));
    assert_eq!(wheel, sorted);
}
