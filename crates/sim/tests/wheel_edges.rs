//! Timing-wheel edge cases the equivalence property test only hits by
//! luck: cancelling an entry while it still sits on the overflow heap
//! (before the cascade adopts it into the wheel), schedules landing
//! exactly on the wheel-window boundary, and slab-index reuse after
//! tombstoned cancels. Every scenario runs against both engines and
//! compares full execution traces, so the `ReferenceSim` binary heap
//! stays the oracle.

use omx_sim::{Ps, ReferenceSim, Sim};

/// Slot width and window span of the wheel (`2^SLOT_SHIFT` ps × 512
/// slots, see `crates/sim/src/wheel.rs`). The constants are crate
/// private by design; the tests pin the documented geometry so a silent
/// resize of the window shows up here.
const SLOT_PS: u64 = 1 << 17;
const WINDOW_PS: u64 = 512 * SLOT_PS;

/// Drive one engine through a scenario and capture its trace. Written
/// as a macro because `Sim` and `ReferenceSim` share an API surface
/// but no trait. The second form takes an explicit constructor
/// expression (e.g. `Sim::with_wheel_levels(2)`).
macro_rules! trace {
    ($SimTy:ident, $scenario:ident) => {
        trace!($SimTy::new(), $scenario)
    };
    ($ctor:expr, $scenario:ident) => {{
        let mut sim = $ctor;
        let mut world: Vec<(u32, u64)> = Vec::new();
        $scenario!(sim, world);
        sim.run(&mut world);
        (sim.now().0, sim.events_executed(), world)
    }};
}

/// Push a labelled marker event when it fires.
macro_rules! mark {
    ($sim:ident, at $t:expr, label $l:expr) => {
        $sim.schedule_at(Ps($t), move |w: &mut Vec<(u32, u64)>, s| {
            let now = s.now().0;
            w.push(($l, now));
        })
    };
    ($sim:ident, in $d:expr, label $l:expr) => {
        $sim.schedule_in($d, move |w: &mut Vec<(u32, u64)>, s| {
            let now = s.now().0;
            w.push(($l, now));
        })
    };
    ($sim:ident, cancellable in $d:expr, label $l:expr) => {
        $sim.schedule_in_cancellable($d, move |w: &mut Vec<(u32, u64)>, s| {
            let now = s.now().0;
            w.push(($l, now));
        })
    };
    ($sim:ident, cancellable at $t:expr, label $l:expr) => {
        $sim.schedule_at_cancellable(Ps($t), move |w: &mut Vec<(u32, u64)>, s| {
            let now = s.now().0;
            w.push(($l, now));
        })
    };
}

#[test]
fn cancel_on_overflow_heap_before_cascade() {
    // The victim sits far beyond the wheel window, so it lives on the
    // overflow heap when the cancel lands; it must never fire even
    // though the cascade later sweeps its timestamp range, and the
    // surviving events must execute in exactly the reference order.
    macro_rules! scenario {
        ($sim:ident, $world:ident) => {
            // In-window bystanders on both sides of the victim's slot.
            mark!($sim, in Ps::us(1), label 0);
            mark!($sim, in Ps::us(150), label 1);
            // Victims beyond the window (~67 us): cancel one
            // immediately (still on the heap), cancel one after time
            // has advanced but before its cascade, keep one alive.
            let dead_now = mark!($sim, cancellable in Ps::us(100), label 2);
            let dead_later = mark!($sim, cancellable in Ps::us(120), label 3);
            let alive = mark!($sim, cancellable in Ps::us(140), label 4);
            let _ = alive;
            $sim.cancel(dead_now);
            // Advance to ~50 us: cursor moved, victims still > window
            // away? (50 us + 67 us window covers them — the cascade has
            // adopted nothing past `now`, so the second cancel hits
            // either heap or wheel depending on engine internals; both
            // must tombstone correctly.)
            $sim.run_until(&mut $world, Ps::us(50));
            $sim.cancel(dead_later);
        };
    }
    let wheel = trace!(Sim, scenario);
    let heap = trace!(ReferenceSim, scenario);
    assert_eq!(wheel, heap);
    let labels: Vec<u32> = wheel.2.iter().map(|&(l, _)| l).collect();
    assert_eq!(labels, vec![0, 4, 1], "cancelled overflow entries fired");
    // With two levels the victims are level-1 residents, not heap
    // entries; the tombstones must behave identically.
    let wheel2 = trace!(Sim::with_wheel_levels(2), scenario);
    assert_eq!(wheel2, heap);
}

#[test]
fn cancel_far_future_entry_that_never_cascades() {
    // A cancelled overflow entry whose timestamp is *beyond* the last
    // live event: the engine must not keep the clock hostage to a
    // tombstone, and both engines must agree on the final time.
    macro_rules! scenario {
        ($sim:ident, $world:ident) => {
            mark!($sim, in Ps::us(5), label 0);
            let doomed = mark!($sim, cancellable in Ps::ms(50), label 99);
            $sim.cancel(doomed);
        };
    }
    let wheel = trace!(Sim, scenario);
    let heap = trace!(ReferenceSim, scenario);
    assert_eq!(wheel, heap);
    assert_eq!(wheel.2.len(), 1, "only the live event fires");
    let wheel2 = trace!(Sim::with_wheel_levels(2), scenario);
    assert_eq!(wheel2, heap);
}

#[test]
fn schedule_exactly_on_window_boundary() {
    // From a zero cursor the window covers slots [0, 512); an event at
    // exactly `WINDOW_PS` is the first instant that must overflow, and
    // `WINDOW_PS - 1` the last that fits the wheel. Straddle the edge
    // from both a cold start and an advanced cursor, including exact
    // slot-width multiples and same-instant FIFO ties on the boundary.
    macro_rules! scenario {
        ($sim:ident, $world:ident) => {
            mark!($sim, at WINDOW_PS - 1, label 0);
            mark!($sim, at WINDOW_PS, label 1);
            mark!($sim, at WINDOW_PS, label 2); // FIFO tie on the edge
            mark!($sim, at WINDOW_PS + 1, label 3);
            mark!($sim, at 2 * WINDOW_PS, label 4);
            // Advance the cursor mid-window, then straddle the *new*
            // window edge relative to the moved cursor.
            $sim.run_until(&mut $world, Ps(3 * SLOT_PS + 7));
            let base = $sim.now().0;
            mark!($sim, at base + WINDOW_PS - 1, label 5);
            mark!($sim, at base + WINDOW_PS, label 6);
            // Exact slot-width multiples around the edge.
            mark!($sim, at base + WINDOW_PS - SLOT_PS, label 7);
            mark!($sim, at base + WINDOW_PS + SLOT_PS, label 8);
        };
    }
    let wheel = trace!(Sim, scenario);
    let heap = trace!(ReferenceSim, scenario);
    assert_eq!(wheel, heap);
    assert_eq!(wheel.2.len(), 9, "every boundary event fires exactly once");
    // The trace really is (time, schedule-order) sorted.
    let mut sorted = wheel.2.clone();
    sorted.sort_by_key(|&(l, t)| (t, l));
    assert_eq!(wheel.2, sorted);
    // With two levels the same boundary instants are level-0/level-1
    // routing decisions instead of wheel/heap ones.
    let wheel2 = trace!(Sim::with_wheel_levels(2), scenario);
    assert_eq!(wheel2, heap);
}

#[test]
fn slab_reuse_after_tombstoned_cancels() {
    // Repeatedly fill a window with cancellable events, tombstone most
    // of them, and drain: freed slab nodes must be reused without
    // resurrecting cancelled closures or breaking FIFO order. Eight
    // generations guarantee the free list cycles many times.
    macro_rules! scenario {
        ($sim:ident, $world:ident) => {
            let mut label = 0u32;
            for _gen in 0..8u32 {
                let mut timers = Vec::new();
                for k in 0..64u64 {
                    let l = label;
                    label += 1;
                    // Spread across the window, several per slot.
                    let id = mark!($sim, cancellable in Ps(1 + (k % 16) * SLOT_PS / 3), label l);
                    timers.push(id);
                }
                // Cancel three of every four — including double-cancels
                // of the same id, which must be idempotent.
                for (i, &id) in timers.iter().enumerate() {
                    if i % 4 != 0 {
                        $sim.cancel(id);
                    }
                    if i % 8 == 1 {
                        $sim.cancel(id);
                    }
                }
                // Interleave plain events that must claim freed nodes.
                for k in 0..16u64 {
                    let l = label;
                    label += 1;
                    mark!($sim, in Ps(1 + k * SLOT_PS / 5), label l);
                }
                // Drain this generation completely before the next.
                let deadline = Ps($sim.now().0 + 20 * SLOT_PS);
                $sim.run_until(&mut $world, deadline);
            }
        };
    }
    let wheel = trace!(Sim, scenario);
    let heap = trace!(ReferenceSim, scenario);
    assert_eq!(wheel, heap);
    // 8 generations × (16 survivors + 16 plain) events.
    assert_eq!(wheel.2.len(), 8 * 32, "wrong survivor count after reuse");
    let wheel2 = trace!(Sim::with_wheel_levels(2), scenario);
    assert_eq!(wheel2, heap);
}

#[test]
fn cancel_after_fire_is_idempotent_across_engines() {
    // Cancelling a timer that already fired must be a no-op in both
    // engines even when its slab slot has been handed to a new event.
    macro_rules! scenario {
        ($sim:ident, $world:ident) => {
            let early = mark!($sim, cancellable in Ps::ns(10), label 0);
            $sim.run_until(&mut $world, Ps::us(1));
            // `early` fired; its node is free. Claim it, then cancel
            // the stale id.
            mark!($sim, cancellable in Ps::ns(10), label 1);
            $sim.cancel(early);
        };
    }
    let wheel = trace!(Sim, scenario);
    let heap = trace!(ReferenceSim, scenario);
    assert_eq!(wheel, heap);
    let labels: Vec<u32> = wheel.2.iter().map(|&(l, _)| l).collect();
    assert_eq!(labels, vec![0, 1], "stale cancel clobbered a reused slot");
    let wheel2 = trace!(Sim::with_wheel_levels(2), scenario);
    assert_eq!(wheel2, heap);
}

/// Span of the level-1 ring: 512 level-1 slots, each one level-0
/// window wide (~34 ms total).
const L1_WINDOW_PS: u64 = 512 * WINDOW_PS;

#[test]
fn level1_boundary_instants_match_reference() {
    // With two wheel levels the interesting edges move: `WINDOW_PS` is
    // the first instant that leaves level 0 for level 1, and
    // `L1_WINDOW_PS` (plus the partial slot the cursor sits in) is the
    // first that must overflow to the far heap. Straddle both edges
    // from a cold start and from an advanced (unaligned) cursor,
    // with FIFO ties on each edge.
    macro_rules! scenario {
        ($sim:ident, $world:ident) => {
            mark!($sim, at WINDOW_PS - 1, label 0);
            mark!($sim, at WINDOW_PS, label 1); // first level-1 resident
            mark!($sim, at WINDOW_PS, label 2); // FIFO tie on the edge
            mark!($sim, at L1_WINDOW_PS - 1, label 3);
            mark!($sim, at L1_WINDOW_PS, label 4);
            mark!($sim, at L1_WINDOW_PS + WINDOW_PS, label 5); // beyond even the partial slot
            // Advance into the middle of a slot so the cursor is
            // unaligned with the level-1 grid, then straddle again.
            $sim.run_until(&mut $world, Ps(5 * SLOT_PS + 11));
            let base = $sim.now().0;
            mark!($sim, at base + WINDOW_PS - 1, label 6);
            mark!($sim, at base + WINDOW_PS, label 7);
            mark!($sim, at base + L1_WINDOW_PS, label 8);
            mark!($sim, at base + L1_WINDOW_PS + WINDOW_PS, label 9);
        };
    }
    let heap = trace!(ReferenceSim, scenario);
    let wheel1 = trace!(Sim, scenario);
    let wheel2 = trace!(Sim::with_wheel_levels(2), scenario);
    assert_eq!(wheel1, heap);
    assert_eq!(wheel2, heap);
    assert_eq!(
        wheel2.2.len(),
        10,
        "every boundary event fires exactly once"
    );
    let mut sorted = wheel2.2.clone();
    sorted.sort_by_key(|&(l, t)| (t, l));
    assert_eq!(wheel2.2, sorted);
}

#[test]
fn cancel_while_resident_in_level1() {
    // Cancel events at every stage of a level-1 residency: right after
    // the push, after the cursor has advanced but before their slot
    // cascades, and (as a control) after the cascade has already moved
    // them down to level 0. None may fire; survivors keep exact order.
    macro_rules! scenario {
        ($sim:ident, $world:ident) => {
            mark!($sim, in Ps::us(1), label 0);
            // All three victims sit ~30 level-0 windows out: level-1
            // residents in the two-level engine, heap entries in the
            // one-level engine.
            let a = mark!($sim, cancellable at 30 * WINDOW_PS + 5, label 1);
            let b = mark!($sim, cancellable at 30 * WINDOW_PS + 7, label 2);
            let keep = mark!($sim, cancellable at 30 * WINDOW_PS + 9, label 3);
            let _ = keep;
            $sim.cancel(a); // cancelled while freshly resident
            // Advance close enough that the victims' level-1 slot is
            // next but has not cascaded yet (still beyond the level-0
            // window).
            $sim.run_until(&mut $world, Ps(29 * WINDOW_PS - 3 * SLOT_PS));
            $sim.cancel(b); // cancelled mid-residency
            // Advance past the cascade; cancel something already
            // moved down to level 0.
            let c = mark!($sim, cancellable at 30 * WINDOW_PS + 11, label 4);
            $sim.run_until(&mut $world, Ps(30 * WINDOW_PS));
            $sim.cancel(c);
        };
    }
    let heap = trace!(ReferenceSim, scenario);
    let wheel1 = trace!(Sim, scenario);
    let wheel2 = trace!(Sim::with_wheel_levels(2), scenario);
    assert_eq!(wheel1, heap);
    assert_eq!(wheel2, heap);
    let labels: Vec<u32> = wheel2.2.iter().map(|&(l, _)| l).collect();
    assert_eq!(labels, vec![0, 3], "cancelled level-1 residents fired");
}

#[test]
fn whole_level1_slot_cascades_onto_one_level0_slot() {
    // Many events inside one level-1 slot that all share a single
    // level-0 slot (same ~131 ns bucket, distinct instants plus FIFO
    // ties): the cascade must land them all in that one slot and the
    // adoption sort must reconstruct exact (time, seq) order.
    macro_rules! scenario {
        ($sim:ident, $world:ident) => {
            let base = 40 * WINDOW_PS + 17 * SLOT_PS; // one level-0 slot, far out
            for k in 0..24u64 {
                // 24 events inside one slot: ties every third instant.
                mark!($sim, at base + (k / 3), label k as u32);
            }
            // A stray event in the *previous* level-0 slot of the same
            // level-1 slot, scheduled last: fires first.
            mark!($sim, at base - SLOT_PS, label 99);
        };
    }
    let heap = trace!(ReferenceSim, scenario);
    let wheel1 = trace!(Sim, scenario);
    let wheel2 = trace!(Sim::with_wheel_levels(2), scenario);
    assert_eq!(wheel1, heap);
    assert_eq!(wheel2, heap);
    let labels: Vec<u32> = wheel2.2.iter().map(|&(l, _)| l).collect();
    let mut want: Vec<u32> = vec![99];
    want.extend(0..24);
    assert_eq!(labels, want, "cascade broke slot-internal order");
}

#[test]
fn reschedule_across_levels() {
    // A recurring timer that hops between delay regimes — cursor slot,
    // level-0 window, level-1 range, beyond level-1 — cancelling and
    // re-arming itself each time it fires. Both the cancels and the
    // re-arms cross level boundaries in every direction.
    macro_rules! scenario {
        ($sim:ident, $world:ident) => {
            // Hop pattern cycles: near, far (level 1), very far (heap
            // in both engines), slot-local.
            let delays: [u64; 8] = [
                SLOT_PS / 2,          // cursor slot
                3 * WINDOW_PS,        // level 1
                WINDOW_PS / 2,        // level 0
                600 * WINDOW_PS,      // beyond level-1 coverage
                WINDOW_PS,            // exactly the level-0 edge
                L1_WINDOW_PS,         // exactly the level-1 edge
                7,                    // same slot again
                2 * WINDOW_PS + 1,    // level 1 again
            ];
            // Shadow timers armed one hop ahead and cancelled when the
            // main timer fires, so cancellation also crosses levels.
            for (i, &d) in delays.iter().enumerate() {
                let l = i as u32;
                mark!($sim, in Ps(d), label l);
                let shadow = mark!($sim, cancellable in Ps(d + WINDOW_PS / 4), label 100 + l);
                // Cancel shadows of even hops immediately (while
                // resident wherever `d` put them); odd ones survive.
                if i % 2 == 0 {
                    $sim.cancel(shadow);
                }
            }
            // Let some fire, then re-arm across the opposite level.
            $sim.run_until(&mut $world, Ps(4 * WINDOW_PS));
            mark!($sim, in Ps(500 * WINDOW_PS), label 200);
            mark!($sim, in Ps(SLOT_PS), label 201);
        };
    }
    let heap = trace!(ReferenceSim, scenario);
    let wheel1 = trace!(Sim, scenario);
    let wheel2 = trace!(Sim::with_wheel_levels(2), scenario);
    assert_eq!(wheel1, heap);
    assert_eq!(wheel2, heap);
}
