//! Timing-wheel edge cases the equivalence property test only hits by
//! luck: cancelling an entry while it still sits on the overflow heap
//! (before the cascade adopts it into the wheel), schedules landing
//! exactly on the wheel-window boundary, and slab-index reuse after
//! tombstoned cancels. Every scenario runs against both engines and
//! compares full execution traces, so the `ReferenceSim` binary heap
//! stays the oracle.

use omx_sim::{Ps, ReferenceSim, Sim};

/// Slot width and window span of the wheel (`2^SLOT_SHIFT` ps × 512
/// slots, see `crates/sim/src/wheel.rs`). The constants are crate
/// private by design; the tests pin the documented geometry so a silent
/// resize of the window shows up here.
const SLOT_PS: u64 = 1 << 17;
const WINDOW_PS: u64 = 512 * SLOT_PS;

/// Drive one engine through a scenario and capture its trace. Written
/// as a macro because `Sim` and `ReferenceSim` share an API surface
/// but no trait.
macro_rules! trace {
    ($SimTy:ident, $scenario:ident) => {{
        let mut sim: $SimTy<Vec<(u32, u64)>> = $SimTy::new();
        let mut world: Vec<(u32, u64)> = Vec::new();
        $scenario!(sim, world);
        sim.run(&mut world);
        (sim.now().0, sim.events_executed(), world)
    }};
}

/// Push a labelled marker event when it fires.
macro_rules! mark {
    ($sim:ident, at $t:expr, label $l:expr) => {
        $sim.schedule_at(Ps($t), move |w: &mut Vec<(u32, u64)>, s| {
            let now = s.now().0;
            w.push(($l, now));
        })
    };
    ($sim:ident, in $d:expr, label $l:expr) => {
        $sim.schedule_in($d, move |w: &mut Vec<(u32, u64)>, s| {
            let now = s.now().0;
            w.push(($l, now));
        })
    };
    ($sim:ident, cancellable in $d:expr, label $l:expr) => {
        $sim.schedule_in_cancellable($d, move |w: &mut Vec<(u32, u64)>, s| {
            let now = s.now().0;
            w.push(($l, now));
        })
    };
}

#[test]
fn cancel_on_overflow_heap_before_cascade() {
    // The victim sits far beyond the wheel window, so it lives on the
    // overflow heap when the cancel lands; it must never fire even
    // though the cascade later sweeps its timestamp range, and the
    // surviving events must execute in exactly the reference order.
    macro_rules! scenario {
        ($sim:ident, $world:ident) => {
            // In-window bystanders on both sides of the victim's slot.
            mark!($sim, in Ps::us(1), label 0);
            mark!($sim, in Ps::us(150), label 1);
            // Victims beyond the window (~67 us): cancel one
            // immediately (still on the heap), cancel one after time
            // has advanced but before its cascade, keep one alive.
            let dead_now = mark!($sim, cancellable in Ps::us(100), label 2);
            let dead_later = mark!($sim, cancellable in Ps::us(120), label 3);
            let alive = mark!($sim, cancellable in Ps::us(140), label 4);
            let _ = alive;
            $sim.cancel(dead_now);
            // Advance to ~50 us: cursor moved, victims still > window
            // away? (50 us + 67 us window covers them — the cascade has
            // adopted nothing past `now`, so the second cancel hits
            // either heap or wheel depending on engine internals; both
            // must tombstone correctly.)
            $sim.run_until(&mut $world, Ps::us(50));
            $sim.cancel(dead_later);
        };
    }
    let wheel = trace!(Sim, scenario);
    let heap = trace!(ReferenceSim, scenario);
    assert_eq!(wheel, heap);
    let labels: Vec<u32> = wheel.2.iter().map(|&(l, _)| l).collect();
    assert_eq!(labels, vec![0, 4, 1], "cancelled overflow entries fired");
}

#[test]
fn cancel_far_future_entry_that_never_cascades() {
    // A cancelled overflow entry whose timestamp is *beyond* the last
    // live event: the engine must not keep the clock hostage to a
    // tombstone, and both engines must agree on the final time.
    macro_rules! scenario {
        ($sim:ident, $world:ident) => {
            mark!($sim, in Ps::us(5), label 0);
            let doomed = mark!($sim, cancellable in Ps::ms(50), label 99);
            $sim.cancel(doomed);
        };
    }
    let wheel = trace!(Sim, scenario);
    let heap = trace!(ReferenceSim, scenario);
    assert_eq!(wheel, heap);
    assert_eq!(wheel.2.len(), 1, "only the live event fires");
}

#[test]
fn schedule_exactly_on_window_boundary() {
    // From a zero cursor the window covers slots [0, 512); an event at
    // exactly `WINDOW_PS` is the first instant that must overflow, and
    // `WINDOW_PS - 1` the last that fits the wheel. Straddle the edge
    // from both a cold start and an advanced cursor, including exact
    // slot-width multiples and same-instant FIFO ties on the boundary.
    macro_rules! scenario {
        ($sim:ident, $world:ident) => {
            mark!($sim, at WINDOW_PS - 1, label 0);
            mark!($sim, at WINDOW_PS, label 1);
            mark!($sim, at WINDOW_PS, label 2); // FIFO tie on the edge
            mark!($sim, at WINDOW_PS + 1, label 3);
            mark!($sim, at 2 * WINDOW_PS, label 4);
            // Advance the cursor mid-window, then straddle the *new*
            // window edge relative to the moved cursor.
            $sim.run_until(&mut $world, Ps(3 * SLOT_PS + 7));
            let base = $sim.now().0;
            mark!($sim, at base + WINDOW_PS - 1, label 5);
            mark!($sim, at base + WINDOW_PS, label 6);
            // Exact slot-width multiples around the edge.
            mark!($sim, at base + WINDOW_PS - SLOT_PS, label 7);
            mark!($sim, at base + WINDOW_PS + SLOT_PS, label 8);
        };
    }
    let wheel = trace!(Sim, scenario);
    let heap = trace!(ReferenceSim, scenario);
    assert_eq!(wheel, heap);
    assert_eq!(wheel.2.len(), 9, "every boundary event fires exactly once");
    // The trace really is (time, schedule-order) sorted.
    let mut sorted = wheel.2.clone();
    sorted.sort_by_key(|&(l, t)| (t, l));
    assert_eq!(wheel.2, sorted);
}

#[test]
fn slab_reuse_after_tombstoned_cancels() {
    // Repeatedly fill a window with cancellable events, tombstone most
    // of them, and drain: freed slab nodes must be reused without
    // resurrecting cancelled closures or breaking FIFO order. Eight
    // generations guarantee the free list cycles many times.
    macro_rules! scenario {
        ($sim:ident, $world:ident) => {
            let mut label = 0u32;
            for _gen in 0..8u32 {
                let mut timers = Vec::new();
                for k in 0..64u64 {
                    let l = label;
                    label += 1;
                    // Spread across the window, several per slot.
                    let id = mark!($sim, cancellable in Ps(1 + (k % 16) * SLOT_PS / 3), label l);
                    timers.push(id);
                }
                // Cancel three of every four — including double-cancels
                // of the same id, which must be idempotent.
                for (i, &id) in timers.iter().enumerate() {
                    if i % 4 != 0 {
                        $sim.cancel(id);
                    }
                    if i % 8 == 1 {
                        $sim.cancel(id);
                    }
                }
                // Interleave plain events that must claim freed nodes.
                for k in 0..16u64 {
                    let l = label;
                    label += 1;
                    mark!($sim, in Ps(1 + k * SLOT_PS / 5), label l);
                }
                // Drain this generation completely before the next.
                let deadline = Ps($sim.now().0 + 20 * SLOT_PS);
                $sim.run_until(&mut $world, deadline);
            }
        };
    }
    let wheel = trace!(Sim, scenario);
    let heap = trace!(ReferenceSim, scenario);
    assert_eq!(wheel, heap);
    // 8 generations × (16 survivors + 16 plain) events.
    assert_eq!(wheel.2.len(), 8 * 32, "wrong survivor count after reuse");
}

#[test]
fn cancel_after_fire_is_idempotent_across_engines() {
    // Cancelling a timer that already fired must be a no-op in both
    // engines even when its slab slot has been handed to a new event.
    macro_rules! scenario {
        ($sim:ident, $world:ident) => {
            let early = mark!($sim, cancellable in Ps::ns(10), label 0);
            $sim.run_until(&mut $world, Ps::us(1));
            // `early` fired; its node is free. Claim it, then cancel
            // the stale id.
            mark!($sim, cancellable in Ps::ns(10), label 1);
            $sim.cancel(early);
        };
    }
    let wheel = trace!(Sim, scenario);
    let heap = trace!(ReferenceSim, scenario);
    assert_eq!(wheel, heap);
    let labels: Vec<u32> = wheel.2.iter().map(|&(l, _)| l).collect();
    assert_eq!(labels, vec![0, 1], "stale cancel clobbered a reused slot");
}
