//! Allocation accounting for the engine hot path: steady-state
//! scheduling and execution of small-capture closures must not touch
//! the heap at all. A counting global allocator wraps the system one;
//! after a warm-up pass (queue buffers grown, pool primed) the delta
//! across a full schedule+run cycle must be zero.

use omx_sim::{Ps, Sim};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, l: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Relaxed);
        System.alloc(l)
    }
    unsafe fn dealloc(&self, p: *mut u8, l: Layout) {
        System.dealloc(p, l)
    }
    unsafe fn realloc(&self, p: *mut u8, l: Layout, n: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Relaxed);
        System.realloc(p, l, n)
    }
    unsafe fn alloc_zeroed(&self, l: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Relaxed);
        System.alloc_zeroed(l)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Relaxed)
}

/// One self-rescheduling chain pass: `n` events through `schedule_in`,
/// each capturing 16 bytes — the dominant shape of the protocol
/// simulations.
fn chain_pass(sim: &mut Sim<u64>, n: u64) {
    let mut world = 0u64;
    fn tick(limit: u64, stride: u64) -> impl Fn(&mut u64, &mut Sim<u64>) {
        move |w, sim| {
            *w += 1;
            if *w < limit {
                sim.schedule_in(Ps::ns(stride), tick(limit, stride));
            }
        }
    }
    let start = sim.now();
    sim.schedule_at(start, tick(n, 120));
    sim.run(&mut world);
    assert_eq!(world, n);
}

#[test]
fn steady_state_small_closures_allocate_nothing() {
    let mut sim: Sim<u64> = Sim::new();
    // Warm-up: grow every queue buffer this workload will ever need.
    chain_pass(&mut sim, 20_000);
    let a0 = allocations();
    chain_pass(&mut sim, 20_000);
    let delta = allocations() - a0;
    assert_eq!(
        delta, 0,
        "steady-state schedule_in of small closures performed {delta} heap allocations"
    );
}

#[test]
fn steady_state_same_instant_burst_allocates_nothing() {
    let mut sim: Sim<u64> = Sim::new();
    let burst = |sim: &mut Sim<u64>| {
        let mut world = 0u64;
        let at = Ps(sim.now().0 + 1000);
        for _ in 0..10_000u64 {
            sim.schedule_at(at, |w: &mut u64, _| *w += 1);
        }
        sim.run(&mut world);
        assert_eq!(world, 10_000);
    };
    // Two warm-up passes: extraction hands slot buffers over by swap,
    // so both sides of the swap need one growth pass each.
    burst(&mut sim);
    burst(&mut sim);
    let a0 = allocations();
    burst(&mut sim);
    assert_eq!(
        allocations() - a0,
        0,
        "same-instant burst allocated in steady state"
    );
}

#[test]
fn steady_state_cancellable_timers_allocate_nothing() {
    // Cancellable bookkeeping lives in two BTreeSets. Their root nodes
    // are allocated when the sets first become non-empty and freed when
    // they empty, so the sentinels below pin one long-lived timer and
    // one long-lived tombstone: after that, light cancellable traffic
    // (a handful outstanding, well under a node's capacity) must not
    // touch the heap — which is what lets the retransmission timers use
    // the cancellable API on the hot path.
    let mut sim: Sim<u64> = Sim::new();
    let far = Ps::ms(100);
    let _keep_live = sim.schedule_at_cancellable(far, |_: &mut u64, _| {});
    let doomed = sim.schedule_at_cancellable(far, |_: &mut u64, _| {});
    assert!(sim.cancel(doomed));

    let pass = |sim: &mut Sim<u64>| {
        let mut world = 0u64;
        for batch in 0..500u64 {
            let mut ids = [None, None, None, None];
            for (k, slot) in ids.iter_mut().enumerate() {
                *slot = Some(sim.schedule_in_cancellable(
                    Ps::ns(50 + (batch + k as u64) % 13),
                    |w: &mut u64, _| *w += 1,
                ));
            }
            // Cancel half; the other half fires via the bounded
            // drain entries (step, then run_until).
            assert!(sim.cancel(ids[0].take().expect("just set")));
            assert!(sim.cancel(ids[2].take().expect("just set")));
            sim.step(&mut world, 1);
            sim.run_until(&mut world, Ps(sim.now().0 + Ps::ns(100).0));
        }
        assert_eq!(world, 1_000);
    };
    pass(&mut sim);
    pass(&mut sim);
    let a0 = allocations();
    pass(&mut sim);
    assert_eq!(
        allocations() - a0,
        0,
        "steady-state cancellable scheduling allocated"
    );
}

#[test]
fn pooled_closures_recycle_their_slots() {
    // Medium captures (between the inline and slot limits) go through
    // the pool: the first pass warms it, after which scheduling such
    // closures allocates nothing either.
    let mut sim: Sim<u64> = Sim::new();
    // 200 outstanding pooled closures: within the free-list depth, so
    // a warmed pool can serve the whole burst.
    let pass = |sim: &mut Sim<u64>| {
        let mut world = 0u64;
        let at = Ps(sim.now().0 + 500);
        for _ in 0..200u64 {
            let capture = [1u64; 8]; // 64 bytes: pooled
            sim.schedule_at(at, move |w: &mut u64, _| *w += capture[0]);
        }
        sim.run(&mut world);
        assert_eq!(world, 200);
    };
    pass(&mut sim);
    pass(&mut sim);
    let a0 = allocations();
    pass(&mut sim);
    assert_eq!(
        allocations() - a0,
        0,
        "pooled closures allocated in steady state"
    );
}
