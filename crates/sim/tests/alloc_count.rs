//! Allocation accounting for the engine hot path: steady-state
//! scheduling and execution of small-capture closures must not touch
//! the heap at all. A counting global allocator wraps the system one;
//! after a warm-up pass (queue buffers grown, pool primed) the delta
//! across a full schedule+run cycle must be zero.

use omx_sim::{Ps, Sim};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, l: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Relaxed);
        System.alloc(l)
    }
    unsafe fn dealloc(&self, p: *mut u8, l: Layout) {
        System.dealloc(p, l)
    }
    unsafe fn realloc(&self, p: *mut u8, l: Layout, n: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Relaxed);
        System.realloc(p, l, n)
    }
    unsafe fn alloc_zeroed(&self, l: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Relaxed);
        System.alloc_zeroed(l)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Relaxed)
}

/// One self-rescheduling chain pass: `n` events through `schedule_in`,
/// each capturing 16 bytes — the dominant shape of the protocol
/// simulations.
fn chain_pass(sim: &mut Sim<u64>, n: u64) {
    let mut world = 0u64;
    fn tick(limit: u64, stride: u64) -> impl Fn(&mut u64, &mut Sim<u64>) {
        move |w, sim| {
            *w += 1;
            if *w < limit {
                sim.schedule_in(Ps::ns(stride), tick(limit, stride));
            }
        }
    }
    let start = sim.now();
    sim.schedule_at(start, tick(n, 120));
    sim.run(&mut world);
    assert_eq!(world, n);
}

#[test]
fn steady_state_small_closures_allocate_nothing() {
    let mut sim: Sim<u64> = Sim::new();
    // Warm-up: grow every queue buffer this workload will ever need.
    chain_pass(&mut sim, 20_000);
    let a0 = allocations();
    chain_pass(&mut sim, 20_000);
    let delta = allocations() - a0;
    assert_eq!(
        delta, 0,
        "steady-state schedule_in of small closures performed {delta} heap allocations"
    );
}

#[test]
fn steady_state_same_instant_burst_allocates_nothing() {
    let mut sim: Sim<u64> = Sim::new();
    let burst = |sim: &mut Sim<u64>| {
        let mut world = 0u64;
        let at = Ps(sim.now().0 + 1000);
        for _ in 0..10_000u64 {
            sim.schedule_at(at, |w: &mut u64, _| *w += 1);
        }
        sim.run(&mut world);
        assert_eq!(world, 10_000);
    };
    // Two warm-up passes: extraction hands slot buffers over by swap,
    // so both sides of the swap need one growth pass each.
    burst(&mut sim);
    burst(&mut sim);
    let a0 = allocations();
    burst(&mut sim);
    assert_eq!(
        allocations() - a0,
        0,
        "same-instant burst allocated in steady state"
    );
}

#[test]
fn steady_state_cancellable_timers_allocate_nothing() {
    // Cancellable bookkeeping lives in two BTreeSets. Their root nodes
    // are allocated when the sets first become non-empty and freed when
    // they empty, so the sentinels below pin one long-lived timer and
    // one long-lived tombstone: after that, light cancellable traffic
    // (a handful outstanding, well under a node's capacity) must not
    // touch the heap — which is what lets the retransmission timers use
    // the cancellable API on the hot path.
    let mut sim: Sim<u64> = Sim::new();
    let far = Ps::ms(100);
    let _keep_live = sim.schedule_at_cancellable(far, |_: &mut u64, _| {});
    let doomed = sim.schedule_at_cancellable(far, |_: &mut u64, _| {});
    assert!(sim.cancel(doomed));

    let pass = |sim: &mut Sim<u64>| {
        let mut world = 0u64;
        for batch in 0..500u64 {
            let mut ids = [None, None, None, None];
            for (k, slot) in ids.iter_mut().enumerate() {
                *slot = Some(sim.schedule_in_cancellable(
                    Ps::ns(50 + (batch + k as u64) % 13),
                    |w: &mut u64, _| *w += 1,
                ));
            }
            // Cancel half; the other half fires via the bounded
            // drain entries (step, then run_until).
            assert!(sim.cancel(ids[0].take().expect("just set")));
            assert!(sim.cancel(ids[2].take().expect("just set")));
            sim.step(&mut world, 1);
            sim.run_until(&mut world, Ps(sim.now().0 + Ps::ns(100).0));
        }
        assert_eq!(world, 1_000);
    };
    pass(&mut sim);
    pass(&mut sim);
    let a0 = allocations();
    pass(&mut sim);
    assert_eq!(
        allocations() - a0,
        0,
        "steady-state cancellable scheduling allocated"
    );
}

#[test]
fn steady_state_far_future_timers_allocate_nothing_with_two_levels() {
    // Events beyond the ~67 µs level-0 window but inside the ~34 ms
    // level-1 ring: a one-level wheel boxes each of them onto the
    // overflow heap (the documented far-future allocation), a
    // two-level wheel keeps them slab-resident. This is the dynamic
    // pin for the far-heap `hot-path-alloc` waiver in `engine.rs`:
    // with `wheel_levels = 2` only truly-far events (beyond level-1
    // coverage) may allocate.
    fn far_pass(sim: &mut Sim<u64>, n: u64) {
        let mut world = 0u64;
        fn tick(limit: u64) -> impl Fn(&mut u64, &mut Sim<u64>) {
            move |w, sim| {
                *w += 1;
                if *w < limit {
                    // ~1 ms out: 15 level-0 windows beyond the cursor.
                    sim.schedule_in(Ps::us(1000), tick(limit));
                }
            }
        }
        let start = sim.now();
        sim.schedule_at(start, tick(n));
        sim.run(&mut world);
        assert_eq!(world, n);
    }
    let mut sim: Sim<u64> = Sim::with_wheel_levels(2);
    far_pass(&mut sim, 5_000);
    let a0 = allocations();
    far_pass(&mut sim, 5_000);
    let delta = allocations() - a0;
    assert_eq!(
        delta, 0,
        "steady-state far-future scheduling allocated {delta} times despite the level-1 ring"
    );

    // Control: the same workload on a one-level wheel pays roughly one
    // box per event — proving the test would catch a regression where
    // level-1 events silently fall through to the heap.
    let mut sim1: Sim<u64> = Sim::new();
    far_pass(&mut sim1, 5_000);
    let b0 = allocations();
    far_pass(&mut sim1, 5_000);
    let boxed = allocations() - b0;
    assert!(
        boxed >= 4_000,
        "control: one-level far-future pass should box per event, saw {boxed}"
    );
}

mod driver_paths {
    //! The same accounting pushed through the whole protocol stack:
    //! a ping-pong loop whose application reuses its buffers (master
    //! payload cloned per send via `isend_bytes`, one receive buffer
    //! recycled via `irecv_into`) must reach a steady state where a
    //! full round trip — send descriptors, BH fragment processing,
    //! matching, copies or pulls, completions — touches the heap zero
    //! times.

    use super::allocations;
    use omx_hw::CoreId;
    use omx_sim::Sim;
    use open_mx::app::{App, AppCtx, Completion};
    use open_mx::cluster::{Cluster, ClusterParams};
    use open_mx::config::OmxConfig;
    use open_mx::{EpAddr, EpIdx, NodeId};
    use std::cell::RefCell;
    use std::rc::Rc;

    const ZPING: u64 = 0x5A50;
    const ZPONG: u64 = 0x5A4F;

    #[derive(Default)]
    struct Shared {
        /// Allocation count at the end of the warm-up iterations.
        warm: u64,
        /// Allocation count after the final measured iteration.
        end: u64,
        corrupt: u64,
        done: bool,
    }

    struct Pinger {
        peer: EpAddr,
        size: u64,
        warmup: u32,
        total: u32,
        cur: u32,
        payload: bytes::Bytes,
        shared: Rc<RefCell<Shared>>,
    }

    impl Pinger {
        fn kick(&mut self, ctx: &mut AppCtx<'_>, buf: Vec<u8>) {
            ctx.irecv_into(ZPONG, u64::MAX, self.size, buf, Some(1));
            ctx.isend_bytes(self.peer, ZPING, self.payload.clone(), Some(2));
        }
    }

    impl App for Pinger {
        fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
            let buf = vec![0u8; self.size as usize];
            self.kick(ctx, buf);
        }

        fn on_completion(&mut self, ctx: &mut AppCtx<'_>, comp: Completion) {
            let Completion::Recv { data, .. } = comp else {
                return;
            };
            if data[..] != self.payload[..] {
                self.shared.borrow_mut().corrupt += 1;
            }
            self.cur += 1;
            if self.cur == self.warmup {
                self.shared.borrow_mut().warm = allocations();
            }
            if self.cur >= self.total {
                let mut sh = self.shared.borrow_mut();
                sh.end = allocations();
                sh.done = true;
                return;
            }
            self.kick(ctx, data);
        }

        fn is_done(&self) -> bool {
            self.shared.borrow().done
        }
    }

    struct Ponger {
        peer: EpAddr,
        size: u64,
        total: u32,
        cur: u32,
        payload: bytes::Bytes,
        shared: Rc<RefCell<Shared>>,
    }

    impl App for Ponger {
        fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
            let buf = vec![0u8; self.size as usize];
            ctx.irecv_into(ZPING, u64::MAX, self.size, buf, Some(3));
        }

        fn on_completion(&mut self, ctx: &mut AppCtx<'_>, comp: Completion) {
            let Completion::Recv { data, .. } = comp else {
                return;
            };
            if data[..] != self.payload[..] {
                self.shared.borrow_mut().corrupt += 1;
            }
            ctx.isend_bytes(self.peer, ZPONG, self.payload.clone(), Some(4));
            self.cur += 1;
            if self.cur < self.total {
                ctx.irecv_into(ZPING, u64::MAX, self.size, data, Some(3));
            }
        }

        fn is_done(&self) -> bool {
            true
        }
    }

    /// Run `total` round trips of `size` bytes and return the heap
    /// allocation count across the measured (post-warm-up) span.
    fn measured_allocs(size: u64, cfg: OmxConfig) -> u64 {
        // The warm-up must outlast every high-water mark, including the
        // slowest one: cancelled retransmit timers tombstone their
        // level-1 wheel slots until the cursor first sweeps them
        // (~one retransmission timeout, i.e. tens of round trips).
        let warmup = 64;
        let total = 96;
        // Debug builds mint one SimSanitizer token per tracked resource
        // into an append-only registry; pre-grow it so its backing Vec
        // never reallocates inside the measured span (release builds:
        // no-op, the registry does not exist).
        omx_sim::sanitize::SimSanitizer::reserve(1 << 20);
        let shared = Rc::new(RefCell::new(Shared::default()));
        let payload: bytes::Bytes = (0..size)
            .map(|i| (i as u32).wrapping_mul(31) as u8)
            .collect::<Vec<u8>>()
            .into();
        let a = EpAddr {
            node: NodeId(0),
            ep: EpIdx(0),
        };
        let b = EpAddr {
            node: NodeId(1),
            ep: EpIdx(0),
        };
        let mut cluster = Cluster::new(ClusterParams::with_cfg(cfg));
        let mut sim: Sim<Cluster> = Sim::with_wheel_levels(cluster.p.cfg.wheel_levels);
        cluster.add_endpoint(
            NodeId(0),
            CoreId(2),
            Box::new(Pinger {
                peer: b,
                size,
                warmup,
                total,
                cur: 0,
                payload: payload.clone(),
                shared: shared.clone(),
            }),
        );
        cluster.add_endpoint(
            NodeId(1),
            CoreId(2),
            Box::new(Ponger {
                peer: a,
                size,
                total,
                cur: 0,
                payload,
                shared: shared.clone(),
            }),
        );
        cluster.start(&mut sim);
        sim.run(&mut cluster);
        let sh = shared.borrow();
        assert!(sh.done, "{size}B ping-pong did not complete");
        assert_eq!(sh.corrupt, 0, "{size}B payload corrupted");
        sh.end - sh.warm
    }

    fn two_level(cfg: OmxConfig) -> OmxConfig {
        OmxConfig {
            wheel_levels: 2,
            ..cfg
        }
    }

    #[test]
    fn warmed_tiny_pingpong_allocates_nothing() {
        // Small-message path: inline frames, ring copy on receive.
        let d = measured_allocs(16, two_level(OmxConfig::default()));
        assert_eq!(d, 0, "warmed 16 B ping-pong allocated {d} times");
    }

    #[test]
    fn warmed_medium_pingpong_allocates_nothing() {
        // Medium path: fragmentation, per-message dedup bitmaps (from
        // the driver scratch pool), BH processing.
        let d = measured_allocs(16 << 10, two_level(OmxConfig::default()));
        assert_eq!(d, 0, "warmed 16 KiB ping-pong allocated {d} times");
    }

    #[test]
    fn warmed_large_pingpong_allocates_nothing() {
        // Large path: rendezvous pulls, block bitmaps and pending-copy
        // queues recycled through the driver scratch pool.
        let d = measured_allocs(256 << 10, two_level(OmxConfig::default()));
        assert_eq!(d, 0, "warmed 256 KiB ping-pong allocated {d} times");
    }

    #[test]
    fn warmed_large_ioat_pingpong_allocates_nothing() {
        // Large path with I/OAT offload: copy segments, handles and
        // completion bookkeeping all travel through pooled scratch.
        let d = measured_allocs(256 << 10, two_level(OmxConfig::with_ioat()));
        assert_eq!(d, 0, "warmed 256 KiB I/OAT ping-pong allocated {d} times");
    }
}

#[test]
fn pooled_closures_recycle_their_slots() {
    // Medium captures (between the inline and slot limits) go through
    // the pool: the first pass warms it, after which scheduling such
    // closures allocates nothing either.
    let mut sim: Sim<u64> = Sim::new();
    // 200 outstanding pooled closures: within the free-list depth, so
    // a warmed pool can serve the whole burst.
    let pass = |sim: &mut Sim<u64>| {
        let mut world = 0u64;
        let at = Ps(sim.now().0 + 500);
        for _ in 0..200u64 {
            let capture = [1u64; 8]; // 64 bytes: pooled
            sim.schedule_at(at, move |w: &mut u64, _| *w += capture[0]);
        }
        sim.run(&mut world);
        assert_eq!(world, 200);
    };
    pass(&mut sim);
    pass(&mut sim);
    let a0 = allocations();
    pass(&mut sim);
    assert_eq!(
        allocations() - a0,
        0,
        "pooled closures allocated in steady state"
    );
}
