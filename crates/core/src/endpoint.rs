//! Endpoint state: the user-space library side of one Open-MX (or
//! MXoE) endpoint, plus its per-request bookkeeping.
//!
//! An endpoint bundles the matcher, the driver→library event ring, the
//! statically pinned receive slots, the registration table and the
//! outstanding send/receive requests of one application process. The
//! cluster world owns the endpoints and drives them; this module is
//! the data model.

use crate::config::MsgClass;
use crate::counters::Counters;
use crate::events::{EventRing, SlotPool};
use crate::matching::Matcher;
use crate::region::{Region, RegionTable};
use crate::{EpAddr, ReqId};
use omx_hw::CoreId;
use std::collections::{BTreeMap, BTreeSet};

/// An outstanding send request.
#[derive(Debug)]
pub struct SendState {
    /// Request id.
    pub req: ReqId,
    /// Destination endpoint.
    pub dest: EpAddr,
    /// Match information carried on the wire.
    pub match_info: u64,
    /// Per-partner message sequence number.
    pub msg_seq: u32,
    /// Message class (decided at post time).
    pub class: MsgClass,
    /// Payload, retained until acknowledged for retransmission.
    /// `Bytes` so fragments slice it zero-copy (the simulation-host
    /// analogue of the stack's zero-copy page attach).
    pub data: bytes::Bytes,
    /// Stable buffer identity for the registration cache / cache
    /// model; `None` for one-shot buffers.
    pub tag: Option<u64>,
    /// Acknowledged (eager) — retransmission stops.
    pub acked: bool,
    /// Completion already delivered to the application.
    pub completed: bool,
    /// Sender-side large handle (rendezvous), if any.
    pub sender_handle: Option<u32>,
    /// Pinned region backing a large send.
    pub region: Option<Region>,
    /// Retransmission attempts so far.
    pub retx_attempts: u32,
    /// Last proof of life from the receiver for this request (pull
    /// requests reset it); the retransmission timer keys off this.
    pub last_activity: omx_sim::Ps,
    /// Current adaptive retransmission timeout: starts at
    /// `cfg.retransmit_timeout`, doubles (with jitter) on every
    /// retransmission up to `cfg.rto_max`, resets on peer liveness.
    pub rto: omx_sim::Ps,
}

/// An outstanding receive request.
#[derive(Debug)]
pub struct RecvState {
    /// Request id.
    pub req: ReqId,
    /// Posted match information.
    pub match_info: u64,
    /// Posted match mask.
    pub mask: u64,
    /// Destination buffer (filled in place).
    pub buf: Vec<u8>,
    /// Bytes delivered so far.
    pub received: u64,
    /// Total expected once matched (0 until known).
    pub total: u64,
    /// Match information of the message that matched (for the
    /// completion record).
    pub matched_info: Option<u64>,
    /// Stable buffer identity.
    pub tag: Option<u64>,
    /// Pinned region backing a large receive.
    pub region: Option<Region>,
    /// Per-fragment arrival bitmap for medium reassembly (duplicate
    /// suppression under retransmission).
    pub frag_seen: Vec<bool>,
    /// Segment size of a vectorial destination buffer (`None` =
    /// contiguous). Scattered buffers split every receive copy into
    /// per-segment chunks — the "highly-vectorial buffers" case of
    /// §IV-A that the fragment threshold protects against.
    pub seg_size: Option<u64>,
}

/// Reassembly of a multi-fragment eager message, matched or not.
#[derive(Debug)]
pub struct MediumAssembly {
    /// The receive it was matched to, if any. Unmatched assemblies
    /// buffer their data in `data` until a receive adopts them.
    pub req: Option<ReqId>,
    /// Match information (for adoption by later receives).
    pub match_info: u64,
    /// Fragments already applied (duplicate suppression).
    pub frag_seen: Vec<bool>,
    /// Bytes applied.
    pub arrived: u64,
    /// Total length.
    pub total: u64,
    /// Buffered payload while unmatched (empty once matched).
    pub data: Vec<u8>,
}

impl MediumAssembly {
    /// Whether every byte arrived.
    pub fn is_complete(&self) -> bool {
        self.arrived >= self.total
    }
}

/// One endpoint (library side).
#[derive(Debug)]
pub struct Endpoint {
    /// Global address.
    pub addr: EpAddr,
    /// Core the owning process (application + library) is pinned to.
    pub core: CoreId,
    /// Matching engine.
    pub matcher: Matcher,
    /// Driver→library event ring.
    pub events: EventRing,
    /// Statically pinned receive data slots.
    pub slots: SlotPool,
    /// Registered regions (+ registration cache).
    pub regions: RegionTable,
    /// Outstanding sends.
    pub sends: BTreeMap<ReqId, SendState>,
    /// Outstanding receives.
    pub recvs: BTreeMap<ReqId, RecvState>,
    /// In-flight medium reassemblies keyed by (source, sequence).
    pub assemblies: BTreeMap<(EpAddr, u32), MediumAssembly>,
    /// Next message sequence per destination partner.
    pub seq_tx: BTreeMap<EpAddr, u32>,
    /// Application driving this endpoint (index into the cluster's app
    /// table).
    pub app: usize,
    /// Whether a library poll event is already scheduled.
    pub poll_scheduled: bool,
    /// Driver-side duplicate suppression: message sequences already
    /// fully received per partner.
    pub completed_seqs: BTreeMap<EpAddr, BTreeSet<u32>>,
    /// Driver-side medium reassembly progress (for ack generation):
    /// (src, seq) → fragments seen bitmap.
    pub drv_medium: BTreeMap<(EpAddr, u32), Vec<bool>>,
    /// Rendezvous announcements delivered but not yet matched to a
    /// pull: duplicates (sender retransmissions racing the library)
    /// must be dropped while the original sits in the event ring or
    /// the unexpected queue.
    pub rndv_pending: BTreeSet<(EpAddr, u32)>,
    /// Per-endpoint performance counters (the `omx_counters`
    /// equivalent).
    pub counters: Counters,
}

impl Endpoint {
    /// A fresh endpoint.
    pub fn new(
        addr: EpAddr,
        core: CoreId,
        app: usize,
        recvq_slots: usize,
        slot_bytes: usize,
        regcache: bool,
    ) -> Self {
        Endpoint {
            addr,
            core,
            matcher: Matcher::new(),
            events: EventRing::new(),
            slots: SlotPool::new(recvq_slots, slot_bytes),
            regions: RegionTable::new(regcache),
            sends: BTreeMap::new(),
            recvs: BTreeMap::new(),
            assemblies: BTreeMap::new(),
            seq_tx: BTreeMap::new(),
            app,
            poll_scheduled: false,
            completed_seqs: BTreeMap::new(),
            drv_medium: BTreeMap::new(),
            rndv_pending: BTreeSet::new(),
            counters: Counters::default(),
        }
    }

    /// Allocate the next message sequence number toward `dest`.
    pub fn next_seq(&mut self, dest: EpAddr) -> u32 {
        let c = self.seq_tx.entry(dest).or_insert(0);
        let s = *c;
        *c += 1;
        s
    }

    /// Sequences retained per partner for duplicate suppression. Only
    /// recent sequences can ever be retransmitted (the sender gives up
    /// after a bounded number of attempts), so the set is pruned to a
    /// sliding window instead of growing for the whole run.
    const SEQ_WINDOW: u32 = 4096;

    /// Record a fully received message sequence from `src`; returns
    /// `false` when it was already recorded (a duplicate delivery).
    pub fn record_completed_seq(&mut self, src: EpAddr, seq: u32) -> bool {
        let set = self.completed_seqs.entry(src).or_default();
        let fresh = set.insert(seq);
        if fresh && set.len() as u32 > 2 * Self::SEQ_WINDOW {
            // Drop everything older than the window below the newest
            // sequence; retransmissions never reach back that far.
            let keep_from = seq.saturating_sub(Self::SEQ_WINDOW);
            set.retain(|&s| s >= keep_from);
        }
        fresh
    }

    /// Whether `seq` from `src` was already fully received.
    pub fn seq_completed(&self, src: EpAddr, seq: u32) -> bool {
        self.completed_seqs
            .get(&src)
            .is_some_and(|s| s.contains(&seq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EpIdx, NodeId};

    fn addr(n: u32, e: u8) -> EpAddr {
        EpAddr {
            node: NodeId(n),
            ep: EpIdx(e),
        }
    }

    fn ep() -> Endpoint {
        Endpoint::new(addr(0, 0), CoreId(1), 0, 16, 4096, true)
    }

    #[test]
    fn sequence_numbers_are_per_partner() {
        let mut e = ep();
        let a = addr(1, 0);
        let b = addr(1, 1);
        assert_eq!(e.next_seq(a), 0);
        assert_eq!(e.next_seq(a), 1);
        assert_eq!(e.next_seq(b), 0, "independent stream per partner");
        assert_eq!(e.next_seq(a), 2);
    }

    #[test]
    fn completed_seq_dedup() {
        let mut e = ep();
        let a = addr(1, 0);
        assert!(!e.seq_completed(a, 5));
        assert!(e.record_completed_seq(a, 5), "first recording");
        assert!(e.seq_completed(a, 5));
        assert!(!e.record_completed_seq(a, 5), "duplicate detected");
        assert!(!e.seq_completed(addr(1, 1), 5), "per-partner isolation");
    }

    #[test]
    fn endpoint_starts_idle() {
        let e = ep();
        assert!(e.events.is_empty());
        assert_eq!(e.slots.free_slots(), 16);
        assert!(e.sends.is_empty());
        assert!(e.recvs.is_empty());
        assert!(!e.poll_scheduled);
    }
}
