//! Endpoint state: the user-space library side of one Open-MX (or
//! MXoE) endpoint, plus its per-request bookkeeping.
//!
//! An endpoint bundles the matcher, the driver→library event ring, the
//! statically pinned receive slots, the registration table and the
//! outstanding send/receive requests of one application process. The
//! cluster world owns the endpoints and drives them; this module is
//! the data model.

use crate::config::MsgClass;
use crate::counters::Counters;
use crate::events::{EventRing, SlotPool};
use crate::matching::Matcher;
use crate::region::{Region, RegionTable};
use crate::{EpAddr, ReqId};
use omx_hw::CoreId;
use std::collections::{BTreeMap, BTreeSet};

/// An outstanding send request.
#[derive(Debug)]
pub struct SendState {
    /// Request id.
    pub req: ReqId,
    /// Destination endpoint.
    pub dest: EpAddr,
    /// Match information carried on the wire.
    pub match_info: u64,
    /// Per-partner message sequence number.
    pub msg_seq: u32,
    /// Message class (decided at post time).
    pub class: MsgClass,
    /// Payload, retained until acknowledged for retransmission.
    /// `Bytes` so fragments slice it zero-copy (the simulation-host
    /// analogue of the stack's zero-copy page attach).
    pub data: bytes::Bytes,
    /// Stable buffer identity for the registration cache / cache
    /// model; `None` for one-shot buffers.
    pub tag: Option<u64>,
    /// Acknowledged (eager) — retransmission stops.
    pub acked: bool,
    /// Completion already delivered to the application.
    pub completed: bool,
    /// Sender-side large handle (rendezvous), if any.
    pub sender_handle: Option<u32>,
    /// Pinned region backing a large send.
    pub region: Option<Region>,
    /// Retransmission attempts so far.
    pub retx_attempts: u32,
    /// Last proof of life from the receiver for this request (pull
    /// requests reset it); the retransmission timer keys off this.
    pub last_activity: omx_sim::Ps,
    /// Current adaptive retransmission timeout: starts at
    /// `cfg.retransmit_timeout`, doubles (with jitter) on every
    /// retransmission up to `cfg.rto_max`, resets on peer liveness.
    pub rto: omx_sim::Ps,
}

/// An outstanding receive request.
#[derive(Debug)]
pub struct RecvState {
    /// Request id.
    pub req: ReqId,
    /// Posted match information.
    pub match_info: u64,
    /// Posted match mask.
    pub mask: u64,
    /// Destination buffer (filled in place).
    pub buf: Vec<u8>,
    /// Bytes delivered so far.
    pub received: u64,
    /// Total expected once matched (0 until known).
    pub total: u64,
    /// Match information of the message that matched (for the
    /// completion record).
    pub matched_info: Option<u64>,
    /// Stable buffer identity.
    pub tag: Option<u64>,
    /// Pinned region backing a large receive.
    pub region: Option<Region>,
    /// Per-fragment arrival bitmap for medium reassembly (duplicate
    /// suppression under retransmission).
    pub frag_seen: Vec<bool>,
    /// Segment size of a vectorial destination buffer (`None` =
    /// contiguous). Scattered buffers split every receive copy into
    /// per-segment chunks — the "highly-vectorial buffers" case of
    /// §IV-A that the fragment threshold protects against.
    pub seg_size: Option<u64>,
}

/// Reassembly of a multi-fragment eager message, matched or not.
#[derive(Debug)]
pub struct MediumAssembly {
    /// The receive it was matched to, if any. Unmatched assemblies
    /// buffer their data in `data` until a receive adopts them.
    pub req: Option<ReqId>,
    /// Match information (for adoption by later receives).
    pub match_info: u64,
    /// Fragments already applied (duplicate suppression).
    pub frag_seen: Vec<bool>,
    /// Bytes applied.
    pub arrived: u64,
    /// Total length.
    pub total: u64,
    /// Buffered payload while unmatched (empty once matched).
    pub data: Vec<u8>,
}

impl MediumAssembly {
    /// Whether every byte arrived.
    pub fn is_complete(&self) -> bool {
        self.arrived >= self.total
    }
}

/// One endpoint (library side).
#[derive(Debug)]
pub struct Endpoint {
    /// Global address.
    pub addr: EpAddr,
    /// Core the owning process (application + library) is pinned to.
    pub core: CoreId,
    /// Matching engine.
    pub matcher: Matcher,
    /// Driver→library event ring.
    pub events: EventRing,
    /// Statically pinned receive data slots.
    pub slots: SlotPool,
    /// Registered regions (+ registration cache).
    pub regions: RegionTable,
    /// Outstanding sends.
    pub sends: BTreeMap<ReqId, SendState>,
    /// Outstanding receives.
    pub recvs: BTreeMap<ReqId, RecvState>,
    /// In-flight medium reassemblies keyed by (source, sequence).
    pub assemblies: BTreeMap<(EpAddr, u32), MediumAssembly>,
    /// Next message sequence per destination partner.
    pub seq_tx: BTreeMap<EpAddr, u32>,
    /// Application driving this endpoint (index into the cluster's app
    /// table).
    pub app: usize,
    /// Whether a library poll event is already scheduled.
    pub poll_scheduled: bool,
    /// Driver-side duplicate suppression: message sequences already
    /// fully received per partner.
    pub completed_seqs: BTreeMap<EpAddr, SeqWindow>,
    /// Driver-side medium reassembly progress (for ack generation):
    /// (src, seq) → fragments seen bitmap.
    pub drv_medium: BTreeMap<(EpAddr, u32), Vec<bool>>,
    /// Rendezvous announcements delivered but not yet matched to a
    /// pull: duplicates (sender retransmissions racing the library)
    /// must be dropped while the original sits in the event ring or
    /// the unexpected queue.
    pub rndv_pending: BTreeSet<(EpAddr, u32)>,
    /// Per-endpoint performance counters (the `omx_counters`
    /// equivalent).
    pub counters: Counters,
    /// Next request-id counter (the low 32 bits of this endpoint's
    /// [`ReqId`]s; the address provides the high bits). Per-endpoint
    /// so id allocation is independent of every other endpoint — and
    /// therefore of how the cluster is partitioned.
    pub(crate) next_req: u64,
}

impl Endpoint {
    /// A fresh endpoint.
    pub fn new(
        addr: EpAddr,
        core: CoreId,
        app: usize,
        recvq_slots: usize,
        slot_bytes: usize,
        regcache: bool,
    ) -> Self {
        Endpoint {
            addr,
            core,
            matcher: Matcher::new(),
            events: EventRing::new(),
            slots: SlotPool::new(recvq_slots, slot_bytes),
            regions: RegionTable::new(regcache),
            sends: BTreeMap::new(),
            recvs: BTreeMap::new(),
            assemblies: BTreeMap::new(),
            seq_tx: BTreeMap::new(),
            app,
            poll_scheduled: false,
            completed_seqs: BTreeMap::new(),
            drv_medium: BTreeMap::new(),
            rndv_pending: BTreeSet::new(),
            counters: Counters::default(),
            next_req: 1,
        }
    }

    /// Allocate the next message sequence number toward `dest`.
    pub fn next_seq(&mut self, dest: EpAddr) -> u32 {
        let c = self.seq_tx.entry(dest).or_insert(0);
        let s = *c;
        *c += 1;
        s
    }

    /// Record a fully received message sequence from `src`; returns
    /// `false` when it was already recorded (a duplicate delivery).
    pub fn record_completed_seq(&mut self, src: EpAddr, seq: u32) -> bool {
        self.completed_seqs.entry(src).or_default().record(seq)
    }

    /// Whether `seq` from `src` was already fully received.
    pub fn seq_completed(&self, src: EpAddr, seq: u32) -> bool {
        self.completed_seqs
            .get(&src)
            .is_some_and(|s| s.contains(seq))
    }
}

/// Sliding-window duplicate suppressor for one partner's message
/// sequences.
///
/// Replaces the old per-partner `BTreeSet<u32>`: sequences arrive
/// (near-)monotonically, so a fixed bitmap over the last
/// [`SeqWindow::SPAN`] sequences answers membership with one bit test
/// and — unlike a B-tree, whose leaf splits allocated roughly once
/// every dozen messages — never touches the allocator after the
/// per-partner setup. Only recent sequences can ever be retransmitted
/// (the sender gives up after a bounded number of attempts), so
/// anything that has fallen below the window is reported as already
/// completed rather than remembered individually.
#[derive(Debug, Default)]
pub struct SeqWindow {
    /// Lowest sequence the bitmap still tracks; everything below it is
    /// treated as completed (an ancient duplicate, never a live
    /// message).
    base: u32,
    /// Bit `i` tracks sequence `base + i`. Allocated to
    /// `SPAN / 64` words on first use, never resized.
    bits: Vec<u64>,
}

impl SeqWindow {
    /// Sequences retained per partner: twice the old pruning window,
    /// so the window holds strictly more history than the set it
    /// replaced ever did.
    pub const SPAN: u32 = 8192;
    const WORDS: usize = (Self::SPAN as usize) / 64;

    /// Record `seq`; returns `false` when it was already recorded.
    pub fn record(&mut self, seq: u32) -> bool {
        if self.bits.is_empty() {
            // One-time setup per partner (1 KiB), amortized over the
            // whole conversation.
            // omx-lint: allow(hot-path-alloc) one-time 1 KiB window per partner, never touched again in steady state [test: crates/sim/tests/alloc_count.rs::warmed_tiny_pingpong_allocates_nothing]
            self.bits = vec![0u64; Self::WORDS];
        }
        if seq < self.base {
            return false;
        }
        if seq - self.base >= 2 * Self::SPAN {
            // A jump far beyond the window (fresh partner after reuse,
            // or a test fabricating sequences): restart the window at
            // the word holding `seq` instead of shifting through the
            // gap word by word.
            self.bits.iter_mut().for_each(|w| *w = 0);
            self.base = seq & !63;
        }
        while seq - self.base >= Self::SPAN {
            self.advance_word();
        }
        let idx = (seq - self.base) as usize;
        let mask = 1u64 << (idx % 64);
        let fresh = self.bits[idx / 64] & mask == 0;
        self.bits[idx / 64] |= mask;
        fresh
    }

    /// Whether `seq` was already recorded (sequences below the window
    /// count as recorded: they can only be ancient retransmissions).
    pub fn contains(&self, seq: u32) -> bool {
        if self.bits.is_empty() || seq >= self.base + Self::SPAN {
            return false;
        }
        if seq < self.base {
            return true;
        }
        let idx = (seq - self.base) as usize;
        self.bits[idx / 64] & (1u64 << (idx % 64)) != 0
    }

    /// Slide the window up by one 64-bit word (in-place shift; no
    /// reallocation).
    fn advance_word(&mut self) {
        self.bits.copy_within(1.., 0);
        *self.bits.last_mut().expect("fixed-size bitmap") = 0;
        self.base += 64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EpIdx, NodeId};

    fn addr(n: u32, e: u8) -> EpAddr {
        EpAddr {
            node: NodeId(n),
            ep: EpIdx(e),
        }
    }

    fn ep() -> Endpoint {
        Endpoint::new(addr(0, 0), CoreId(1), 0, 16, 4096, true)
    }

    #[test]
    fn sequence_numbers_are_per_partner() {
        let mut e = ep();
        let a = addr(1, 0);
        let b = addr(1, 1);
        assert_eq!(e.next_seq(a), 0);
        assert_eq!(e.next_seq(a), 1);
        assert_eq!(e.next_seq(b), 0, "independent stream per partner");
        assert_eq!(e.next_seq(a), 2);
    }

    #[test]
    fn completed_seq_dedup() {
        let mut e = ep();
        let a = addr(1, 0);
        assert!(!e.seq_completed(a, 5));
        assert!(e.record_completed_seq(a, 5), "first recording");
        assert!(e.seq_completed(a, 5));
        assert!(!e.record_completed_seq(a, 5), "duplicate detected");
        assert!(!e.seq_completed(addr(1, 1), 5), "per-partner isolation");
    }

    /// The bitmap window slides without forgetting recent history and
    /// treats anything below the window as an ancient duplicate.
    #[test]
    fn seq_window_slides_monotonically() {
        let mut w = SeqWindow::default();
        for s in 0..3 * SeqWindow::SPAN {
            assert!(w.record(s), "fresh sequence {s}");
            assert!(w.contains(s));
            assert!(!w.record(s), "immediate duplicate {s}");
        }
        // Recent history survives the slides.
        let newest = 3 * SeqWindow::SPAN - 1;
        assert!(w.contains(newest - 100));
        // Sequences that fell below the window are duplicates, not
        // fresh messages.
        assert!(w.contains(0));
        assert!(!w.record(0));
        // A far-future jump restarts the window cleanly.
        let far = u32::MAX - SeqWindow::SPAN;
        assert!(w.record(far));
        assert!(w.contains(far));
        assert!(!w.record(far));
        assert!(w.contains(3), "ancient sequence reads as completed");
    }

    /// The window never reallocates after its per-partner setup.
    #[test]
    fn seq_window_bitmap_is_fixed_size() {
        let mut w = SeqWindow::default();
        w.record(0);
        let cap = w.bits.capacity();
        for s in 0..4 * SeqWindow::SPAN {
            w.record(s);
        }
        assert_eq!(w.bits.capacity(), cap, "bitmap must not grow");
    }

    #[test]
    fn endpoint_starts_idle() {
        let e = ep();
        assert!(e.events.is_empty());
        assert_eq!(e.slots.free_slots(), 16);
        assert!(e.sends.is_empty());
        assert!(e.recvs.is_empty());
        assert!(!e.poll_scheduled);
    }
}
