//! The driver→library event ring and receive data slots.
//!
//! The Open-MX driver communicates with the user-space library through
//! a shared event ring per endpoint (§III-A: "an event is written in a
//! shared event ring to notify a receive completion"). Small and
//! medium message data additionally lands in statically allocated,
//! statically *pinned* ring slots ("statically pinned ring" of Fig 2) —
//! pinned, which is why the BH (and I/OAT) can always copy into them.

use crate::{EpAddr, ReqId};
use bytes::Bytes;
use std::collections::VecDeque;

/// One driver→library event.
#[derive(Debug, Clone)]
pub enum Event {
    /// A tiny message arrived; its payload rides in the event.
    RecvTiny {
        /// Sender address.
        src: EpAddr,
        /// Match information.
        match_info: u64,
        /// Message sequence.
        msg_seq: u32,
        /// Inline payload (≤ 32 bytes).
        data: Bytes,
    },
    /// A small message arrived into one ring slot.
    RecvSmall {
        /// Sender address.
        src: EpAddr,
        /// Match information.
        match_info: u64,
        /// Message sequence.
        msg_seq: u32,
        /// Ring slot holding the payload.
        slot: usize,
        /// Payload length.
        len: u32,
    },
    /// One medium-message fragment arrived into a ring slot. With
    /// library-level matching (the paper's stack) every fragment raises
    /// one of these — the very thing that forces medium copies to be
    /// synchronous (§III-C).
    RecvMediumFrag {
        /// Sender address.
        src: EpAddr,
        /// Match information.
        match_info: u64,
        /// Message sequence.
        msg_seq: u32,
        /// Total message length.
        msg_len: u32,
        /// Fragment index.
        frag_idx: u16,
        /// Total fragments.
        frag_count: u16,
        /// Offset of this fragment in the message.
        offset: u32,
        /// Ring slot holding the fragment payload.
        slot: usize,
        /// Fragment length.
        len: u32,
    },
    /// A complete medium message arrived (kernel-matching extension:
    /// the driver matched and reassembled it into the posted buffer;
    /// one event per message instead of one per fragment).
    RecvMediumDone {
        /// The completed receive request.
        req: ReqId,
        /// Delivered length.
        len: u32,
    },
    /// A rendezvous request arrived for a large message.
    RecvRndv {
        /// Sender address.
        src: EpAddr,
        /// Match information.
        match_info: u64,
        /// Message sequence.
        msg_seq: u32,
        /// Announced length.
        msg_len: u64,
        /// Sender-side handle for the pull.
        sender_handle: u32,
    },
    /// A large-message pull finished; the data sits in the receive
    /// buffer (single completion event per large message, §III-A).
    RecvLargeDone {
        /// The completed receive request.
        req: ReqId,
        /// Delivered length.
        len: u64,
    },
    /// A send request completed (eager fully transmitted, or Notify
    /// received for a large send).
    SendDone {
        /// The completed send request.
        req: ReqId,
    },
}

/// The per-endpoint event ring.
#[derive(Debug, Default)]
pub struct EventRing {
    queue: VecDeque<Event>,
    pushed: u64,
}

impl EventRing {
    /// An empty ring.
    pub fn new() -> Self {
        Self::default()
    }

    /// Driver side: publish an event.
    pub fn push(&mut self, ev: Event) {
        self.pushed += 1;
        self.queue.push_back(ev);
    }

    /// Library side: consume the oldest event.
    pub fn pop(&mut self) -> Option<Event> {
        self.queue.pop_front()
    }

    /// Events waiting.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether no events wait.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Total events ever pushed (diagnostics).
    pub fn pushed_total(&self) -> u64 {
        self.pushed
    }
}

/// The statically pinned receive data slots of one endpoint.
///
/// The BH copies small/medium payloads here; the library copies them
/// out and frees the slot. Slot exhaustion mirrors the real stack: the
/// packet is dropped and the sender's retransmission recovers it.
#[derive(Debug)]
pub struct SlotPool {
    /// Backing storage, grown one slot at a time up to `limit`: a
    /// 10k-endpoint cluster only pays for the slots its endpoints
    /// actually touch, while a warmed steady-state endpoint never
    /// allocates again (the `alloc_count` suite pins that).
    slots: Vec<Vec<u8>>,
    slot_bytes: usize,
    limit: usize,
    free: Vec<usize>,
    drops: u64,
}

impl SlotPool {
    /// A pool of up to `n` slots of `slot_bytes` each. Slot memory is
    /// committed lazily on first use; indices are handed out in the
    /// exact order the old eagerly-built pool produced (lowest unused
    /// first, released slots LIFO), so run traces are unchanged.
    pub fn new(n: usize, slot_bytes: usize) -> Self {
        SlotPool {
            slots: Vec::new(),
            slot_bytes,
            limit: n,
            free: Vec::new(),
            drops: 0,
        }
    }

    /// Driver side: claim a slot and fill it with `data`. Returns the
    /// slot index, or `None` (and counts a drop) when the ring is full.
    pub fn fill(&mut self, data: &[u8]) -> Option<usize> {
        let i = match self.free.pop() {
            Some(i) => i,
            None if self.slots.len() < self.limit => {
                // First touch of this slot: commit its backing memory.
                // omx-lint: allow(hot-path-alloc) one-time per-slot warm-up; steady state pops the free list, and the 10k-endpoint footprint depends on this staying lazy [test: tests/memory_budget.rs::ten_k_endpoint_cluster_stays_under_budget]
                self.slots.push(vec![0u8; self.slot_bytes]);
                self.slots.len() - 1
            }
            None => {
                self.drops += 1;
                return None;
            }
        };
        assert!(
            data.len() <= self.slots[i].len(),
            "payload {} exceeds slot size {}",
            data.len(),
            self.slots[i].len()
        );
        self.slots[i][..data.len()].copy_from_slice(data);
        Some(i)
    }

    /// Library side: read `len` bytes out of `slot`.
    pub fn read(&self, slot: usize, len: usize) -> &[u8] {
        &self.slots[slot][..len]
    }

    /// Library side: release a slot after copying it out.
    pub fn release(&mut self, slot: usize) {
        debug_assert!(!self.free.contains(&slot), "double release of slot {slot}");
        self.free.push(slot);
    }

    /// Free slots remaining (released plus never-touched capacity).
    pub fn free_slots(&self) -> usize {
        self.free.len() + (self.limit - self.slots.len())
    }

    /// Packets dropped because the ring was full.
    pub fn drops(&self) -> u64 {
        self.drops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EpIdx, NodeId};

    fn src() -> EpAddr {
        EpAddr {
            node: NodeId(1),
            ep: EpIdx(0),
        }
    }

    #[test]
    fn ring_is_fifo() {
        let mut r = EventRing::new();
        r.push(Event::SendDone { req: ReqId(1) });
        r.push(Event::SendDone { req: ReqId(2) });
        assert_eq!(r.len(), 2);
        match r.pop().unwrap() {
            Event::SendDone { req } => assert_eq!(req, ReqId(1)),
            _ => panic!(),
        }
        match r.pop().unwrap() {
            Event::SendDone { req } => assert_eq!(req, ReqId(2)),
            _ => panic!(),
        }
        assert!(r.pop().is_none());
        assert!(r.is_empty());
        assert_eq!(r.pushed_total(), 2);
    }

    #[test]
    fn events_carry_payload() {
        let mut r = EventRing::new();
        r.push(Event::RecvTiny {
            src: src(),
            match_info: 9,
            msg_seq: 0,
            data: Bytes::from_static(b"hi"),
        });
        match r.pop().unwrap() {
            Event::RecvTiny { data, .. } => assert_eq!(&data[..], b"hi"),
            _ => panic!(),
        }
    }

    #[test]
    fn slot_pool_fill_read_release() {
        let mut p = SlotPool::new(2, 4096);
        let a = p.fill(b"aaaa").unwrap();
        let b = p.fill(b"bbbb").unwrap();
        assert_ne!(a, b);
        assert_eq!(p.free_slots(), 0);
        assert_eq!(p.read(a, 4), b"aaaa");
        assert_eq!(p.read(b, 4), b"bbbb");
        // Exhausted: drop counted.
        assert!(p.fill(b"cccc").is_none());
        assert_eq!(p.drops(), 1);
        p.release(a);
        assert_eq!(p.free_slots(), 1);
        let c = p.fill(b"cccc").unwrap();
        assert_eq!(c, a, "released slot reused");
        assert_eq!(p.read(c, 4), b"cccc");
    }

    #[test]
    #[should_panic(expected = "exceeds slot size")]
    fn oversized_payload_panics() {
        let mut p = SlotPool::new(1, 8);
        p.fill(&[0u8; 9]);
    }
}
