//! Per-endpoint performance counters.
//!
//! The real Open-MX driver exports a set of counters per board and
//! endpoint (`omx_counters`); tooling and the paper's own analysis
//! lean on them to see which path a workload exercised. This is the
//! equivalent: every protocol path increments a counter, and the
//! harnesses/tests read them to assert *how* data moved, not just that
//! it arrived.

use omx_sim::Metrics;
use serde::{Deserialize, Serialize};

/// Counters of one endpoint (sender and receiver sides).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counters {
    /// Tiny messages sent.
    pub tx_tiny: u64,
    /// Small messages sent.
    pub tx_small: u64,
    /// Medium messages sent.
    pub tx_medium: u64,
    /// Medium fragments sent.
    pub tx_medium_frags: u64,
    /// Large (rendezvous) messages sent.
    pub tx_large: u64,
    /// Large fragments sent (pull replies).
    pub tx_large_frags: u64,
    /// Payload bytes sent.
    pub tx_bytes: u64,
    /// Tiny messages received.
    pub rx_tiny: u64,
    /// Small messages received.
    pub rx_small: u64,
    /// Medium fragments received.
    pub rx_medium_frags: u64,
    /// Large fragments received.
    pub rx_large_frags: u64,
    /// Rendezvous announcements received.
    pub rx_rndv: u64,
    /// Payload bytes delivered to the application.
    pub rx_bytes: u64,
    /// Receive copies done by the CPU (memcpy path).
    pub copies_memcpy: u64,
    /// Receive copies submitted to the I/OAT engine.
    pub copies_offloaded: u64,
    /// Copies that fell back from the I/OAT engine to the CPU — either
    /// steered away from a quarantined channel at submit time or
    /// rescued after a stuck channel tripped the completion-poll
    /// deadline.
    pub copies_fallback: u64,
    /// Bytes copied by memcpy.
    pub bytes_memcpy: u64,
    /// Bytes copied by the DMA engine.
    pub bytes_offloaded: u64,
    /// Shared-memory (local) messages sent.
    pub shm_tx: u64,
    /// Shared-memory one-copy transfers performed as the receiver.
    pub shm_pulls: u64,
    /// Events pushed to this endpoint's ring.
    pub events: u64,
    /// Messages that arrived with no matching receive posted.
    pub unexpected: u64,
    /// Registration-cache hits.
    pub regcache_hits: u64,
    /// Full registrations (cache misses).
    pub regcache_misses: u64,
}

impl Counters {
    /// Fraction of receive-copied bytes that the DMA engine moved.
    pub fn offload_fraction(&self) -> f64 {
        let total = self.bytes_memcpy + self.bytes_offloaded;
        if total == 0 {
            return 0.0;
        }
        self.bytes_offloaded as f64 / total as f64
    }

    /// Sum of messages sent across classes.
    pub fn tx_messages(&self) -> u64 {
        self.tx_tiny + self.tx_small + self.tx_medium + self.tx_large + self.shm_tx
    }

    /// Accumulate another endpoint's counters into this one (the
    /// cluster-wide aggregation behind [`crate::cluster::Stats`]).
    ///
    /// Every field of the struct must appear here — `omx-lint`'s D3
    /// rule cross-checks the field list against the registry names in
    /// [`Self::publish`].
    pub fn merge(&mut self, o: &Counters) {
        self.tx_tiny += o.tx_tiny;
        self.tx_small += o.tx_small;
        self.tx_medium += o.tx_medium;
        self.tx_medium_frags += o.tx_medium_frags;
        self.tx_large += o.tx_large;
        self.tx_large_frags += o.tx_large_frags;
        self.tx_bytes += o.tx_bytes;
        self.rx_tiny += o.rx_tiny;
        self.rx_small += o.rx_small;
        self.rx_medium_frags += o.rx_medium_frags;
        self.rx_large_frags += o.rx_large_frags;
        self.rx_rndv += o.rx_rndv;
        self.rx_bytes += o.rx_bytes;
        self.copies_memcpy += o.copies_memcpy;
        self.copies_offloaded += o.copies_offloaded;
        self.copies_fallback += o.copies_fallback;
        self.bytes_memcpy += o.bytes_memcpy;
        self.bytes_offloaded += o.bytes_offloaded;
        self.shm_tx += o.shm_tx;
        self.shm_pulls += o.shm_pulls;
        self.events += o.events;
        self.unexpected += o.unexpected;
        self.regcache_hits += o.regcache_hits;
        self.regcache_misses += o.regcache_misses;
    }

    /// Register every counter with the metrics registry under
    /// `scope` as an idempotent gauge named `counters.<field>`.
    ///
    /// This is what makes the counters visible to the observability
    /// layer next to the busy/trace series; `omx-lint` (rule D3)
    /// requires one registry name per public field of this struct.
    pub fn publish(&self, metrics: &Metrics, scope: u32) {
        let g = |name: &'static str, v: u64| metrics.gauge_set(scope, name, v as i64);
        g("counters.tx_tiny", self.tx_tiny);
        g("counters.tx_small", self.tx_small);
        g("counters.tx_medium", self.tx_medium);
        g("counters.tx_medium_frags", self.tx_medium_frags);
        g("counters.tx_large", self.tx_large);
        g("counters.tx_large_frags", self.tx_large_frags);
        g("counters.tx_bytes", self.tx_bytes);
        g("counters.rx_tiny", self.rx_tiny);
        g("counters.rx_small", self.rx_small);
        g("counters.rx_medium_frags", self.rx_medium_frags);
        g("counters.rx_large_frags", self.rx_large_frags);
        g("counters.rx_rndv", self.rx_rndv);
        g("counters.rx_bytes", self.rx_bytes);
        g("counters.copies_memcpy", self.copies_memcpy);
        g("counters.copies_offloaded", self.copies_offloaded);
        g("counters.copies_fallback", self.copies_fallback);
        g("counters.bytes_memcpy", self.bytes_memcpy);
        g("counters.bytes_offloaded", self.bytes_offloaded);
        g("counters.shm_tx", self.shm_tx);
        g("counters.shm_pulls", self.shm_pulls);
        g("counters.events", self.events);
        g("counters.unexpected", self.unexpected);
        g("counters.regcache_hits", self.regcache_hits);
        g("counters.regcache_misses", self.regcache_misses);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offload_fraction_handles_empty_and_mixed() {
        let mut c = Counters::default();
        assert_eq!(c.offload_fraction(), 0.0);
        c.bytes_memcpy = 1 << 20;
        c.bytes_offloaded = 3 << 20;
        assert!((c.offload_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn tx_messages_sums_classes() {
        let c = Counters {
            tx_tiny: 1,
            tx_small: 2,
            tx_medium: 3,
            tx_large: 4,
            shm_tx: 5,
            ..Counters::default()
        };
        assert_eq!(c.tx_messages(), 15);
    }
}
