//! Cluster-level fault plans.
//!
//! A [`FaultPlan`] is a declarative description of everything that
//! goes wrong during a run: per-link wire hazards (bursty loss,
//! corruption, duplication, reordering — see
//! [`omx_ethernet::fault::LinkFaultParams`]), and per-node hardware
//! trouble (an undersized NIC RX ring, I/OAT channels that stall or
//! die at scheduled times). The plan lives in
//! [`crate::config::OmxConfig::fault_plan`], so every harness,
//! benchmark and test reaches it the same way, and the whole plan is
//! serializable into the JSON record of a run.
//!
//! The empty plan is inert and free: no per-frame draws, no per-copy
//! checks beyond an empty-`Vec` scan, so fault-free simulations are
//! bit-identical with and without this subsystem (proven by
//! `tests/fault_soak.rs::inactive_plan_is_zero_cost`).
//!
//! A handful of named plans ([`FaultPlan::named`]) give the soak tests
//! and the docs a shared vocabulary — `flaky-10g` is the reference
//! scenario from the robustness issue: 1 % bursty loss, reorder depth
//! 4, one duplicate per ~5000 frames, and one I/OAT channel stalled
//! for 10 ms early in the run.

use omx_ethernet::fault::LinkFaultParams;
use omx_sim::Ps;
use serde::{Deserialize, Serialize};

/// One scheduled I/OAT channel fault on a node: the channel stops
/// retiring descriptors at `at`, for `duration` (`None` = it never
/// comes back).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IoatChannelFault {
    /// Channel index on the node's engine.
    pub channel: usize,
    /// When the fault hits.
    pub at: Ps,
    /// How long it lasts (`None` = permanent failure).
    pub duration: Option<Ps>,
}

/// Per-node hardware faults.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct NodeFaultParams {
    /// Node this entry applies to.
    pub node: u32,
    /// Override the NIC RX ring size (ring pressure: small rings
    /// overflow under fragment streams and force retransmits).
    pub rx_ring_size: Option<usize>,
    /// Scheduled I/OAT channel stalls/failures.
    pub ioat_faults: Vec<IoatChannelFault>,
}

/// Per-link override: fault parameters for one directed link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkFaultOverride {
    /// Sending node.
    pub src: u32,
    /// Receiving node.
    pub dst: u32,
    /// Parameters for this link (replaces the plan default).
    pub params: LinkFaultParams,
}

/// The full fault plan for a run (see module docs). The default plan
/// is empty and inert.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Fault parameters applied to every directed link unless
    /// overridden in `links`.
    pub default_link: LinkFaultParams,
    /// Per-link overrides (directed: `(src, dst)`).
    pub links: Vec<LinkFaultOverride>,
    /// Per-node hardware faults.
    pub nodes: Vec<NodeFaultParams>,
}

impl FaultPlan {
    /// Whether the plan can never inject anything.
    pub fn is_inactive(&self) -> bool {
        !self.default_link.is_active()
            && self.links.iter().all(|o| !o.params.is_active())
            && self
                .nodes
                .iter()
                .all(|n| n.rx_ring_size.is_none() && n.ioat_faults.is_empty())
    }

    /// Whether any directed link can inject wire hazards (the plan
    /// default or any override is active). The uniform
    /// `OmxConfig::loss_one_in` knob is folded in separately by the
    /// cluster, which owns that config.
    pub fn has_link_faults(&self) -> bool {
        self.default_link.is_active() || self.links.iter().any(|o| o.params.is_active())
    }

    /// Link fault parameters for the directed link `src → dst`
    /// (override if present, plan default otherwise).
    pub fn link_params(&self, src: u32, dst: u32) -> LinkFaultParams {
        self.links
            .iter()
            .find(|o| o.src == src && o.dst == dst)
            .map(|o| o.params)
            .unwrap_or(self.default_link)
    }

    /// Hardware faults for `node`, if any.
    pub fn node_params(&self, node: u32) -> Option<&NodeFaultParams> {
        self.nodes.iter().find(|n| n.node == node)
    }

    /// Look up a named plan (the shared vocabulary of the soak tests,
    /// the ablation bench and EXPERIMENTS.md). `None` for unknown
    /// names.
    pub fn named(name: &str) -> Option<FaultPlan> {
        match name {
            "flaky-10g" => Some(Self::flaky_10g()),
            "dirty-fiber" => Some(Self::dirty_fiber()),
            "dup-storm" => Some(Self::dup_storm()),
            "ring-pressure" => Some(Self::ring_pressure()),
            "ioat-dead" => Some(Self::ioat_dead()),
            _ => None,
        }
    }

    /// Names accepted by [`FaultPlan::named`].
    pub const NAMES: &'static [&'static str] = &[
        "flaky-10g",
        "dirty-fiber",
        "dup-storm",
        "ring-pressure",
        "ioat-dead",
    ];

    /// The reference robustness scenario: ≈1 % bursty loss (bad-state
    /// episodes of ~5 frames), bounded reordering up to depth 4, one
    /// duplicate per 5000 frames, and I/OAT channel 0 on every node
    /// stalled for 10 ms starting 100 µs into the run (early enough
    /// that even short benchmark runs hit the window).
    pub fn flaky_10g() -> FaultPlan {
        let link = LinkFaultParams {
            // Stationary bad fraction 0.002/(0.002+0.2) ≈ 1 %, mean
            // burst 1/0.2 = 5 frames, certain loss while bad.
            p_enter_bad: 0.002,
            p_exit_bad: 0.2,
            loss_good: 0.0,
            loss_bad: 1.0,
            corrupt_prob: 0.0,
            dup_prob: 1.0 / 5000.0,
            reorder_prob: 0.005,
            reorder_depth: 4,
        };
        let stall = |node: u32| NodeFaultParams {
            node,
            rx_ring_size: None,
            ioat_faults: vec![IoatChannelFault {
                channel: 0,
                at: Ps::us(100),
                duration: Some(Ps::ms(10)),
            }],
        };
        FaultPlan {
            default_link: link,
            links: Vec::new(),
            nodes: vec![stall(0), stall(1)],
        }
    }

    /// Wire corruption only: ~0.2 % of frames arrive with a damaged
    /// FCS and die at the NIC. Exercises the corrupt-drop counter and
    /// retransmit recovery without any other hazard.
    pub fn dirty_fiber() -> FaultPlan {
        FaultPlan {
            default_link: LinkFaultParams {
                corrupt_prob: 0.002,
                ..LinkFaultParams::default()
            },
            ..FaultPlan::default()
        }
    }

    /// Heavy duplication (2 % of frames delivered twice): exercises
    /// end-to-end idempotence of fragment and control-frame delivery.
    pub fn dup_storm() -> FaultPlan {
        FaultPlan {
            default_link: LinkFaultParams {
                dup_prob: 0.02,
                ..LinkFaultParams::default()
            },
            ..FaultPlan::default()
        }
    }

    /// Undersized RX rings on both nodes: fragment bursts overflow the
    /// ring and the pull watchdog must re-request the holes.
    pub fn ring_pressure() -> FaultPlan {
        FaultPlan {
            nodes: vec![
                NodeFaultParams {
                    node: 0,
                    rx_ring_size: Some(8),
                    ioat_faults: Vec::new(),
                },
                NodeFaultParams {
                    node: 1,
                    rx_ring_size: Some(8),
                    ioat_faults: Vec::new(),
                },
            ],
            ..FaultPlan::default()
        }
    }

    /// I/OAT channel 0 dies permanently 50 µs into the run on every
    /// node: the driver must fall back to memcpy, quarantine the
    /// channel, re-probe after the cool-down, find it still dead, and
    /// keep going on the remaining channels.
    pub fn ioat_dead() -> FaultPlan {
        let dead = |node: u32| NodeFaultParams {
            node,
            rx_ring_size: None,
            ioat_faults: vec![IoatChannelFault {
                channel: 0,
                at: Ps::us(50),
                duration: None,
            }],
        };
        FaultPlan {
            nodes: vec![dead(0), dead(1)],
            ..FaultPlan::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_inactive() {
        assert!(FaultPlan::default().is_inactive());
    }

    #[test]
    fn named_plans_resolve_and_are_active() {
        for name in FaultPlan::NAMES {
            let plan = FaultPlan::named(name).unwrap_or_else(|| panic!("{name} must resolve"));
            assert!(!plan.is_inactive(), "{name} must be active");
        }
        assert!(FaultPlan::named("no-such-plan").is_none());
    }

    #[test]
    fn flaky_10g_matches_issue_spec() {
        let p = FaultPlan::flaky_10g();
        let link = p.link_params(0, 1);
        let loss = link.stationary_loss();
        assert!((loss - 0.01).abs() < 0.001, "≈1 % loss, got {loss}");
        assert_eq!(link.reorder_depth, 4);
        assert!((link.dup_prob - 0.0002).abs() < 1e-9);
        let n0 = p.node_params(0).unwrap();
        assert_eq!(n0.ioat_faults.len(), 1);
        assert_eq!(n0.ioat_faults[0].channel, 0);
        assert_eq!(n0.ioat_faults[0].duration, Some(Ps::ms(10)));
    }

    #[test]
    fn link_overrides_shadow_the_default() {
        let special = LinkFaultParams {
            loss_good: 0.5,
            ..LinkFaultParams::default()
        };
        let plan = FaultPlan {
            default_link: LinkFaultParams::uniform_loss(100),
            links: vec![LinkFaultOverride {
                src: 1,
                dst: 0,
                params: special,
            }],
            ..FaultPlan::default()
        };
        assert_eq!(plan.link_params(1, 0), special);
        assert_eq!(plan.link_params(0, 1), LinkFaultParams::uniform_loss(100));
        assert!(!plan.is_inactive());
    }

    #[test]
    fn plan_serializes_to_json() {
        let json = serde_json::to_string(&FaultPlan::flaky_10g()).unwrap();
        for key in [
            "default_link",
            "p_enter_bad",
            "nodes",
            "ioat_faults",
            "channel",
        ] {
            assert!(json.contains(key), "missing {key}");
        }
    }
}
