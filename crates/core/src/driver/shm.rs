//! The Open-MX one-copy shared-memory path (§III-C, Fig 10).
//!
//! When source and destination endpoints live on the same host, the
//! driver short-circuits the network: a *single* copy moves the data
//! from the source process address space into the target. For large
//! messages that copy may be offloaded to the I/OAT engine as a
//! *synchronous* copy — the driver busy-polls for completion (or, with
//! the `SleepPredicted` extension, sleeps until the predicted finish).
//!
//! The memcpy rates here are what Figure 10 plots: ~6 GiB/s while two
//! processes share an L2 and the working set fits, collapsing to
//! ~1.2 GiB/s across sockets or beyond the cache, versus a steady
//! ~2.3 GiB/s for the offloaded copy.

use crate::cluster::Cluster;
use crate::config::{MsgClass, SyncWaitPolicy};
use crate::events::Event;
use crate::{EpAddr, ReqId};
use omx_hw::cache::RegionKey;
use omx_hw::cpu::category;
use omx_hw::mem::{CopyContext, MemModel};
use omx_hw::{CopySegment, Distance, IoatEngine};
use omx_sim::sanitize::SimSanitizer;
use omx_sim::{Ps, Sim};

impl Cluster {
    /// Cost of one driver (syscall-context) CPU copy of `len` bytes
    /// from the buffer tagged `src_tag` (owned by a process on
    /// `src_core`) executed on `dst_core` of `node`.
    fn shm_memcpy_cost(
        &mut self,
        node: crate::NodeId,
        dst_core: omx_hw::CoreId,
        src_core: omx_hw::CoreId,
        src_tag: Option<u64>,
        dst_tag: Option<u64>,
        len: u64,
    ) -> Ps {
        let topo = self.p.topology;
        let distance = topo.distance(dst_core, src_core);
        let subchip = topo.subchip_of(dst_core);
        let cached_fraction = src_tag
            .map(|t| {
                self.node(node)
                    .cache
                    .hit_fraction(subchip, RegionKey(t), len)
            })
            .unwrap_or(0.0);
        let ctx = CopyContext {
            distance,
            cached_fraction,
            shared_cache_pair: distance == Distance::SameSubchip,
        };
        let cost = MemModel::copy_time_paged(&self.p.hw, len, &ctx);
        // The CPU copy streams both buffers through the copying core's
        // cache (this is the "pollution" I/OAT avoids). The source is
        // read (shared); the destination is written (exclusive, which
        // invalidates stale copies on other subchips).
        let hw = self.p.hw.clone();
        let cache = &mut self.node_mut(node).cache;
        if let Some(t) = src_tag {
            cache.touch(&hw, subchip, RegionKey(t), len);
        }
        if let Some(t) = dst_tag {
            cache.touch_exclusive(&hw, subchip, RegionKey(t), len);
        }
        self.metrics.busy(node.0, "shm.copy", cost);
        self.metrics.count(node.0, "shm.copy_bytes", len);
        cost
    }

    /// Driver processing of a local (same-host) send command.
    pub(crate) fn shm_send(&mut self, sim: &mut Sim<Cluster>, me: EpAddr, req: ReqId) {
        let now = sim.now();
        let (class, dest, match_info, msg_seq, len) = {
            let st = self.ep(me).sends.get(&req).expect("send exists");
            (
                st.class,
                st.dest,
                st.match_info,
                st.msg_seq,
                st.data.len() as u64,
            )
        };
        self.ep_mut(me).counters.shm_tx += 1;
        self.ep_mut(me).counters.tx_bytes += len;
        match class {
            MsgClass::Tiny | MsgClass::Small | MsgClass::Medium => {
                self.shm_eager(sim, me, req, now);
            }
            MsgClass::Large => {
                // Local rendezvous: announce through the peer's event
                // ring; the receiver's pull command performs the copy.
                let handle = self.node_mut(me.node).driver.alloc_tx_handle();
                self.node_mut(me.node).driver.tx_large.insert(
                    handle,
                    super::TxLargeState {
                        ep: me.ep,
                        req,
                        dest,
                    },
                );
                {
                    let st = self.ep_mut(me).sends.get_mut(&req).expect("send exists");
                    st.sender_handle = Some(handle);
                }
                self.push_event_at(
                    sim,
                    dest,
                    Event::RecvRndv {
                        src: me,
                        match_info,
                        msg_seq,
                        msg_len: len,
                        sender_handle: handle,
                    },
                    now,
                );
            }
        }
    }

    /// Local eager delivery: the driver copies straight into the peer's
    /// ring (slots/events), one copy, in syscall context on the
    /// sender's core.
    fn shm_eager(&mut self, sim: &mut Sim<Cluster>, me: EpAddr, req: ReqId, now: Ps) {
        let (class, dest, match_info, msg_seq, data, tag) = {
            let st = self.ep(me).sends.get(&req).expect("send exists");
            (
                st.class,
                st.dest,
                st.match_info,
                st.msg_seq,
                st.data.clone(),
                st.tag,
            )
        };
        let node = me.node;
        let core = self.ep(me).core;
        let peer_core = self.ep(dest).core;
        match class {
            MsgClass::Tiny => {
                let cost = self.shm_memcpy_cost(node, core, core, tag, None, data.len() as u64);
                let (_, fin) = self.run_core(node, core, now, cost, category::DRIVER);
                self.push_event_at(
                    sim,
                    dest,
                    Event::RecvTiny {
                        src: me,
                        match_info,
                        msg_seq,
                        data,
                    },
                    fin,
                );
                self.finish_send(sim, me, req, fin);
                self.mark_local_send_acked(me, req);
            }
            MsgClass::Small => {
                let cost = self.shm_memcpy_cost(node, core, core, tag, None, data.len() as u64);
                let (_, fin) = self.run_core(node, core, now, cost, category::DRIVER);
                let len = data.len() as u32;
                match self.ep_mut(dest).slots.fill(&data) {
                    Some(slot) => {
                        self.push_event_at(
                            sim,
                            dest,
                            Event::RecvSmall {
                                src: me,
                                match_info,
                                msg_seq,
                                slot,
                                len,
                            },
                            fin,
                        );
                        self.finish_send(sim, me, req, fin);
                        self.mark_local_send_acked(me, req);
                    }
                    None => self.shm_retry_later(sim, me, req, fin),
                }
            }
            MsgClass::Medium => {
                // Per-fragment copies into the peer's ring slots. The
                // peer core matters: the slots will be read from there.
                let frag = self.p.cfg.frag_size as usize;
                let total = data.len();
                let count = total.div_ceil(frag).max(1);
                // All slots must be available; otherwise retry.
                if self.ep(dest).slots.free_slots() < count {
                    self.shm_retry_later(sim, me, req, now);
                    return;
                }
                let _ = peer_core;
                let mut fin = now;
                for i in 0..count {
                    let lo = i * frag;
                    let hi = (lo + frag).min(total);
                    let cost = self.shm_memcpy_cost(node, core, core, tag, None, (hi - lo) as u64);
                    let (_, f) = self.run_core(node, core, fin, cost, category::DRIVER);
                    fin = f;
                    let slot = self
                        .ep_mut(dest)
                        .slots
                        .fill(&data[lo..hi])
                        .expect("slot availability checked");
                    self.push_event_at(
                        sim,
                        dest,
                        Event::RecvMediumFrag {
                            src: me,
                            match_info,
                            msg_seq,
                            msg_len: total as u32,
                            frag_idx: i as u16,
                            frag_count: count as u16,
                            offset: lo as u32,
                            slot,
                            len: (hi - lo) as u32,
                        },
                        fin,
                    );
                }
                self.finish_send(sim, me, req, fin);
                self.mark_local_send_acked(me, req);
            }
            MsgClass::Large => unreachable!("large local sends rendezvous"),
        }
    }

    /// Local sends need no ack; mark them so the completion reaps the
    /// request.
    fn mark_local_send_acked(&mut self, me: EpAddr, req: ReqId) {
        if let Some(st) = self.ep_mut(me).sends.get_mut(&req) {
            st.acked = true;
        }
    }

    /// Peer ring exhausted: retry the local send shortly.
    fn shm_retry_later(&mut self, sim: &mut Sim<Cluster>, me: EpAddr, req: ReqId, from: Ps) {
        sim.schedule_at(from + Ps::us(10), move |c: &mut Cluster, s| {
            if c.ep(me).sends.contains_key(&req) {
                c.shm_eager(s, me, req, s.now());
            }
        });
    }

    /// Receiver side of a local large transfer: the pull command's
    /// one-copy move, memcpy or synchronous I/OAT (§III-C).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn start_local_pull(
        &mut self,
        sim: &mut Sim<Cluster>,
        me: EpAddr,
        req: ReqId,
        src: EpAddr,
        sender_handle: u32,
        msg_len: u64,
        msg_seq: u32,
        from: Ps,
    ) {
        let node = me.node;
        let core = self.ep(me).core;
        let syscall = self.p.hw.syscall_cost + self.p.cfg.driver_cmd_cost;
        let (_, mut fin) = self.run_core(node, core, from, syscall, category::DRIVER);
        // Pull the source data and tags out of the sender's state.
        let tx = self
            .node(node)
            .driver
            .tx_large
            .get(&sender_handle)
            .copied()
            .expect("local rendezvous has sender state");
        let (data, src_tag, src_core) = {
            let sep = self.ep(src);
            let st = sep.sends.get(&tx.req).expect("large local send alive");
            (st.data.clone(), st.tag, sep.core)
        };
        let dst_tag = self.ep(me).recvs.get(&req).and_then(|r| r.tag);
        if let Some(rs) = self.ep_mut(me).recvs.get_mut(&req) {
            rs.total = msg_len;
        }
        self.ep_mut(me).counters.shm_pulls += 1;
        let offload = self.p.cfg.offload_shm_copy(msg_len);
        {
            let c = &mut self.ep_mut(me).counters;
            if offload {
                c.copies_offloaded += 1;
                c.bytes_offloaded += msg_len;
            } else {
                c.copies_memcpy += 1;
                c.bytes_memcpy += msg_len;
            }
        }
        if offload {
            // I/OAT needs both buffers pinned.
            let hw = self.p.hw.clone();
            let src_key = src_tag.unwrap_or(tx.req.0 | (1 << 61));
            let dst_key = dst_tag.unwrap_or(req.0 | (1 << 62));
            let reg_src = self.ep_mut(me).regions.register(&hw, src_key, msg_len);
            let reg_dst = self.ep_mut(me).regions.register(&hw, dst_key, msg_len);
            let (_, f) = self.run_core(
                node,
                core,
                fin,
                reg_src.cost + reg_dst.cost,
                category::DRIVER,
            );
            fin = f;
            // Submit one descriptor per page. Submission pipelines with
            // execution: the channel starts after the *first*
            // descriptor lands while the CPU keeps feeding the rest
            // (350 ns each < the ~1.6 us a 4 kB descriptor executes).
            let ndesc = IoatEngine::descriptors_for(msg_len, self.p.hw.page_size);
            // An intranode pull is one message: under `ioat_batch` the
            // whole descriptor chain rings a single doorbell.
            let submit = self.ioat_submit_cost(ndesc, false);
            let (_, submit_fin) = self.run_core(node, core, fin, submit, category::DRIVER);
            self.metrics.busy(node.0, "ioat.submit_cpu", submit);
            let first_desc_at = fin + self.p.hw.ioat_submit_cpu;
            let hw = self.p.hw.clone();
            let multichannel = self.p.cfg.ioat_multichannel_split;
            let single_ch = if multichannel {
                0
            } else {
                self.pick_healthy_channel(node, first_desc_at)
            };
            // Build the segment list in the per-node scratch (taken out
            // of the driver for the duration so `self` stays usable),
            // then hand the whole chain to the engine in one call.
            let mut segments = std::mem::take(&mut self.node_mut(node).driver.scratch.segments);
            let mut handles = std::mem::take(&mut self.node_mut(node).driver.scratch.handles);
            segments.clear();
            handles.clear();
            if multichannel {
                // Split across all channels; completion is the max.
                let channels = self.node(node).ioat.num_channels() as u64;
                let per = msg_len / channels;
                for ch in 0..channels as usize {
                    let bytes = if ch as u64 == channels - 1 {
                        msg_len - per * (channels - 1)
                    } else {
                        per
                    };
                    segments.push(CopySegment {
                        channel: ch,
                        bytes,
                        descriptors: IoatEngine::descriptors_for(bytes, hw.page_size),
                    });
                }
            } else {
                segments.push(CopySegment {
                    channel: single_ch,
                    bytes: msg_len,
                    descriptors: ndesc,
                });
            }
            self.node_mut(node)
                .ioat
                .submit_batch(&hw, first_desc_at, &segments, &mut handles);
            let mut handle_finish = if multichannel {
                first_desc_at
            } else {
                submit_fin
            };
            let mut any_stalled = false;
            for h in &handles {
                if h.finish >= omx_hw::ioat::STALLED_FOREVER {
                    any_stalled = true;
                }
                handle_finish = handle_finish.max(h.finish);
            }
            // The offloaded copy bypasses caches: stale destination
            // lines become invalid.
            if let Some(t) = dst_tag {
                self.node_mut(node).cache.invalidate(RegionKey(t));
            }
            // Release the registrations (the cache defers the unpin,
            // so repeated transfers of the same buffers pin for free).
            self.ep_mut(me).regions.release(reg_src.region);
            self.ep_mut(me).regions.release(reg_dst.region);
            let done = if any_stalled {
                // The engine died underneath the copy: both wait
                // policies below would wait forever. Quarantine the
                // dead channel(s) and re-do the copy on the CPU (the
                // predictor is *not* fed — a fallback memcpy says
                // nothing about healthy-channel copy latency). Every
                // submitted descriptor — including the healthy ones
                // nobody will poll again — is abandoned: release
                // without completing.
                for h in &handles {
                    SimSanitizer::release(h.san);
                }
                let cooldown = self.p.cfg.ioat_quarantine_cooldown;
                for (seg, h) in segments.iter().zip(handles.iter()) {
                    if h.finish >= omx_hw::ioat::STALLED_FOREVER {
                        self.quarantine_channel(node, seg.channel, submit_fin + cooldown);
                    }
                }
                self.record_ioat_fallback(node, submit_fin, msg_len);
                {
                    // The copy ends up on the CPU after all: move the
                    // bytes from the offload counters to the memcpy
                    // counters so `omx_counters` reflects what ran.
                    let c = &mut self.ep_mut(me).counters;
                    c.copies_offloaded -= 1;
                    c.bytes_offloaded -= msg_len;
                    c.copies_fallback += 1;
                    c.copies_memcpy += 1;
                    c.bytes_memcpy += msg_len;
                }
                let cost = self.shm_memcpy_cost(node, core, src_core, src_tag, dst_tag, msg_len);
                let (_, f) = self.run_core(node, core, submit_fin, cost, category::DRIVER);
                f
            } else {
                // The wait below (busy-poll or sleep+poll) reaches
                // `handle_finish`, so every descriptor completes.
                for h in &handles {
                    SimSanitizer::complete(h.san);
                    SimSanitizer::release(h.san);
                }
                match self.p.cfg.sync_wait {
                    SyncWaitPolicy::BusyPoll => {
                        let wait =
                            handle_finish.saturating_sub(submit_fin) + self.p.hw.ioat_poll_cost;
                        let (_, f) = self.run_core(node, core, submit_fin, wait, category::DRIVER);
                        self.metrics.busy(node.0, "ioat.poll_wait", wait);
                        f
                    }
                    SyncWaitPolicy::SleepPredicted => {
                        // Sleep until the predicted completion, then poll;
                        // busy-poll any remainder (extension, §VI).
                        let predicted = {
                            let n = self.node_mut(node);
                            submit_fin + n.predictor.predict(msg_len)
                        };
                        let wake = predicted.max(submit_fin);
                        let f = if wake >= handle_finish {
                            let (_, f) = self.run_core(
                                node,
                                core,
                                wake,
                                self.p.hw.ioat_poll_cost,
                                category::DRIVER,
                            );
                            self.metrics
                                .busy(node.0, "ioat.poll_wait", self.p.hw.ioat_poll_cost);
                            f
                        } else {
                            let wait =
                                handle_finish.saturating_sub(wake) + self.p.hw.ioat_poll_cost;
                            let (_, f) = self.run_core(node, core, wake, wait, category::DRIVER);
                            self.metrics.busy(node.0, "ioat.poll_wait", wait);
                            f
                        };
                        let actual = handle_finish.saturating_sub(submit_fin);
                        self.node_mut(node).predictor.observe(msg_len, actual);
                        f
                    }
                }
            };
            fin = done;
            let scratch = &mut self.node_mut(node).driver.scratch;
            scratch.segments = segments;
            scratch.handles = handles;
        } else {
            let cost = self.shm_memcpy_cost(node, core, src_core, src_tag, dst_tag, msg_len);
            let (_, f) = self.run_core(node, core, fin, cost, category::DRIVER);
            fin = f;
        }
        // Apply the bytes.
        {
            let ep = self.ep_mut(me);
            if let Some(rs) = ep.recvs.get_mut(&req) {
                let n = (msg_len as usize).min(rs.buf.len()).min(data.len());
                rs.buf[..n].copy_from_slice(&data[..n]);
                rs.received = n as u64;
            }
        }
        // Complete both sides.
        self.node_mut(node).driver.tx_large.remove(&sender_handle);
        self.ep_mut(me).record_completed_seq(src, msg_seq);
        if let Some(st) = self.ep_mut(src).sends.get_mut(&tx.req) {
            st.acked = true;
        }
        self.push_event_at(sim, src, Event::SendDone { req: tx.req }, fin);
        self.push_event_at(sim, me, Event::RecvLargeDone { req, len: msg_len }, fin);
    }
}
