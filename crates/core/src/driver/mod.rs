//! Kernel-side (driver) state of one host.
//!
//! The Open-MX driver owns everything that happens below the event
//! ring: the BH receive callback's copy paths (`recv`), the
//! large-message pull engine with its I/OAT bookkeeping (`pull`), and
//! the one-copy shared-memory path (`shm`). Those submodules implement
//! methods on [`crate::cluster::Cluster`]; this module holds the data.

pub mod kmatch;
pub mod pull;
pub mod recv;
pub mod shm;

use crate::{EpAddr, EpIdx, ReqId};
use omx_hw::ioat::CopyHandle;
use omx_sim::Ps;
use std::collections::HashMap;

/// Receiver-side state of one in-progress large-message pull.
#[derive(Debug)]
pub struct PullState {
    /// Receiving endpoint.
    pub ep: EpIdx,
    /// The receive request being filled.
    pub req: ReqId,
    /// The sending endpoint.
    pub src: EpAddr,
    /// Sender-side handle quoted in pull requests.
    pub sender_handle: u32,
    /// Message sequence number (duplicate suppression).
    pub msg_seq: u32,
    /// Total message length.
    pub msg_len: u64,
    /// Total fragment count.
    pub frags_total: u32,
    /// Per-fragment arrival flags.
    pub frag_seen: Vec<bool>,
    /// Remaining fragments per block.
    pub block_remaining: Vec<u32>,
    /// Next block index to request.
    pub next_block: u32,
    /// Bytes landed so far.
    pub bytes_done: u64,
    /// I/OAT channel assigned to this message (one channel per
    /// message, §V).
    pub channel: usize,
    /// Outstanding asynchronous copies: completion handle + the number
    /// of skbuffs each holds.
    pub pending_copies: Vec<(CopyHandle, u64)>,
    /// Last time any fragment arrived (retransmission watchdog).
    pub last_progress: Ps,
}

impl PullState {
    /// Fragments per block for this pull.
    pub fn block_of(&self, frag_idx: u32, block_frags: u32) -> u32 {
        frag_idx / block_frags
    }

    /// Whether every fragment has arrived.
    pub fn all_arrived(&self) -> bool {
        self.frag_seen.iter().all(|&b| b)
    }

    /// Release completed asynchronous copies (the cleanup routine of
    /// §III-B). Returns how many skbuffs were freed.
    pub fn reap_completed(&mut self, now: Ps) -> u64 {
        let mut freed = 0;
        self.pending_copies.retain(|(h, skbs)| {
            if h.finish <= now {
                freed += *skbs;
                false
            } else {
                true
            }
        });
        freed
    }

    /// Latest completion time among pending copies.
    pub fn last_copy_finish(&self) -> Option<Ps> {
        self.pending_copies.iter().map(|(h, _)| h.finish).max()
    }
}

/// Sender-side state of one large message being pulled by the remote
/// host.
#[derive(Debug, Clone, Copy)]
pub struct TxLargeState {
    /// Sending endpoint on this host.
    pub ep: EpIdx,
    /// The send request.
    pub req: ReqId,
    /// Destination endpoint.
    pub dest: EpAddr,
}

/// Per-host driver state.
#[derive(Debug, Default)]
pub struct Driver {
    /// Receiver-side pulls by receiver handle.
    pub pulls: HashMap<u32, PullState>,
    /// Sender-side large sends by sender handle.
    pub tx_large: HashMap<u32, TxLargeState>,
    /// Next receiver pull handle.
    pub next_pull_handle: u32,
    /// Next sender large handle.
    pub next_tx_handle: u32,
    /// Skbuffs currently held by pending asynchronous copies (the
    /// resource the §III-B cleanup bounds).
    pub skbuffs_held: u64,
    /// High-water mark of `skbuffs_held`.
    pub skbuffs_held_max: u64,
    /// Kernel-matching medium reassemblies (extension), keyed by
    /// (receiving endpoint, sender, sequence).
    pub kmatch: HashMap<(EpIdx, EpAddr, u32), kmatch::KernelAssembly>,
}

impl Driver {
    /// A fresh driver.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate a receiver-side pull handle.
    pub fn alloc_pull_handle(&mut self) -> u32 {
        self.next_pull_handle += 1;
        self.next_pull_handle
    }

    /// Allocate a sender-side large handle.
    pub fn alloc_tx_handle(&mut self) -> u32 {
        self.next_tx_handle += 1;
        self.next_tx_handle
    }

    /// Account for skbuffs captured by a pending asynchronous copy.
    pub fn hold_skbuffs(&mut self, n: u64) {
        self.skbuffs_held += n;
        self.skbuffs_held_max = self.skbuffs_held_max.max(self.skbuffs_held);
    }

    /// Account for skbuffs released by the cleanup routine.
    pub fn release_skbuffs(&mut self, n: u64) {
        debug_assert!(self.skbuffs_held >= n, "releasing more skbuffs than held");
        self.skbuffs_held = self.skbuffs_held.saturating_sub(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;

    #[test]
    fn handles_are_unique() {
        let mut d = Driver::new();
        let a = d.alloc_pull_handle();
        let b = d.alloc_pull_handle();
        assert_ne!(a, b);
        let c = d.alloc_tx_handle();
        let e = d.alloc_tx_handle();
        assert_ne!(c, e);
    }

    #[test]
    fn skbuff_accounting_tracks_high_water() {
        let mut d = Driver::new();
        d.hold_skbuffs(3);
        d.hold_skbuffs(4);
        assert_eq!(d.skbuffs_held, 7);
        d.release_skbuffs(5);
        assert_eq!(d.skbuffs_held, 2);
        assert_eq!(d.skbuffs_held_max, 7);
    }

    #[test]
    fn pull_state_block_and_reap() {
        let mut p = PullState {
            ep: EpIdx(0),
            req: ReqId(1),
            src: EpAddr {
                node: NodeId(1),
                ep: EpIdx(0),
            },
            sender_handle: 1,
            msg_seq: 0,
            msg_len: 64 << 10,
            frags_total: 16,
            frag_seen: vec![false; 16],
            block_remaining: vec![8, 8],
            next_block: 2,
            bytes_done: 0,
            channel: 0,
            pending_copies: vec![
                (
                    CopyHandle {
                        channel: 0,
                        cookie: 0,
                        finish: Ps::us(1),
                    },
                    1,
                ),
                (
                    CopyHandle {
                        channel: 0,
                        cookie: 1,
                        finish: Ps::us(3),
                    },
                    1,
                ),
            ],
            last_progress: Ps::ZERO,
        };
        assert_eq!(p.block_of(0, 8), 0);
        assert_eq!(p.block_of(8, 8), 1);
        assert!(!p.all_arrived());
        assert_eq!(p.last_copy_finish(), Some(Ps::us(3)));
        // Reap at 2us frees the first copy only.
        assert_eq!(p.reap_completed(Ps::us(2)), 1);
        assert_eq!(p.pending_copies.len(), 1);
        assert_eq!(p.reap_completed(Ps::us(4)), 1);
        assert!(p.pending_copies.is_empty());
        p.frag_seen.iter_mut().for_each(|b| *b = true);
        assert!(p.all_arrived());
    }
}
