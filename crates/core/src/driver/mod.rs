//! Kernel-side (driver) state of one host.
//!
//! The Open-MX driver owns everything that happens below the event
//! ring: the BH receive callback's copy paths (`recv`), the
//! large-message pull engine with its I/OAT bookkeeping (`pull`), and
//! the one-copy shared-memory path (`shm`). Those submodules implement
//! methods on [`crate::cluster::Cluster`]; this module holds the data.

pub mod kmatch;
pub mod pull;
pub mod recv;
pub mod shm;

use crate::{EpAddr, EpIdx, ReqId};
use omx_hw::ioat::{CopyHandle, CopySegment};
use omx_sim::sanitize::{Kind, SimSanitizer, Token};
use omx_sim::Ps;
use std::collections::{BTreeMap, VecDeque};

/// Pooled per-node scratch for the driver's hot paths.
///
/// Every buffer a BH or syscall path needs transiently — fragment
/// dedup bitmaps, pull block accounting, pending-copy lists, chained
/// batch segments — is recycled here instead of round-tripping through
/// the allocator, extending the engine's zero-steady-state-allocation
/// guarantee to the send/recv/pull driver paths (pinned by lint D5 and
/// the driver-path case in the allocation-counting suite). Pools are
/// bounded: a burst can still allocate, but the steady state never
/// does.
#[derive(Debug, Default)]
pub struct DriverScratch {
    /// Recycled fragment bitmaps (medium dedup, pull `frag_seen`).
    bitmaps: Vec<Vec<bool>>,
    /// Recycled block-remaining vectors (pull protocol).
    blocks: Vec<Vec<u32>>,
    /// Recycled pending-copy vectors (pull protocol).
    pending: Vec<Vec<PendingCopy>>,
    /// Reusable stuck-copy extraction buffer (cleared between uses).
    pub stuck: Vec<PendingCopy>,
    /// Reusable chained-batch segment list (cleared between uses).
    pub segments: Vec<CopySegment>,
    /// Reusable chained-batch handle output (cleared between uses).
    pub handles: Vec<CopyHandle>,
}

impl DriverScratch {
    /// Pool-size bound: beyond this, returned buffers are dropped. Far
    /// above any steady-state working set (one bitmap per in-flight
    /// medium/large message), it only caps what a pathological burst
    /// can pin.
    const POOL_CAP: usize = 64;

    /// A cleared `len`-entry bitmap, recycled when possible.
    pub fn take_bitmap(&mut self, len: usize) -> Vec<bool> {
        match self.bitmaps.pop() {
            Some(mut v) => {
                v.clear();
                v.resize(len, false);
                v
            }
            // omx-lint: allow(hot-path-alloc) pool miss: only the first messages of a run grow the pool; a warmed loop always recycles [test: crates/sim/tests/alloc_count.rs::warmed_medium_pingpong_allocates_nothing]
            None => vec![false; len],
        }
    }

    /// Return a bitmap to the pool.
    pub fn put_bitmap(&mut self, v: Vec<bool>) {
        if self.bitmaps.len() < Self::POOL_CAP {
            self.bitmaps.push(v);
        }
    }

    /// An empty block-remaining vector, recycled when possible.
    pub fn take_blocks(&mut self) -> Vec<u32> {
        self.blocks.pop().unwrap_or_default()
    }

    /// Return a block-remaining vector to the pool.
    pub fn put_blocks(&mut self, mut v: Vec<u32>) {
        if self.blocks.len() < Self::POOL_CAP {
            v.clear();
            self.blocks.push(v);
        }
    }

    /// An empty pending-copy vector, recycled when possible.
    pub fn take_pending(&mut self) -> Vec<PendingCopy> {
        self.pending.pop().unwrap_or_default()
    }

    /// Return a pending-copy vector to the pool.
    pub fn put_pending(&mut self, mut v: Vec<PendingCopy>) {
        if self.pending.len() < Self::POOL_CAP {
            v.clear();
            self.pending.push(v);
        }
    }

    /// Recycle every reusable buffer of a retired pull.
    pub fn recycle_pull(&mut self, pull: PullState) {
        let PullState {
            frag_seen,
            block_remaining,
            pending_copies,
            ..
        } = pull;
        self.put_bitmap(frag_seen);
        self.put_blocks(block_remaining);
        self.put_pending(pending_copies);
    }
}

/// One outstanding asynchronous receive copy: its completion handle,
/// the skbuffs it pins and the bytes it moves (needed to re-do the
/// copy on the CPU if the channel dies underneath it).
#[derive(Debug, Clone, Copy)]
pub struct PendingCopy {
    /// I/OAT completion handle.
    pub handle: CopyHandle,
    /// Ring skbuffs held until the copy retires.
    pub skbs: u64,
    /// Payload bytes the copy moves.
    pub bytes: u64,
}

/// Receiver-side state of one in-progress large-message pull.
#[derive(Debug)]
pub struct PullState {
    /// Receiving endpoint.
    pub ep: EpIdx,
    /// The receive request being filled.
    pub req: ReqId,
    /// The sending endpoint.
    pub src: EpAddr,
    /// Sender-side handle quoted in pull requests.
    pub sender_handle: u32,
    /// Message sequence number (duplicate suppression).
    pub msg_seq: u32,
    /// Total message length.
    pub msg_len: u64,
    /// Total fragment count.
    pub frags_total: u32,
    /// Per-fragment arrival flags.
    pub frag_seen: Vec<bool>,
    /// Remaining fragments per block.
    pub block_remaining: Vec<u32>,
    /// Next block index to request.
    pub next_block: u32,
    /// Bytes landed so far.
    pub bytes_done: u64,
    /// I/OAT channel assigned to this message (one channel per
    /// message, §V).
    pub channel: usize,
    /// Outstanding asynchronous copies.
    pub pending_copies: Vec<PendingCopy>,
    /// Last time any fragment arrived (retransmission watchdog).
    pub last_progress: Ps,
    /// Generation stamp distinguishing this pull from earlier users of
    /// the same (reused) handle — stale watchdogs no-op on mismatch.
    pub generation: u64,
    /// Current adaptive watchdog timeout (exponential backoff while
    /// the pull is stalled, reset to `cfg.retransmit_timeout` on
    /// progress).
    pub rto: Ps,
    /// Blocks granted to this pull from the node-wide credit pool and
    /// not yet fully received (always 0 with credits disabled).
    pub credits_held: u32,
    /// Whether this pull is currently queued in
    /// [`CreditState::waiters`] — the flag keeps the FIFO free of
    /// duplicate entries and lets the pump skip stale handles.
    pub credit_queued: bool,
    /// Lifecycle sanitizer token: submitted at construction,
    /// completed and released by `finish_pull`, released by the
    /// abandoning watchdog (zero-sized in release builds).
    san: Token,
}

impl PullState {
    /// The checked constructor: a pull starts with no fragments seen,
    /// no bytes landed and no pending copies, and its lifecycle token
    /// is minted (and submitted — the pull is immediately in flight)
    /// with the caller as the allocation site. Its accounting buffers
    /// come from `scratch` so a steady state of pulls never allocates;
    /// retire them with [`DriverScratch::recycle_pull`].
    #[allow(clippy::too_many_arguments)]
    #[track_caller]
    pub fn new(
        ep: EpIdx,
        req: ReqId,
        src: EpAddr,
        sender_handle: u32,
        msg_seq: u32,
        msg_len: u64,
        frags_total: u32,
        block_remaining: Vec<u32>,
        next_block: u32,
        channel: usize,
        last_progress: Ps,
        generation: u64,
        rto: Ps,
        scratch: &mut DriverScratch,
    ) -> PullState {
        let san = SimSanitizer::alloc(Kind::PullHandle);
        SimSanitizer::submit(san);
        PullState {
            ep,
            req,
            src,
            sender_handle,
            msg_seq,
            msg_len,
            frags_total,
            frag_seen: scratch.take_bitmap(frags_total as usize),
            block_remaining,
            next_block,
            bytes_done: 0,
            channel,
            pending_copies: scratch.take_pending(),
            last_progress,
            generation,
            rto,
            credits_held: 0,
            credit_queued: false,
            san,
        }
    }

    /// The lifecycle token.
    pub fn token(&self) -> Token {
        self.san
    }

    /// Fragments per block for this pull.
    pub fn block_of(&self, frag_idx: u32, block_frags: u32) -> u32 {
        frag_idx / block_frags
    }

    /// Whether every fragment has arrived.
    pub fn all_arrived(&self) -> bool {
        self.frag_seen.iter().all(|&b| b)
    }

    /// Whether `frag_idx` has not landed yet. Out-of-range indices —
    /// possible when a stale fragment reaches a recycled handle —
    /// read as already-seen, so callers drop them as duplicates
    /// instead of indexing out of bounds.
    pub fn frag_is_new(&self, frag_idx: u32) -> bool {
        matches!(self.frag_seen.get(frag_idx as usize), Some(false))
    }

    /// Record the arrival of fragment `frag_idx` (blocks of `bf`
    /// fragments): mark it seen and decrement its block's remaining
    /// count. Idempotent by construction — a duplicate, stale or
    /// out-of-range index returns `None` and touches nothing, so a
    /// block re-requested by the watchdog just as its last fragment
    /// lands can never double-complete (or underflow the remaining
    /// count) no matter how many copies of each fragment arrive.
    pub fn note_frag(&mut self, frag_idx: u32, bf: u32) -> Option<FragProgress> {
        let seen = self.frag_seen.get_mut(frag_idx as usize)?;
        if *seen {
            return None;
        }
        *seen = true;
        let b = (frag_idx / bf) as usize;
        let rem = &mut self.block_remaining[b];
        debug_assert!(*rem > 0, "unseen fragment in a completed block");
        *rem = rem.saturating_sub(1);
        Some(FragProgress {
            block_done: *rem == 0,
            all_arrived: self.frag_seen.iter().all(|&s| s),
        })
    }

    /// Release completed asynchronous copies (the cleanup routine of
    /// §III-B). Returns how many skbuffs were freed.
    pub fn reap_completed(&mut self, now: Ps) -> u64 {
        let mut freed = 0;
        self.pending_copies.retain(|pc| {
            if pc.handle.finish <= now {
                freed += pc.skbs;
                // The hardware retired this descriptor and the driver
                // observed it — exactly once.
                SimSanitizer::complete(pc.handle.san);
                SimSanitizer::release(pc.handle.san);
                false
            } else {
                true
            }
        });
        freed
    }

    /// Latest completion time among pending copies.
    pub fn last_copy_finish(&self) -> Option<Ps> {
        self.pending_copies.iter().map(|pc| pc.handle.finish).max()
    }

    /// Extract pending copies whose completion lies further than
    /// `deadline` past `now` — the completion-poll deadline has fired
    /// for them and the driver will re-do them on the CPU. The stuck
    /// entries are removed from the pending list and appended to
    /// `out` (a recycled [`DriverScratch::stuck`] buffer; the caller
    /// clears it first).
    pub fn take_stuck(&mut self, now: Ps, deadline: Ps, out: &mut Vec<PendingCopy>) {
        let horizon = now + deadline;
        self.pending_copies.retain(|pc| {
            if pc.handle.finish > horizon {
                // The descriptor is abandoned without ever completing
                // (the channel died; the caller re-does the copy on
                // the CPU).
                SimSanitizer::release(pc.handle.san);
                out.push(*pc);
                false
            } else {
                true
            }
        });
    }
}

/// What one freshly landed fragment did to its pull's progress
/// accounting (returned by [`PullState::note_frag`]).
#[derive(Debug, Clone, Copy)]
pub struct FragProgress {
    /// The fragment completed its block.
    pub block_done: bool,
    /// The fragment was the last of the whole message.
    pub all_arrived: bool,
}

/// Node-wide, receiver-side credit pool for the pull protocol: the
/// congestion-control state behind `OmxConfig::pull_credits`. Every
/// pull's block requests draw from one shared adaptive `budget`
/// instead of a fixed per-pull window, FIFO across pulls, so N
/// concurrent senders can no longer each push a full window into one
/// host's RX rings. The default state is inert — nothing here is read
/// or written while credits are disabled.
#[derive(Debug, Default)]
pub struct CreditState {
    /// Adaptive budget: the maximum total granted-but-incomplete
    /// blocks across all pulls of this node.
    pub budget: u32,
    /// Blocks currently granted and not yet fully received.
    pub outstanding: u32,
    /// Pull handles waiting for a block grant, in arrival order.
    pub waiters: VecDeque<u32>,
    /// Instant of the last multiplicative decrease (also rate-limits
    /// shed-load NACKs).
    pub last_shrink: Ps,
    /// Instant of the last additive regrowth.
    pub last_regrow: Ps,
}

/// Sender-side state of one large message being pulled by the remote
/// host.
#[derive(Debug, Clone, Copy)]
pub struct TxLargeState {
    /// Sending endpoint on this host.
    pub ep: EpIdx,
    /// The send request.
    pub req: ReqId,
    /// Destination endpoint.
    pub dest: EpAddr,
}

/// Per-host driver state.
#[derive(Debug, Default)]
pub struct Driver {
    /// Receiver-side pulls by receiver handle.
    pub pulls: BTreeMap<u32, PullState>,
    /// Sender-side large sends by sender handle.
    pub tx_large: BTreeMap<u32, TxLargeState>,
    /// Next receiver pull handle.
    pub next_pull_handle: u32,
    /// Monotone generation counter stamped onto every new pull, so a
    /// watchdog armed for a dead pull can detect that its handle was
    /// recycled (never wraps in practice: u64).
    pub next_pull_generation: u64,
    /// Next sender large handle.
    pub next_tx_handle: u32,
    /// Skbuffs currently held by pending asynchronous copies (the
    /// resource the §III-B cleanup bounds).
    pub skbuffs_held: u64,
    /// High-water mark of `skbuffs_held`.
    pub skbuffs_held_max: u64,
    /// Kernel-matching medium reassemblies (extension), keyed by
    /// (receiving endpoint, sender, sequence).
    pub kmatch: BTreeMap<(EpIdx, EpAddr, u32), kmatch::KernelAssembly>,
    /// Receiver-driven credit pool (inert unless
    /// `OmxConfig::pull_credits`).
    pub credits: CreditState,
    /// Pooled hot-path scratch buffers (zero steady-state allocation).
    pub scratch: DriverScratch,
}

impl Driver {
    /// A fresh driver.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate a receiver-side pull handle. Handles are a small
    /// wrapping namespace (as in the real driver) — reuse is expected
    /// and generations disambiguate.
    pub fn alloc_pull_handle(&mut self) -> u32 {
        self.next_pull_handle = self.next_pull_handle.wrapping_add(1);
        self.next_pull_handle
    }

    /// Allocate a pull generation stamp (never reused).
    pub fn alloc_pull_generation(&mut self) -> u64 {
        self.next_pull_generation += 1;
        self.next_pull_generation
    }

    /// Allocate a sender-side large handle.
    pub fn alloc_tx_handle(&mut self) -> u32 {
        self.next_tx_handle += 1;
        self.next_tx_handle
    }

    /// Account for skbuffs captured by a pending asynchronous copy.
    pub fn hold_skbuffs(&mut self, n: u64) {
        self.skbuffs_held += n;
        self.skbuffs_held_max = self.skbuffs_held_max.max(self.skbuffs_held);
    }

    /// Account for skbuffs released by the cleanup routine.
    pub fn release_skbuffs(&mut self, n: u64) {
        debug_assert!(self.skbuffs_held >= n, "releasing more skbuffs than held");
        self.skbuffs_held = self.skbuffs_held.saturating_sub(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;

    /// A submitted I/OAT handle for lifecycle-accurate tests.
    fn handle(cookie: u64, finish: Ps) -> CopyHandle {
        let san = SimSanitizer::alloc(Kind::IoatDescriptor);
        SimSanitizer::submit(san);
        CopyHandle {
            channel: 0,
            cookie,
            finish,
            san,
        }
    }

    fn pull_state() -> PullState {
        let mut p = PullState::new(
            EpIdx(0),
            ReqId(1),
            EpAddr {
                node: NodeId(1),
                ep: EpIdx(0),
            },
            1,
            0,
            64 << 10,
            16,
            vec![8, 8],
            2,
            0,
            Ps::ZERO,
            1,
            Ps::us(500),
            &mut DriverScratch::default(),
        );
        assert_eq!(p.frag_seen.len(), 16);
        p.bytes_done = 0;
        p
    }

    #[test]
    fn handles_are_unique() {
        let mut d = Driver::new();
        let a = d.alloc_pull_handle();
        let b = d.alloc_pull_handle();
        assert_ne!(a, b);
        let c = d.alloc_tx_handle();
        let e = d.alloc_tx_handle();
        assert_ne!(c, e);
    }

    #[test]
    fn skbuff_accounting_tracks_high_water() {
        let mut d = Driver::new();
        d.hold_skbuffs(3);
        d.hold_skbuffs(4);
        assert_eq!(d.skbuffs_held, 7);
        d.release_skbuffs(5);
        assert_eq!(d.skbuffs_held, 2);
        assert_eq!(d.skbuffs_held_max, 7);
    }

    #[test]
    fn pull_state_block_and_reap() {
        let mut p = pull_state();
        p.pending_copies = vec![
            PendingCopy {
                handle: handle(0, Ps::us(1)),
                skbs: 1,
                bytes: 4096,
            },
            PendingCopy {
                handle: handle(1, Ps::us(3)),
                skbs: 1,
                bytes: 4096,
            },
        ];
        assert_eq!(p.block_of(0, 8), 0);
        assert_eq!(p.block_of(8, 8), 1);
        assert!(!p.all_arrived());
        assert_eq!(p.last_copy_finish(), Some(Ps::us(3)));
        // Reap at 2us frees the first copy only.
        assert_eq!(p.reap_completed(Ps::us(2)), 1);
        assert_eq!(p.pending_copies.len(), 1);
        assert_eq!(p.reap_completed(Ps::us(4)), 1);
        assert!(p.pending_copies.is_empty());
        p.frag_seen.iter_mut().for_each(|b| *b = true);
        assert!(p.all_arrived());
    }

    #[test]
    fn take_stuck_extracts_past_deadline_copies() {
        let pc = |cookie: u64, finish: Ps| PendingCopy {
            handle: handle(cookie, finish),
            skbs: 1,
            bytes: 4096,
        };
        let mut p = pull_state();
        p.pending_copies = vec![pc(0, Ps::us(10)), pc(1, omx_hw::ioat::STALLED_FOREVER)];
        // A deadline beyond every completion finds nothing stuck.
        let mut stuck = Vec::new();
        p.take_stuck(Ps::us(5), Ps::secs(7200), &mut stuck);
        assert!(stuck.is_empty());
        assert_eq!(p.pending_copies.len(), 2);
        // The never-finishing copy trips the deadline; the healthy one
        // stays pending.
        p.take_stuck(Ps::us(6), Ps::ms(2), &mut stuck);
        assert_eq!(stuck.len(), 1);
        assert_eq!(stuck[0].handle.cookie, 1);
        assert_eq!(p.pending_copies.len(), 1);
        assert_eq!(p.pending_copies[0].handle.cookie, 0);
    }

    #[test]
    fn pull_handles_wrap_and_generations_do_not() {
        let mut d = Driver::new();
        d.next_pull_handle = u32::MAX - 1;
        let a = d.alloc_pull_handle();
        let b = d.alloc_pull_handle();
        let c = d.alloc_pull_handle();
        assert_eq!(a, u32::MAX);
        assert_eq!(b, 0, "handle namespace wraps");
        assert_eq!(c, 1);
        assert_eq!(d.alloc_pull_generation(), 1);
        assert_eq!(d.alloc_pull_generation(), 2);
    }
}
