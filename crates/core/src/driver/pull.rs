//! The large-message pull engine (§III-A/III-B).
//!
//! Receiver side: after the library matches a rendezvous, the driver
//! pins the destination region and requests fragments in blocks of 8,
//! keeping 2 blocks outstanding. Each arriving fragment is copied into
//! the pinned region — by memcpy, or (the paper's contribution) by an
//! *asynchronous* I/OAT copy submitted from the BH, which releases the
//! CPU immediately. Only the last fragment's BH waits for all pending
//! copies before raising the single completion event. Skbuffs held by
//! pending copies are released by the cleanup routine that piggybacks
//! on every new block request (bounding memory, §III-B) and on the
//! retransmission timeout.

use crate::cluster::Cluster;
use crate::driver::{PendingCopy, PullState};
use crate::events::Event;
use crate::proto::Packet;
use crate::{EpAddr, NodeId, ReqId};
use bytes::Bytes;
use omx_hw::cpu::category;
use omx_hw::CoreId;
use omx_sim::sanitize::SimSanitizer;
use omx_sim::{Ps, Sim};

impl Cluster {
    /// Publish `ev` to `addr` at time `at` (the moment the producing
    /// work finishes).
    pub(crate) fn push_event_at(
        &mut self,
        sim: &mut Sim<Cluster>,
        addr: EpAddr,
        ev: Event,
        at: Ps,
    ) {
        sim.schedule_at(at, move |c: &mut Cluster, s| c.push_event(s, addr, ev));
    }

    /// Driver half of starting a pull: pin the region, create the pull
    /// state, request the first blocks. `from` is the time the library
    /// handed the command over.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn start_pull(
        &mut self,
        sim: &mut Sim<Cluster>,
        me: EpAddr,
        req: ReqId,
        src: EpAddr,
        sender_handle: u32,
        msg_len: u64,
        msg_seq: u32,
        from: Ps,
    ) {
        let core = self.ep(me).core;
        let node = me.node;
        // Command syscall into the driver.
        let syscall = self.p.hw.syscall_cost + self.p.cfg.driver_cmd_cost;
        let (_, fin) = self.run_core(node, core, from, syscall, category::DRIVER);
        // Pin the destination buffer (registration cache may hit).
        let tag = self
            .ep(me)
            .recvs
            .get(&req)
            .and_then(|r| r.tag)
            .unwrap_or(req.0 | (1 << 62));
        let hw = self.p.hw.clone();
        let reg = self.ep_mut(me).regions.register(&hw, tag, msg_len);
        {
            let c = &mut self.ep_mut(me).counters;
            if reg.cache_hit {
                c.regcache_hits += 1;
            } else {
                c.regcache_misses += 1;
            }
        }
        let (_, mut fin) = self.run_core(node, core, fin, reg.cost, category::DRIVER);
        if let Some(rs) = self.ep_mut(me).recvs.get_mut(&req) {
            rs.region = Some(reg.region);
            rs.total = msg_len;
        }
        let frag = self.p.cfg.frag_size;
        let frags_total = msg_len.div_ceil(frag).max(1) as u32;
        let bf = self.p.cfg.pull_block_frags;
        let blocks_total = frags_total.div_ceil(bf);
        // Per-block and per-fragment accounting buffers come from the
        // per-node scratch pools: in steady state a new pull reuses the
        // buffers a finished one returned.
        let mut block_remaining = self.node_mut(node).driver.scratch.take_blocks();
        block_remaining.extend((0..blocks_total).map(|b| (frags_total - b * bf).min(bf)));
        let handle = self.node_mut(node).driver.alloc_pull_handle();
        let generation = self.node_mut(node).driver.alloc_pull_generation();
        // Prefer a channel that is not quarantined; if every channel is
        // blacklisted the fragment path falls back to memcpy anyway.
        let channel = self.pick_healthy_channel(node, fin);
        let credits = self.p.cfg.pull_credits;
        let first_blocks = blocks_total.min(self.p.cfg.pull_blocks_outstanding);
        // Credit mode: no block is pre-granted — every request goes
        // through the shared budget, so an incast start cannot stampede
        // the receiver with N uncoordinated first windows.
        let initial_blocks = if credits { 0 } else { first_blocks };
        let base_rto = self.p.cfg.retransmit_timeout;
        let drv = &mut self.node_mut(node).driver;
        let state = PullState::new(
            me.ep,
            req,
            src,
            sender_handle,
            msg_seq,
            msg_len,
            frags_total,
            block_remaining,
            initial_blocks,
            channel,
            from,
            generation,
            base_rto,
            &mut drv.scratch,
        );
        drv.pulls.insert(handle, state);
        if credits {
            self.credit_enqueue(node, handle);
            fin = self.credit_pump(sim, node, core, fin, category::DRIVER);
        } else {
            // Request the first window of blocks (driver context).
            for b in 0..first_blocks {
                let (_, f) = self.run_core(
                    node,
                    core,
                    fin,
                    self.p.cfg.ctrl_frame_cost,
                    category::DRIVER,
                );
                fin = f;
                self.send_block_request(sim, node, handle, b, fin);
            }
        }
        self.schedule_pull_watchdog(sim, node, handle, generation, 0, fin);
    }

    /// Build and send the PullReq for block `b` of pull `handle`.
    fn send_block_request(
        &mut self,
        sim: &mut Sim<Cluster>,
        node: NodeId,
        handle: u32,
        block: u32,
        at: Ps,
    ) {
        let bf = self.p.cfg.pull_block_frags;
        let Some(pull) = self.node(node).driver.pulls.get(&handle) else {
            return;
        };
        let frag_start = block * bf;
        let frag_count = (pull.frags_total - frag_start).min(bf);
        let pkt = Packet::PullReq {
            src_ep: pull.ep.0,
            dst_ep: pull.src.ep.0,
            sender_handle: pull.sender_handle,
            recv_handle: handle,
            frag_start,
            frag_count,
        };
        let dst = pull.src.node;
        self.send_packet(sim, node, dst, &pkt, at);
    }

    /// Sender side: a pull request arrived in BH context — stream the
    /// requested fragments back, zero-copy from the pinned send buffer.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn rx_pull_req(
        &mut self,
        sim: &mut Sim<Cluster>,
        node: NodeId,
        core: CoreId,
        dst_ep: u8,
        sender_handle: u32,
        recv_handle: u32,
        frag_start: u32,
        frag_count: u32,
    ) -> Ps {
        let (_, mut fin) = self.run_core(
            node,
            core,
            sim.now(),
            self.p.cfg.bh_frag_process,
            category::BH,
        );
        let Some(tx) = self.node(node).driver.tx_large.get(&sender_handle).copied() else {
            self.stats.duplicates_dropped += 1;
            return fin;
        };
        let me = EpAddr {
            node,
            ep: crate::EpIdx(dst_ep),
        };
        debug_assert_eq!(tx.ep, me.ep, "pull request routed to wrong endpoint");
        let base_rto = self.p.cfg.retransmit_timeout;
        let (dest, data) = {
            let st = self
                .ep_mut(me)
                .sends
                .get_mut(&tx.req)
                // omx-lint: allow(fast-path-panic) tx_large entries and their send are created together and reaped together; duplicate/stale pull requests are rejected above [test: tests/fault_soak.rs::duplicate_everything_is_idempotent]
                .expect("large send alive");
            // Pull requests are proof the receiver is making progress:
            // reset the rendezvous retransmission deadline, the give-up
            // budget (exhaustion must mean *consecutive* silence, not
            // accumulated timeouts over a long transfer) and the
            // adaptive backoff.
            st.last_activity = fin;
            st.retx_attempts = 0;
            st.rto = base_rto;
            (st.dest, st.data.clone())
        };
        let frag = self.p.cfg.frag_size;
        for i in frag_start..frag_start + frag_count {
            let lo = (i as u64 * frag).min(data.len() as u64) as usize;
            let hi = ((i as u64 + 1) * frag).min(data.len() as u64) as usize;
            if lo >= hi {
                break;
            }
            let (_, f) = self.run_core(node, core, fin, self.p.cfg.tx_frag_cost, category::BH);
            fin = f;
            self.ep_mut(me).counters.tx_large_frags += 1;
            let pkt = Packet::LargeFrag {
                src_ep: me.ep.0,
                dst_ep: dest.ep.0,
                recv_handle,
                frag_idx: i,
                offset: lo as u64,
                data: data.slice(lo..hi),
            };
            self.send_packet(sim, node, dest.node, &pkt, fin);
        }
        fin
    }

    /// Receiver side: one large fragment arrived in BH context.
    /// `coalesced` marks a GRO frame-train tail (cheaper bookkeeping).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn rx_large_frag(
        &mut self,
        sim: &mut Sim<Cluster>,
        node: NodeId,
        core: CoreId,
        recv_handle: u32,
        frag_idx: u32,
        offset: u64,
        data: Bytes,
        coalesced: bool,
    ) -> Ps {
        let now = sim.now();
        // Stale fragment after completion, duplicate, or out of range?
        // `frag_is_new` treats an out-of-bounds index as already-seen,
        // so a corrupted-but-FCS-clean or misrouted index cannot panic
        // the BH.
        let valid = self
            .node(node)
            .driver
            .pulls
            .get(&recv_handle)
            .map(|p| p.frag_is_new(frag_idx));
        match valid {
            None | Some(false) => {
                self.stats.duplicates_dropped += 1;
                let (_, fin) =
                    self.run_core(node, core, now, self.p.cfg.bh_frag_process, category::BH);
                return fin;
            }
            Some(true) => {}
        }
        let (me, req, msg_len, channel) = {
            let p = self
                .node(node)
                .driver
                .pulls
                .get(&recv_handle)
                // omx-lint: allow(fast-path-panic) freshness of recv_handle was checked on BH entry just above [test: tests/fault_soak.rs::duplicate_everything_is_idempotent]
                .expect("checked");
            (EpAddr { node, ep: p.ep }, p.req, p.msg_len, p.channel)
        };
        let len = data.len() as u64;
        // A vectorial destination splits the copy at segment
        // boundaries: the effective chunk shrinks and the fragment
        // threshold (§IV-A) decides against offloading tiny chunks.
        let seg = self
            .ep(me)
            .recvs
            .get(&req)
            .and_then(|r| r.seg_size)
            .unwrap_or(u64::MAX);
        let chunk_eff = len.min(seg).max(1);
        // --- copy path decision -----------------------------------------
        let in_warm_head = offset < self.p.cfg.warm_copy_head_bytes;
        let offload = self.p.cfg.offload_net_copy(msg_len, chunk_eff)
            && !self.p.cfg.ignore_bh_copy
            && !in_warm_head;
        // Graceful degradation: a quarantined (or scheduled-dead)
        // channel demotes this fragment to the memcpy path instead of
        // feeding more copies to hardware known to be stuck.
        let ch = if offload {
            let multichannel = self.p.cfg.ioat_multichannel_split;
            let n = self.node_mut(node);
            if multichannel {
                n.ioat.pick_channel_least_loaded()
            } else {
                channel
            }
        } else {
            channel
        };
        let channel_ok = !offload || self.ioat_channel_usable(node, ch, now);
        if offload && !channel_ok {
            self.record_ioat_fallback(node, now, len);
            self.ep_mut(me).counters.copies_fallback += 1;
        }
        let offload = offload && channel_ok;
        let mut fin;
        let mut copy_handle = None;
        if offload {
            let ndesc = self.desc_count(offset, len).max(len.div_ceil(chunk_eff));
            let submit = self.ioat_submit_cost(ndesc, coalesced);
            let work = self.bh_frag_cost(coalesced) + submit;
            let (_, submit_fin) = self.run_core(node, core, now, work, category::BH);
            self.metrics.busy(node.0, "ioat.submit_cpu", submit);
            fin = submit_fin;
            let hw = self.p.hw.clone();
            let n = self.node_mut(node);
            copy_handle = Some(n.ioat.submit(&hw, submit_fin, ch, len, ndesc));
            self.node_mut(node).driver.hold_skbuffs(1);
            let c = &mut self.ep_mut(me).counters;
            c.copies_offloaded += 1;
            c.bytes_offloaded += len;
            c.rx_large_frags += 1;
        } else {
            let copy = self.bh_copy_cost_chunked(len, chunk_eff);
            let work = self.bh_frag_cost(coalesced) + copy;
            let (_, f) = self.run_core(node, core, now, work, category::BH);
            self.metrics.busy(node.0, "bh.copy", copy);
            self.metrics.count(node.0, "bh.copy_bytes", len);
            fin = f;
            let c = &mut self.ep_mut(me).counters;
            c.copies_memcpy += 1;
            c.bytes_memcpy += len;
            c.rx_large_frags += 1;
        }
        // --- apply the data and progress accounting ----------------------
        {
            let ep = self.ep_mut(me);
            if let Some(rs) = ep.recvs.get_mut(&req) {
                let end = ((offset + len) as usize).min(rs.buf.len());
                let start = (offset as usize).min(end);
                // omx-lint: allow(fast-path-panic) start ≤ end ≤ buf.len() by the two clamps above, and end−start ≤ len = data.len() [test: tests/fault_soak.rs::flaky_10g_stream_recovers_with_fallback_and_backoff]
                rs.buf[start..end].copy_from_slice(&data[..end - start]);
                rs.received += (end - start) as u64;
            }
        }
        let bf = self.p.cfg.pull_block_frags;
        let (progress, next_block, blocks_total) = {
            let p = self
                .node_mut(node)
                .driver
                .pulls
                .get_mut(&recv_handle)
                // omx-lint: allow(fast-path-panic) freshness of recv_handle was checked on BH entry just above [test: tests/fault_soak.rs::duplicate_everything_is_idempotent]
                .expect("checked");
            p.bytes_done += len;
            p.last_progress = fin;
            if let Some(h) = copy_handle {
                p.pending_copies.push(PendingCopy {
                    handle: h,
                    skbs: 1,
                    bytes: len,
                });
            }
            let progress = p
                .note_frag(frag_idx, bf)
                // omx-lint: allow(fast-path-panic) stale/duplicate fragments were filtered by the freshness check on BH entry [test: tests/fault_soak.rs::duplicate_everything_is_idempotent]
                .expect("freshness checked on BH entry");
            (progress, p.next_block, p.block_remaining.len() as u32)
        };
        let (block_done, all_arrived) = (progress.block_done, progress.all_arrived);
        // --- block completed: cleanup + request the next block -----------
        if self.p.cfg.pull_credits {
            if block_done {
                // Return the block's credit to the shared budget, then
                // let the pump hand it to whichever pull (this one or a
                // starved peer) is first in line.
                self.credit_release_block(node, recv_handle);
                self.credit_maybe_regrow(node, fin);
                if !all_arrived {
                    fin = self.pull_cleanup(sim, node, core, recv_handle, fin);
                    self.credit_enqueue(node, recv_handle);
                }
                fin = self.credit_pump(sim, node, core, fin, category::BH);
            }
        } else if block_done && next_block < blocks_total && !all_arrived {
            fin = self.pull_cleanup(sim, node, core, recv_handle, fin);
            let (_, f) = self.run_core(node, core, fin, self.p.cfg.ctrl_frame_cost, category::BH);
            fin = f;
            self.node_mut(node)
                .driver
                .pulls
                .get_mut(&recv_handle)
                // omx-lint: allow(fast-path-panic) freshness of recv_handle was checked on BH entry just above [test: tests/fault_soak.rs::duplicate_everything_is_idempotent]
                .expect("checked")
                .next_block += 1;
            self.send_block_request(sim, node, recv_handle, next_block, fin);
        }
        // --- message complete: drain copies, notify, raise the event -----
        if all_arrived {
            fin = self.finish_pull(sim, node, core, recv_handle, fin);
        }
        fin
    }

    /// The §III-B cleanup routine: poll the DMA channel once, release
    /// the skbuffs of completed copies. The same poll doubles as the
    /// stuck-channel detector: any copy whose completion lies further
    /// than the stall deadline in the future is re-done on the CPU and
    /// its channel quarantined.
    pub(crate) fn pull_cleanup(
        &mut self,
        sim: &mut Sim<Cluster>,
        node: NodeId,
        core: CoreId,
        recv_handle: u32,
        from: Ps,
    ) -> Ps {
        let _ = sim;
        let has_pending = self
            .node(node)
            .driver
            .pulls
            .get(&recv_handle)
            .is_some_and(|p| !p.pending_copies.is_empty());
        if !has_pending {
            return from;
        }
        let (_, fin) = self.run_core(node, core, from, self.p.hw.ioat_poll_cost, category::BH);
        let fin = self.rescue_stuck_copies(node, core, recv_handle, fin);
        let freed = self
            .node_mut(node)
            .driver
            .pulls
            .get_mut(&recv_handle)
            .map(|p| p.reap_completed(fin))
            .unwrap_or(0);
        self.node_mut(node).driver.release_skbuffs(freed);
        fin
    }

    /// Completion-poll deadline handling (the dmaengine-style recovery
    /// half of the fault model): pending copies whose completion is
    /// further than `cfg.ioat_stall_deadline` away are declared stuck.
    /// The driver re-does each on the CPU (the fragment data was
    /// already applied at arrival, so this charges the memcpy time and
    /// frees the pinned skbuffs) and quarantines the offending channel
    /// until the re-probe cool-down expires.
    fn rescue_stuck_copies(
        &mut self,
        node: NodeId,
        core: CoreId,
        recv_handle: u32,
        from: Ps,
    ) -> Ps {
        let deadline = self.p.cfg.ioat_stall_deadline;
        // Reusable extraction buffer: taken from the per-node scratch
        // (leaving an unallocated empty vec behind) and handed back
        // below, so the poll path never touches the allocator.
        let mut stuck = std::mem::take(&mut self.node_mut(node).driver.scratch.stuck);
        stuck.clear();
        let ep = match self.node_mut(node).driver.pulls.get_mut(&recv_handle) {
            Some(p) => {
                p.take_stuck(from, deadline, &mut stuck);
                Some(p.ep)
            }
            None => None,
        };
        let mut fin = from;
        for pc in stuck.drain(..) {
            let copy = self.bh_copy_cost(pc.bytes);
            let (_, f) = self.run_core(node, core, fin, copy, category::BH);
            self.metrics.busy(node.0, "bh.copy", copy);
            fin = f;
            self.record_ioat_fallback(node, fin, pc.bytes);
            if let Some(ep) = ep {
                self.ep_mut(EpAddr { node, ep }).counters.copies_fallback += 1;
            }
            self.node_mut(node).driver.release_skbuffs(pc.skbs);
            let until = fin + self.p.cfg.ioat_quarantine_cooldown;
            self.quarantine_channel(node, pc.handle.channel, until);
        }
        self.node_mut(node).driver.scratch.stuck = stuck;
        fin
    }

    /// All fragments arrived: wait for pending asynchronous copies
    /// (busy-poll in BH context), then notify the sender and raise the
    /// single completion event.
    fn finish_pull(
        &mut self,
        sim: &mut Sim<Cluster>,
        node: NodeId,
        core: CoreId,
        recv_handle: u32,
        from: Ps,
    ) -> Ps {
        // Rescue stuck copies first — otherwise the busy-poll below
        // would wait for a completion that never comes.
        let mut fin = self.rescue_stuck_copies(node, core, recv_handle, from);
        let last_finish = self
            .node(node)
            .driver
            .pulls
            .get(&recv_handle)
            .and_then(|p| p.last_copy_finish());
        if let Some(t) = last_finish {
            // Busy-poll until every pending copy completed.
            let wait = t.saturating_sub(fin) + self.p.hw.ioat_poll_cost;
            let (_, f) = self.run_core(node, core, fin, wait, category::BH);
            self.metrics.busy(node.0, "ioat.poll_wait", wait);
            fin = f;
        }
        let pull = self
            .node_mut(node)
            .driver
            .pulls
            .remove(&recv_handle)
            .expect("completing an existing pull");
        let held: u64 = pull.pending_copies.iter().map(|pc| pc.skbs).sum();
        self.node_mut(node).driver.release_skbuffs(held);
        // Every remaining pending copy finished inside the busy-poll
        // above: observe each completion exactly once, then retire the
        // descriptors and the pull handle itself.
        for pc in &pull.pending_copies {
            SimSanitizer::complete(pc.handle.san);
            SimSanitizer::release(pc.handle.san);
        }
        SimSanitizer::complete(pull.token());
        SimSanitizer::release(pull.token());
        let me = EpAddr { node, ep: pull.ep };
        // Duplicate-suppress and release the pinned region.
        self.ep_mut(me).record_completed_seq(pull.src, pull.msg_seq);
        let region = self.ep(me).recvs.get(&pull.req).and_then(|r| r.region);
        if let Some(r) = region {
            self.ep_mut(me).regions.release(r);
        }
        // Notify the sender (its send completes on this).
        let (_, f) = self.run_core(node, core, fin, self.p.cfg.ctrl_frame_cost, category::BH);
        fin = f;
        let pkt = Packet::Notify {
            src_ep: me.ep.0,
            dst_ep: pull.src.ep.0,
            sender_handle: pull.sender_handle,
        };
        self.send_packet(sim, node, pull.src.node, &pkt, fin);
        self.push_event_at(
            sim,
            me,
            Event::RecvLargeDone {
                req: pull.req,
                len: pull.msg_len,
            },
            fin,
        );
        // Return the pull's heap-backed state to the per-node scratch
        // pool so the next pull on this node allocates nothing.
        self.node_mut(node).driver.scratch.recycle_pull(pull);
        fin
    }

    /// Give up re-requesting after this many consecutive stalled
    /// checks (mirrors the eager path's retransmission bound; a real
    /// stack would declare the peer dead).
    const MAX_PULL_STALLS: u32 = 10;

    /// Arm the pull watchdog: if no fragment arrives within the
    /// (adaptive) retransmission timeout, run the cleanup routine (the
    /// paper ties it to this timer too) and re-request the incomplete
    /// blocks. The watchdog is stamped with the pull's generation so a
    /// timer armed for a dead pull no-ops when its small handle
    /// namespace is recycled by a later message.
    fn schedule_pull_watchdog(
        &mut self,
        sim: &mut Sim<Cluster>,
        node: NodeId,
        handle: u32,
        generation: u64,
        progress_snapshot: u64,
        from: Ps,
    ) {
        self.schedule_pull_watchdog_n(sim, node, handle, generation, progress_snapshot, 0, from);
    }

    #[allow(clippy::too_many_arguments)]
    fn schedule_pull_watchdog_n(
        &mut self,
        sim: &mut Sim<Cluster>,
        node: NodeId,
        handle: u32,
        generation: u64,
        progress_snapshot: u64,
        stalls: u32,
        from: Ps,
    ) {
        // The pull carries its own adaptive timeout (exponential
        // backoff while stalled); fall back to the base timeout when
        // the pull is already gone (the watchdog will no-op anyway).
        let mut timeout = self
            .node(node)
            .driver
            .pulls
            .get(&handle)
            .map(|p| p.rto)
            .unwrap_or(self.p.cfg.retransmit_timeout);
        if self.p.cfg.pull_credits {
            // The receiver sized the in-flight backlog itself: a block
            // granted behind k outstanding blocks legitimately waits k
            // service quanta in the RX ring before its first fragment
            // can land, so re-request patience scales with the granted
            // backlog. Without this, a wide incast re-requests blocks
            // that were merely queued — the base RTO is calibrated for
            // one pull's round trip, not the aggregate drain.
            let outstanding = self.node(node).driver.credits.outstanding as u64;
            timeout = Ps::ps(timeout.as_ps() * (8 + outstanding) / 8);
        }
        sim.schedule_at(from + timeout, move |c: &mut Cluster, s| {
            c.pull_watchdog(s, node, handle, generation, progress_snapshot, stalls);
        });
    }

    fn pull_watchdog(
        &mut self,
        sim: &mut Sim<Cluster>,
        node: NodeId,
        handle: u32,
        generation: u64,
        progress_snapshot: u64,
        stalls: u32,
    ) {
        let Some((bytes_done, ep, gen)) = self
            .node(node)
            .driver
            .pulls
            .get(&handle)
            .map(|p| (p.bytes_done, p.ep, p.generation))
        else {
            return; // completed
        };
        if gen != generation {
            // The handle was recycled by a newer pull: this timer
            // belongs to a pull that already completed. Acting on it
            // would re-request blocks of the *new* pull off-schedule
            // (or worse, abandon it).
            return;
        }
        let now = sim.now();
        if bytes_done != progress_snapshot {
            // Progress since last check: reset the backoff, re-arm.
            let base_rto = self.p.cfg.retransmit_timeout;
            if let Some(p) = self.node_mut(node).driver.pulls.get_mut(&handle) {
                p.rto = base_rto;
            }
            self.schedule_pull_watchdog(sim, node, handle, generation, bytes_done, now);
            return;
        }
        if self.p.cfg.pull_credits {
            let starved = self.node(node).driver.pulls.get(&handle).is_some_and(|p| {
                p.credits_held == 0 && (p.next_block as usize) < p.block_remaining.len()
            });
            if starved {
                // No block of this pull is in flight, so the silence is
                // budget exhaustion, not loss: the fabric owes us
                // nothing to retransmit. Re-enter the grant queue and
                // re-arm without escalating the RTO or spending the
                // stall budget — the pulls that *hold* credits either
                // progress or get abandoned, which frees budget for us.
                self.credit_enqueue(node, handle);
                let core = self.ep(EpAddr { node, ep }).core;
                let fin = self.credit_pump(sim, node, core, now, category::DRIVER);
                self.schedule_pull_watchdog_n(
                    sim, node, handle, generation, bytes_done, stalls, fin,
                );
                return;
            }
        }
        if stalls >= Self::MAX_PULL_STALLS {
            // The peer stopped responding entirely: abandon the pull so
            // the simulation drains instead of spinning forever,
            // releasing any skbuffs its pending copies still held.
            if let Some(p) = self.node_mut(node).driver.pulls.remove(&handle) {
                let held: u64 = p.pending_copies.iter().map(|pc| pc.skbs).sum();
                self.node_mut(node).driver.release_skbuffs(held);
                // Abandoned without completing: the descriptors and the
                // pull handle go straight to released.
                for pc in &p.pending_copies {
                    SimSanitizer::release(pc.handle.san);
                }
                SimSanitizer::release(p.token());
                if self.p.cfg.pull_credits {
                    // Return the abandoned pull's credits so waiters
                    // behind it are not starved by a dead transfer.
                    let cr = &mut self.nodes[node.0 as usize].driver.credits;
                    cr.outstanding = cr.outstanding.saturating_sub(p.credits_held);
                    let core = self.ep(EpAddr { node, ep }).core;
                    self.credit_pump(sim, node, core, now, category::DRIVER);
                }
                self.node_mut(node).driver.scratch.recycle_pull(p);
            }
            return;
        }
        // Stalled: escalate the timeout (exponential backoff with
        // jitter keeps repeated re-requests from hammering a congested
        // or lossy path in lockstep), then cleanup + re-request every
        // incomplete requested block.
        let cur = self
            .node(node)
            .driver
            .pulls
            .get(&handle)
            .map(|p| p.rto)
            .unwrap_or(self.p.cfg.retransmit_timeout);
        let next_rto = self.escalate_rto(node, cur);
        if let Some(p) = self.node_mut(node).driver.pulls.get_mut(&handle) {
            p.rto = next_rto;
        }
        let core = self.ep(EpAddr { node, ep }).core;
        let mut fin = self.pull_cleanup(sim, node, core, handle, now);
        let stalled: Vec<u32> = {
            let p = self.node(node).driver.pulls.get(&handle).expect("alive");
            (0..p.next_block)
                .filter(|&b| p.block_remaining[b as usize] > 0)
                .collect()
        };
        for b in stalled {
            self.stats.pull_retransmissions += 1;
            let (_, f) = self.run_core(
                node,
                core,
                fin,
                self.p.cfg.ctrl_frame_cost,
                category::DRIVER,
            );
            fin = f;
            self.send_block_request(sim, node, handle, b, fin);
        }
        self.schedule_pull_watchdog_n(sim, node, handle, generation, bytes_done, stalls + 1, fin);
    }

    // ------------------------------------------------------------------
    // receiver-driven credit control (the congestion-control tentpole)
    //
    // With `cfg.pull_credits` on, no pull requests blocks on its own:
    // every block grant comes out of the node-wide
    // [`crate::driver::CreditState`] budget, handed out FIFO by
    // [`Self::credit_pump`]. The budget adapts to RX-ring occupancy —
    // halved (cooldown-limited) when a ring sheds or crosses the high
    // watermark, regrown additively on sustained headroom. The PullReq
    // itself is the grant; only the revoke path needs a new packet
    // ([`Packet::CreditNack`]). Everything here is unreachable when the
    // knob is off, which keeps the default bit-identical to the fixed
    // per-pull window.
    // ------------------------------------------------------------------

    /// Put `handle` in line for a block grant unless it is already
    /// queued, has no blocks left to request, or is at its per-pull
    /// cap (`cfg.pull_blocks_outstanding` still bounds one pull's
    /// share of the budget). Counts a stall when the budget is
    /// currently exhausted — the controller's queueing signal.
    fn credit_enqueue(&mut self, node: NodeId, handle: u32) {
        let cap = self.p.cfg.pull_blocks_outstanding;
        let d = &mut self.nodes[node.0 as usize].driver;
        let Some(p) = d.pulls.get_mut(&handle) else {
            return;
        };
        if p.credit_queued
            || (p.next_block as usize) >= p.block_remaining.len()
            || p.credits_held >= cap
        {
            return;
        }
        p.credit_queued = true;
        d.credits.waiters.push_back(handle);
        if d.credits.outstanding >= d.credits.budget {
            self.stats.credit_stalls += 1;
            self.metrics.count(node.0, "credit.stalls", 1);
        }
    }

    /// Grant block credits to waiting pulls until the budget is
    /// exhausted or the queue drains, sending one PullReq per grant
    /// (the PullReq *is* the credit). `cat` is the CPU category of the
    /// calling context (driver syscall vs BH). Returns the new finish
    /// time.
    fn credit_pump(
        &mut self,
        sim: &mut Sim<Cluster>,
        node: NodeId,
        core: CoreId,
        mut fin: Ps,
        cat: &'static str,
    ) -> Ps {
        enum Pop {
            Stop,
            Skip,
            Grant(u32, u32),
        }
        let cap = self.p.cfg.pull_blocks_outstanding;
        loop {
            let action = {
                let d = &mut self.nodes[node.0 as usize].driver;
                if d.credits.outstanding >= d.credits.budget {
                    Pop::Stop
                } else {
                    match d.credits.waiters.pop_front() {
                        None => Pop::Stop,
                        Some(h) => {
                            // A stale entry (finished/abandoned pull, or
                            // one whose flag was cleared) is skipped;
                            // the `credit_queued` flag guarantees each
                            // live pull appears at most once.
                            let grant = d.pulls.get_mut(&h).and_then(|p| {
                                if !p.credit_queued {
                                    return None;
                                }
                                p.credit_queued = false;
                                if (p.next_block as usize) >= p.block_remaining.len()
                                    || p.credits_held >= cap
                                {
                                    return None;
                                }
                                let b = p.next_block;
                                p.next_block += 1;
                                p.credits_held += 1;
                                Some(b)
                            });
                            match grant {
                                None => Pop::Skip,
                                Some(b) => {
                                    d.credits.outstanding += 1;
                                    Pop::Grant(h, b)
                                }
                            }
                        }
                    }
                }
            };
            match action {
                Pop::Stop => return fin,
                Pop::Skip => continue,
                Pop::Grant(h, b) => {
                    // Round-robin fairness: if the pull wants more
                    // blocks it re-joins at the back of the line.
                    self.credit_enqueue(node, h);
                    let (_, f) = self.run_core(node, core, fin, self.p.cfg.ctrl_frame_cost, cat);
                    fin = f;
                    self.send_block_request(sim, node, h, b, fin);
                }
            }
        }
    }

    /// A granted block fully arrived: return its credit to the shared
    /// budget.
    fn credit_release_block(&mut self, node: NodeId, handle: u32) {
        let d = &mut self.nodes[node.0 as usize].driver;
        if let Some(p) = d.pulls.get_mut(&handle) {
            debug_assert!(p.credits_held > 0, "block completed without a credit");
            p.credits_held = p.credits_held.saturating_sub(1);
        }
        d.credits.outstanding = d.credits.outstanding.saturating_sub(1);
    }

    /// Multiplicative decrease: halve the budget (clamped to
    /// `cfg.credit_budget_min`), rate-limited by the shrink cooldown so
    /// one overload episode doesn't collapse the budget to the floor in
    /// a single burst of drops. Returns `true` when the cooldown window
    /// opened (even at the floor — callers use it to rate-limit NACKs).
    fn credit_shrink(&mut self, node: NodeId, now: Ps) -> bool {
        let cool = self.p.cfg.credit_shrink_cooldown;
        let min = self.p.cfg.credit_budget_min.max(1);
        let cr = &mut self.nodes[node.0 as usize].driver.credits;
        if cr.last_shrink != Ps::ZERO && now < cr.last_shrink + cool {
            return false;
        }
        cr.last_shrink = now;
        // A shrink also resets the regrow clock: headroom must be
        // *sustained* after trouble before the budget grows back.
        cr.last_regrow = now;
        cr.budget = (cr.budget / 2).max(min);
        true
    }

    /// Additive increase: grow the budget by one when every RX queue
    /// has stayed under the high-watermark fraction of its ring and a
    /// full regrow interval passed since both the last shrink and the
    /// last regrow. Called on block completions, so regrowth needs
    /// live traffic — an idle node keeps its budget.
    fn credit_maybe_regrow(&mut self, node: NodeId, now: Ps) {
        let max = self.p.cfg.credit_budget_max;
        let interval = self.p.cfg.credit_regrow_interval;
        let pct = self.p.cfg.credit_high_watermark_pct as usize;
        {
            let cr = &self.nodes[node.0 as usize].driver.credits;
            if cr.budget >= max
                || now < cr.last_regrow + interval
                || now < cr.last_shrink + interval
            {
                return;
            }
        }
        let n = &self.nodes[node.0 as usize];
        let ring = n.nic.params().rx_ring_size;
        let queues = n.nic.params().num_queues;
        let headroom = (0..queues).all(|q| n.nic.pending_on(q) * 100 < ring * pct);
        if !headroom {
            return;
        }
        let cr = &mut self.nodes[node.0 as usize].driver.credits;
        cr.budget += 1;
        cr.last_regrow = now;
        self.stats.credit_regrows += 1;
        self.metrics.count(node.0, "credit.regrows", 1);
    }

    /// The RX ring dropped a frame: shed load. Shrinks the budget
    /// (cooldown-limited) and, when the dropped frame was a pull
    /// fragment we could attribute (`peek` = its parsed header), sends
    /// an explicit [`Packet::CreditNack`] back to the sender so its
    /// adaptive RTO backs off *now* instead of waiting out a timeout.
    pub(crate) fn credit_ring_shed(
        &mut self,
        sim: &mut Sim<Cluster>,
        node: NodeId,
        src_node: NodeId,
        peek: Option<(u8, u8, u32)>,
        now: Ps,
    ) {
        if !self.credit_shrink(node, now) {
            return;
        }
        self.stats.credit_shrinks += 1;
        self.metrics.count(node.0, "credit.shrinks", 1);
        let Some((frag_src_ep, frag_dst_ep, recv_handle)) = peek else {
            return;
        };
        // sender_handle 0 = unattributed: the sender backs off every
        // pending send to this peer instead of one transfer.
        let sender_handle = self
            .node(node)
            .driver
            .pulls
            .get(&recv_handle)
            .map(|p| p.sender_handle)
            .unwrap_or(0);
        let pkt = Packet::CreditNack {
            src_ep: frag_dst_ep,
            dst_ep: frag_src_ep,
            sender_handle,
        };
        self.send_packet(sim, node, src_node, &pkt, now);
        self.stats.credit_nacks += 1;
        self.metrics.count(node.0, "credit.nacks", 1);
    }

    /// Occupancy probe on the frame-queued path: crossing the high
    /// watermark shrinks the budget *before* the ring actually
    /// overflows (the PR-6 watermark gauge made this signal visible;
    /// this is the controller that consumes it).
    pub(crate) fn credit_occupancy_check(&mut self, node: NodeId, queue: usize, now: Ps) {
        let ring = self.node(node).nic.params().rx_ring_size;
        let pct = self.p.cfg.credit_high_watermark_pct as usize;
        if self.node(node).nic.pending_on(queue) * 100 >= ring * pct
            && self.credit_shrink(node, now)
        {
            self.stats.credit_shrinks += 1;
            self.metrics.count(node.0, "credit.shrinks", 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterParams;
    use crate::EpIdx;

    fn pull_state(generation: u64) -> PullState {
        PullState::new(
            EpIdx(0),
            ReqId(1),
            EpAddr {
                node: NodeId(1),
                ep: EpIdx(0),
            },
            1,
            0,
            64 << 10,
            16,
            vec![8, 8],
            2,
            0,
            Ps::ZERO,
            generation,
            Ps::us(500),
            &mut crate::driver::DriverScratch::default(),
        )
    }

    /// Regression: the pull-handle namespace is a small wrapping u32,
    /// so a watchdog armed for one pull can fire after its handle was
    /// recycled by a newer message. Keyed by handle alone it would see
    /// the new pull at zero progress — matching its stale snapshot —
    /// and, with the stall budget exhausted, abandon a perfectly live
    /// transfer. The generation stamp makes it a no-op instead.
    #[test]
    fn stale_watchdog_noops_when_handle_recycled() {
        let mut c = Cluster::new(ClusterParams::default());
        let mut sim: Sim<Cluster> = Sim::new();
        let handle = 7;
        c.nodes[0].driver.pulls.insert(handle, pull_state(2));
        // The previous user of the handle ran at generation 1; its last
        // watchdog fires with an exhausted stall budget and a progress
        // snapshot that happens to match the new pull.
        c.pull_watchdog(&mut sim, NodeId(0), handle, 1, 0, Cluster::MAX_PULL_STALLS);
        assert!(
            c.nodes[0].driver.pulls.contains_key(&handle),
            "stale watchdog must not abandon the recycled handle's new pull"
        );
        // The current generation still enforces the stall bound.
        c.pull_watchdog(&mut sim, NodeId(0), handle, 2, 0, Cluster::MAX_PULL_STALLS);
        assert!(
            !c.nodes[0].driver.pulls.contains_key(&handle),
            "the live generation's exhausted watchdog still abandons"
        );
    }

    /// Satellite-3 regression: a block re-requested by the RTO
    /// watchdog races its own last in-flight fragment — the original
    /// copy completes the block, then the re-requested duplicate
    /// lands. The duplicate must be recognized as already-seen: a
    /// second decrement would underflow the block's `u32` remaining
    /// count and mint a phantom block completion (double-granting in
    /// credit mode, double `next_block` advance without). Out-of-range
    /// indices likewise must be inert, not a panic.
    #[test]
    fn duplicate_fragment_never_double_decrements_a_block() {
        let mut p = pull_state(1);
        let bf = 8;
        for i in 0..8 {
            let prog = p.note_frag(i, bf).expect("fresh fragment");
            assert_eq!(prog.block_done, i == 7, "block 0 completes on frag 7");
            assert!(!prog.all_arrived);
        }
        assert_eq!(p.block_remaining[0], 0);
        // The re-requested duplicate of the block's last fragment.
        assert!(!p.frag_is_new(7));
        assert!(p.note_frag(7, bf).is_none(), "duplicate must be inert");
        assert_eq!(p.block_remaining[0], 0, "no underflow");
        // Garbage index beyond the message: stale, not a panic.
        assert!(!p.frag_is_new(999));
        assert!(p.note_frag(999, bf).is_none());
        for i in 8..16 {
            let prog = p.note_frag(i, bf).expect("fresh fragment");
            assert_eq!(prog.block_done, i == 15);
            assert_eq!(prog.all_arrived, i == 15);
        }
        SimSanitizer::release(p.token());
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(128))]

        /// Satellite-3 property: under arbitrary arrival orders with
        /// duplicates and out-of-range indices, `note_frag` accepts
        /// each fragment exactly once, never touches state on a
        /// rejected index, and its remaining counts always match an
        /// independent seen-set model.
        #[test]
        fn note_frag_is_idempotent_and_exact(
            frags_total in 1u32..64,
            bf in 1u32..16,
            seq in proptest::collection::vec(0u32..80, 1..256),
        ) {
            use proptest::prelude::*;
            let blocks_total = frags_total.div_ceil(bf);
            let block_remaining: Vec<u32> = (0..blocks_total)
                .map(|b| (frags_total - b * bf).min(bf))
                .collect();
            let mut p = PullState::new(
                EpIdx(0),
                ReqId(1),
                EpAddr {
                    node: NodeId(1),
                    ep: EpIdx(0),
                },
                1,
                0,
                frags_total as u64 * 4096,
                frags_total,
                block_remaining,
                0,
                0,
                Ps::ZERO,
                1,
                Ps::us(500),
                &mut crate::driver::DriverScratch::default(),
            );
            let mut seen = vec![false; frags_total as usize];
            for idx in seq {
                let fresh = (idx as usize) < seen.len() && !seen[idx as usize];
                let before = p.block_remaining.clone();
                prop_assert_eq!(p.frag_is_new(idx), fresh);
                match p.note_frag(idx, bf) {
                    None => {
                        prop_assert!(!fresh, "fresh fragment rejected");
                        prop_assert_eq!(&p.block_remaining, &before);
                    }
                    Some(prog) => {
                        prop_assert!(fresh, "stale fragment accepted");
                        seen[idx as usize] = true;
                        let b = (idx / bf) as usize;
                        prop_assert_eq!(p.block_remaining[b] + 1, before[b]);
                        prop_assert_eq!(prog.block_done, p.block_remaining[b] == 0);
                        prop_assert_eq!(prog.all_arrived, seen.iter().all(|&s| s));
                    }
                }
            }
            for b in 0..blocks_total as usize {
                let lo = b as u32 * bf;
                let hi = ((b as u32 + 1) * bf).min(frags_total);
                let unseen = (lo..hi).filter(|&i| !seen[i as usize]).count() as u32;
                prop_assert_eq!(p.block_remaining[b], unseen);
            }
            SimSanitizer::release(p.token());
        }
    }
}
