//! The Open-MX driver: send command processing and the BH receive
//! callback for eager (tiny/small/medium) traffic, acks and duplicate
//! suppression. The large-message pull paths live in `pull.rs`.

use crate::app::Completion;
use crate::cluster::Cluster;
use crate::config::MsgClass;
use crate::events::Event;
use crate::proto::Packet;
use crate::{EpAddr, EpIdx, NodeId, ReqId};
use bytes::Bytes;
use omx_ethernet::Skbuff;
use omx_hw::cpu::category;
use omx_hw::mem::{CopyContext, MemModel};
use omx_hw::{CoreId, Distance, IoatEngine};
use omx_sim::sanitize::SimSanitizer;
use omx_sim::{Ps, Sim};

/// Give up retransmitting after this many attempts (a real stack would
/// declare the peer dead).
const MAX_RETX_ATTEMPTS: u32 = 10;

impl Cluster {
    /// CPU cost of the BH copying `bytes` out of an skbuff with page
    /// chunking. Honors the Fig 3 counterfactual switch.
    ///
    /// Public so calibration tools and property tests can probe the
    /// copy-cost model directly.
    pub fn bh_copy_cost(&self, bytes: u64) -> Ps {
        if self.p.cfg.ignore_bh_copy || bytes == 0 {
            return Ps::ZERO;
        }
        // With Direct Cache Access the NIC steered part of the payload
        // into the BH core's cache; the copy's read side is partially
        // warm (the write side still streams to memory, so the gain is
        // bounded well below the fully-cached rate).
        let cached_fraction = if self.p.cfg.dca_enabled { 0.35 } else { 0.0 };
        let ctx = CopyContext {
            distance: Distance::SameSocket,
            cached_fraction,
            shared_cache_pair: false,
        };
        MemModel::copy_time_paged(&self.p.hw, bytes, &ctx).scale(self.p.cfg.bh_copy_slowdown)
    }

    /// Like [`Self::bh_copy_cost`] but with an explicit chunk
    /// granularity (vectorial destination buffers).
    pub fn bh_copy_cost_chunked(&self, bytes: u64, chunk: u64) -> Ps {
        if self.p.cfg.ignore_bh_copy || bytes == 0 {
            return Ps::ZERO;
        }
        let chunk = chunk.min(self.p.hw.page_size).max(1);
        let chunks = bytes.div_ceil(chunk).max(1);
        let cached_fraction = if self.p.cfg.dca_enabled { 0.35 } else { 0.0 };
        let ctx = CopyContext {
            distance: Distance::SameSocket,
            cached_fraction,
            shared_cache_pair: false,
        };
        MemModel::copy_time(&self.p.hw, bytes, chunks, &ctx).scale(self.p.cfg.bh_copy_slowdown)
    }

    /// Per-fragment protocol bookkeeping cost in the BH. A fragment
    /// that arrived as the tail of a GRO-coalesced frame train
    /// (`coalesced`) skips the per-frame header parse and endpoint
    /// lookup and pays only the cheap continuation cost.
    pub(crate) fn bh_frag_cost(&self, coalesced: bool) -> Ps {
        if coalesced {
            self.p.cfg.gro_frag_process
        } else {
            self.p.cfg.bh_frag_process
        }
    }

    /// Descriptors needed for an I/OAT copy into `[offset, offset+len)`
    /// of a page-aligned destination region ("one or two chunks per
    /// page": one per destination page boundary crossed).
    pub(crate) fn desc_count(&self, offset: u64, len: u64) -> u64 {
        if len == 0 {
            // Nothing to move: no descriptor is built or submitted
            // (mirrors `IoatEngine::descriptors_for`).
            return 0;
        }
        let page = self.p.hw.page_size;
        let first = offset / page;
        let last = (offset + len - 1) / page;
        last - first + 1
    }

    /// CPU submission cost for `ndesc` descriptors at one driver
    /// submit site. With `OmxConfig::ioat_batch` the descriptors are
    /// chained behind one doorbell — and a GRO frame-train tail
    /// (`coalesced`) appends to the chain the train head already rang,
    /// paying no doorbell at all. Off (the default), every descriptor
    /// pays the paper's full 350 ns submission (§IV-A).
    pub(crate) fn ioat_submit_cost(&self, ndesc: u64, coalesced: bool) -> Ps {
        if self.p.cfg.ioat_batch {
            IoatEngine::submit_cpu_cost_batched(&self.p.hw, ndesc, !coalesced)
        } else {
            IoatEngine::submit_cpu_cost(&self.p.hw, ndesc)
        }
    }

    // ------------------------------------------------------------------
    // send command processing (driver, syscall context)
    // ------------------------------------------------------------------

    /// Driver processing of a network send command.
    pub(crate) fn net_send(&mut self, sim: &mut Sim<Cluster>, me: EpAddr, req: ReqId) {
        let now = sim.now();
        let core = self.ep(me).core;
        let (class, dest) = {
            let st = self.ep(me).sends.get(&req).expect("send exists");
            (st.class, st.dest)
        };
        {
            let st_len = self.ep(me).sends.get(&req).expect("send exists").data.len() as u64;
            let c = &mut self.ep_mut(me).counters;
            c.tx_bytes += st_len;
            match class {
                MsgClass::Tiny => c.tx_tiny += 1,
                MsgClass::Small => c.tx_small += 1,
                MsgClass::Medium => c.tx_medium += 1,
                MsgClass::Large => c.tx_large += 1,
            }
        }
        match class {
            MsgClass::Tiny | MsgClass::Small => {
                let fin = self.tx_eager_frames(sim, me, req, now);
                // Tiny/small sends complete at driver handoff (the data
                // was captured into the command).
                self.finish_send(sim, me, req, fin);
                self.schedule_eager_retx(sim, me, req, fin);
            }
            MsgClass::Medium => {
                let fin = self.tx_eager_frames(sim, me, req, now);
                // Medium sends are zero-copy: the buffer is only
                // reusable once the receiver acknowledged.
                self.schedule_eager_retx(sim, me, req, fin);
            }
            MsgClass::Large => {
                // Pin the send buffer, announce via rendezvous.
                let (tag, len, msg_seq, match_info) = {
                    let st = self.ep(me).sends.get(&req).expect("send exists");
                    (st.tag, st.data.len() as u64, st.msg_seq, st.match_info)
                };
                let hw = self.p.hw.clone();
                let reg_tag = tag.unwrap_or(req.0 | (1 << 63));
                let reg = self.ep_mut(me).regions.register(&hw, reg_tag, len);
                {
                    let c = &mut self.ep_mut(me).counters;
                    if reg.cache_hit {
                        c.regcache_hits += 1;
                    } else {
                        c.regcache_misses += 1;
                    }
                }
                let (_, fin) = self.run_core(me.node, core, now, reg.cost, category::DRIVER);
                let handle = self.node_mut(me.node).driver.alloc_tx_handle();
                {
                    let st = self.ep_mut(me).sends.get_mut(&req).expect("send exists");
                    st.region = Some(reg.region);
                    st.sender_handle = Some(handle);
                }
                self.node_mut(me.node).driver.tx_large.insert(
                    handle,
                    super::TxLargeState {
                        ep: me.ep,
                        req,
                        dest,
                    },
                );
                let (_, fin) = self.run_core(
                    me.node,
                    core,
                    fin,
                    self.p.cfg.ctrl_frame_cost,
                    category::DRIVER,
                );
                let pkt = Packet::RndvReq {
                    src_ep: me.ep.0,
                    dst_ep: dest.ep.0,
                    match_info,
                    msg_seq,
                    msg_len: len,
                    sender_handle: handle,
                };
                self.send_packet(sim, me.node, dest.node, &pkt, fin);
                self.schedule_eager_retx(sim, me, req, fin);
            }
        }
    }

    /// Build and hand the eager frames of `req` to the NIC starting at
    /// `now`; returns the driver finish time.
    fn tx_eager_frames(&mut self, sim: &mut Sim<Cluster>, me: EpAddr, req: ReqId, now: Ps) -> Ps {
        let core = self.ep(me).core;
        let (class, dest, match_info, msg_seq, data) = {
            let st = self.ep(me).sends.get(&req).expect("send exists");
            (
                st.class,
                st.dest,
                st.match_info,
                st.msg_seq,
                st.data.clone(),
            )
        };
        let mut fin = now;
        match class {
            MsgClass::Tiny => {
                let (_, f) = self.run_core(
                    me.node,
                    core,
                    now,
                    self.p.cfg.tx_frag_cost,
                    category::DRIVER,
                );
                fin = f;
                let pkt = Packet::Tiny {
                    src_ep: me.ep.0,
                    dst_ep: dest.ep.0,
                    match_info,
                    msg_seq,
                    data,
                };
                self.send_packet(sim, me.node, dest.node, &pkt, fin);
            }
            MsgClass::Small => {
                let (_, f) = self.run_core(
                    me.node,
                    core,
                    now,
                    self.p.cfg.tx_frag_cost,
                    category::DRIVER,
                );
                fin = f;
                let pkt = Packet::Small {
                    src_ep: me.ep.0,
                    dst_ep: dest.ep.0,
                    match_info,
                    msg_seq,
                    data,
                };
                self.send_packet(sim, me.node, dest.node, &pkt, fin);
            }
            MsgClass::Medium => {
                let frag = self.p.cfg.frag_size as usize;
                let total = data.len();
                let count = total.div_ceil(frag).max(1);
                for i in 0..count {
                    let lo = i * frag;
                    let hi = (lo + frag).min(total);
                    let (_, f) = self.run_core(
                        me.node,
                        core,
                        fin,
                        self.p.cfg.tx_frag_cost,
                        category::DRIVER,
                    );
                    fin = f;
                    let pkt = Packet::MediumFrag {
                        src_ep: me.ep.0,
                        dst_ep: dest.ep.0,
                        match_info,
                        msg_seq,
                        msg_len: total as u32,
                        frag_idx: i as u16,
                        frag_count: count as u16,
                        offset: lo as u32,
                        data: data.slice(lo..hi),
                    };
                    self.ep_mut(me).counters.tx_medium_frags += 1;
                    self.send_packet(sim, me.node, dest.node, &pkt, fin);
                }
            }
            MsgClass::Large => unreachable!("large sends go through rendezvous"),
        }
        fin
    }

    /// Arm the eager/rendezvous retransmission timer. The timeout is
    /// the send's *adaptive* RTO: it starts at
    /// `cfg.retransmit_timeout` and doubles (with jitter) on every
    /// actual retransmission, so a lossy or congested path sees
    /// exponentially spaced re-sends instead of a fixed-period hammer.
    pub(crate) fn schedule_eager_retx(
        &mut self,
        sim: &mut Sim<Cluster>,
        me: EpAddr,
        req: ReqId,
        from: Ps,
    ) {
        let timeout = self
            .ep(me)
            .sends
            .get(&req)
            .map(|st| st.rto)
            .unwrap_or(self.p.cfg.retransmit_timeout);
        sim.schedule_at(from + timeout, move |c: &mut Cluster, s| {
            c.eager_retx_check(s, me, req);
        });
    }

    fn eager_retx_check(&mut self, sim: &mut Sim<Cluster>, me: EpAddr, req: ReqId) {
        let Some(st) = self.ep(me).sends.get(&req) else {
            return; // completed and reaped
        };
        if st.acked {
            return;
        }
        // Recent receiver activity (pull requests) proves the transfer
        // is alive: push the deadline out instead of retransmitting.
        let deadline = st.last_activity + st.rto;
        if sim.now() < deadline {
            sim.schedule_at(deadline, move |c: &mut Cluster, s| {
                c.eager_retx_check(s, me, req);
            });
            return;
        }
        let attempts = st.retx_attempts;
        if attempts >= MAX_RETX_ATTEMPTS {
            // Give up: the peer is unreachable. Complete the send with
            // an error instead of leaking its state forever.
            self.fail_send(sim, me, req);
            return;
        }
        let class = st.class;
        let cur_rto = st.rto;
        let next_rto = self.escalate_rto(me.node, cur_rto);
        {
            let st = self.ep_mut(me).sends.get_mut(&req).expect("checked");
            st.retx_attempts = attempts + 1;
            st.rto = next_rto;
        }
        self.stats.retransmissions += 1;
        self.metrics.count(me.node.0, "driver.retransmissions", 1);
        self.metrics.trace(
            sim.now(),
            me.node.0,
            "driver",
            "retransmit",
            req.0,
            u64::from(attempts + 1),
        );
        let now = sim.now();
        let fin = match class {
            MsgClass::Large => {
                // Re-announce the rendezvous; the receiver deduplicates
                // (active pull or completed sequence → re-notify).
                let (dest, match_info, msg_seq, len, handle) = {
                    let st = self.ep(me).sends.get(&req).expect("checked");
                    (
                        st.dest,
                        st.match_info,
                        st.msg_seq,
                        st.data.len() as u64,
                        st.sender_handle.expect("large send has handle"),
                    )
                };
                let core = self.ep(me).core;
                let (_, fin) = self.run_core(
                    me.node,
                    core,
                    now,
                    self.p.cfg.ctrl_frame_cost,
                    category::DRIVER,
                );
                let pkt = Packet::RndvReq {
                    src_ep: me.ep.0,
                    dst_ep: dest.ep.0,
                    match_info,
                    msg_seq,
                    msg_len: len,
                    sender_handle: handle,
                };
                self.send_packet(sim, me.node, dest.node, &pkt, fin);
                fin
            }
            _ => self.tx_eager_frames(sim, me, req, now),
        };
        self.schedule_eager_retx(sim, me, req, fin);
    }

    /// Abort a send whose retransmission attempts are exhausted: drop
    /// every piece of driver state it holds (the pinned region, the
    /// sender-side large handle, the `sends` entry) and deliver an
    /// error completion so the failure surfaces to the application
    /// instead of hanging or leaking.
    fn fail_send(&mut self, sim: &mut Sim<Cluster>, me: EpAddr, req: ReqId) {
        let Some(st) = self.ep_mut(me).sends.remove(&req) else {
            return;
        };
        if let Some(r) = st.region {
            self.ep_mut(me).regions.release(r);
        }
        if let Some(h) = st.sender_handle {
            self.node_mut(me.node).driver.tx_large.remove(&h);
        }
        self.stats.sends_failed += 1;
        self.metrics.count(me.node.0, "driver.send_failures", 1);
        self.metrics.trace(
            sim.now(),
            me.node.0,
            "driver",
            "send_failed",
            req.0,
            u64::from(st.retx_attempts),
        );
        if !st.completed {
            // Tiny/small sends already delivered their (successful)
            // buffer-reuse completion at handoff; everything else gets
            // the error completion now.
            let at = sim.now();
            sim.schedule_at(at, move |c: &mut Cluster, s| {
                c.call_app(s, me, Completion::Send { req, failed: true });
            });
        }
    }

    // ------------------------------------------------------------------
    // BH receive callback
    // ------------------------------------------------------------------

    /// Process one received skbuff in BH context; returns the BH finish
    /// time for this packet. `coalesced` marks the tail of a GRO frame
    /// train: the fragment belongs to the same message as the previous
    /// skbuff in this BH run, so the data paths charge the cheaper
    /// continuation cost instead of the full per-frame processing.
    pub(crate) fn handle_rx_skbuff(
        &mut self,
        sim: &mut Sim<Cluster>,
        node: NodeId,
        core: CoreId,
        skb: Skbuff,
        coalesced: bool,
    ) -> Ps {
        // The protocol callback consumes the skbuff here: the payload
        // `Bytes` are shared onward (zero-copy), but the buffer itself
        // is recyclable the moment parsing hands out the packet. Any
        // copies still pending against the payload are tracked by the
        // descriptor/pull tokens, not the skbuff token.
        SimSanitizer::complete(skb.token());
        SimSanitizer::release(skb.token());
        let pkt = match Packet::parse(&skb.data) {
            Ok(p) => p,
            Err(e) => {
                debug_assert!(false, "malformed frame: {e:?}");
                return sim.now();
            }
        };
        let src_node = NodeId(skb.src);
        match pkt {
            Packet::Tiny {
                src_ep,
                dst_ep,
                match_info,
                msg_seq,
                data,
            } => self.rx_tiny(
                sim, node, core, src_node, src_ep, dst_ep, match_info, msg_seq, data,
            ),
            Packet::Small {
                src_ep,
                dst_ep,
                match_info,
                msg_seq,
                data,
            } => self.rx_small(
                sim, node, core, src_node, src_ep, dst_ep, match_info, msg_seq, data,
            ),
            Packet::MediumFrag {
                src_ep,
                dst_ep,
                match_info,
                msg_seq,
                msg_len,
                frag_idx,
                frag_count,
                offset,
                data,
            } => self.rx_medium_frag(
                sim, node, core, src_node, src_ep, dst_ep, match_info, msg_seq, msg_len, frag_idx,
                frag_count, offset, data, coalesced,
            ),
            Packet::RndvReq {
                src_ep,
                dst_ep,
                match_info,
                msg_seq,
                msg_len,
                sender_handle,
            } => self.rx_rndv(
                sim,
                node,
                core,
                src_node,
                src_ep,
                dst_ep,
                match_info,
                msg_seq,
                msg_len,
                sender_handle,
            ),
            Packet::PullReq {
                dst_ep,
                sender_handle,
                recv_handle,
                frag_start,
                frag_count,
                ..
            } => self.rx_pull_req(
                sim,
                node,
                core,
                dst_ep,
                sender_handle,
                recv_handle,
                frag_start,
                frag_count,
            ),
            Packet::LargeFrag {
                recv_handle,
                frag_idx,
                offset,
                data,
                ..
            } => self.rx_large_frag(
                sim,
                node,
                core,
                recv_handle,
                frag_idx,
                offset,
                data,
                coalesced,
            ),
            Packet::Notify {
                dst_ep,
                sender_handle,
                ..
            } => self.rx_notify(sim, node, core, dst_ep, sender_handle),
            Packet::Ack {
                src_ep,
                dst_ep,
                msg_seq,
            } => self.rx_ack(sim, node, core, src_node, src_ep, dst_ep, msg_seq),
            Packet::CreditNack {
                dst_ep,
                sender_handle,
                ..
            } => self.rx_credit_nack(sim, node, core, src_node, dst_ep, sender_handle),
        }
    }

    /// Receiver-driven congestion notification (credit revoke): the
    /// peer's RX ring shed one of our pull fragments. Escalate the
    /// affected large send's adaptive RTO *now* — the same backoff the
    /// watchdog would apply one timeout later — so the re-request storm
    /// turns into pacing. `sender_handle` 0 means the receiver could
    /// not attribute the drop; every large send toward that node backs
    /// off. The NACK doubles as proof of life (the peer saw our
    /// traffic), so the deadline is refreshed, but the give-up budget
    /// (`retx_attempts`) keeps counting: a peer that only ever NACKs is
    /// still a failed transfer.
    fn rx_credit_nack(
        &mut self,
        sim: &mut Sim<Cluster>,
        node: NodeId,
        core: CoreId,
        src_node: NodeId,
        dst_ep: u8,
        sender_handle: u32,
    ) -> Ps {
        let me = self.addr_of(node, dst_ep);
        let (_, fin) = self.run_core(
            node,
            core,
            sim.now(),
            self.p.cfg.bh_frag_process,
            category::BH,
        );
        // Counted in the registry, not `Counters`: the counter struct
        // is embedded verbatim in committed result JSON, and this path
        // is unreachable with credits off (byte-identity).
        self.metrics.count(node.0, "credit.nacks_received", 1);
        let reqs: Vec<ReqId> = if sender_handle != 0 {
            self.node(node)
                .driver
                .tx_large
                .get(&sender_handle)
                .filter(|tx| tx.ep == me.ep)
                // omx-lint: allow(hot-path-alloc) NACKs fire only under ring pressure (a retransmission trigger), never in steady state [test: tests/incast_soak.rs::incast_with_credits_survives_every_plan]
                .map(|tx| vec![tx.req])
                .unwrap_or_default()
        } else {
            self.ep(me)
                .sends
                .iter()
                .filter(|(_, s)| matches!(s.class, MsgClass::Large) && s.dest.node == src_node)
                .map(|(r, _)| *r)
                // omx-lint: allow(hot-path-alloc) NACKs fire only under ring pressure (a retransmission trigger), never in steady state [test: tests/incast_soak.rs::incast_with_credits_survives_every_plan]
                .collect()
        };
        for req in reqs {
            let Some(cur) = self.ep(me).sends.get(&req).map(|st| st.rto) else {
                continue;
            };
            let next = self.escalate_rto(me.node, cur);
            if let Some(st) = self.ep_mut(me).sends.get_mut(&req) {
                st.rto = next;
                st.last_activity = fin;
            }
        }
        fin
    }

    fn addr_of(&self, node: NodeId, ep: u8) -> EpAddr {
        EpAddr {
            node,
            ep: EpIdx(ep),
        }
    }

    /// Send an ack for `msg_seq` back to the sender (BH context).
    #[allow(clippy::too_many_arguments)]
    fn send_ack(
        &mut self,
        sim: &mut Sim<Cluster>,
        node: NodeId,
        core: CoreId,
        src: EpAddr,
        my_ep: u8,
        msg_seq: u32,
        from: Ps,
    ) -> Ps {
        let (_, fin) = self.run_core(node, core, from, self.p.cfg.ctrl_frame_cost, category::BH);
        let pkt = Packet::Ack {
            src_ep: my_ep,
            dst_ep: src.ep.0,
            msg_seq,
        };
        self.stats.acks_sent += 1;
        self.send_packet(sim, node, src.node, &pkt, fin);
        fin
    }

    #[allow(clippy::too_many_arguments)]
    fn rx_tiny(
        &mut self,
        sim: &mut Sim<Cluster>,
        node: NodeId,
        core: CoreId,
        src_node: NodeId,
        src_ep: u8,
        dst_ep: u8,
        match_info: u64,
        msg_seq: u32,
        data: Bytes,
    ) -> Ps {
        let src = self.addr_of(src_node, src_ep);
        let me = self.addr_of(node, dst_ep);
        let (_, fin) = self.run_core(
            node,
            core,
            sim.now(),
            self.p.cfg.bh_frag_process,
            category::BH,
        );
        if self.ep(me).seq_completed(src, msg_seq) {
            self.stats.duplicates_dropped += 1;
            return self.send_ack(sim, node, core, src, dst_ep, msg_seq, fin);
        }
        self.ep_mut(me).record_completed_seq(src, msg_seq);
        self.ep_mut(me).counters.rx_tiny += 1;
        self.push_event_at(
            sim,
            me,
            Event::RecvTiny {
                src,
                match_info,
                msg_seq,
                data,
            },
            fin,
        );
        self.send_ack(sim, node, core, src, dst_ep, msg_seq, fin)
    }

    #[allow(clippy::too_many_arguments)]
    fn rx_small(
        &mut self,
        sim: &mut Sim<Cluster>,
        node: NodeId,
        core: CoreId,
        src_node: NodeId,
        src_ep: u8,
        dst_ep: u8,
        match_info: u64,
        msg_seq: u32,
        data: Bytes,
    ) -> Ps {
        let src = self.addr_of(src_node, src_ep);
        let me = self.addr_of(node, dst_ep);
        let copy = self.bh_copy_cost(data.len() as u64);
        let process = self.p.cfg.bh_frag_process + copy;
        let (_, fin) = self.run_core(node, core, sim.now(), process, category::BH);
        self.metrics.busy(node.0, "bh.copy", copy);
        self.metrics
            .count(node.0, "bh.copy_bytes", data.len() as u64);
        {
            let c = &mut self.ep_mut(me).counters;
            c.copies_memcpy += 1;
            c.bytes_memcpy += data.len() as u64;
        }
        if self.ep(me).seq_completed(src, msg_seq) {
            self.stats.duplicates_dropped += 1;
            return self.send_ack(sim, node, core, src, dst_ep, msg_seq, fin);
        }
        let len = data.len() as u32;
        let Some(slot) = self.ep_mut(me).slots.fill(&data) else {
            // Ring full: drop; the sender retransmits.
            return fin;
        };
        self.ep_mut(me).record_completed_seq(src, msg_seq);
        self.ep_mut(me).counters.rx_small += 1;
        self.push_event_at(
            sim,
            me,
            Event::RecvSmall {
                src,
                match_info,
                msg_seq,
                slot,
                len,
            },
            fin,
        );
        self.send_ack(sim, node, core, src, dst_ep, msg_seq, fin)
    }

    #[allow(clippy::too_many_arguments)]
    fn rx_medium_frag(
        &mut self,
        sim: &mut Sim<Cluster>,
        node: NodeId,
        core: CoreId,
        src_node: NodeId,
        src_ep: u8,
        dst_ep: u8,
        match_info: u64,
        msg_seq: u32,
        msg_len: u32,
        frag_idx: u16,
        frag_count: u16,
        offset: u32,
        data: Bytes,
        coalesced: bool,
    ) -> Ps {
        let src = self.addr_of(src_node, src_ep);
        let me = self.addr_of(node, dst_ep);
        let now = sim.now();
        if self.ep(me).seq_completed(src, msg_seq) {
            self.stats.duplicates_dropped += 1;
            let (_, fin) = self.run_core(node, core, now, self.p.cfg.bh_frag_process, category::BH);
            return self.send_ack(sim, node, core, src, dst_ep, msg_seq, fin);
        }
        // Duplicate fragment of an in-progress message?
        {
            let frag_slot = frag_idx as usize;
            if !self.ep(me).drv_medium.contains_key(&(src, msg_seq)) {
                // Per-message dedup bitmap, drawn from the per-node
                // scratch pool when the first fragment of a message
                // arrives: steady state recycles a retired message's
                // bitmap instead of allocating.
                let bitmap = self
                    .node_mut(node)
                    .driver
                    .scratch
                    .take_bitmap(frag_count as usize);
                self.ep_mut(me).drv_medium.insert((src, msg_seq), bitmap);
            }
            // A fragment index beyond the announced count would be a
            // sender bug; treat it as a duplicate, not a panic. A
            // missing map entry (impossible: inserted just above) folds
            // into the same path rather than panicking in BH context.
            let fresh = self
                .ep_mut(me)
                .drv_medium
                .get_mut(&(src, msg_seq))
                .is_some_and(|seen| match seen.get_mut(frag_slot) {
                    Some(bit) if !*bit => {
                        *bit = true;
                        true
                    }
                    _ => false,
                });
            if !fresh {
                self.stats.duplicates_dropped += 1;
                let (_, fin) =
                    self.run_core(node, core, now, self.p.cfg.bh_frag_process, category::BH);
                return fin;
            }
        }
        if self.p.cfg.kernel_matching {
            return self.rx_medium_kernel_match(
                sim, node, core, src, me, match_info, msg_seq, msg_len, frag_idx, frag_count,
                offset, data, coalesced,
            );
        }
        // Synchronous copy into a statically pinned ring slot: memcpy,
        // or (optionally, §III-C/IV-C) a synchronous I/OAT copy that
        // the BH must busy-poll — the measured medium-path degradation.
        let len = data.len() as u64;
        let mut work = self.bh_frag_cost(coalesced);
        let mut fin;
        if self.p.cfg.ioat_medium_sync
            && !self.p.cfg.ignore_bh_copy
            && len >= self.p.cfg.ioat_frag_threshold
        {
            // Ring-slot copies source from the skbuff payload, which
            // starts just past the packet header and is never page
            // aligned: "one or two chunks per page" (§IV-A) — here two.
            let ndesc = self.desc_count(offset as u64, len) + 1;
            let submit = self.ioat_submit_cost(ndesc, coalesced);
            work += submit;
            let (_, submit_fin) = self.run_core(node, core, now, work, category::BH);
            self.metrics.busy(node.0, "ioat.submit_cpu", submit);
            let hw = self.p.hw.clone();
            let ch = self.pick_healthy_channel(node, submit_fin);
            let handle = self
                .node_mut(node)
                .ioat
                .submit(&hw, submit_fin, ch, len, ndesc);
            if handle.finish >= omx_hw::ioat::STALLED_FOREVER {
                // The channel died underneath the copy: busy-polling
                // here would never return. Quarantine it and re-do the
                // copy on the CPU.
                let until = submit_fin + self.p.cfg.ioat_quarantine_cooldown;
                self.quarantine_channel(node, ch, until);
                // The descriptor never completes on the dead channel:
                // release it without a complete.
                SimSanitizer::release(handle.san);
                let copy = self.bh_copy_cost(len);
                let (_, f) = self.run_core(node, core, submit_fin, copy, category::BH);
                self.metrics.busy(node.0, "bh.copy", copy);
                self.metrics.count(node.0, "bh.copy_bytes", len);
                fin = f;
                self.record_ioat_fallback(node, fin, len);
                let c = &mut self.ep_mut(me).counters;
                c.copies_fallback += 1;
                c.copies_memcpy += 1;
                c.bytes_memcpy += len;
            } else {
                // Busy-poll until the copy completes.
                let wait = handle.finish.saturating_sub(submit_fin) + self.p.hw.ioat_poll_cost;
                let (_, f) = self.run_core(node, core, submit_fin, wait, category::BH);
                self.metrics.busy(node.0, "ioat.poll_wait", wait);
                fin = f;
                // Busy-polled to completion: reap the descriptor.
                SimSanitizer::complete(handle.san);
                SimSanitizer::release(handle.san);
                let c = &mut self.ep_mut(me).counters;
                c.copies_offloaded += 1;
                c.bytes_offloaded += len;
            }
        } else {
            let copy = self.bh_copy_cost(len);
            work += copy;
            let (_, f) = self.run_core(node, core, now, work, category::BH);
            self.metrics.busy(node.0, "bh.copy", copy);
            self.metrics.count(node.0, "bh.copy_bytes", len);
            fin = f;
            let c = &mut self.ep_mut(me).counters;
            c.copies_memcpy += 1;
            c.bytes_memcpy += len;
        }
        let Some(slot) = self.ep_mut(me).slots.fill(&data) else {
            // Ring exhausted: the fragment is lost. Clear its dedup bit
            // so the sender's retransmission is accepted.
            if let Some(bit) = self
                .ep_mut(me)
                .drv_medium
                .get_mut(&(src, msg_seq))
                .and_then(|seen| seen.get_mut(frag_idx as usize))
            {
                *bit = false;
            }
            return fin;
        };
        self.ep_mut(me).counters.rx_medium_frags += 1;
        self.push_event_at(
            sim,
            me,
            Event::RecvMediumFrag {
                src,
                match_info,
                msg_seq,
                msg_len,
                frag_idx,
                frag_count,
                offset,
                slot,
                len: len as u32,
            },
            fin,
        );
        // Fully received? Then ack and mark completed.
        let done = {
            let ep = self.ep(me);
            ep.drv_medium
                .get(&(src, msg_seq))
                .is_some_and(|v| v.iter().all(|&b| b))
        };
        if done {
            if let Some(b) = self.ep_mut(me).drv_medium.remove(&(src, msg_seq)) {
                self.node_mut(node).driver.scratch.put_bitmap(b);
            }
            self.ep_mut(me).record_completed_seq(src, msg_seq);
            fin = self.send_ack(sim, node, core, src, dst_ep, msg_seq, fin);
        }
        fin
    }

    #[allow(clippy::too_many_arguments)]
    fn rx_rndv(
        &mut self,
        sim: &mut Sim<Cluster>,
        node: NodeId,
        core: CoreId,
        src_node: NodeId,
        src_ep: u8,
        dst_ep: u8,
        match_info: u64,
        msg_seq: u32,
        msg_len: u64,
        sender_handle: u32,
    ) -> Ps {
        let src = self.addr_of(src_node, src_ep);
        let me = self.addr_of(node, dst_ep);
        let (_, fin) = self.run_core(
            node,
            core,
            sim.now(),
            self.p.cfg.bh_frag_process,
            category::BH,
        );
        if self.ep(me).seq_completed(src, msg_seq) {
            // The pull finished but the Notify was lost: re-notify.
            self.stats.duplicates_dropped += 1;
            let (_, f) = self.run_core(node, core, fin, self.p.cfg.ctrl_frame_cost, category::BH);
            let pkt = Packet::Notify {
                src_ep: dst_ep,
                dst_ep: src_ep,
                sender_handle,
            };
            self.send_packet(sim, node, src.node, &pkt, f);
            return f;
        }
        // Duplicate announcement while the pull is active, or while the
        // original still sits in the event ring / unexpected queue
        // (sender retransmissions racing a busy library): ignore.
        // Sequence numbers are per endpoint *pair*: the receiving
        // endpoint must be part of the key or concurrent transfers
        // from one sender to two endpoints shadow each other.
        let active = self
            .node(node)
            .driver
            .pulls
            .values()
            .any(|p| p.ep == me.ep && p.src == src && p.msg_seq == msg_seq)
            || self.ep(me).rndv_pending.contains(&(src, msg_seq));
        if active {
            self.stats.duplicates_dropped += 1;
            // The announcement is a retransmission for a transfer we
            // are still working on (pull in flight, or the original
            // waiting on the library): answer with an ack as proof of
            // life, or a congested receiver looks dead to the sender
            // and the retransmission budget aborts a healthy send.
            let (_, f) = self.run_core(node, core, fin, self.p.cfg.ctrl_frame_cost, category::BH);
            let pkt = Packet::Ack {
                src_ep: dst_ep,
                dst_ep: src_ep,
                msg_seq,
            };
            self.stats.acks_sent += 1;
            self.send_packet(sim, node, src.node, &pkt, f);
            return f;
        }
        self.ep_mut(me).rndv_pending.insert((src, msg_seq));
        self.ep_mut(me).counters.rx_rndv += 1;
        self.push_event_at(
            sim,
            me,
            Event::RecvRndv {
                src,
                match_info,
                msg_seq,
                msg_len,
                sender_handle,
            },
            fin,
        );
        fin
    }

    fn rx_notify(
        &mut self,
        sim: &mut Sim<Cluster>,
        node: NodeId,
        core: CoreId,
        dst_ep: u8,
        sender_handle: u32,
    ) -> Ps {
        let me = self.addr_of(node, dst_ep);
        let (_, fin) = self.run_core(
            node,
            core,
            sim.now(),
            self.p.cfg.bh_frag_process,
            category::BH,
        );
        let Some(tx) = self.node_mut(node).driver.tx_large.remove(&sender_handle) else {
            self.stats.duplicates_dropped += 1;
            return fin;
        };
        debug_assert_eq!(tx.ep, me.ep);
        // Release the pinned send region and complete the send.
        let region = self.ep(me).sends.get(&tx.req).and_then(|s| s.region);
        if let Some(r) = region {
            self.ep_mut(me).regions.release(r);
        }
        if let Some(st) = self.ep_mut(me).sends.get_mut(&tx.req) {
            st.acked = true;
        }
        self.push_event_at(sim, me, Event::SendDone { req: tx.req }, fin);
        fin
    }

    #[allow(clippy::too_many_arguments)]
    fn rx_ack(
        &mut self,
        sim: &mut Sim<Cluster>,
        node: NodeId,
        core: CoreId,
        src_node: NodeId,
        src_ep: u8,
        dst_ep: u8,
        msg_seq: u32,
    ) -> Ps {
        let me = self.addr_of(node, dst_ep);
        let acker = self.addr_of(src_node, src_ep);
        let (_, fin) = self.run_core(
            node,
            core,
            sim.now(),
            self.p.cfg.ctrl_frame_cost,
            category::BH,
        );
        let found = self
            .ep(me)
            .sends
            .iter()
            .find(|(_, s)| s.dest == acker && s.msg_seq == msg_seq)
            .map(|(r, _)| *r);
        let Some(req) = found else {
            return fin; // already reaped
        };
        let base_rto = self.p.cfg.retransmit_timeout;
        let (class, completed) = {
            // omx-lint: allow(fast-path-panic) `req` was found in this very map four lines up and nothing ran in between [test: tests/fault_soak.rs::duplicate_everything_is_idempotent]
            let st = self.ep_mut(me).sends.get_mut(&req).expect("just found");
            if matches!(st.class, MsgClass::Large) {
                // Liveness ack for an announced rendezvous: the
                // receiver knows the transfer but has not finished the
                // pull. Refresh the retransmission budget only — the
                // send must stay un-acked so re-announcement keeps
                // running (it is also what recovers a lost Notify).
                st.last_activity = fin;
                st.retx_attempts = 0;
                st.rto = base_rto;
                return fin;
            }
            st.acked = true;
            (st.class, st.completed)
        };
        if completed {
            self.ep_mut(me).sends.remove(&req);
        } else if matches!(class, MsgClass::Medium) {
            // Medium sends complete on ack (zero-copy buffer reusable).
            self.push_event_at(sim, me, Event::SendDone { req }, fin);
        }
        fin
    }
}
