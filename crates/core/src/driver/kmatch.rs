//! In-driver matching for medium messages (§VI future work,
//! extension).
//!
//! The paper's stack matches in the user library, which forces one
//! event — and one *synchronous* copy — per medium fragment (§III-C).
//! Moving the matching into the driver lets the BH copy fragments
//! straight into the posted buffer, offload them asynchronously like
//! large fragments, and raise a *single* event per message. This
//! module implements that plan behind `OmxConfig::kernel_matching`.

use crate::cluster::Cluster;
use crate::events::Event;
use crate::matching::PostedRecv;
use crate::{EpAddr, NodeId, ReqId};
use bytes::Bytes;
use omx_hw::cpu::category;
use omx_hw::ioat::CopyHandle;
use omx_hw::CoreId;
use omx_sim::sanitize::SimSanitizer;
use omx_sim::{Ps, Sim};

/// Driver-side reassembly of one medium message under kernel matching.
#[derive(Debug)]
pub struct KernelAssembly {
    /// Matched receive, or `None` while the message is unexpected (the
    /// driver then buffers it in `data`).
    pub req: Option<ReqId>,
    /// Match information.
    pub match_info: u64,
    /// Total message length.
    pub total: u32,
    /// Kernel buffer for unexpected data.
    pub data: Option<Vec<u8>>,
    /// Outstanding asynchronous fragment copies.
    pub pending: Vec<CopyHandle>,
}

impl Cluster {
    /// BH handler for one medium fragment with in-driver matching.
    /// The caller already deduplicated via the driver bitmap.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn rx_medium_kernel_match(
        &mut self,
        sim: &mut Sim<Cluster>,
        node: NodeId,
        core: CoreId,
        src: EpAddr,
        me: EpAddr,
        match_info: u64,
        msg_seq: u32,
        msg_len: u32,
        _frag_idx: u16,
        frag_count: u16,
        offset: u32,
        data: Bytes,
        coalesced: bool,
    ) -> Ps {
        let _ = frag_count;
        let now = sim.now();
        let key = (me.ep, src, msg_seq);
        // First fragment: match in the driver.
        if !self.node(node).driver.kmatch.contains_key(&key) {
            let matched = self.ep_mut(me).matcher.match_incoming(match_info);
            let (req, buf) = match matched {
                Some(PostedRecv { req, .. }) => {
                    if let Some(rs) = self.ep_mut(me).recvs.get_mut(&req) {
                        rs.total = msg_len as u64;
                        rs.matched_info = Some(match_info);
                    }
                    (Some(req), None)
                }
                // omx-lint: allow(hot-path-alloc) unexpected-message buffer: only taken when no receive was posted, never in a pre-posted steady loop [test: tests/end_to_end.rs::extension_paths_stay_correct]
                None => (None, Some(vec![0u8; msg_len as usize])),
            };
            self.node_mut(node).driver.kmatch.insert(
                key,
                KernelAssembly {
                    req,
                    match_info,
                    total: msg_len,
                    data: buf,
                    // omx-lint: allow(hot-path-alloc) Vec::new is capacity-zero and touches no allocator; growth happens only on the offload path's first pends [test: tests/end_to_end.rs::extension_paths_stay_correct]
                    pending: Vec::new(),
                },
            );
        }
        let (req, matched) = {
            let a = self.node(node).driver.kmatch.get(&key).expect("ensured");
            (a.req, a.req.is_some())
        };
        // Copy path: matched fragments may be offloaded asynchronously
        // — the whole point of this extension.
        let len = data.len() as u64;
        let mut offload = matched
            && self.p.cfg.ioat_enabled
            && !self.p.cfg.ignore_bh_copy
            && len >= self.p.cfg.ioat_frag_threshold;
        // Graceful degradation: quarantined channels demote the copy
        // to the memcpy path.
        let mut ch = 0;
        if offload {
            ch = self.pick_healthy_channel(node, now);
            if !self.ioat_channel_usable(node, ch, now) {
                self.record_ioat_fallback(node, now, len);
                self.ep_mut(me).counters.copies_fallback += 1;
                offload = false;
            }
        }
        let fin = if offload {
            let ndesc = self.desc_count(offset as u64, len);
            let submit = self.ioat_submit_cost(ndesc, coalesced);
            let work = self.bh_frag_cost(coalesced) + submit;
            let (_, submit_fin) = self.run_core(node, core, now, work, category::BH);
            self.metrics.busy(node.0, "ioat.submit_cpu", submit);
            let hw = self.p.hw.clone();
            let n = self.node_mut(node);
            let h = n.ioat.submit(&hw, submit_fin, ch, len, ndesc);
            self.node_mut(node)
                .driver
                .kmatch
                .get_mut(&key)
                .expect("present")
                .pending
                .push(h);
            self.node_mut(node).driver.hold_skbuffs(1);
            submit_fin
        } else {
            let copy = self.bh_copy_cost(len);
            let work = self.bh_frag_cost(coalesced) + copy;
            let (_, f) = self.run_core(node, core, now, work, category::BH);
            self.metrics.busy(node.0, "bh.copy", copy);
            self.metrics.count(node.0, "bh.copy_bytes", len);
            f
        };
        // Apply the bytes.
        {
            let asm_data_needed = !matched;
            if asm_data_needed {
                let a = self
                    .node_mut(node)
                    .driver
                    .kmatch
                    .get_mut(&key)
                    .expect("present");
                let buf = a.data.as_mut().expect("unmatched buffers data");
                let end = ((offset as usize) + data.len()).min(buf.len());
                let start = (offset as usize).min(end);
                buf[start..end].copy_from_slice(&data[..end - start]);
            } else if let Some(rs) = self.ep_mut(me).recvs.get_mut(&req.expect("matched")) {
                let end = ((offset as usize) + data.len()).min(rs.buf.len());
                let start = (offset as usize).min(end);
                rs.buf[start..end].copy_from_slice(&data[..end - start]);
                rs.received += (end - start) as u64;
            }
        }
        // Complete?
        let all_seen = self
            .ep(me)
            .drv_medium
            .get(&(src, msg_seq))
            .is_some_and(|v| v.iter().all(|&b| b));
        if !all_seen {
            return fin;
        }
        // Drain pending copies (only the last fragment waits, as in the
        // large path).
        let mut fin = fin;
        let last = self
            .node(node)
            .driver
            .kmatch
            .get(&key)
            .and_then(|a| a.pending.iter().map(|h| h.finish).max());
        if let Some(t) = last {
            let wait = t.saturating_sub(fin) + self.p.hw.ioat_poll_cost;
            let (_, f) = self.run_core(node, core, fin, wait, category::BH);
            self.metrics.busy(node.0, "ioat.poll_wait", wait);
            fin = f;
        }
        let asm = self
            .node_mut(node)
            .driver
            .kmatch
            .remove(&key)
            .expect("present");
        // The busy-poll above waited out the latest finish time, so
        // every pending descriptor is done: reap them.
        for h in &asm.pending {
            SimSanitizer::complete(h.san);
            SimSanitizer::release(h.san);
        }
        self.node_mut(node)
            .driver
            .release_skbuffs(asm.pending.len() as u64);
        if let Some(b) = self.ep_mut(me).drv_medium.remove(&(src, msg_seq)) {
            self.node_mut(node).driver.scratch.put_bitmap(b);
        }
        self.ep_mut(me).record_completed_seq(src, msg_seq);
        // Ack the sender.
        let pkt = crate::proto::Packet::Ack {
            src_ep: me.ep.0,
            dst_ep: src.ep.0,
            msg_seq,
        };
        let (_, f) = self.run_core(node, core, fin, self.p.cfg.ctrl_frame_cost, category::BH);
        fin = f;
        self.stats.acks_sent += 1;
        self.send_packet(sim, node, src.node, &pkt, fin);
        match asm.req {
            Some(req) => {
                // One event per message — the extension's payoff.
                self.push_event_at(
                    sim,
                    me,
                    Event::RecvMediumDone {
                        req,
                        len: asm.total,
                    },
                    fin,
                );
            }
            None => {
                // Hand the buffered unexpected message to the library
                // as a complete assembly; adoption copies it out.
                let buf = asm.data.expect("unmatched buffers data");
                self.ep_mut(me).assemblies.insert(
                    (src, msg_seq),
                    crate::endpoint::MediumAssembly {
                        req: None,
                        match_info: asm.match_info,
                        // omx-lint: allow(hot-path-alloc) Vec::new is capacity-zero; the driver already deduplicated, the library never consults frag_seen for a complete assembly [test: tests/end_to_end.rs::extension_paths_stay_correct]
                        frag_seen: Vec::new(),
                        arrived: asm.total as u64,
                        total: asm.total as u64,
                        data: buf,
                    },
                );
            }
        }
        fin
    }
}
