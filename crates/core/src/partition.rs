//! Node-partitioned execution of one cluster simulation.
//!
//! The cluster world is split into `P` shards; shard `s` owns nodes
//! `i % P == s` and runs them on its own engine. The only interaction
//! between nodes in different shards is an Ethernet frame, and every
//! inter-node frame pays the full wire latency (sender NIC latency +
//! propagation + receiver NIC latency) before it can touch the
//! destination — that latency is the **lookahead** of the conservative
//! window protocol in [`omx_sim::partition`]. [`Cluster::deliver_frame`]
//! routes frames for foreign nodes into the partition outbox as
//! [`RemoteFrame`]s; the executor exchanges outboxes between windows
//! and injects them in one canonical order, so the result is
//! bit-identical for any partition count and any worker count.
//!
//! `partitions = 1` never enters this module's executor at all:
//! [`run_partitioned`] runs the classic build → install → start →
//! [`Sim::run`] sequence, byte-identical to the pre-partitioning
//! engine by construction.

use crate::cluster::{Cluster, ClusterParams};
use crate::NodeId;
use omx_ethernet::{EthFrame, LinkParams};
use omx_sim::{run_shards, Ps, Shard, ShardBuilder, Sim};
use std::cmp::Ordering;

/// Partition bookkeeping carried by every [`Cluster`]: which shard
/// this world is, and the outbox of frames bound for other shards.
#[derive(Debug)]
pub struct PartitionCtx {
    my: usize,
    parts: usize,
    /// Per-shard emission sequence: the tie-breaker that makes every
    /// [`RemoteFrame`] key unique and preserves this shard's own
    /// emission order among same-instant frames.
    emitted: u64,
    outbox: Vec<(usize, RemoteFrame)>,
}

impl PartitionCtx {
    pub(crate) fn new(my: usize, parts: usize) -> Self {
        debug_assert!(parts >= 1 && my < parts);
        PartitionCtx {
            my,
            parts,
            emitted: 0,
            outbox: Vec::new(),
        }
    }

    /// Whether this world owns `node`.
    pub(crate) fn owns(&self, node: NodeId) -> bool {
        self.parts == 1 || node.0 as usize % self.parts == self.my
    }

    /// Whether this world is one shard of a multi-shard run (and wire
    /// deliveries must therefore go through the exchange).
    pub(crate) fn partitioned(&self) -> bool {
        self.parts > 1
    }

    /// Queue a frame for the shard owning `frame.dst` — possibly this
    /// very shard: in a partitioned run *every* inter-node frame goes
    /// through the exchange, co-located pairs included, so the
    /// same-instant injection order is one canonical order and does
    /// not depend on which nodes happen to share a shard.
    pub(crate) fn push_remote(&mut self, sent_at: Ps, arrival: Ps, frame: EthFrame) {
        let dst_shard = frame.dst as usize % self.parts;
        let msg = RemoteFrame {
            arrival,
            sent_at,
            src_node: frame.src,
            emit_seq: self.emitted,
            frame,
        };
        self.emitted += 1;
        self.outbox.push((dst_shard, msg));
    }

    pub(crate) fn take_outbox(&mut self) -> Vec<(usize, RemoteFrame)> {
        std::mem::take(&mut self.outbox)
    }
}

/// One Ethernet frame crossing a partition boundary.
///
/// The ordering key `(arrival, sent_at, src_node, emit_seq)` fixes one
/// global injection order per exchange round: arrival time first (the
/// engine's order), then emission time and emitting node, then the
/// per-shard emission sequence. The key is unique — a shard owns its
/// source nodes exclusively and stamps `emit_seq` itself — so the
/// post-exchange sort is a total order independent of which worker
/// delivered which message first.
#[derive(Debug)]
pub struct RemoteFrame {
    /// When the frame is fully received at the destination NIC.
    arrival: Ps,
    /// When the sending shard emitted it (`Sim::now` at the send).
    sent_at: Ps,
    /// The emitting node.
    src_node: u32,
    /// Emission sequence on the emitting shard.
    emit_seq: u64,
    /// The frame itself.
    frame: EthFrame,
}

impl RemoteFrame {
    fn key(&self) -> (Ps, Ps, u32, u64) {
        (self.arrival, self.sent_at, self.src_node, self.emit_seq)
    }
}

impl PartialEq for RemoteFrame {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for RemoteFrame {}
impl PartialOrd for RemoteFrame {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for RemoteFrame {
    fn cmp(&self, other: &Self) -> Ordering {
        self.key().cmp(&other.key())
    }
}

impl Shard for Cluster {
    type Msg = RemoteFrame;

    fn msg_at(msg: &RemoteFrame) -> Ps {
        msg.arrival
    }

    fn take_outbox(&mut self) -> Vec<(usize, RemoteFrame)> {
        self.part.take_outbox()
    }

    fn inject(&mut self, sim: &mut Sim<Cluster>, msg: RemoteFrame) {
        let dst = NodeId(msg.frame.dst);
        debug_assert!(self.owns(dst), "injected frame for unowned node");
        let frame = msg.frame;
        sim.schedule_at(msg.arrival, move |c: &mut Cluster, s| {
            c.on_frame(s, dst, frame);
        });
    }
}

/// The conservative-window lookahead for a cluster: the fixed latency
/// every inter-node frame pays on top of serialization — sending-NIC
/// latency, cable propagation, receiving-NIC latency. A frame emitted
/// at `t` arrives no earlier than `t + lookahead + serialization`,
/// strictly beyond `t + lookahead`, which is exactly the bound the
/// window protocol needs (see `omx_sim::partition`).
pub fn lookahead(link: &LinkParams) -> Ps {
    link.tx_latency + link.propagation + link.rx_latency
}

/// Run one cluster simulation, partitioned per `params.partitions`
/// and fanned across `params.partition_workers` threads.
///
/// `install(cluster, shard)` adds this shard's endpoints — it must add
/// endpoints **only for owned nodes** (`cluster.owns(node)`), in the
/// same per-node order as the unpartitioned run, and returns whatever
/// per-shard state the caller's apps share (result collectors etc.).
/// `finish` reduces each shard after the whole simulation drained; it
/// runs on the thread that ran the shard. Returns per-shard results in
/// shard order.
///
/// With `partitions <= 1` this is the classic engine, byte-identical
/// to the pre-partitioning code path: build, install, start, run to
/// completion, finish.
pub fn run_partitioned<S, R, I, F>(params: ClusterParams, install: I, finish: F) -> Vec<R>
where
    I: Fn(&mut Cluster, usize) -> S + Sync,
    F: Fn(usize, &mut Sim<Cluster>, &mut Cluster, S) -> R + Sync,
    R: Send,
{
    let parts = params.partitions.clamp(1, params.nodes.max(1));
    if parts <= 1 {
        let mut cluster = Cluster::new(params);
        let mut sim: Sim<Cluster> = Sim::with_wheel_levels(cluster.p.cfg.wheel_levels);
        let state = install(&mut cluster, 0);
        cluster.start(&mut sim);
        sim.run(&mut cluster);
        return vec![finish(0, &mut sim, &mut cluster, state)];
    }
    let la = lookahead(&params.link);
    let workers = params.partition_workers.max(1);
    let install = &install;
    let builders: Vec<ShardBuilder<'_, Cluster, S>> = (0..parts)
        .map(|my| {
            let params = params.clone();
            let b: ShardBuilder<'_, Cluster, S> = Box::new(move || {
                let mut cluster = Cluster::new_shard(params, my);
                let mut sim: Sim<Cluster> = Sim::with_wheel_levels(cluster.p.cfg.wheel_levels);
                let state = install(&mut cluster, my);
                cluster.start(&mut sim);
                (sim, cluster, state)
            });
            b
        })
        .collect();
    run_shards(builders, la, workers, finish)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookahead_is_the_fixed_wire_latency() {
        let l = LinkParams::default();
        assert_eq!(lookahead(&l), Ps::ns(900) + Ps::ns(300) + Ps::ns(900));
    }

    #[test]
    fn ownership_deals_nodes_round_robin() {
        let ctx = PartitionCtx::new(1, 4);
        assert!(ctx.owns(NodeId(1)));
        assert!(ctx.owns(NodeId(5)));
        assert!(!ctx.owns(NodeId(0)));
        assert!(ctx.partitioned());
        let whole = PartitionCtx::new(0, 1);
        assert!(whole.owns(NodeId(17)));
        assert!(!whole.partitioned());
    }

    #[test]
    fn remote_frames_sort_by_canonical_key() {
        let f = |arrival: u64, sent: u64, src: u32, seq: u64| RemoteFrame {
            arrival: Ps::ns(arrival),
            sent_at: Ps::ns(sent),
            src_node: src,
            emit_seq: seq,
            frame: EthFrame::new(src, 0, bytes::Bytes::from_static(b"x")),
        };
        let mut v = [f(5, 1, 2, 0), f(3, 2, 1, 4), f(3, 1, 3, 0), f(3, 1, 1, 1)];
        v.sort_unstable();
        let keys: Vec<_> = v.iter().map(|m| m.key()).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
        assert_eq!(v[0].src_node, 1, "earliest arrival, earliest sender first");
        assert_eq!(v.last().unwrap().arrival, Ps::ns(5));
    }
}
