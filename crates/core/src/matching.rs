//! The MX matching engine.
//!
//! MX semantics: a receive posts a 64-bit `match_info` plus a 64-bit
//! `mask`; an incoming message with match information `m` matches the
//! receive iff `(m & mask) == (match_info & mask)`. Receives match in
//! post order; unexpected messages queue in arrival order and are
//! re-examined by every new receive ("matching" box of Fig 2, done by
//! the user-space library in the paper's stack, or by the driver when
//! the `kernel_matching` extension is on).

use crate::{EpAddr, ReqId};
use bytes::Bytes;
use std::collections::VecDeque;

/// A posted receive waiting for a message.
#[derive(Debug, Clone)]
pub struct PostedRecv {
    /// The library request to complete on a match.
    pub req: ReqId,
    /// Match information.
    pub match_info: u64,
    /// Match mask.
    pub mask: u64,
    /// Capacity of the destination buffer.
    pub len: u64,
}

/// An arrived message no receive was posted for.
#[derive(Debug)]
pub enum Unexpected {
    /// Eager data buffered by the library (possibly still arriving:
    /// `arrived < total` while fragments trickle in).
    Eager {
        /// Sender address.
        src: EpAddr,
        /// Message match information.
        match_info: u64,
        /// Per-partner message sequence (reassembly key).
        msg_seq: u32,
        /// Buffered payload. Shared `Bytes`: tiny messages hand the
        /// event's inline payload over without copying, small ones
        /// buffer their ring slot exactly once.
        data: Bytes,
        /// Bytes arrived so far.
        arrived: u64,
        /// Total message length.
        total: u64,
    },
    /// A rendezvous announcement for a large message (no data yet; the
    /// pull starts once a receive matches).
    Rndv {
        /// Sender address.
        src: EpAddr,
        /// Message match information.
        match_info: u64,
        /// Message sequence.
        msg_seq: u32,
        /// Announced message length.
        msg_len: u64,
        /// Sender-side handle to pull from.
        sender_handle: u32,
    },
}

impl Unexpected {
    /// The message's match information.
    pub fn match_info(&self) -> u64 {
        match self {
            Unexpected::Eager { match_info, .. } | Unexpected::Rndv { match_info, .. } => {
                *match_info
            }
        }
    }

    /// Whether all data (or the rendezvous descriptor) is present so a
    /// matching receive can complete/start immediately.
    pub fn is_ready(&self) -> bool {
        match self {
            Unexpected::Eager { arrived, total, .. } => arrived >= total,
            Unexpected::Rndv { .. } => true,
        }
    }
}

/// MX match predicate.
#[inline]
pub fn matches(posted_info: u64, mask: u64, msg_info: u64) -> bool {
    (msg_info & mask) == (posted_info & mask)
}

/// Posted-receive and unexpected queues of one endpoint.
#[derive(Debug, Default)]
pub struct Matcher {
    posted: VecDeque<PostedRecv>,
    unexpected: VecDeque<Unexpected>,
}

impl Matcher {
    /// An empty matcher.
    pub fn new() -> Self {
        Self::default()
    }

    /// Post a receive. If an unexpected message already matches, it is
    /// removed and returned instead of queueing the receive — the
    /// caller then completes (or starts pulling) it immediately.
    pub fn post_recv(&mut self, recv: PostedRecv) -> Option<Unexpected> {
        if let Some(pos) = self
            .unexpected
            .iter()
            .position(|u| matches(recv.match_info, recv.mask, u.match_info()))
        {
            return self.unexpected.remove(pos);
        }
        self.posted.push_back(recv);
        None
    }

    /// An incoming message header arrived: find (and remove) the first
    /// matching posted receive.
    pub fn match_incoming(&mut self, msg_info: u64) -> Option<PostedRecv> {
        let pos = self
            .posted
            .iter()
            .position(|r| matches(r.match_info, r.mask, msg_info))?;
        self.posted.remove(pos)
    }

    /// Queue an unexpected message.
    pub fn push_unexpected(&mut self, u: Unexpected) {
        self.unexpected.push_back(u);
    }

    /// Find a buffered unexpected *eager* message by its reassembly key
    /// (later fragments of a message that arrived unexpected).
    pub fn unexpected_eager_mut(&mut self, src: EpAddr, msg_seq: u32) -> Option<&mut Unexpected> {
        self.unexpected.iter_mut().find(|u| match u {
            Unexpected::Eager {
                src: s, msg_seq: q, ..
            } => *s == src && *q == msg_seq,
            _ => false,
        })
    }

    /// Remove a posted receive by request id (used when a receive is
    /// satisfied by a buffered assembly instead of the matcher's own
    /// queues). Returns whether it was present.
    pub fn remove_posted(&mut self, req: ReqId) -> bool {
        let before = self.posted.len();
        self.posted.retain(|r| r.req != req);
        self.posted.len() != before
    }

    /// Number of posted receives waiting.
    pub fn posted_len(&self) -> usize {
        self.posted.len()
    }

    /// Number of unexpected messages queued.
    pub fn unexpected_len(&self) -> usize {
        self.unexpected.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EpIdx, NodeId};

    fn addr() -> EpAddr {
        EpAddr {
            node: NodeId(0),
            ep: EpIdx(0),
        }
    }

    fn recv(req: u64, info: u64, mask: u64) -> PostedRecv {
        PostedRecv {
            req: ReqId(req),
            match_info: info,
            mask,
            len: 1024,
        }
    }

    fn eager(info: u64, seq: u32) -> Unexpected {
        Unexpected::Eager {
            src: addr(),
            match_info: info,
            msg_seq: seq,
            data: Bytes::from(vec![0u8; 8]),
            arrived: 8,
            total: 8,
        }
    }

    #[test]
    fn exact_match_predicate() {
        assert!(matches(0xAB, u64::MAX, 0xAB));
        assert!(!matches(0xAB, u64::MAX, 0xAC));
        // Mask ignores unmasked bits.
        assert!(matches(0xAB00, 0xFF00, 0xABFF));
        // Zero mask matches anything.
        assert!(matches(0, 0, 0xFFFF_FFFF));
    }

    #[test]
    fn posted_receives_match_in_order() {
        let mut m = Matcher::new();
        assert!(m.post_recv(recv(1, 10, u64::MAX)).is_none());
        assert!(m.post_recv(recv(2, 10, u64::MAX)).is_none());
        let hit = m.match_incoming(10).unwrap();
        assert_eq!(hit.req, ReqId(1), "FIFO order");
        let hit = m.match_incoming(10).unwrap();
        assert_eq!(hit.req, ReqId(2));
        assert!(m.match_incoming(10).is_none());
    }

    #[test]
    fn wildcard_mask_matches_any_incoming() {
        let mut m = Matcher::new();
        m.post_recv(recv(1, 0, 0));
        assert!(m.match_incoming(0x1234).is_some());
    }

    #[test]
    fn unexpected_consumed_by_later_recv() {
        let mut m = Matcher::new();
        m.push_unexpected(eager(42, 0));
        m.push_unexpected(eager(43, 1));
        let u = m.post_recv(recv(1, 43, u64::MAX)).expect("match waiting");
        assert_eq!(u.match_info(), 43);
        assert!(u.is_ready());
        assert_eq!(m.unexpected_len(), 1);
        assert_eq!(m.posted_len(), 0, "receive must not also queue");
    }

    #[test]
    fn unexpected_matched_in_arrival_order() {
        let mut m = Matcher::new();
        m.push_unexpected(eager(7, 0));
        m.push_unexpected(eager(7, 1));
        if let Some(Unexpected::Eager { msg_seq, .. }) = m.post_recv(recv(1, 7, u64::MAX)) {
            assert_eq!(msg_seq, 0, "oldest unexpected first");
        } else {
            panic!("expected eager match");
        }
    }

    #[test]
    fn partial_unexpected_lookup_by_key() {
        let mut m = Matcher::new();
        m.push_unexpected(Unexpected::Eager {
            src: addr(),
            match_info: 5,
            msg_seq: 3,
            data: Bytes::from(vec![0; 16]),
            arrived: 8,
            total: 16,
        });
        let u = m.unexpected_eager_mut(addr(), 3).expect("found");
        assert!(!u.is_ready());
        if let Unexpected::Eager { arrived, .. } = u {
            *arrived = 16;
        }
        assert!(m.unexpected_eager_mut(addr(), 3).unwrap().is_ready());
        assert!(m.unexpected_eager_mut(addr(), 9).is_none());
    }

    #[test]
    fn rndv_unexpected_is_ready_immediately() {
        let mut m = Matcher::new();
        m.push_unexpected(Unexpected::Rndv {
            src: addr(),
            match_info: 9,
            msg_seq: 0,
            msg_len: 1 << 20,
            sender_handle: 4,
        });
        let u = m.post_recv(recv(1, 9, u64::MAX)).unwrap();
        assert!(u.is_ready());
        match u {
            Unexpected::Rndv {
                msg_len,
                sender_handle,
                ..
            } => {
                assert_eq!(msg_len, 1 << 20);
                assert_eq!(sender_handle, 4);
            }
            _ => panic!("wrong kind"),
        }
    }

    #[test]
    fn non_matching_recv_queues() {
        let mut m = Matcher::new();
        m.push_unexpected(eager(42, 0));
        assert!(m.post_recv(recv(1, 99, u64::MAX)).is_none());
        assert_eq!(m.posted_len(), 1);
        assert_eq!(m.unexpected_len(), 1);
    }
}
