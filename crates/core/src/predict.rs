//! Copy-completion prediction (§VI future work, implemented as an
//! extension).
//!
//! The I/OAT hardware cannot raise an interrupt when a copy completes,
//! so a synchronous offloaded copy normally busy-polls (§IV-C). The
//! paper proposes predicting the completion time from past copies and
//! *sleeping* until just before it. This EWMA predictor learns the
//! per-byte copy duration plus a fixed startup term and powers the
//! `SyncWaitPolicy::SleepPredicted` mode.

use omx_sim::Ps;

/// EWMA predictor of I/OAT copy durations.
#[derive(Debug, Clone)]
pub struct CopyPredictor {
    /// Smoothed nanoseconds per byte.
    ns_per_byte: f64,
    /// Smoothed fixed startup nanoseconds.
    startup_ns: f64,
    /// Samples observed.
    samples: u64,
    /// EWMA weight of a new sample.
    alpha: f64,
}

impl Default for CopyPredictor {
    fn default() -> Self {
        Self::new()
    }
}

impl CopyPredictor {
    /// A predictor seeded with conservative priors (predicting long
    /// keeps the first sleeps safe: waking late costs latency, never
    /// correctness).
    pub fn new() -> Self {
        CopyPredictor {
            ns_per_byte: 0.5,  // ≈2 GiB/s prior
            startup_ns: 500.0, // generous startup prior
            samples: 0,
            alpha: 0.25,
        }
    }

    /// Predicted duration of a copy of `bytes`.
    pub fn predict(&self, bytes: u64) -> Ps {
        let ns = self.startup_ns + self.ns_per_byte * bytes as f64;
        Ps::ps((ns * 1e3).round().max(0.0) as u64)
    }

    /// Feed back an observed copy duration.
    pub fn observe(&mut self, bytes: u64, actual: Ps) {
        self.samples += 1;
        if bytes == 0 {
            return;
        }
        let actual_ns = actual.as_ns_f64();
        // Attribute the startup share first, then the per-byte rate.
        let per_byte = ((actual_ns - self.startup_ns) / bytes as f64).max(0.0);
        self.ns_per_byte = (1.0 - self.alpha) * self.ns_per_byte + self.alpha * per_byte;
        let startup = (actual_ns - self.ns_per_byte * bytes as f64).max(0.0);
        self.startup_ns = (1.0 - self.alpha) * self.startup_ns + self.alpha * startup.min(5_000.0);
    }

    /// Samples observed so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_to_a_stable_rate() {
        let mut p = CopyPredictor::new();
        // Ground truth: 390 ns startup + bytes at 3.18 GiB/s.
        let truth = |bytes: u64| Ps::ns(390 + (bytes as f64 * 0.2928) as u64);
        for _ in 0..50 {
            for bytes in [4096u64, 65536, 1 << 20] {
                p.observe(bytes, truth(bytes));
            }
        }
        for bytes in [4096u64, 65536, 1 << 20] {
            let predicted = p.predict(bytes).as_ns_f64();
            let actual = truth(bytes).as_ns_f64();
            let err = (predicted - actual).abs() / actual;
            // Small copies tolerate more error: the fixed-startup share
            // is hard to separate, and under-prediction only costs a
            // short busy-poll after an early wake.
            let tol = if bytes <= 4096 { 0.25 } else { 0.15 };
            assert!(
                err < tol,
                "{bytes} B: predicted {predicted} actual {actual}"
            );
        }
        assert_eq!(p.samples(), 150);
    }

    #[test]
    fn prior_overestimates_small_copies() {
        // Before any sample, predictions must be conservative (longer
        // than the real hardware) so early sleeps do not overshoot by
        // waking before large fractions of the copy remain.
        let p = CopyPredictor::new();
        let predicted = p.predict(4096);
        assert!(
            predicted >= Ps::ns(1500),
            "prior {predicted} too optimistic"
        );
    }

    #[test]
    fn zero_byte_observation_is_ignored_for_rate() {
        let mut p = CopyPredictor::new();
        let before = p.predict(1 << 20);
        p.observe(0, Ps::ns(1));
        assert_eq!(p.predict(1 << 20), before);
        assert_eq!(p.samples(), 1);
    }

    #[test]
    fn prediction_is_monotone_in_size() {
        let p = CopyPredictor::new();
        assert!(p.predict(8192) > p.predict(4096));
        assert!(p.predict(1 << 20) > p.predict(64 << 10));
    }
}
