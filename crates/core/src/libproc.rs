//! The user-space library: event-ring consumption, matching and the
//! library-side copies.
//!
//! With library-level matching (the paper's stack), the library reaps
//! one event per small message and one per *fragment* of a medium
//! message, copying payloads from the statically pinned ring into the
//! application buffer — the second copy of Fig 2. Large messages show
//! up twice: a rendezvous event that triggers the pull command, and a
//! single completion event once the driver finished the pull.

use crate::cluster::Cluster;
use crate::config::StackKind;
use crate::endpoint::MediumAssembly;
use crate::events::Event;
use crate::matching::{PostedRecv, Unexpected};
use crate::{EpAddr, ReqId};
use bytes::Bytes;
use omx_hw::cpu::category;
use omx_hw::mem::{CopyContext, MemModel};
use omx_hw::Distance;
use omx_sim::{Ps, Sim};

impl Cluster {
    /// Library copy cost: ring slot (or unexpected heap buffer) into
    /// the application buffer. The slot was written by the BH on
    /// another core, so the copy is uncached.
    pub(crate) fn lib_copy_cost(&self, bytes: u64) -> Ps {
        let ctx = CopyContext::uncached(Distance::SameSocket);
        MemModel::copy_time_paged(&self.p.hw, bytes, &ctx)
    }

    /// Drain the endpoint's event ring in library context.
    pub(crate) fn lib_poll(&mut self, sim: &mut Sim<Cluster>, me: EpAddr) {
        while let Some(ev) = self.ep_mut(me).events.pop() {
            self.lib_handle_event(sim, me, ev);
        }
    }

    fn lib_handle_event(&mut self, sim: &mut Sim<Cluster>, me: EpAddr, ev: Event) {
        let core = self.ep(me).core;
        let node = me.node;
        let now = sim.now();
        let ev_cost = self.p.cfg.lib_event_cost;
        match ev {
            Event::RecvTiny {
                src,
                match_info,
                msg_seq,
                data,
            } => {
                let cost = ev_cost + self.lib_copy_cost(data.len() as u64);
                let (_, fin) = self.run_core(node, core, now, cost, category::USER_LIB);
                // The inline payload is already shared `Bytes`: hand it
                // over without materializing a copy.
                self.lib_deliver_eager(sim, me, src, match_info, msg_seq, data, fin);
            }
            Event::RecvSmall {
                src,
                match_info,
                msg_seq,
                slot,
                len,
            } => {
                let cost = ev_cost + self.lib_copy_cost(len as u64);
                let (_, fin) = self.run_core(node, core, now, cost, category::USER_LIB);
                self.lib_deliver_eager_from_slot(
                    sim,
                    me,
                    src,
                    match_info,
                    msg_seq,
                    slot,
                    len as usize,
                    fin,
                );
            }
            Event::RecvMediumFrag {
                src,
                match_info,
                msg_seq,
                msg_len,
                frag_idx,
                frag_count,
                offset,
                slot,
                len,
            } => {
                let cost = ev_cost + self.lib_copy_cost(len as u64);
                let (_, fin) = self.run_core(node, core, now, cost, category::USER_LIB);
                self.lib_apply_medium_frag(
                    sim,
                    me,
                    src,
                    match_info,
                    msg_seq,
                    msg_len as u64,
                    frag_idx as u32,
                    frag_count as u32,
                    offset as u64,
                    slot,
                    len as usize,
                    fin,
                );
            }
            Event::RecvRndv {
                src,
                match_info,
                msg_seq,
                msg_len,
                sender_handle,
            } => {
                let (_, fin) = self.run_core(node, core, now, ev_cost, category::USER_LIB);
                match self.ep_mut(me).matcher.match_incoming(match_info) {
                    Some(posted) => {
                        self.lib_adopt_rndv(
                            sim,
                            me,
                            posted.req,
                            src,
                            match_info,
                            msg_seq,
                            msg_len,
                            sender_handle,
                            fin,
                        );
                    }
                    None => {
                        self.ep_mut(me).counters.unexpected += 1;
                        self.ep_mut(me).matcher.push_unexpected(Unexpected::Rndv {
                            src,
                            match_info,
                            msg_seq,
                            msg_len,
                            sender_handle,
                        });
                    }
                }
            }
            Event::RecvLargeDone { req, len } => {
                let (_, fin) = self.run_core(node, core, now, ev_cost, category::USER_LIB);
                if let Some(rs) = self.ep_mut(me).recvs.get_mut(&req) {
                    rs.total = len;
                }
                self.finish_recv(sim, me, req, fin);
            }
            Event::RecvMediumDone { req, len } => {
                let (_, fin) = self.run_core(node, core, now, ev_cost, category::USER_LIB);
                if let Some(rs) = self.ep_mut(me).recvs.get_mut(&req) {
                    rs.total = len as u64;
                }
                self.finish_recv(sim, me, req, fin);
            }
            Event::SendDone { req } => {
                let (_, fin) = self.run_core(node, core, now, ev_cost, category::USER_LIB);
                self.finish_send(sim, me, req, fin);
            }
        }
    }

    /// Deliver a complete single-fragment eager message whose payload
    /// is already in shared `Bytes` (tiny messages ride inline in the
    /// event): match or buffer as unexpected — either way without
    /// copying the payload an extra time.
    #[allow(clippy::too_many_arguments)]
    fn lib_deliver_eager(
        &mut self,
        sim: &mut Sim<Cluster>,
        me: EpAddr,
        src: EpAddr,
        match_info: u64,
        msg_seq: u32,
        data: Bytes,
        fin: Ps,
    ) {
        match self.ep_mut(me).matcher.match_incoming(match_info) {
            Some(posted) => {
                let ep = self.ep_mut(me);
                if let Some(rs) = ep.recvs.get_mut(&posted.req) {
                    let n = data.len().min(rs.buf.len());
                    rs.buf[..n].copy_from_slice(&data[..n]);
                    rs.received = n as u64;
                    rs.total = n as u64;
                    rs.matched_info = Some(match_info);
                }
                self.finish_recv(sim, me, posted.req, fin);
            }
            None => {
                let total = data.len() as u64;
                self.ep_mut(me).counters.unexpected += 1;
                self.ep_mut(me).matcher.push_unexpected(Unexpected::Eager {
                    src,
                    match_info,
                    msg_seq,
                    data,
                    arrived: total,
                    total,
                });
            }
        }
    }

    /// Deliver a single-fragment eager message whose payload sits in a
    /// pinned ring slot. A matched receive copies slot → application
    /// buffer directly (the slot pool and the receive table are
    /// disjoint endpoint fields, so no intermediate buffer is needed);
    /// an unmatched one buffers the slot contents exactly once.
    #[allow(clippy::too_many_arguments)]
    fn lib_deliver_eager_from_slot(
        &mut self,
        sim: &mut Sim<Cluster>,
        me: EpAddr,
        src: EpAddr,
        match_info: u64,
        msg_seq: u32,
        slot: usize,
        len: usize,
        fin: Ps,
    ) {
        match self.ep_mut(me).matcher.match_incoming(match_info) {
            Some(posted) => {
                let ep = self.ep_mut(me);
                if let Some(rs) = ep.recvs.get_mut(&posted.req) {
                    let data = ep.slots.read(slot, len);
                    let n = data.len().min(rs.buf.len());
                    rs.buf[..n].copy_from_slice(&data[..n]);
                    rs.received = n as u64;
                    rs.total = n as u64;
                    rs.matched_info = Some(match_info);
                }
                ep.slots.release(slot);
                self.finish_recv(sim, me, posted.req, fin);
            }
            None => {
                let ep = self.ep_mut(me);
                let data = Bytes::from(ep.slots.read(slot, len));
                ep.slots.release(slot);
                ep.counters.unexpected += 1;
                let total = len as u64;
                ep.matcher.push_unexpected(Unexpected::Eager {
                    src,
                    match_info,
                    msg_seq,
                    data,
                    arrived: total,
                    total,
                });
            }
        }
    }

    /// Apply one medium fragment to its (matched or unexpected)
    /// assembly, copying straight out of the pinned ring slot; the
    /// slot is released once the fragment has been applied (or
    /// recognized as a duplicate).
    #[allow(clippy::too_many_arguments)]
    fn lib_apply_medium_frag(
        &mut self,
        sim: &mut Sim<Cluster>,
        me: EpAddr,
        src: EpAddr,
        match_info: u64,
        msg_seq: u32,
        msg_len: u64,
        frag_idx: u32,
        frag_count: u32,
        offset: u64,
        slot: usize,
        len: usize,
        fin: Ps,
    ) {
        let key = (src, msg_seq);
        // First fragment of a new message: match it.
        if !self.ep(me).assemblies.contains_key(&key) {
            let matched = self.ep_mut(me).matcher.match_incoming(match_info);
            let (req, buf) = match matched {
                Some(posted) => {
                    if let Some(rs) = self.ep_mut(me).recvs.get_mut(&posted.req) {
                        rs.total = msg_len;
                        rs.matched_info = Some(match_info);
                    }
                    // omx-lint: allow(hot-path-alloc) Vec::new is capacity-zero and touches no allocator; matched data lands in the posted buffer [test: crates/sim/tests/alloc_count.rs::warmed_medium_pingpong_allocates_nothing]
                    (Some(posted.req), Vec::new())
                }
                // omx-lint: allow(hot-path-alloc) unexpected-message buffer: only taken when no receive was posted, never in a pre-posted steady loop [test: crates/sim/tests/alloc_count.rs::warmed_medium_pingpong_allocates_nothing]
                None => (None, vec![0u8; msg_len as usize]),
            };
            let frag_seen = self
                .node_mut(me.node)
                .driver
                .scratch
                .take_bitmap(frag_count as usize);
            self.ep_mut(me).assemblies.insert(
                key,
                MediumAssembly {
                    req,
                    match_info,
                    frag_seen,
                    arrived: 0,
                    total: msg_len,
                    data: buf,
                },
            );
        }
        // Apply the fragment straight from the ring slot.
        let (completed_req, done_unmatched) = {
            let ep = self.ep_mut(me);
            let asm = ep.assemblies.get_mut(&key).expect("just ensured");
            let result = if asm.frag_seen[frag_idx as usize] {
                (None, false)
            } else {
                asm.frag_seen[frag_idx as usize] = true;
                asm.arrived += len as u64;
                match asm.req {
                    Some(req) => {
                        if let Some(rs) = ep.recvs.get_mut(&req) {
                            let data = ep.slots.read(slot, len);
                            let end = ((offset as usize) + len).min(rs.buf.len());
                            let start = (offset as usize).min(end);
                            rs.buf[start..end].copy_from_slice(&data[..end - start]);
                            rs.received += (end - start) as u64;
                        }
                        let asm = ep.assemblies.get_mut(&key).expect("present");
                        if asm.is_complete() {
                            (Some(req), false)
                        } else {
                            (None, false)
                        }
                    }
                    None => {
                        let data = ep.slots.read(slot, len);
                        let end = ((offset as usize) + len).min(asm.data.len());
                        let start = (offset as usize).min(end);
                        asm.data[start..end].copy_from_slice(&data[..end - start]);
                        (None, asm.is_complete())
                    }
                }
            };
            ep.slots.release(slot);
            result
        };
        if let Some(req) = completed_req {
            if let Some(asm) = self.ep_mut(me).assemblies.remove(&key) {
                self.node_mut(me.node)
                    .driver
                    .scratch
                    .put_bitmap(asm.frag_seen);
            }
            self.finish_recv(sim, me, req, fin);
        }
        // Complete-but-unmatched assemblies stay buffered until a
        // receive adopts them.
        let _ = done_unmatched;
    }

    /// A receive matched a rendezvous: record it and start the pull.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn lib_adopt_rndv(
        &mut self,
        sim: &mut Sim<Cluster>,
        me: EpAddr,
        req: ReqId,
        src: EpAddr,
        match_info: u64,
        msg_seq: u32,
        msg_len: u64,
        sender_handle: u32,
        fin: Ps,
    ) {
        if let Some(rs) = self.ep_mut(me).recvs.get_mut(&req) {
            rs.total = msg_len;
            rs.matched_info = Some(match_info);
        }
        // The announcement is now owned by a pull; duplicate tracking
        // hands over to the driver's active-pull check.
        self.ep_mut(me).rndv_pending.remove(&(src, msg_seq));
        match self.p.cfg.stack {
            StackKind::Mxoe => {
                self.mx_start_pull(sim, me, req, src, sender_handle, msg_len, fin);
            }
            StackKind::OpenMx => {
                if src.node == me.node {
                    self.start_local_pull(sim, me, req, src, sender_handle, msg_len, msg_seq, fin);
                } else {
                    self.start_pull(sim, me, req, src, sender_handle, msg_len, msg_seq, fin);
                }
            }
        }
    }

    /// A new receive was posted: try the matcher's unexpected queue,
    /// then buffered assemblies.
    pub(crate) fn lib_match_new_recv(&mut self, sim: &mut Sim<Cluster>, me: EpAddr, req: ReqId) {
        let now = sim.now();
        let core = self.ep(me).core;
        let (match_info, mask, cap) = {
            let rs = self.ep(me).recvs.get(&req).expect("just posted");
            (rs.match_info, rs.mask, rs.buf.len() as u64)
        };
        let hit = self.ep_mut(me).matcher.post_recv(PostedRecv {
            req,
            match_info,
            mask,
            len: cap,
        });
        match hit {
            Some(Unexpected::Eager {
                match_info: mi,
                data,
                arrived,
                total,
                ..
            }) => {
                // Matcher-held eager unexpecteds are always complete
                // (partial mediums live in `assemblies` instead).
                debug_assert!(arrived >= total, "partial eager in matcher");
                let cost = self.lib_copy_cost(total);
                let (_, fin) = self.run_core(me.node, core, now, cost, category::USER_LIB);
                let ep = self.ep_mut(me);
                if let Some(rs) = ep.recvs.get_mut(&req) {
                    let n = (total as usize).min(rs.buf.len()).min(data.len());
                    rs.buf[..n].copy_from_slice(&data[..n]);
                    rs.received = n as u64;
                    rs.total = n as u64;
                    rs.matched_info = Some(mi);
                }
                self.finish_recv(sim, me, req, fin);
            }
            Some(Unexpected::Rndv {
                src,
                match_info: mi,
                msg_seq,
                msg_len,
                sender_handle,
            }) => {
                self.lib_adopt_rndv(sim, me, req, src, mi, msg_seq, msg_len, sender_handle, now);
            }
            None => {
                // Any buffered unmatched assembly that fits?
                let found = {
                    let ep = self.ep(me);
                    ep.assemblies
                        .iter()
                        .filter(|(_, a)| a.req.is_none())
                        .find(|(_, a)| crate::matching::matches(match_info, mask, a.match_info))
                        .map(|(k, _)| *k)
                };
                if let Some(key) = found {
                    // Adopt: the receive leaves the matcher's queue.
                    self.ep_mut(me).matcher.remove_posted(req);
                    let (arrived, total, mi, complete) = {
                        let ep = self.ep_mut(me);
                        let asm = ep.assemblies.get_mut(&key).expect("found");
                        asm.req = Some(req);
                        (asm.arrived, asm.total, asm.match_info, asm.is_complete())
                    };
                    let cost = self.lib_copy_cost(arrived);
                    let (_, fin) = self.run_core(me.node, core, now, cost, category::USER_LIB);
                    {
                        let ep = self.ep_mut(me);
                        let asm = ep.assemblies.get_mut(&key).expect("found");
                        let data = std::mem::take(&mut asm.data);
                        if let Some(rs) = ep.recvs.get_mut(&req) {
                            let n = (arrived as usize).min(rs.buf.len()).min(data.len());
                            // Unmatched assemblies buffer the full
                            // image; copy what arrived so far.
                            rs.buf[..n].copy_from_slice(&data[..n]);
                            rs.received = arrived;
                            rs.total = total;
                            rs.matched_info = Some(mi);
                        }
                    }
                    if complete {
                        if let Some(asm) = self.ep_mut(me).assemblies.remove(&key) {
                            self.node_mut(me.node)
                                .driver
                                .scratch
                                .put_bitmap(asm.frag_seen);
                        }
                        self.finish_recv(sim, me, req, fin);
                    }
                }
            }
        }
    }
}
