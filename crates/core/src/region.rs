//! Registered (pinned) memory regions and the registration cache.
//!
//! Large-message receive buffers (and send buffers) must be pinned so
//! the BH — or the I/OAT DMA engine, which works on DMA addresses —
//! can copy into them at any time (§II-C). Pinning costs CPU time per
//! page; the classic optimization is a *registration cache* that
//! defers deregistration and reuses pinned regions across messages
//! (§IV-D, Fig 11's "regcache" toggle; [20] in the paper).
//!
//! Regions are identified to the application by a stable `tag` (the
//! buffer identity) because the simulation has no virtual addresses.

use omx_hw::HwParams;
use omx_sim::sanitize::{Kind, SimSanitizer, Token};
use omx_sim::Ps;
use std::collections::BTreeMap;

/// One registered region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// Driver-assigned region id (quoted in pull handles).
    pub id: u32,
    /// Application buffer tag this region pins.
    pub tag: u64,
    /// Region length in bytes.
    pub len: u64,
    /// Lifecycle sanitizer token (inert for equality; zero-sized in
    /// release builds).
    san: Token,
}

impl Region {
    /// The checked constructor: mints the lifecycle token with the
    /// caller as the allocation site. All pinning goes through
    /// [`RegionTable::register`], which submits the token.
    #[track_caller]
    pub fn new(id: u32, tag: u64, len: u64) -> Region {
        Region {
            id,
            tag,
            len,
            san: SimSanitizer::alloc(Kind::Region),
        }
    }

    /// The lifecycle token.
    pub fn token(&self) -> Token {
        self.san
    }
}

/// Result of a registration request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Registration {
    /// The region (new or reused).
    pub region: Region,
    /// CPU time the driver must charge (zero on a cache hit).
    pub cost: Ps,
    /// Whether the registration cache supplied the region.
    pub cache_hit: bool,
}

/// Per-process region table with optional registration cache.
#[derive(Debug)]
pub struct RegionTable {
    /// Deferred-deregistration cache: (tag, len) → region, LRU order.
    cache: Vec<Region>,
    /// Live (pinned) regions by id, including cached ones.
    live: BTreeMap<u32, Region>,
    cache_enabled: bool,
    cache_capacity: usize,
    next_id: u32,
    hits: u64,
    misses: u64,
}

impl RegionTable {
    /// A table with the registration cache on/off.
    pub fn new(cache_enabled: bool) -> Self {
        RegionTable {
            cache: Vec::new(),
            live: BTreeMap::new(),
            cache_enabled,
            cache_capacity: 64,
            next_id: 1,
            hits: 0,
            misses: 0,
        }
    }

    /// Register (pin) a buffer identified by `tag` of `len` bytes.
    ///
    /// With the cache enabled, a previous registration of the same
    /// `(tag, len)` is reused for free; otherwise the full per-page
    /// pinning cost is charged.
    #[track_caller]
    pub fn register(&mut self, params: &HwParams, tag: u64, len: u64) -> Registration {
        if self.cache_enabled {
            if let Some(pos) = self.cache.iter().position(|r| r.tag == tag && r.len == len) {
                // Refresh LRU position.
                let region = self.cache.remove(pos);
                self.cache.push(region);
                self.hits += 1;
                // A cache hit re-activates a parked (deferred-
                // deregistration) region.
                SimSanitizer::submit(region.token());
                return Registration {
                    region,
                    cost: Ps::ZERO,
                    cache_hit: true,
                };
            }
        }
        self.misses += 1;
        let region = Region::new(self.next_id, tag, len);
        SimSanitizer::submit(region.token());
        self.next_id += 1;
        self.live.insert(region.id, region);
        Registration {
            region,
            cost: params.pin_cost(len),
            cache_hit: false,
        }
    }

    /// Release a registration. With the cache on, the region stays
    /// pinned (deferred deregistration) and future registrations of the
    /// same buffer hit; with it off, the region is unpinned.
    #[track_caller]
    pub fn release(&mut self, region: Region) {
        if self.cache_enabled {
            // Deferred deregistration: the region stays pinned, parked
            // in the cache (idempotent — a shared region may be parked
            // by several finished users).
            SimSanitizer::park(region.token());
            // Evict LRU entries beyond capacity.
            self.cache.retain(|r| r.id != region.id);
            self.cache.push(region);
            while self.cache.len() > self.cache_capacity {
                let evicted = self.cache.remove(0);
                self.live.remove(&evicted.id);
                SimSanitizer::release(evicted.token());
            }
        } else {
            SimSanitizer::release(region.token());
            self.live.remove(&region.id);
        }
    }

    /// Look up a live region by id (the pull engine's frame handler).
    pub fn get(&self, id: u32) -> Option<Region> {
        self.live.get(&id).copied()
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses (full registrations) so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Currently pinned regions (live + cached).
    pub fn pinned_count(&self) -> usize {
        self.live.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> HwParams {
        HwParams::default()
    }

    #[test]
    fn first_registration_pays_pin_cost() {
        let p = params();
        let mut t = RegionTable::new(true);
        let r = t.register(&p, 100, 1 << 20);
        assert!(!r.cache_hit);
        assert_eq!(r.cost, p.pin_cost(1 << 20));
        assert_eq!(r.region.len, 1 << 20);
        assert_eq!(t.misses(), 1);
    }

    #[test]
    fn cache_hit_is_free_after_release() {
        let p = params();
        let mut t = RegionTable::new(true);
        let r1 = t.register(&p, 100, 64 << 10);
        t.release(r1.region);
        let r2 = t.register(&p, 100, 64 << 10);
        assert!(r2.cache_hit);
        assert_eq!(r2.cost, Ps::ZERO);
        assert_eq!(r2.region.id, r1.region.id, "same pinned region reused");
        assert_eq!(t.hits(), 1);
    }

    #[test]
    fn different_length_misses_cache() {
        let p = params();
        let mut t = RegionTable::new(true);
        let r1 = t.register(&p, 100, 64 << 10);
        t.release(r1.region);
        let r2 = t.register(&p, 100, 128 << 10);
        assert!(!r2.cache_hit);
    }

    #[test]
    fn cache_disabled_always_pays() {
        let p = params();
        let mut t = RegionTable::new(false);
        let r1 = t.register(&p, 100, 64 << 10);
        t.release(r1.region);
        let r2 = t.register(&p, 100, 64 << 10);
        assert!(!r2.cache_hit);
        assert_eq!(r2.cost, p.pin_cost(64 << 10));
        assert_eq!(t.hits(), 0);
        assert_eq!(t.misses(), 2);
        // Released region without cache is unpinned.
        assert!(t.get(r1.region.id).is_none());
    }

    #[test]
    fn lru_eviction_unpins() {
        let p = params();
        let mut t = RegionTable::new(true);
        let mut first = None;
        for tag in 0..70u64 {
            let r = t.register(&p, tag, 4096);
            if tag == 0 {
                first = Some(r.region);
            }
            t.release(r.region);
        }
        // Capacity is 64: tag 0 must have been evicted.
        let r = t.register(&p, 0, 4096);
        assert!(!r.cache_hit, "evicted entry re-registers");
        assert!(t.get(first.unwrap().id).is_none());
        assert!(t.pinned_count() <= 66);
    }

    #[test]
    fn live_regions_resolve_by_id() {
        let p = params();
        let mut t = RegionTable::new(true);
        let r = t.register(&p, 5, 8192);
        assert_eq!(t.get(r.region.id), Some(r.region));
        assert!(t.get(9999).is_none());
    }

    #[test]
    fn cached_region_still_resolves_for_inflight_pulls() {
        // A released-but-cached region must stay resolvable: deferred
        // deregistration keeps it pinned.
        let p = params();
        let mut t = RegionTable::new(true);
        let r = t.register(&p, 5, 8192);
        t.release(r.region);
        assert_eq!(t.get(r.region.id), Some(r.region));
    }
}
