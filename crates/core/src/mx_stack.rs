//! The native MXoE stack inside the cluster world (Fig 11/12 baseline).
//!
//! The same wire and the same applications, but the Myri-10G firmware
//! does what Open-MX cannot: it matches incoming fragments and
//! deposits them *directly* into the posted application buffer. No
//! ring skbuffs, no interrupts-per-fragment, no BH and — crucially —
//! no host receive copy. Costs come from [`omx_mx::MxParams`]; the
//! per-fragment firmware overhead caps large-message throughput near
//! the 1140 MiB/s the paper measures for MX.

use crate::cluster::Cluster;
use crate::endpoint::MediumAssembly;
use crate::matching::Unexpected;
use crate::proto::Packet;
use crate::{EpAddr, EpIdx, NodeId, ReqId};
use omx_ethernet::EthFrame;
use omx_hw::cpu::category;
use omx_sim::{Ps, Sim};
use std::collections::BTreeMap;

/// One in-progress MX "get" (rendezvous pull) on the receiver.
#[derive(Debug)]
pub struct MxPull {
    /// Receiving endpoint.
    pub ep: EpIdx,
    /// The receive being filled.
    pub req: ReqId,
    /// Sender address.
    pub src: EpAddr,
    /// Sender handle for the Notify.
    pub sender_handle: u32,
    /// Total bytes expected.
    pub total: u64,
    /// Bytes deposited.
    pub received: u64,
}

/// Per-node MXoE firmware state.
#[derive(Debug, Default)]
pub struct MxNodeState {
    /// In-progress pulls by receiver handle.
    pub pulls: BTreeMap<u32, MxPull>,
    /// Next pull handle.
    pub next_handle: u32,
}

impl Cluster {
    /// NIC doorbell processing of an MX send (already past the library
    /// post cost).
    pub(crate) fn mx_send(&mut self, sim: &mut Sim<Cluster>, me: EpAddr, req: ReqId) {
        let now = sim.now();
        let (dest, match_info, msg_seq, data) = {
            let st = self.ep(me).sends.get(&req).expect("send exists");
            (st.dest, st.match_info, st.msg_seq, st.data.clone())
        };
        let mx = self.p.mx;
        if dest.node == me.node {
            // MX shared-memory path: the sender library copies into a
            // shared segment, the receiver library copies out (two CPU
            // copies, no NIC). The copies pipeline per segment, so the
            // end-to-end latency is the slower copy plus one segment.
            let len = data.len() as u64;
            let seg = len.min(32 << 10);
            let t_in = mx.shm_copy_in_rate.time_for(len);
            let (_, fin_in) =
                self.run_core(me.node, self.ep(me).core, now, t_in, category::USER_LIB);
            if let Some(st) = self.ep_mut(me).sends.get_mut(&req) {
                st.acked = true;
            }
            self.finish_send(sim, me, req, fin_in);
            let t_out = mx.shm_copy_out_rate.time_for(len);
            let peer_core = self.ep(dest).core;
            // The receiver starts once the first segment landed and
            // cannot finish before the sender's last segment plus one
            // copy-out of it.
            let start_out = now + mx.shm_copy_in_rate.time_for(seg);
            let (_, fin_out) =
                self.run_core(dest.node, peer_core, start_out, t_out, category::USER_LIB);
            let fin_out = fin_out.max(fin_in + mx.shm_copy_out_rate.time_for(seg));
            sim.schedule_at(fin_out, move |c: &mut Cluster, s| {
                let now = s.now();
                c.mx_deposit_eager(
                    s,
                    dest,
                    me,
                    match_info,
                    msg_seq,
                    data.len() as u64,
                    0,
                    1,
                    0,
                    &data,
                    now,
                );
            });
            return;
        }
        if data.len() as u64 > mx.rndv_threshold {
            // Rendezvous: announce; the receiver pulls.
            let handle = self.node_mut(me.node).driver.alloc_tx_handle();
            self.node_mut(me.node).driver.tx_large.insert(
                handle,
                crate::driver::TxLargeState {
                    ep: me.ep,
                    req,
                    dest,
                },
            );
            {
                let st = self.ep_mut(me).sends.get_mut(&req).expect("send exists");
                st.sender_handle = Some(handle);
            }
            let pkt = Packet::RndvReq {
                src_ep: me.ep.0,
                dst_ep: dest.ep.0,
                match_info,
                msg_seq,
                msg_len: data.len() as u64,
                sender_handle: handle,
            };
            let payload = pkt.pack_into(&mut self.node_mut(me.node).pack_arena);
            self.send_payload(sim, me.node, dest.node, payload, now, Ps::ZERO);
            return;
        }
        // Eager: fragment and stream; the NIC DMA engine does the work.
        let frag = mx.frag_size as usize;
        let total = data.len();
        let count = total.div_ceil(frag).max(1);
        for i in 0..count {
            let lo = i * frag;
            let hi = (lo + frag).min(total);
            let pkt = Packet::MediumFrag {
                src_ep: me.ep.0,
                dst_ep: dest.ep.0,
                match_info,
                msg_seq,
                msg_len: total as u32,
                frag_idx: i as u16,
                frag_count: count as u16,
                offset: lo as u32,
                data: data.slice(lo..hi),
            };
            let payload = pkt.pack_into(&mut self.node_mut(me.node).pack_arena);
            self.send_payload(sim, me.node, dest.node, payload, now, mx.nic_frag_overhead);
        }
        // Eager MX sends complete once handed to the NIC.
        if let Some(st) = self.ep_mut(me).sends.get_mut(&req) {
            st.acked = true;
        }
        self.finish_send(sim, me, req, now);
    }

    /// MXoE frame arrival: the firmware handles everything in-line,
    /// zero host CPU.
    pub(crate) fn mx_on_frame(&mut self, sim: &mut Sim<Cluster>, node: NodeId, frame: EthFrame) {
        let pkt = match Packet::parse(&frame.payload) {
            Ok(p) => p,
            Err(e) => {
                debug_assert!(false, "malformed MX frame: {e:?}");
                return;
            }
        };
        let src_node = NodeId(frame.src);
        let now = sim.now();
        match pkt {
            Packet::MediumFrag {
                src_ep,
                dst_ep,
                match_info,
                msg_seq,
                msg_len,
                frag_idx,
                frag_count,
                offset,
                data,
            } => {
                let src = EpAddr {
                    node: src_node,
                    ep: EpIdx(src_ep),
                };
                let me = EpAddr {
                    node,
                    ep: EpIdx(dst_ep),
                };
                self.mx_deposit_eager(
                    sim,
                    me,
                    src,
                    match_info,
                    msg_seq,
                    msg_len as u64,
                    frag_idx as u32,
                    frag_count as u32,
                    offset as u64,
                    &data,
                    now,
                );
            }
            Packet::RndvReq {
                src_ep,
                dst_ep,
                match_info,
                msg_seq,
                msg_len,
                sender_handle,
            } => {
                let src = EpAddr {
                    node: src_node,
                    ep: EpIdx(src_ep),
                };
                let me = EpAddr {
                    node,
                    ep: EpIdx(dst_ep),
                };
                match self.ep_mut(me).matcher.match_incoming(match_info) {
                    Some(posted) => {
                        self.lib_adopt_rndv(
                            sim,
                            me,
                            posted.req,
                            src,
                            match_info,
                            msg_seq,
                            msg_len,
                            sender_handle,
                            now + self.p.mx.nic_match_latency,
                        );
                    }
                    None => self.ep_mut(me).matcher.push_unexpected(Unexpected::Rndv {
                        src,
                        match_info,
                        msg_seq,
                        msg_len,
                        sender_handle,
                    }),
                }
            }
            Packet::PullReq {
                dst_ep,
                sender_handle,
                recv_handle,
                frag_start,
                frag_count,
                ..
            } => {
                let me = EpAddr {
                    node,
                    ep: EpIdx(dst_ep),
                };
                let Some(tx) = self.node(node).driver.tx_large.get(&sender_handle).copied() else {
                    return;
                };
                let (dest, data) = {
                    let st = self.ep(me).sends.get(&tx.req).expect("large send alive");
                    (st.dest, st.data.clone())
                };
                let frag = self.p.mx.frag_size;
                let overhead = self.p.mx.nic_frag_overhead;
                for i in frag_start..frag_start + frag_count {
                    let lo = (i as u64 * frag).min(data.len() as u64) as usize;
                    let hi = ((i as u64 + 1) * frag).min(data.len() as u64) as usize;
                    if lo >= hi {
                        break;
                    }
                    let pkt = Packet::LargeFrag {
                        src_ep: me.ep.0,
                        dst_ep: dest.ep.0,
                        recv_handle,
                        frag_idx: i,
                        offset: lo as u64,
                        data: data.slice(lo..hi),
                    };
                    let payload = pkt.pack_into(&mut self.node_mut(node).pack_arena);
                    self.send_payload(sim, node, dest.node, payload, now, overhead);
                }
            }
            Packet::LargeFrag {
                recv_handle,
                offset,
                data,
                ..
            } => {
                self.mx_deposit_large(sim, node, recv_handle, offset, &data, now);
            }
            Packet::Notify {
                dst_ep,
                sender_handle,
                ..
            } => {
                let me = EpAddr {
                    node,
                    ep: EpIdx(dst_ep),
                };
                let Some(tx) = self.node_mut(node).driver.tx_large.remove(&sender_handle) else {
                    return;
                };
                if let Some(st) = self.ep_mut(me).sends.get_mut(&tx.req) {
                    st.acked = true;
                }
                let core = self.ep(me).core;
                let (_, fin) = self.run_core(
                    node,
                    core,
                    now,
                    self.p.mx.lib_event_cost,
                    category::USER_LIB,
                );
                self.finish_send(sim, me, tx.req, fin);
            }
            other => debug_assert!(false, "unexpected MX packet {other:?}"),
        }
    }

    /// Zero-copy eager deposit: matched fragments land straight in the
    /// application buffer; unmatched ones are buffered by the firmware
    /// and copied out at match time.
    #[allow(clippy::too_many_arguments)]
    fn mx_deposit_eager(
        &mut self,
        sim: &mut Sim<Cluster>,
        me: EpAddr,
        src: EpAddr,
        match_info: u64,
        msg_seq: u32,
        msg_len: u64,
        frag_idx: u32,
        frag_count: u32,
        offset: u64,
        data: &[u8],
        now: Ps,
    ) {
        let key = (src, msg_seq);
        if !self.ep(me).assemblies.contains_key(&key) {
            let matched = self.ep_mut(me).matcher.match_incoming(match_info);
            let (req, buf) = match matched {
                Some(posted) => {
                    if let Some(rs) = self.ep_mut(me).recvs.get_mut(&posted.req) {
                        rs.total = msg_len;
                        rs.matched_info = Some(match_info);
                    }
                    (Some(posted.req), Vec::new())
                }
                None => (None, vec![0u8; msg_len as usize]),
            };
            let frag_seen = self
                .node_mut(me.node)
                .driver
                .scratch
                .take_bitmap(frag_count as usize);
            self.ep_mut(me).assemblies.insert(
                key,
                MediumAssembly {
                    req,
                    match_info,
                    frag_seen,
                    arrived: 0,
                    total: msg_len,
                    data: buf,
                },
            );
        }
        let completed_req = {
            let ep = self.ep_mut(me);
            let asm = ep.assemblies.get_mut(&key).expect("ensured");
            if asm.frag_seen[frag_idx as usize] {
                None
            } else {
                asm.frag_seen[frag_idx as usize] = true;
                asm.arrived += data.len() as u64;
                match asm.req {
                    Some(req) => {
                        if let Some(rs) = ep.recvs.get_mut(&req) {
                            let end = ((offset as usize) + data.len()).min(rs.buf.len());
                            let start = (offset as usize).min(end);
                            rs.buf[start..end].copy_from_slice(&data[..end - start]);
                            rs.received += (end - start) as u64;
                        }
                        let asm = ep.assemblies.get_mut(&key).expect("present");
                        if asm.is_complete() {
                            Some(req)
                        } else {
                            None
                        }
                    }
                    None => {
                        let end = ((offset as usize) + data.len()).min(asm.data.len());
                        let start = (offset as usize).min(end);
                        asm.data[start..end].copy_from_slice(&data[..end - start]);
                        None
                    }
                }
            }
        };
        if let Some(req) = completed_req {
            if let Some(asm) = self.ep_mut(me).assemblies.remove(&key) {
                self.node_mut(me.node)
                    .driver
                    .scratch
                    .put_bitmap(asm.frag_seen);
            }
            let core = self.ep(me).core;
            let at = now + self.p.mx.nic_match_latency;
            let (_, fin) = self.run_core(
                me.node,
                core,
                at,
                self.p.mx.lib_event_cost,
                category::USER_LIB,
            );
            self.finish_recv(sim, me, req, fin);
        }
    }

    /// Start an MX "get": one pull request for the whole message.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn mx_start_pull(
        &mut self,
        sim: &mut Sim<Cluster>,
        me: EpAddr,
        req: ReqId,
        src: EpAddr,
        sender_handle: u32,
        msg_len: u64,
        from: Ps,
    ) {
        let handle = {
            let mx = &mut self.node_mut(me.node).mx;
            mx.next_handle += 1;
            mx.pulls.insert(
                mx.next_handle,
                MxPull {
                    ep: me.ep,
                    req,
                    src,
                    sender_handle,
                    total: msg_len,
                    received: 0,
                },
            );
            mx.next_handle
        };
        let frags = self.p.mx.frags_for(msg_len) as u32;
        let pkt = Packet::PullReq {
            src_ep: me.ep.0,
            dst_ep: src.ep.0,
            sender_handle,
            recv_handle: handle,
            frag_start: 0,
            frag_count: frags,
        };
        let at = from + self.p.mx.rndv_host_cost;
        let payload = pkt.pack_into(&mut self.node_mut(me.node).pack_arena);
        self.send_payload(sim, me.node, src.node, payload, at, Ps::ZERO);
    }

    /// Zero-copy deposit of one pulled fragment.
    fn mx_deposit_large(
        &mut self,
        sim: &mut Sim<Cluster>,
        node: NodeId,
        recv_handle: u32,
        offset: u64,
        data: &[u8],
        now: Ps,
    ) {
        let Some((me, req, done, src, sender_handle)) = ({
            let mx = &mut self.node_mut(node).mx;
            mx.pulls.get_mut(&recv_handle).map(|p| {
                p.received += data.len() as u64;
                (
                    EpAddr { node, ep: p.ep },
                    p.req,
                    p.received >= p.total,
                    p.src,
                    p.sender_handle,
                )
            })
        }) else {
            return;
        };
        {
            let ep = self.ep_mut(me);
            if let Some(rs) = ep.recvs.get_mut(&req) {
                let end = ((offset as usize) + data.len()).min(rs.buf.len());
                let start = (offset as usize).min(end);
                rs.buf[start..end].copy_from_slice(&data[..end - start]);
                rs.received += (end - start) as u64;
            }
        }
        if done {
            self.node_mut(node).mx.pulls.remove(&recv_handle);
            let pkt = Packet::Notify {
                src_ep: me.ep.0,
                dst_ep: src.ep.0,
                sender_handle,
            };
            let payload = pkt.pack_into(&mut self.node_mut(node).pack_arena);
            self.send_payload(sim, node, src.node, payload, now, Ps::ZERO);
            let core = self.ep(me).core;
            let at = now + self.p.mx.nic_match_latency;
            let (_, fin) =
                self.run_core(node, core, at, self.p.mx.lib_event_cost, category::USER_LIB);
            self.finish_recv(sim, me, req, fin);
        }
    }
}
