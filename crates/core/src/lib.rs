//! Open-MX: message passing over generic Ethernet, with I/OAT copy
//! offload — the paper's primary contribution, as a deterministic
//! discrete-event simulation.
//!
//! Layer map (bottom-up):
//!
//! * [`proto`] — the wire protocol (tiny/small/medium eager messages,
//!   rendezvous + receiver-driven pull for large ones, acks/notify),
//! * [`matching`] — the MX 64-bit match-info/mask matching engine,
//! * [`events`] — the driver→library event ring and data slots,
//! * [`region`] — registered (pinned) regions and the registration
//!   cache,
//! * [`driver`] — the kernel side: BH receive callback with its copy
//!   paths (memcpy vs synchronous/asynchronous I/OAT), the pull engine,
//!   the one-copy shared-memory path, resource cleanup, retransmission,
//! * [`endpoint`] — the user-space library: isend/irecv, matching,
//!   event consumption,
//! * [`cluster`] — the discrete-event world wiring hosts, NICs, links,
//!   CPUs, caches and the I/OAT engine together, hosting both the
//!   Open-MX stack and the native MXoE baseline,
//! * [`app`] — the application trait benchmark state machines
//!   implement,
//! * [`harness`] — ping-pong / stream / copy micro-benchmark drivers
//!   that regenerate the paper's figures,
//! * [`autotune`], [`predict`] — the paper's future-work extensions
//!   (threshold auto-tuning, sleep-until-predicted-completion).

pub mod app;
pub mod autotune;
pub mod cluster;
pub mod config;
pub mod counters;
pub mod driver;
pub mod endpoint;
pub mod events;
pub mod fault;
pub mod harness;
pub mod libproc;
pub mod matching;
pub mod mx_stack;
pub mod partition;
pub mod predict;
pub mod proto;
pub mod region;

pub use cluster::{Cluster, ClusterParams};
pub use config::{MsgClass, OmxConfig, StackKind, SyncWaitPolicy};
pub use partition::{lookahead, run_partitioned};

use serde::{Deserialize, Serialize};

/// Host identifier within the cluster.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub u32);

/// Endpoint index within one host.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct EpIdx(pub u8);

/// Globally unique address of an endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EpAddr {
    /// Host.
    pub node: NodeId,
    /// Endpoint on that host.
    pub ep: EpIdx,
}

/// Request handle returned by isend/irecv.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ReqId(pub u64);
