//! Threshold auto-tuning (§VI future work, implemented as an
//! extension).
//!
//! The paper chose its offload thresholds empirically (fragments
//! ≥ 1 kB, network messages ≥ 64 kB, shared memory ≥ 1 MB) and notes
//! that benchmarking memcpy and I/OAT at startup could derive them
//! automatically. This module does exactly that, from first
//! principles, using the calibrated hardware model:
//!
//! * **fragment threshold** — the CPU break-even: offloading only pays
//!   when submitting a descriptor (350 ns) costs less CPU than just
//!   copying the fragment;
//! * **network message threshold** — asynchronous overlap only exists
//!   across pull blocks; a message must span the full outstanding
//!   window (2 blocks × 8 fragments × 4 kB = 64 kB) before overlap
//!   outweighs the per-message drain;
//! * **shared-memory threshold** — the synchronous copy competes with
//!   a possibly cache-resident memcpy (≈6 GiB/s shared-L2, faster than
//!   I/OAT); offload only wins once the ping-pong working set (source
//!   + destination) outgrows the usable L2.
//!
//! With the default `HwParams`/`OmxConfig`, the derived values land on
//! the paper's empirical ones — which is the point.

use crate::config::OmxConfig;
use omx_hw::HwParams;
use serde::{Deserialize, Serialize};

/// Thresholds derived from startup calibration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TunedThresholds {
    /// Minimum fragment size to offload.
    pub frag_threshold: u64,
    /// Minimum network message size to offload receive copies.
    pub net_msg_threshold: u64,
    /// Minimum shared-memory message size to offload.
    pub shm_threshold: u64,
}

fn next_power_of_two(v: u64) -> u64 {
    v.next_power_of_two()
}

/// Derive the offload thresholds from the hardware model.
pub fn calibrate(hw: &HwParams, cfg: &OmxConfig) -> TunedThresholds {
    // Fragment threshold: smallest size whose memcpy takes longer than
    // one descriptor submission (the paper's "600 bytes may be copied
    // with memcpy" §IV-A), rounded up to a power of two.
    let mut frag = 64u64;
    while hw.memcpy_rate_uncached.time_for(frag) < hw.ioat_submit_cpu {
        frag *= 2;
    }
    let frag_threshold = next_power_of_two(frag);

    // Network threshold: the pull window. Below it there is nothing to
    // overlap with — every copy would drain at the last fragment.
    let window = cfg.pull_blocks_outstanding as u64 * cfg.pull_block_frags as u64 * cfg.frag_size;
    let net_msg_threshold = next_power_of_two(window);

    // Shared-memory threshold: while source + destination fit in the
    // usable shared L2, the cached memcpy (≈6 GiB/s) beats the DMA
    // engine; offload once the working set spills.
    let shm_threshold = next_power_of_two(hw.l2_usable_bytes());

    TunedThresholds {
        frag_threshold,
        net_msg_threshold,
        shm_threshold,
    }
}

/// Apply tuned thresholds to a configuration.
pub fn apply(cfg: &mut OmxConfig, t: TunedThresholds) {
    cfg.ioat_frag_threshold = t.frag_threshold;
    cfg.ioat_net_msg_threshold = t.net_msg_threshold;
    cfg.ioat_shm_threshold = t.shm_threshold;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_reproduce_paper_thresholds() {
        let t = calibrate(&HwParams::default(), &OmxConfig::default());
        assert_eq!(t.frag_threshold, 1 << 10, "paper: fragments ≥ 1 kB");
        assert_eq!(t.net_msg_threshold, 64 << 10, "paper: messages ≥ 64 kB");
        assert_eq!(t.shm_threshold, 1 << 20, "paper: shared memory ≥ 1 MB");
    }

    #[test]
    fn faster_memcpy_raises_frag_threshold() {
        let hw = HwParams {
            memcpy_rate_uncached: omx_sim::Rate::gib_per_sec(8),
            ..HwParams::default()
        };
        let t = calibrate(&hw, &OmxConfig::default());
        assert!(t.frag_threshold > 1 << 10);
    }

    #[test]
    fn smaller_window_lowers_net_threshold() {
        let cfg = OmxConfig {
            pull_blocks_outstanding: 1,
            ..OmxConfig::default()
        };
        let t = calibrate(&HwParams::default(), &cfg);
        assert_eq!(t.net_msg_threshold, 32 << 10);
    }

    #[test]
    fn apply_overwrites_config() {
        let mut cfg = OmxConfig::with_ioat();
        let t = TunedThresholds {
            frag_threshold: 2048,
            net_msg_threshold: 128 << 10,
            shm_threshold: 4 << 20,
        };
        apply(&mut cfg, t);
        assert_eq!(cfg.ioat_frag_threshold, 2048);
        assert_eq!(cfg.ioat_net_msg_threshold, 128 << 10);
        assert_eq!(cfg.ioat_shm_threshold, 4 << 20);
    }
}
