//! The simulated cluster: hosts, NICs, links, CPU cores, caches, the
//! I/OAT engine, the Open-MX (or MXoE) stack and the applications.
//!
//! This is the world type of the discrete-event simulation. All
//! scheduling happens here and in the `driver::*` / `libproc` /
//! `mx_stack` modules, which add further `impl Cluster` blocks. The
//! substrate crates stay pure; the cluster interprets their costs.

use crate::app::{App, AppCtx, Completion};
use crate::config::{MsgClass, OmxConfig, StackKind};
use crate::driver::Driver;
use crate::endpoint::{Endpoint, RecvState, SendState};
use crate::events::Event;
use crate::mx_stack::MxNodeState;
use crate::proto::Packet;
use crate::{EpAddr, EpIdx, NodeId, ReqId};
use omx_ethernet::fault::LinkFaultState;
use omx_ethernet::nic::{RxOutcome, RxWake};
use omx_ethernet::{BottomHalfQueue, EthFrame, Link, LinkParams, Nic, NicParams};
use omx_hw::cpu::category;
use omx_hw::ioat::ChannelProbe;
use omx_hw::{CacheModel, CoreId, CpuSet, HwParams, IoatEngine, Topology};
use omx_mx::MxParams;
use omx_sim::{Metrics, Ps, Sim, SplitMix64};
use serde::Serialize;
use std::collections::BTreeMap;

/// Everything needed to build a cluster.
#[derive(Debug, Clone)]
pub struct ClusterParams {
    /// Hardware calibration constants (per host).
    pub hw: HwParams,
    /// Open-MX stack configuration.
    pub cfg: OmxConfig,
    /// MX baseline costs (used when `cfg.stack == Mxoe`).
    pub mx: MxParams,
    /// Link timing.
    pub link: LinkParams,
    /// NIC template (ring size, IRQ core).
    pub nic: NicParams,
    /// Host CPU topology.
    pub topology: Topology,
    /// Number of hosts.
    pub nodes: usize,
    /// Partitions the simulation is split into (node `i` belongs to
    /// partition `i % partitions`). `1` = the classic single-engine
    /// run; the partitioned executor produces byte-identical output
    /// for every value (see `crate::partition`).
    pub partitions: usize,
    /// Worker threads the partitioned executor may fan shards across.
    /// Purely a wall-clock knob: results are identical for any value.
    pub partition_workers: usize,
}

impl Default for ClusterParams {
    fn default() -> Self {
        ClusterParams {
            hw: HwParams::default(),
            cfg: OmxConfig::default(),
            mx: MxParams::default(),
            link: LinkParams::default(),
            nic: NicParams::default(),
            topology: Topology::default(),
            nodes: 2,
            partitions: 1,
            partition_workers: 1,
        }
    }
}

impl Stats {
    /// Fold another shard's statistics into this one: every event
    /// counter is summed, the per-endpoint counters merge, and the
    /// watermark rows add element-wise. Each simulated event happens
    /// on exactly one shard (non-owning shards count zero), so the
    /// sum over all shards equals what one unpartitioned engine would
    /// have counted.
    pub fn absorb(&mut self, o: &Stats) {
        self.frames_sent += o.frames_sent;
        self.frames_lost += o.frames_lost;
        self.frames_ring_dropped += o.frames_ring_dropped;
        self.frames_corrupt_dropped += o.frames_corrupt_dropped;
        self.frames_duplicated += o.frames_duplicated;
        self.frames_reordered += o.frames_reordered;
        self.retransmissions += o.retransmissions;
        self.pull_retransmissions += o.pull_retransmissions;
        self.acks_sent += o.acks_sent;
        self.duplicates_dropped += o.duplicates_dropped;
        self.messages_delivered += o.messages_delivered;
        self.bytes_delivered += o.bytes_delivered;
        self.sends_failed += o.sends_failed;
        self.ioat_fallback_copies += o.ioat_fallback_copies;
        self.ioat_quarantines += o.ioat_quarantines;
        self.ioat_reprobes += o.ioat_reprobes;
        self.backoff_escalations += o.backoff_escalations;
        self.frames_ring_dropped_injected += o.frames_ring_dropped_injected;
        self.credit_nacks += o.credit_nacks;
        self.credit_shrinks += o.credit_shrinks;
        self.credit_regrows += o.credit_regrows;
        self.credit_stalls += o.credit_stalls;
        for (row, orow) in self
            .ring_high_watermarks
            .iter_mut()
            .zip(&o.ring_high_watermarks)
        {
            for (w, ow) in row.iter_mut().zip(orow) {
                *w += ow;
            }
        }
        if self.ring_high_watermarks.is_empty() && !o.ring_high_watermarks.is_empty() {
            self.ring_high_watermarks = o.ring_high_watermarks.clone();
        }
        self.counters.merge(&o.counters);
    }
}

/// One host.
#[derive(Debug)]
pub struct Node {
    /// Host id.
    pub id: NodeId,
    /// CPU cores with busy accounting.
    pub cpus: CpuSet,
    /// Per-subchip cache occupancy.
    pub cache: CacheModel,
    /// The I/OAT DMA engine.
    pub ioat: IoatEngine,
    /// The Ethernet NIC (receive side).
    pub nic: Nic,
    /// Per-core bottom-half queues.
    pub bh: Vec<BottomHalfQueue>,
    /// Kernel driver state.
    pub driver: Driver,
    /// Endpoints (one per process).
    pub endpoints: Vec<Endpoint>,
    /// MXoE-mode NIC firmware state.
    pub mx: MxNodeState,
    /// Copy-duration predictor for the sleep-until-completion
    /// extension.
    pub predictor: crate::predict::CopyPredictor,
    /// Packet-serialization arena: every frame this node sends is
    /// packed into this long-lived buffer via [`Packet::pack_into`],
    /// which reclaims the block once in-flight payloads drop — so a
    /// steady-state node builds frames without allocating.
    pub pack_arena: bytes::BytesMut,
    /// This node's retransmit-backoff jitter stream, derived from the
    /// run seed and the node id alone — so concurrent retransmit
    /// timers desynchronize deterministically under any partitioning.
    pub(crate) backoff_rng: SplitMix64,
}

impl Node {
    /// The bottom-half queue of `core` — the single bounds-checked
    /// gateway to `self.bh`: core ids come from the NIC's queue→core
    /// binding, which is built against this node's topology.
    pub fn bh_mut(&mut self, core: CoreId) -> &mut BottomHalfQueue {
        // omx-lint: allow(fast-path-panic) core ids come from the NIC queue→core binding built for this topology; exercised at every RSS width [test: tests/incast_soak.rs::incast_with_credits_survives_every_plan]
        &mut self.bh[core.0 as usize]
    }
}

/// Aggregate counters over one run.
///
/// `Serialize` is hand-written (below) rather than derived: the
/// congestion-control fields appear in the JSON only when the feature
/// actually fired, so a credits-off run serializes byte-identically to
/// the committed result files that predate them.
#[derive(Debug, Default, Clone)]
pub struct Stats {
    /// Frames handed to links.
    pub frames_sent: u64,
    /// Frames dropped by loss injection.
    pub frames_lost: u64,
    /// Frames dropped by RX-ring overflow.
    pub frames_ring_dropped: u64,
    /// Frames discarded by the NIC's hardware FCS check (corruption
    /// injection) — counted apart from ring drops so wire damage and
    /// host overload are distinguishable.
    pub frames_corrupt_dropped: u64,
    /// Frames delivered twice by duplication injection.
    pub frames_duplicated: u64,
    /// Frames held back (reordered) by reordering injection.
    pub frames_reordered: u64,
    /// Eager message retransmissions.
    pub retransmissions: u64,
    /// Pull-request retransmissions.
    pub pull_retransmissions: u64,
    /// Acks sent.
    pub acks_sent: u64,
    /// Duplicate frames suppressed.
    pub duplicates_dropped: u64,
    /// Messages fully delivered to applications.
    pub messages_delivered: u64,
    /// Payload bytes delivered to applications.
    pub bytes_delivered: u64,
    /// Sends aborted after exhausting their retransmission attempts.
    pub sends_failed: u64,
    /// Offloaded copies rescued onto the CPU after a stuck channel was
    /// detected, plus offloads steered to memcpy because the chosen
    /// channel was quarantined.
    pub ioat_fallback_copies: u64,
    /// I/OAT channels newly blacklisted after a completion-poll
    /// deadline fired.
    pub ioat_quarantines: u64,
    /// Quarantined channels given another chance after their cool-down
    /// expired.
    pub ioat_reprobes: u64,
    /// Retransmission-timeout escalations (exponential backoff steps).
    pub backoff_escalations: u64,
    /// Of [`Stats::frames_ring_dropped`], those that happened on a
    /// node whose fault plan shrank the RX ring (the `ring-pressure`
    /// hazard). Drops on nodes with an unmodified ring are genuine
    /// receiver overload — the signal the incast suite is after —
    /// while this count is the injected hazard; sharing one counter
    /// made the two indistinguishable in results.
    pub frames_ring_dropped_injected: u64,
    /// Credit-revoke NACKs sent by overloaded receivers
    /// (`cfg.pull_credits` only; see `driver/pull.rs`).
    pub credit_nacks: u64,
    /// Multiplicative budget decreases taken by the credit controller.
    pub credit_shrinks: u64,
    /// Additive budget regrowth steps taken by the credit controller.
    pub credit_regrows: u64,
    /// Times a pull had to wait in the grant queue because the shared
    /// credit budget was exhausted.
    pub credit_stalls: u64,
    /// Per-node, per-queue RX-ring high watermarks (the credit
    /// controller's input signal), filled in by
    /// [`Cluster::stats_snapshot`] when the run used multiple RX
    /// queues or credits — empty otherwise.
    pub ring_high_watermarks: Vec<Vec<u64>>,
    /// Aggregated per-endpoint protocol counters (the `omx_counters`
    /// equivalent), summed over every endpoint of the cluster by
    /// [`Cluster::stats_snapshot`]; zero-valued on the live `stats`
    /// field, which only tracks the cluster-global events above.
    pub counters: crate::counters::Counters,
}

impl Serialize for Stats {
    fn to_value(&self) -> serde::Value {
        let mut o: Vec<(String, serde::Value)> = Vec::new();
        // The first 17 fields and the trailing `counters` reproduce
        // the old derive's output exactly (declaration order,
        // unconditional); everything between is emitted only when
        // nonzero/non-empty so pre-existing goldens stay byte-stable.
        let mut put = |name: &str, v: serde::Value| o.push((name.to_string(), v));
        put("frames_sent", self.frames_sent.to_value());
        put("frames_lost", self.frames_lost.to_value());
        put("frames_ring_dropped", self.frames_ring_dropped.to_value());
        put(
            "frames_corrupt_dropped",
            self.frames_corrupt_dropped.to_value(),
        );
        put("frames_duplicated", self.frames_duplicated.to_value());
        put("frames_reordered", self.frames_reordered.to_value());
        put("retransmissions", self.retransmissions.to_value());
        put("pull_retransmissions", self.pull_retransmissions.to_value());
        put("acks_sent", self.acks_sent.to_value());
        put("duplicates_dropped", self.duplicates_dropped.to_value());
        put("messages_delivered", self.messages_delivered.to_value());
        put("bytes_delivered", self.bytes_delivered.to_value());
        put("sends_failed", self.sends_failed.to_value());
        put("ioat_fallback_copies", self.ioat_fallback_copies.to_value());
        put("ioat_quarantines", self.ioat_quarantines.to_value());
        put("ioat_reprobes", self.ioat_reprobes.to_value());
        put("backoff_escalations", self.backoff_escalations.to_value());
        if self.frames_ring_dropped_injected > 0 {
            put(
                "frames_ring_dropped_injected",
                self.frames_ring_dropped_injected.to_value(),
            );
        }
        if self.credit_nacks > 0 {
            put("credit_nacks", self.credit_nacks.to_value());
        }
        if self.credit_shrinks > 0 {
            put("credit_shrinks", self.credit_shrinks.to_value());
        }
        if self.credit_regrows > 0 {
            put("credit_regrows", self.credit_regrows.to_value());
        }
        if self.credit_stalls > 0 {
            put("credit_stalls", self.credit_stalls.to_value());
        }
        if !self.ring_high_watermarks.is_empty() {
            put("ring_high_watermarks", self.ring_high_watermarks.to_value());
        }
        put("counters", self.counters.to_value());
        serde::Value::Object(o)
    }
}

/// The simulation world.
pub struct Cluster {
    /// Construction parameters.
    pub p: ClusterParams,
    /// Hosts.
    pub nodes: Vec<Node>,
    /// Unidirectional links keyed by (src, dst).
    pub links: BTreeMap<(u32, u32), Link>,
    /// Applications (taken out while their callback runs).
    pub apps: Vec<Option<Box<dyn App>>>,
    /// Counters.
    pub stats: Stats,
    /// Shared metrics registry (disabled when `cfg.metrics` is off).
    /// Every link, NIC, BH queue and I/OAT engine reports into it;
    /// recording never charges simulated time.
    pub metrics: Metrics,
    /// Root of every derived fault/jitter stream, seeded from
    /// `cfg.seed`. Streams derive from it by a pure per-link or
    /// per-node tag, so fault patterns are identical under any
    /// partitioning and any worker count.
    fault_root: SplitMix64,
    /// Whether any directed link can inject wire hazards; `false`
    /// short-circuits the per-frame fault lookup to a constant (a
    /// clean run draws zero fault randomness).
    link_faults_possible: bool,
    /// Per-link fault channels, created on the link's first frame.
    /// `None` caches "known inert" so the plan lookup runs once per
    /// link; fault-free links never touch the RNG.
    link_faults: BTreeMap<(u32, u32), Option<LinkFaultState>>,
    /// Partition bookkeeping: which nodes this world owns and the
    /// outbox of frames bound for other shards. The whole-world
    /// cluster (`parts == 1`) owns everything and never uses the
    /// outbox.
    pub(crate) part: crate::partition::PartitionCtx,
}

impl ClusterParams {
    /// Default testbed parameters with a specific stack configuration.
    pub fn with_cfg(cfg: OmxConfig) -> Self {
        ClusterParams {
            cfg,
            ..ClusterParams::default()
        }
    }
}

impl Cluster {
    /// Build an idle cluster that owns every node (the classic
    /// single-engine world; `p.partitions` is ignored here — the
    /// partitioned executor builds its shards with
    /// [`Cluster::new_shard`]). Links are created lazily on first use.
    pub fn new(p: ClusterParams) -> Self {
        Cluster::build_world(p, 0, 1)
    }

    /// Build shard `my` of a `p.partitions`-way partitioned cluster:
    /// the same world, but only nodes with `node % partitions == my`
    /// are owned — frames for other nodes leave through the partition
    /// outbox instead of being scheduled locally.
    pub fn new_shard(p: ClusterParams, my: usize) -> Self {
        let parts = p.partitions.clamp(1, p.nodes.max(1));
        assert!(my < parts, "shard {my} of {parts} partitions");
        Cluster::build_world(p, my, parts)
    }

    fn build_world(p: ClusterParams, my: usize, parts: usize) -> Self {
        let metrics = if !p.cfg.metrics {
            Metrics::disabled()
        } else if p.cfg.trace_capacity > 0 {
            Metrics::with_trace(p.cfg.trace_capacity)
        } else {
            Metrics::new()
        };
        // The one place the user-supplied seed enters the simulation;
        // every other stream derives from this root by a pure tag.
        // omx-lint: allow(ad-hoc-rng) root seeding point for the run; every derived stream is pinned by the bit-determinism suite [test: tests/determinism.rs::pingpong_is_bit_deterministic_under_every_plan]
        let fault_root = SplitMix64::new(p.cfg.seed);
        let nodes = (0..p.nodes as u32)
            .map(|i| {
                let node_faults = p.cfg.fault_plan.node_params(i);
                let mut ioat = IoatEngine::new(&p.hw);
                ioat.attach_metrics(metrics.clone(), i);
                let mut nic_params = p.nic;
                if let Some(nf) = node_faults {
                    for f in &nf.ioat_faults {
                        ioat.inject_channel_stall(f.channel, f.at, f.duration);
                    }
                    if let Some(ring) = nf.rx_ring_size {
                        nic_params.rx_ring_size = ring;
                    }
                }
                let mut nic = Nic::new(nic_params);
                nic.attach_metrics(metrics.clone(), i);
                nic.bind_queue_cores(&omx_ethernet::spread_queue_cores(&nic_params, &p.topology));
                let bh = (0..p.topology.num_cores())
                    .map(|_| {
                        let mut q = BottomHalfQueue::new();
                        q.attach_metrics(metrics.clone(), i);
                        q
                    })
                    .collect();
                Node {
                    id: NodeId(i),
                    cpus: CpuSet::new(p.topology),
                    cache: CacheModel::new(),
                    ioat,
                    nic,
                    bh,
                    driver: Driver::new(),
                    endpoints: Vec::new(),
                    mx: MxNodeState::default(),
                    predictor: crate::predict::CopyPredictor::new(),
                    pack_arena: bytes::BytesMut::new(),
                    backoff_rng: fault_root.derive(0x8000_0000_0000_0000 | u64::from(i)),
                }
            })
            .collect();
        // Whether any link can ever inject: the declarative plan or
        // the uniform loss_one_in knob (folded into the per-link
        // channels as a degenerate Gilbert–Elliott state). The
        // channels themselves are created lazily on a link's first
        // frame — see `link_fault_next`.
        let link_faults_possible =
            p.cfg.fault_plan.has_link_faults() || matches!(p.cfg.loss_one_in, Some(n) if n > 0);
        let mut nodes: Vec<Node> = nodes;
        if p.cfg.pull_credits {
            // Seed every node's shared pull-block budget; with credits
            // off the state stays zeroed and untouched.
            for n in &mut nodes {
                n.driver.credits.budget = p.cfg.credit_budget_init.max(1);
            }
        }
        Cluster {
            p,
            nodes,
            links: BTreeMap::new(),
            apps: Vec::new(),
            stats: Stats::default(),
            metrics,
            fault_root,
            link_faults_possible,
            link_faults: BTreeMap::new(),
            part: crate::partition::PartitionCtx::new(my, parts),
        }
    }

    /// Whether this world owns `node` (always true for a whole-world
    /// cluster; a shard owns `node % partitions == my`).
    pub fn owns(&self, node: NodeId) -> bool {
        self.part.owns(node)
    }

    /// Add an endpoint on `node`, pinned to `core`, driven by `app`.
    /// On a shard, only owned nodes may host endpoints.
    pub fn add_endpoint(&mut self, node: NodeId, core: CoreId, app: Box<dyn App>) -> EpAddr {
        debug_assert!(self.owns(node), "endpoint on unowned node {node:?}");
        let app_id = self.apps.len();
        self.apps.push(Some(app));
        let n = &mut self.nodes[node.0 as usize];
        let ep_idx = EpIdx(n.endpoints.len() as u8);
        let addr = EpAddr { node, ep: ep_idx };
        let slot_bytes = self.p.cfg.frag_size.max(self.p.cfg.small_max) as usize;
        n.endpoints.push(Endpoint::new(
            addr,
            core,
            app_id,
            self.p.cfg.recvq_slots,
            slot_bytes,
            self.p.cfg.regcache,
        ));
        addr
    }

    /// Schedule every app's `on_start` at time zero.
    pub fn start(&mut self, sim: &mut Sim<Cluster>) {
        let eps: Vec<EpAddr> = self
            .nodes
            .iter()
            .flat_map(|n| n.endpoints.iter().map(|e| e.addr))
            .collect();
        for addr in eps {
            sim.schedule_at(Ps::ZERO, move |c: &mut Cluster, s| {
                let app_id = c.ep(addr).app;
                let mut app = c.apps[app_id].take().expect("app in place");
                {
                    let mut ctx = AppCtx {
                        cluster: c,
                        sim: s,
                        me: addr,
                    };
                    app.on_start(&mut ctx);
                }
                c.apps[app_id] = Some(app);
            });
        }
    }

    /// Whether every app reports done.
    pub fn all_apps_done(&self) -> bool {
        self.apps
            .iter()
            .all(|a| a.as_ref().map(|a| a.is_done()).unwrap_or(false))
    }

    /// The run's statistics with every endpoint's protocol counters
    /// aggregated into [`Stats::counters`] and published to the
    /// metrics registry (per node, as `counters.<field>` gauges).
    ///
    /// Harnesses call this instead of cloning `stats` so results and
    /// serialized reports always carry the full counter set.
    pub fn stats_snapshot(&self) -> Stats {
        let mut stats = self.stats.clone();
        for (scope, n) in self.nodes.iter().enumerate() {
            let mut node_total = crate::counters::Counters::default();
            for e in &n.endpoints {
                node_total.merge(&e.counters);
            }
            node_total.publish(&self.metrics, scope as u32);
            stats.counters.merge(&node_total);
        }
        // Surface the per-queue ring high watermarks (the credit
        // controller's occupancy input) whenever the run exercised the
        // multi-queue path or the controller itself; kept empty
        // otherwise so single-queue, credits-off results serialize
        // exactly as before.
        if self.p.nic.num_queues > 1 || self.p.cfg.pull_credits {
            stats.ring_high_watermarks = self
                .nodes
                .iter()
                .map(|n| {
                    (0..n.nic.num_queues())
                        .map(|q| n.nic.ring_high_watermark(q) as u64)
                        .collect()
                })
                .collect();
        }
        stats
    }

    // ------------------------------------------------------------------
    // accessors
    // ------------------------------------------------------------------

    /// Shared access to a node.
    pub fn node(&self, id: NodeId) -> &Node {
        // omx-lint: allow(fast-path-panic) NodeIds are minted by Cluster::new from this very vec; an out-of-range id is a construction bug the whole suite would catch [test: tests/determinism.rs::pingpong_is_bit_deterministic_under_every_plan]
        &self.nodes[id.0 as usize]
    }

    /// Mutable access to a node.
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        // omx-lint: allow(fast-path-panic) NodeIds are minted by Cluster::new from this very vec; an out-of-range id is a construction bug the whole suite would catch [test: tests/determinism.rs::pingpong_is_bit_deterministic_under_every_plan]
        &mut self.nodes[id.0 as usize]
    }

    /// Shared access to an endpoint.
    pub fn ep(&self, a: EpAddr) -> &Endpoint {
        &self.nodes[a.node.0 as usize].endpoints[a.ep.0 as usize]
    }

    /// Mutable access to an endpoint.
    pub fn ep_mut(&mut self, a: EpAddr) -> &mut Endpoint {
        &mut self.nodes[a.node.0 as usize].endpoints[a.ep.0 as usize]
    }

    /// Allocate a request id for endpoint `me`: the endpoint's address
    /// in the high bits, a per-endpoint counter below. Ids are unique
    /// across the cluster yet depend only on the endpoint's own
    /// activity, so they are identical under any partitioning — and
    /// within one endpoint's request maps they sort in allocation
    /// order, exactly like the old global counter did.
    pub(crate) fn alloc_req(&mut self, me: EpAddr) -> ReqId {
        let ep = self.ep_mut(me);
        let r = ReqId((u64::from(me.node.0) << 40) | (u64::from(me.ep.0) << 32) | ep.next_req);
        ep.next_req += 1;
        r
    }

    /// One exponential-backoff step of a retransmission timeout:
    /// double it, add deterministic jitter (up to a quarter of the old
    /// value, drawn from the node's own backoff stream so concurrent
    /// retransmit timers desynchronize without coupling nodes — or
    /// shards — through a shared generator), cap at `cfg.rto_max`,
    /// and count the escalation.
    pub(crate) fn escalate_rto(&mut self, node: NodeId, rto: Ps) -> Ps {
        let jitter = Ps::ps(
            self.nodes[node.0 as usize]
                .backoff_rng
                .next_below(rto.as_ps() / 4 + 1),
        );
        let next = (rto * 2 + jitter).min(self.p.cfg.rto_max);
        self.stats.backoff_escalations += 1;
        self.metrics.count(node.0, "driver.backoff_escalations", 1);
        next
    }

    /// Probe an I/OAT channel's health on `node`, counting quarantine
    /// releases into the run stats. `true` = usable.
    pub(crate) fn ioat_channel_usable(&mut self, node: NodeId, channel: usize, now: Ps) -> bool {
        match self.nodes[node.0 as usize].ioat.probe_channel(channel, now) {
            ChannelProbe::Healthy => true,
            ChannelProbe::Reprobed => {
                self.stats.ioat_reprobes += 1;
                true
            }
            ChannelProbe::Quarantined => false,
        }
    }

    /// Round-robin pick skipping quarantined channels. When every
    /// channel is quarantined the plain round-robin pick is returned —
    /// callers still gate each submit on [`Self::ioat_channel_usable`],
    /// so an all-dead engine degrades to pure memcpy.
    pub(crate) fn pick_healthy_channel(&mut self, node: NodeId, now: Ps) -> usize {
        let n = self.nodes[node.0 as usize].ioat.num_channels();
        for _ in 0..n {
            let ch = self.nodes[node.0 as usize].ioat.pick_channel_rr();
            if self.ioat_channel_usable(node, ch, now) {
                return ch;
            }
        }
        self.nodes[node.0 as usize].ioat.pick_channel_rr()
    }

    /// Blacklist `channel` on `node` until `until`, counting the event
    /// if the channel was not already quarantined.
    pub(crate) fn quarantine_channel(&mut self, node: NodeId, channel: usize, until: Ps) {
        if self.nodes[node.0 as usize].ioat.quarantine(channel, until) {
            self.stats.ioat_quarantines += 1;
        }
    }

    /// Count one offload-to-memcpy fallback of `bytes` bytes.
    pub(crate) fn record_ioat_fallback(&mut self, node: NodeId, at: Ps, bytes: u64) {
        self.stats.ioat_fallback_copies += 1;
        self.metrics.count(node.0, "ioat.fallback_copies", 1);
        self.metrics.count(node.0, "ioat.fallback_bytes", bytes);
        self.metrics
            .trace(at, node.0, "ioat", "memcpy_fallback", bytes, 0);
    }

    /// Charge `work` on a node core; returns `(start, finish)`.
    pub(crate) fn run_core(
        &mut self,
        node: NodeId,
        core: CoreId,
        now: Ps,
        work: Ps,
        cat: &'static str,
    ) -> (Ps, Ps) {
        self.nodes[node.0 as usize]
            .cpus
            .run_on(core, now, work, cat)
    }

    // ------------------------------------------------------------------
    // application entry points (called from AppCtx)
    // ------------------------------------------------------------------

    /// Post a non-blocking send.
    pub fn post_isend(
        &mut self,
        sim: &mut Sim<Cluster>,
        me: EpAddr,
        dest: EpAddr,
        match_info: u64,
        data: Vec<u8>,
        tag: Option<u64>,
    ) -> ReqId {
        self.post_isend_bytes(sim, me, dest, match_info, bytes::Bytes::from(data), tag)
    }

    /// Post a non-blocking send of an already-shared payload.
    ///
    /// Same as [`Self::post_isend`] but the caller keeps ownership of
    /// the master [`bytes::Bytes`] handle: the stack only clones
    /// reference-counted views of it, so an app that sends the same
    /// buffer repeatedly (a benchmark loop, a broadcast) never touches
    /// the allocator per message. `Bytes::from(Vec)` inside
    /// `post_isend` defers its control-block allocation to the first
    /// clone — handing a pre-shared `Bytes` here avoids exactly that
    /// per-message promotion.
    pub fn post_isend_bytes(
        &mut self,
        sim: &mut Sim<Cluster>,
        me: EpAddr,
        dest: EpAddr,
        match_info: u64,
        data: bytes::Bytes,
        tag: Option<u64>,
    ) -> ReqId {
        let req = self.alloc_req(me);
        let len = data.len() as u64;
        let class = self.p.cfg.class_of(len);
        let core = self.ep(me).core;
        // The app produced (wrote) the data: its buffer becomes warm in
        // the app core's subchip cache and coherence invalidates stale
        // copies elsewhere (drives the Fig 10 placement effects).
        if let Some(t) = tag {
            let subchip = self.p.topology.subchip_of(core);
            let hw = self.p.hw.clone();
            self.node_mut(me.node).cache.touch_exclusive(
                &hw,
                subchip,
                omx_hw::cache::RegionKey(t),
                len,
            );
        }
        let msg_seq = self.ep_mut(me).next_seq(dest);
        let base_rto = self.p.cfg.retransmit_timeout;
        self.ep_mut(me).sends.insert(
            req,
            SendState {
                req,
                dest,
                match_info,
                msg_seq,
                class,
                data,
                tag,
                acked: false,
                completed: false,
                sender_handle: None,
                region: None,
                retx_attempts: 0,
                last_activity: sim.now(),
                rto: base_rto,
            },
        );
        match self.p.cfg.stack {
            StackKind::OpenMx => {
                // Library post + command syscall into the driver.
                let (_, fin) = self.run_core(
                    me.node,
                    core,
                    sim.now(),
                    self.p.cfg.lib_post_cost,
                    category::USER_LIB,
                );
                let syscall = self.p.hw.syscall_cost + self.p.cfg.driver_cmd_cost;
                let (_, fin) = self.run_core(me.node, core, fin, syscall, category::DRIVER);
                if dest.node == me.node {
                    sim.schedule_at(fin, move |c: &mut Cluster, s| c.shm_send(s, me, req));
                } else {
                    sim.schedule_at(fin, move |c: &mut Cluster, s| c.net_send(s, me, req));
                }
            }
            StackKind::Mxoe => {
                // OS-bypass: the library rings the NIC doorbell, no
                // syscall.
                let (_, fin) = self.run_core(
                    me.node,
                    core,
                    sim.now(),
                    self.p.mx.lib_post_cost,
                    category::USER_LIB,
                );
                sim.schedule_at(fin, move |c: &mut Cluster, s| c.mx_send(s, me, req));
            }
        }
        req
    }

    /// Post a non-blocking receive into a contiguous buffer.
    pub fn post_irecv(
        &mut self,
        sim: &mut Sim<Cluster>,
        me: EpAddr,
        match_info: u64,
        mask: u64,
        max_len: u64,
        tag: Option<u64>,
    ) -> ReqId {
        self.post_irecv_vectored(sim, me, match_info, mask, max_len, None, tag)
    }

    /// Post a non-blocking receive that reuses a caller-donated buffer.
    ///
    /// The completion for this request hands the same `Vec` back as
    /// `Completion::Recv { data, .. }`, so an app that re-donates each
    /// delivered buffer to its next post recycles one allocation for
    /// the whole conversation instead of paying `vec![0; max_len]` per
    /// receive.
    #[allow(clippy::too_many_arguments)]
    pub fn post_irecv_into(
        &mut self,
        sim: &mut Sim<Cluster>,
        me: EpAddr,
        match_info: u64,
        mask: u64,
        max_len: u64,
        mut buf: Vec<u8>,
        tag: Option<u64>,
    ) -> ReqId {
        // Zero-fill to the posted length: a short delivery must not
        // leak a previous message's bytes. `clear` + `resize` rewrites
        // in place — no reallocation while the donated capacity covers
        // `max_len`.
        buf.clear();
        buf.resize(max_len as usize, 0);
        self.post_irecv_buf(sim, me, match_info, mask, max_len, None, buf, tag)
    }

    /// Post a non-blocking receive into a scattered buffer of
    /// `seg_size`-byte segments (None = contiguous).
    #[allow(clippy::too_many_arguments)]
    pub fn post_irecv_vectored(
        &mut self,
        sim: &mut Sim<Cluster>,
        me: EpAddr,
        match_info: u64,
        mask: u64,
        max_len: u64,
        seg_size: Option<u64>,
        tag: Option<u64>,
    ) -> ReqId {
        let buf = vec![0u8; max_len as usize];
        self.post_irecv_buf(sim, me, match_info, mask, max_len, seg_size, buf, tag)
    }

    /// Common tail of the `post_irecv*` family: `buf` is already
    /// `max_len` zeroed bytes, however the caller produced it.
    #[allow(clippy::too_many_arguments)]
    fn post_irecv_buf(
        &mut self,
        sim: &mut Sim<Cluster>,
        me: EpAddr,
        match_info: u64,
        mask: u64,
        max_len: u64,
        seg_size: Option<u64>,
        buf: Vec<u8>,
        tag: Option<u64>,
    ) -> ReqId {
        assert!(seg_size.is_none_or(|s| s > 0), "segments must be nonzero");
        debug_assert_eq!(buf.len(), max_len as usize);
        let req = self.alloc_req(me);
        let core = self.ep(me).core;
        let (_, fin) = self.run_core(
            me.node,
            core,
            sim.now(),
            self.p.cfg.lib_post_cost,
            category::USER_LIB,
        );
        self.ep_mut(me).recvs.insert(
            req,
            RecvState {
                req,
                match_info,
                mask,
                buf,
                received: 0,
                total: 0,
                matched_info: None,
                tag,
                region: None,
                frag_seen: Vec::new(),
                seg_size,
            },
        );
        // Matching against already-arrived messages happens in library
        // context right after the post.
        sim.schedule_at(fin, move |c: &mut Cluster, s| {
            c.lib_match_new_recv(s, me, req);
        });
        req
    }

    /// Charge app compute time on the endpoint's core.
    pub fn charge_app_compute(&mut self, sim: &mut Sim<Cluster>, me: EpAddr, dur: Ps) {
        let core = self.ep(me).core;
        self.run_core(me.node, core, sim.now(), dur, category::APP);
    }

    // ------------------------------------------------------------------
    // frames and links
    // ------------------------------------------------------------------

    /// Make sure the link `src → dst` exists (links are created on
    /// first use: a large cluster only pays for the pairs that talk,
    /// and a shard only materializes links its own nodes transmit on).
    /// The diagonal `src == dst` link models the NIC's internal DMA
    /// loopback, which is how native MXoE moves intra-node traffic.
    pub(crate) fn ensure_link(&mut self, src: NodeId, dst: NodeId) {
        let params = self.p.link;
        let metrics = &self.metrics;
        self.links.entry((src.0, dst.0)).or_insert_with(|| {
            let mut link = Link::new(params);
            // Wire busy time is attributed to the *sending* node.
            link.attach_metrics(metrics.clone(), src.0);
            link
        });
    }

    /// Per-frame fault draw for the link `src → dst`. The channel is
    /// created on the link's first frame from parameters and a RNG
    /// stream derived purely from the run seed and the link identity,
    /// so the draw sequence each link sees is identical under any
    /// partitioning. Clean runs short-circuit to `CLEAN` without
    /// touching the map.
    fn link_fault_next(
        &mut self,
        src: NodeId,
        dst: NodeId,
    ) -> omx_ethernet::fault::FrameDisposition {
        if !self.link_faults_possible {
            return omx_ethernet::fault::FrameDisposition::CLEAN;
        }
        let p = &self.p;
        let root = &self.fault_root;
        let entry = self.link_faults.entry((src.0, dst.0)).or_insert_with(|| {
            let lp = p
                .cfg
                .fault_plan
                .link_params(src.0, dst.0)
                .combined_with_uniform_loss(p.cfg.loss_one_in);
            lp.is_active().then(|| {
                let tag = 0x4000_0000_0000_0000u64 | (u64::from(src.0) << 24) | u64::from(dst.0);
                LinkFaultState::new(lp, root.derive(tag))
            })
        });
        match entry {
            Some(faults) => faults.next_frame(),
            None => omx_ethernet::fault::FrameDisposition::CLEAN,
        }
    }

    /// Deliver `frame` to `dst`'s NIC at `arrival` — the partition-safe
    /// seam every wire delivery goes through. A whole-world cluster
    /// schedules the local `on_frame` exactly like the classic engine.
    /// A partitioned shard routes **every** inter-node frame through
    /// the outbox — co-located destinations included — and the
    /// executor injects the round's frames in one canonical order
    /// after the window that emitted them. Uniform routing matters for
    /// byte-identity: if co-located frames were scheduled directly at
    /// emission while cross-shard ones were injected at the window
    /// boundary, their same-instant interleaving would depend on which
    /// nodes share a shard. Scheduling another shard's arrival
    /// directly on this engine would race the window protocol — this
    /// method is why `send_payload` never touches `Sim::schedule_at`
    /// for foreign nodes.
    pub(crate) fn deliver_frame(
        &mut self,
        sim: &mut Sim<Cluster>,
        dst: NodeId,
        arrival: Ps,
        frame: EthFrame,
    ) {
        if self.part.partitioned() {
            self.part.push_remote(sim.now(), arrival, frame);
        } else {
            sim.schedule_at(arrival, move |c: &mut Cluster, s| {
                c.on_frame(s, dst, frame);
            });
        }
    }

    /// Hand `pkt` to the NIC of `src` for `dst` at time `at` (the
    /// driver finished building it then). Applies loss injection.
    pub(crate) fn send_packet(
        &mut self,
        sim: &mut Sim<Cluster>,
        src: NodeId,
        dst: NodeId,
        pkt: &Packet,
        at: Ps,
    ) {
        let payload = pkt.pack_into(&mut self.node_mut(src).pack_arena);
        self.send_payload(sim, src, dst, payload, at, Ps::ZERO);
    }

    /// Like [`Self::send_packet`] but with extra per-frame transmitter
    /// occupancy (the MXoE NIC firmware overhead).
    pub(crate) fn send_payload(
        &mut self,
        sim: &mut Sim<Cluster>,
        src: NodeId,
        dst: NodeId,
        payload: bytes::Bytes,
        at: Ps,
        extra: Ps,
    ) {
        sim.schedule_at(at, move |c: &mut Cluster, s| {
            c.stats.frames_sent += 1;
            // Fault injection targets the Open-MX reliability machinery;
            // the MXoE baseline has none (its reliability lives in the
            // NIC firmware, out of scope), so its frames are exempt.
            let disp = if c.p.cfg.stack == StackKind::OpenMx {
                c.link_fault_next(src, dst)
            } else {
                omx_ethernet::fault::FrameDisposition::CLEAN
            };
            if disp.dropped {
                c.stats.frames_lost += 1;
                c.metrics.count(src.0, "fault.frames_dropped", 1);
                return;
            }
            let mut frame = EthFrame::new(src.0, dst.0, payload);
            if disp.corrupted {
                frame.fcs_corrupt = true;
                c.metrics.count(src.0, "fault.frames_corrupted", 1);
            }
            c.ensure_link(src, dst);
            // Direct field access keeps the link borrow disjoint from
            // the stats/metrics fields updated alongside it.
            let link = c.links.get_mut(&(src.0, dst.0)).expect("link exists");
            let mut arrival = link.transmit_with_overhead(s.now(), &frame, extra);
            if disp.reorder_extra > 0 {
                // Hold the frame back by k serialization times: frames
                // sent right behind it overtake it on arrival.
                arrival += link.serialization_time(&frame) * disp.reorder_extra as u64;
                c.stats.frames_reordered += 1;
                c.metrics.count(src.0, "fault.frames_reordered", 1);
            }
            let dup = if disp.duplicated {
                // The duplicate occupies real wire time like any frame.
                let dup = frame.clone();
                let dup_arrival = link.transmit_with_overhead(s.now(), &dup, extra);
                c.stats.frames_duplicated += 1;
                c.metrics.count(src.0, "fault.frames_duplicated", 1);
                Some((dup_arrival, dup))
            } else {
                None
            };
            // Delivery order (duplicate first, then the original)
            // matches the old direct scheduling, so same-instant
            // tie-breaks are unchanged.
            if let Some((dup_arrival, dup)) = dup {
                c.deliver_frame(s, dst, dup_arrival, dup);
            }
            c.deliver_frame(s, dst, arrival, frame);
        });
    }

    /// A frame finished arriving at `node`'s NIC.
    pub(crate) fn on_frame(&mut self, sim: &mut Sim<Cluster>, node: NodeId, frame: EthFrame) {
        match self.p.cfg.stack {
            StackKind::OpenMx => self.omx_on_frame(sim, node, frame),
            StackKind::Mxoe => self.mx_on_frame(sim, node, frame),
        }
    }

    /// Open-MX receive: RSS steers the frame to a queue, the NIC rings
    /// the queue's skbuff into the bound core's bottom half, and this
    /// host side accounts the interrupt cost and schedules the
    /// (batched) BH run as the returned [`RxWake`] demands.
    fn omx_on_frame(&mut self, sim: &mut Sim<Cluster>, node: NodeId, frame: EthFrame) {
        let now = sim.now();
        let credits = self.p.cfg.pull_credits;
        // `Nic::deliver` consumes the frame, so anything the credit
        // controller might need after a drop is peeked first — and
        // only when the controller is on, keeping the default path
        // untouched.
        let peeked = if credits {
            Some((
                NodeId(frame.src),
                crate::proto::peek_large_frag(&frame.payload),
            ))
        } else {
            None
        };
        let n = self.node_mut(node);
        let queue = n.nic.rss_queue(&frame);
        let core = n.nic.queue_core(queue);
        let outcome = n.nic.deliver(now, queue, frame, &mut n.bh[core.0 as usize]);
        match outcome {
            RxOutcome::DroppedRingFull => {
                self.stats.frames_ring_dropped += 1;
                if self
                    .p
                    .cfg
                    .fault_plan
                    .node_params(node.0)
                    .is_some_and(|nf| nf.rx_ring_size.is_some())
                {
                    // The ring on this node was artificially shrunk by
                    // the fault plan: the drop is the injected hazard,
                    // not genuine receiver overload.
                    self.stats.frames_ring_dropped_injected += 1;
                }
                if let Some((src_node, peek)) = peeked {
                    self.credit_ring_shed(sim, node, src_node, peek, now);
                }
            }
            RxOutcome::DroppedCorrupt => {
                // Hardware FCS check discarded the frame before it
                // consumed a ring slot; retransmission recovers it.
                self.stats.frames_corrupt_dropped += 1;
            }
            RxOutcome::Queued { queue, wake } => {
                if credits {
                    self.credit_occupancy_check(node, queue, now);
                }
                match wake {
                    RxWake::Irq(core) => {
                        let irq = self.p.hw.irq_cpu_cost;
                        let (_, irq_fin) = self.run_core(node, core, now, irq, category::IRQ);
                        let at = irq_fin.max(now + self.p.hw.bh_dispatch_delay);
                        sim.schedule_at(at, move |c: &mut Cluster, s| c.run_bh(s, node, queue));
                    }
                    RxWake::IrqPending(core) => {
                        // Interrupt fires but a BH run is already promised:
                        // account the hard-IRQ cost only.
                        let irq = self.p.hw.irq_cpu_cost;
                        self.run_core(node, core, now, irq, category::IRQ);
                    }
                    RxWake::Pending => {
                        // Coalesced into the window with a run already
                        // pending: the promised run will drain this skbuff.
                    }
                    RxWake::TimerKick(_) => {
                        // Coalesced into the moderation window with NO
                        // run pending: the moderation timer must kick
                        // the BH or the skbuff sits unserviced until
                        // the link goes idle forever (the
                        // frame-then-silence bug).
                        let delay = self.p.hw.bh_dispatch_delay;
                        sim.schedule_at(now + delay, move |c: &mut Cluster, s| {
                            c.run_bh(s, node, queue)
                        });
                    }
                }
            }
        }
    }

    /// One bottom-half invocation for RX `queue` of `node` (on the
    /// core the queue is bound to): drain up to the NIC's NAPI budget
    /// of skbuffs through the protocol callback, one at a time (no
    /// per-run batch buffer). With `cfg.gro` on, consecutive skbuffs
    /// of the same message form a frame train and the tail fragments
    /// charge the cheaper GRO continuation cost.
    fn run_bh(&mut self, sim: &mut Sim<Cluster>, node: NodeId, queue: usize) {
        let core = self.node(node).nic.queue_core(queue);
        let budget = self.node_mut(node).nic.params().bh_budget;
        let gro = self.p.cfg.gro;
        let mut count = 0;
        let mut last_fin = sim.now();
        // GRO train state: the (flow, message) key of the previous
        // skbuff in this run. Trains never span runs.
        let mut train: Option<(u64, u64)> = None;
        self.node_mut(node).bh_mut(core).begin_run();
        while count < budget {
            let Some(skb) = self.node_mut(node).bh_mut(core).pop_next() else {
                break;
            };
            count += 1;
            let coalesced = if gro {
                let key = crate::proto::gro_train_key(skb.src, &skb.data);
                let same = key.is_some() && key == train;
                train = key;
                if same {
                    self.metrics.count(node.0, "bh.gro_coalesced", 1);
                }
                same
            } else {
                false
            };
            last_fin = self.handle_rx_skbuff(sim, node, core, skb, coalesced);
        }
        self.node_mut(node).nic.replenish(queue, count);
        let more = self.node_mut(node).bh_mut(core).finish_run();
        if more {
            sim.schedule_at(last_fin, move |c: &mut Cluster, s| c.run_bh(s, node, queue));
        }
    }

    // ------------------------------------------------------------------
    // event ring and app callbacks
    // ------------------------------------------------------------------

    /// Driver side: publish an event and make sure the library will
    /// poll it.
    pub(crate) fn push_event(&mut self, sim: &mut Sim<Cluster>, addr: EpAddr, ev: Event) {
        let ep = self.ep_mut(addr);
        ep.counters.events += 1;
        ep.events.push(ev);
        self.schedule_lib_poll(sim, addr);
    }

    /// Schedule a library poll for `addr` unless one is pending.
    pub(crate) fn schedule_lib_poll(&mut self, sim: &mut Sim<Cluster>, addr: EpAddr) {
        let ep = self.ep_mut(addr);
        if ep.poll_scheduled || ep.events.is_empty() {
            return;
        }
        ep.poll_scheduled = true;
        sim.schedule_at(sim.now(), move |c: &mut Cluster, s| {
            c.ep_mut(addr).poll_scheduled = false;
            c.lib_poll(s, addr);
        });
    }

    /// Run one application callback with the take/restore pattern.
    pub(crate) fn call_app(&mut self, sim: &mut Sim<Cluster>, addr: EpAddr, comp: Completion) {
        let app_id = self.ep(addr).app;
        let mut app = self.apps[app_id].take().expect("app not re-entered");
        {
            let mut ctx = AppCtx {
                cluster: self,
                sim,
                me: addr,
            };
            app.on_completion(&mut ctx, comp);
        }
        self.apps[app_id] = Some(app);
    }

    /// Deliver a receive completion to the app (scheduled, never
    /// synchronous from a post).
    pub(crate) fn finish_recv(&mut self, sim: &mut Sim<Cluster>, addr: EpAddr, req: ReqId, at: Ps) {
        sim.schedule_at(at, move |c: &mut Cluster, s| {
            let ep = c.ep_mut(addr);
            let Some(mut st) = ep.recvs.remove(&req) else {
                return; // duplicate completion suppressed
            };
            // Trim the buffer to the delivered length.
            let total = st.total.min(st.buf.len() as u64);
            st.buf.truncate(total as usize);
            // The app will now read the buffer: it becomes resident in
            // the app core's subchip cache.
            let core = ep.core;
            if let Some(t) = st.tag {
                let subchip = c.p.topology.subchip_of(core);
                let hw = c.p.hw.clone();
                c.node_mut(addr.node)
                    .cache
                    .touch(&hw, subchip, omx_hw::cache::RegionKey(t), total);
            }
            c.stats.messages_delivered += 1;
            c.stats.bytes_delivered += total;
            c.ep_mut(addr).counters.rx_bytes += total;
            let comp = Completion::Recv {
                req,
                match_info: st.matched_info.unwrap_or(st.match_info),
                data: st.buf,
            };
            c.call_app(s, addr, comp);
        });
    }

    /// Deliver a send completion to the app.
    pub(crate) fn finish_send(&mut self, sim: &mut Sim<Cluster>, addr: EpAddr, req: ReqId, at: Ps) {
        sim.schedule_at(at, move |c: &mut Cluster, s| {
            let ep = c.ep_mut(addr);
            let Some(st) = ep.sends.get_mut(&req) else {
                return;
            };
            if st.completed {
                return;
            }
            st.completed = true;
            // Retain the entry if an ack is still owed (retransmission
            // may still need the data); eager sends completed on ack
            // can drop immediately.
            let drop_now = st.acked || matches!(st.class, MsgClass::Large);
            if drop_now {
                ep.sends.remove(&req);
            }
            c.call_app(s, addr, Completion::Send { req, failed: false });
        });
    }

    /// Total CPU busy time of one category on a node.
    pub fn node_busy_in(&self, node: NodeId, cat: &str) -> Ps {
        self.node(node).cpus.merged_meter().total(cat)
    }
}

/// Helper bundling cluster + engine construction. The engine's
/// timing-wheel depth follows `cfg.wheel_levels` (order-identical
/// either way — see `crates/sim/src/wheel.rs`).
pub fn build(p: ClusterParams) -> (Cluster, Sim<Cluster>) {
    let levels = p.cfg.wheel_levels;
    (Cluster::new(p), Sim::with_wheel_levels(levels))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_builds_links_on_demand() {
        let mut c = Cluster::new(ClusterParams::default());
        assert_eq!(c.nodes.len(), 2);
        assert!(c.links.is_empty(), "links are lazy: none before traffic");
        c.ensure_link(NodeId(0), NodeId(1));
        c.ensure_link(NodeId(1), NodeId(0));
        assert!(c.links.contains_key(&(0, 1)));
        assert!(c.links.contains_key(&(1, 0)));
        c.ensure_link(NodeId(0), NodeId(0));
        assert!(
            c.links.contains_key(&(0, 0)),
            "NIC loopback for MXoE local traffic"
        );
    }

    struct Nop;
    impl App for Nop {
        fn on_start(&mut self, _ctx: &mut AppCtx<'_>) {}
        fn on_completion(&mut self, _ctx: &mut AppCtx<'_>, _c: Completion) {}
        fn is_done(&self) -> bool {
            true
        }
    }

    #[test]
    fn endpoints_get_distinct_addresses() {
        let mut c = Cluster::new(ClusterParams::default());
        let a = c.add_endpoint(NodeId(0), CoreId(2), Box::new(Nop));
        let b = c.add_endpoint(NodeId(0), CoreId(3), Box::new(Nop));
        let d = c.add_endpoint(NodeId(1), CoreId(2), Box::new(Nop));
        assert_ne!(a, b);
        assert_eq!(a.node, b.node);
        assert_eq!(d.node, NodeId(1));
        assert_eq!(c.ep(a).core, CoreId(2));
        assert!(c.all_apps_done());
    }

    /// Satellite-1 regression: a frame that lands inside the IRQ
    /// moderation window while NO BH run is pending must still be
    /// serviced. The NIC reports that state as [`RxWake::TimerKick`]
    /// and the host arms the deferred moderation-timer kick; dropping
    /// it would strand the skbuff forever if the link then goes idle.
    #[test]
    fn moderated_frame_before_silence_is_still_delivered() {
        use crate::proto::Packet;
        use bytes::Bytes;
        let (mut c, mut sim) = build(ClusterParams::default());
        let rx = c.add_endpoint(NodeId(0), CoreId(2), Box::new(Nop));
        c.add_endpoint(NodeId(1), CoreId(2), Box::new(Nop));
        let pkt = |seq: u32| Packet::Tiny {
            src_ep: 0,
            dst_ep: 0,
            match_info: 7,
            msg_seq: seq,
            data: Bytes::from_static(b"ping"),
        };
        // First frame: hard IRQ + BH run, which drains and goes idle.
        // Second frame 15 us later sits inside the default 25 us
        // moderation window — no interrupt — and only the timer kick
        // can deliver it, because nothing else ever arrives.
        c.send_packet(&mut sim, NodeId(1), NodeId(0), &pkt(1), Ps::ZERO);
        c.send_packet(&mut sim, NodeId(1), NodeId(0), &pkt(2), Ps::us(15));
        sim.run(&mut c);
        let n = c.node(NodeId(0));
        assert_eq!(n.nic.frames_received(), 2);
        assert_eq!(n.nic.pending(), 0, "ring slots replenished");
        for bh in &n.bh {
            assert_eq!(bh.backlog(), 0, "skbuff stranded in a BH queue");
            assert!(!bh.is_scheduled(), "BH left scheduled with no run");
        }
        assert_eq!(c.metrics.counter(0, "nic.irqs"), 1);
        assert_eq!(c.metrics.counter(0, "nic.irqs_coalesced"), 1);
        assert_eq!(c.ep(rx).counters.rx_tiny, 2, "both frames delivered");
    }

    #[test]
    fn start_invokes_apps() {
        struct Starter {
            started: bool,
        }
        impl App for Starter {
            fn on_start(&mut self, _ctx: &mut AppCtx<'_>) {
                self.started = true;
            }
            fn on_completion(&mut self, _ctx: &mut AppCtx<'_>, _c: Completion) {}
            fn is_done(&self) -> bool {
                self.started
            }
        }
        let (mut c, mut sim) = build(ClusterParams::default());
        c.add_endpoint(NodeId(0), CoreId(2), Box::new(Starter { started: false }));
        c.start(&mut sim);
        sim.run(&mut c);
        assert!(c.all_apps_done());
    }
}
