//! The Open-MX wire protocol.
//!
//! Every frame payload starts with a one-byte packet kind, the source
//! and destination endpoint indices, then kind-specific fields in
//! little-endian order, then (for data-bearing packets) the raw data
//! bytes. Real bytes travel end to end, so any mis-framing corrupts
//! payloads and the integrity tests catch it.
//!
//! The message types mirror the real stack (§II, §III):
//!
//! * `Tiny`/`Small` — eager single-frame messages,
//! * `MediumFrag` — eager multi-fragment messages reassembled through
//!   the per-endpoint ring,
//! * `RndvReq` — the rendezvous announcement for large messages,
//! * `PullReq` — receiver-driven request for one block of fragments
//!   ("two pipelined blocks of 8 fragments are outstanding"),
//! * `LargeFrag` — one pulled fragment, deposited (copied) into the
//!   pinned destination region,
//! * `Notify` — receiver→sender completion of a large transfer,
//! * `Ack` — eager-message acknowledgment (drives retransmission).

use bytes::{Bytes, BytesMut};

/// One parsed Open-MX packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Packet {
    /// Eager message whose payload rides inside the receive event.
    Tiny {
        /// Sending endpoint index on the source host.
        src_ep: u8,
        /// Destination endpoint index on the receiving host.
        dst_ep: u8,
        /// 64-bit MX match information.
        match_info: u64,
        /// Per-partner message sequence number.
        msg_seq: u32,
        /// Payload (≤ 32 bytes).
        data: Bytes,
    },
    /// Eager single-fragment message copied through one ring slot.
    Small {
        /// Sending endpoint index.
        src_ep: u8,
        /// Destination endpoint index.
        dst_ep: u8,
        /// Match information.
        match_info: u64,
        /// Message sequence number.
        msg_seq: u32,
        /// Payload (≤ 128 bytes).
        data: Bytes,
    },
    /// One fragment of an eager medium message.
    MediumFrag {
        /// Sending endpoint index.
        src_ep: u8,
        /// Destination endpoint index.
        dst_ep: u8,
        /// Match information (repeated on every fragment so matching
        /// can happen on the first to arrive).
        match_info: u64,
        /// Message sequence number.
        msg_seq: u32,
        /// Total message length.
        msg_len: u32,
        /// This fragment's index.
        frag_idx: u16,
        /// Total fragment count.
        frag_count: u16,
        /// Byte offset of this fragment in the message.
        offset: u32,
        /// Fragment payload.
        data: Bytes,
    },
    /// Rendezvous request announcing a large message.
    RndvReq {
        /// Sending endpoint index.
        src_ep: u8,
        /// Destination endpoint index.
        dst_ep: u8,
        /// Match information.
        match_info: u64,
        /// Message sequence number.
        msg_seq: u32,
        /// Total message length.
        msg_len: u64,
        /// Sender-side handle to quote in pull requests.
        sender_handle: u32,
    },
    /// Receiver-driven request for a block of large-message fragments.
    PullReq {
        /// Requesting (receiver) endpoint index.
        src_ep: u8,
        /// Sender endpoint index.
        dst_ep: u8,
        /// Sender-side handle from the rendezvous.
        sender_handle: u32,
        /// Receiver-side pull handle (echoed on data fragments).
        recv_handle: u32,
        /// First fragment requested.
        frag_start: u32,
        /// Number of fragments requested.
        frag_count: u32,
    },
    /// One pulled fragment of a large message.
    LargeFrag {
        /// Sending endpoint index.
        src_ep: u8,
        /// Destination endpoint index.
        dst_ep: u8,
        /// Receiver-side pull handle.
        recv_handle: u32,
        /// Fragment index within the message.
        frag_idx: u32,
        /// Byte offset within the destination region.
        offset: u64,
        /// Fragment payload.
        data: Bytes,
    },
    /// Receiver→sender completion notification of a large transfer.
    Notify {
        /// Receiver endpoint index.
        src_ep: u8,
        /// Sender endpoint index.
        dst_ep: u8,
        /// Sender-side handle being completed.
        sender_handle: u32,
    },
    /// Acknowledgment of a fully received eager message.
    Ack {
        /// Acknowledging (receiver) endpoint index.
        src_ep: u8,
        /// Original sender endpoint index.
        dst_ep: u8,
        /// Sequence number being acknowledged.
        msg_seq: u32,
    },
    /// Receiver→sender congestion notification (credit revoke): the
    /// receiver's RX ring shed a pulled fragment while credit-based
    /// congestion control was active. The sender reacts by escalating
    /// the matching pending send's adaptive RTO — drops turn into
    /// pacing instead of a lock-step retransmit storm. Block *grants*
    /// need no packet of their own: a `PullReq` is the grant.
    CreditNack {
        /// Notifying (receiver) endpoint index.
        src_ep: u8,
        /// Sender endpoint index.
        dst_ep: u8,
        /// Sender-side handle of the affected large transfer (0 when
        /// the receiver could not attribute the shed frame — the
        /// sender then backs off every pending send to this peer).
        sender_handle: u32,
    },
}

const KIND_TINY: u8 = 1;
const KIND_SMALL: u8 = 2;
const KIND_MEDIUM: u8 = 3;
const KIND_RNDV: u8 = 4;
const KIND_PULLREQ: u8 = 5;
const KIND_LARGEFRAG: u8 = 6;
const KIND_NOTIFY: u8 = 7;
const KIND_ACK: u8 = 8;
const KIND_CREDIT_NACK: u8 = 9;

struct Writer<'a>(&'a mut BytesMut);

impl Writer<'_> {
    fn u8(&mut self, v: u8) {
        self.0.extend_from_slice(&[v]);
    }
    fn u16(&mut self, v: u16) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn bytes(&mut self, v: &Bytes) {
        self.0.extend_from_slice(v);
    }
    fn finish(self) -> Bytes {
        self.0.split().freeze()
    }
}

struct Reader<'a> {
    buf: &'a Bytes,
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a Bytes) -> Self {
        Reader { buf, pos: 0 }
    }
    fn u8(&mut self) -> Result<u8, ParseError> {
        let v = *self.buf.get(self.pos).ok_or(ParseError::Truncated)?;
        self.pos += 1;
        Ok(v)
    }
    fn take<const N: usize>(&mut self) -> Result<[u8; N], ParseError> {
        let end = self.pos + N;
        if end > self.buf.len() {
            return Err(ParseError::Truncated);
        }
        let mut a = [0u8; N];
        a.copy_from_slice(&self.buf[self.pos..end]);
        self.pos = end;
        Ok(a)
    }
    fn u16(&mut self) -> Result<u16, ParseError> {
        Ok(u16::from_le_bytes(self.take::<2>()?))
    }
    fn u32(&mut self) -> Result<u32, ParseError> {
        Ok(u32::from_le_bytes(self.take::<4>()?))
    }
    fn u64(&mut self) -> Result<u64, ParseError> {
        Ok(u64::from_le_bytes(self.take::<8>()?))
    }
    fn rest(&mut self) -> Bytes {
        self.buf.slice(self.pos..)
    }
}

/// Packet parse failures (malformed or truncated frames).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseError {
    /// Frame shorter than its header claims.
    Truncated,
    /// Unknown packet kind byte.
    UnknownKind(u8),
}

impl Packet {
    /// Serialize to a frame payload (standalone allocation; the hot
    /// paths use [`Packet::pack_into`] with a per-node arena instead).
    pub fn pack(&self) -> Bytes {
        let mut arena = BytesMut::with_capacity(64);
        self.pack_into(&mut arena)
    }

    /// Serialize to a frame payload drawn from `arena`.
    ///
    /// The arena is a long-lived `BytesMut`: each pack writes at the
    /// arena's tail and splits the written prefix off as the frozen
    /// payload. Once every payload split from the current block has
    /// been dropped (frames are transient — parsed in the receiver's
    /// BH and released), the next `reserve` inside `extend_from_slice`
    /// reclaims the whole block instead of asking the allocator, so a
    /// steady-state node serializes every packet without allocating.
    pub fn pack_into(&self, arena: &mut BytesMut) -> Bytes {
        let mut w = Writer(arena);
        match self {
            Packet::Tiny {
                src_ep,
                dst_ep,
                match_info,
                msg_seq,
                data,
            } => {
                w.u8(KIND_TINY);
                w.u8(*src_ep);
                w.u8(*dst_ep);
                w.u64(*match_info);
                w.u32(*msg_seq);
                w.bytes(data);
            }
            Packet::Small {
                src_ep,
                dst_ep,
                match_info,
                msg_seq,
                data,
            } => {
                w.u8(KIND_SMALL);
                w.u8(*src_ep);
                w.u8(*dst_ep);
                w.u64(*match_info);
                w.u32(*msg_seq);
                w.bytes(data);
            }
            Packet::MediumFrag {
                src_ep,
                dst_ep,
                match_info,
                msg_seq,
                msg_len,
                frag_idx,
                frag_count,
                offset,
                data,
            } => {
                w.u8(KIND_MEDIUM);
                w.u8(*src_ep);
                w.u8(*dst_ep);
                w.u64(*match_info);
                w.u32(*msg_seq);
                w.u32(*msg_len);
                w.u16(*frag_idx);
                w.u16(*frag_count);
                w.u32(*offset);
                w.bytes(data);
            }
            Packet::RndvReq {
                src_ep,
                dst_ep,
                match_info,
                msg_seq,
                msg_len,
                sender_handle,
            } => {
                w.u8(KIND_RNDV);
                w.u8(*src_ep);
                w.u8(*dst_ep);
                w.u64(*match_info);
                w.u32(*msg_seq);
                w.u64(*msg_len);
                w.u32(*sender_handle);
            }
            Packet::PullReq {
                src_ep,
                dst_ep,
                sender_handle,
                recv_handle,
                frag_start,
                frag_count,
            } => {
                w.u8(KIND_PULLREQ);
                w.u8(*src_ep);
                w.u8(*dst_ep);
                w.u32(*sender_handle);
                w.u32(*recv_handle);
                w.u32(*frag_start);
                w.u32(*frag_count);
            }
            Packet::LargeFrag {
                src_ep,
                dst_ep,
                recv_handle,
                frag_idx,
                offset,
                data,
            } => {
                w.u8(KIND_LARGEFRAG);
                w.u8(*src_ep);
                w.u8(*dst_ep);
                w.u32(*recv_handle);
                w.u32(*frag_idx);
                w.u64(*offset);
                w.bytes(data);
            }
            Packet::Notify {
                src_ep,
                dst_ep,
                sender_handle,
            } => {
                w.u8(KIND_NOTIFY);
                w.u8(*src_ep);
                w.u8(*dst_ep);
                w.u32(*sender_handle);
            }
            Packet::Ack {
                src_ep,
                dst_ep,
                msg_seq,
            } => {
                w.u8(KIND_ACK);
                w.u8(*src_ep);
                w.u8(*dst_ep);
                w.u32(*msg_seq);
            }
            Packet::CreditNack {
                src_ep,
                dst_ep,
                sender_handle,
            } => {
                w.u8(KIND_CREDIT_NACK);
                w.u8(*src_ep);
                w.u8(*dst_ep);
                w.u32(*sender_handle);
            }
        }
        w.finish()
    }

    /// Parse a frame payload.
    pub fn parse(buf: &Bytes) -> Result<Packet, ParseError> {
        let mut r = Reader::new(buf);
        let kind = r.u8()?;
        let src_ep = r.u8()?;
        let dst_ep = r.u8()?;
        match kind {
            KIND_TINY => Ok(Packet::Tiny {
                src_ep,
                dst_ep,
                match_info: r.u64()?,
                msg_seq: r.u32()?,
                data: r.rest(),
            }),
            KIND_SMALL => Ok(Packet::Small {
                src_ep,
                dst_ep,
                match_info: r.u64()?,
                msg_seq: r.u32()?,
                data: r.rest(),
            }),
            KIND_MEDIUM => Ok(Packet::MediumFrag {
                src_ep,
                dst_ep,
                match_info: r.u64()?,
                msg_seq: r.u32()?,
                msg_len: r.u32()?,
                frag_idx: r.u16()?,
                frag_count: r.u16()?,
                offset: r.u32()?,
                data: r.rest(),
            }),
            KIND_RNDV => Ok(Packet::RndvReq {
                src_ep,
                dst_ep,
                match_info: r.u64()?,
                msg_seq: r.u32()?,
                msg_len: r.u64()?,
                sender_handle: r.u32()?,
            }),
            KIND_PULLREQ => Ok(Packet::PullReq {
                src_ep,
                dst_ep,
                sender_handle: r.u32()?,
                recv_handle: r.u32()?,
                frag_start: r.u32()?,
                frag_count: r.u32()?,
            }),
            KIND_LARGEFRAG => Ok(Packet::LargeFrag {
                src_ep,
                dst_ep,
                recv_handle: r.u32()?,
                frag_idx: r.u32()?,
                offset: r.u64()?,
                data: r.rest(),
            }),
            KIND_NOTIFY => Ok(Packet::Notify {
                src_ep,
                dst_ep,
                sender_handle: r.u32()?,
            }),
            KIND_ACK => Ok(Packet::Ack {
                src_ep,
                dst_ep,
                msg_seq: r.u32()?,
            }),
            KIND_CREDIT_NACK => Ok(Packet::CreditNack {
                src_ep,
                dst_ep,
                sender_handle: r.u32()?,
            }),
            k => Err(ParseError::UnknownKind(k)),
        }
    }

    /// Destination endpoint of any packet.
    pub fn dst_ep(&self) -> u8 {
        match self {
            Packet::Tiny { dst_ep, .. }
            | Packet::Small { dst_ep, .. }
            | Packet::MediumFrag { dst_ep, .. }
            | Packet::RndvReq { dst_ep, .. }
            | Packet::PullReq { dst_ep, .. }
            | Packet::LargeFrag { dst_ep, .. }
            | Packet::Notify { dst_ep, .. }
            | Packet::Ack { dst_ep, .. }
            | Packet::CreditNack { dst_ep, .. } => *dst_ep,
        }
    }

    /// Source endpoint of any packet.
    pub fn src_ep(&self) -> u8 {
        match self {
            Packet::Tiny { src_ep, .. }
            | Packet::Small { src_ep, .. }
            | Packet::MediumFrag { src_ep, .. }
            | Packet::RndvReq { src_ep, .. }
            | Packet::PullReq { src_ep, .. }
            | Packet::LargeFrag { src_ep, .. }
            | Packet::Notify { src_ep, .. }
            | Packet::Ack { src_ep, .. }
            | Packet::CreditNack { src_ep, .. } => *src_ep,
        }
    }

    /// Length of the carried data payload (0 for control packets).
    pub fn data_len(&self) -> u64 {
        match self {
            Packet::Tiny { data, .. }
            | Packet::Small { data, .. }
            | Packet::MediumFrag { data, .. }
            | Packet::LargeFrag { data, .. } => data.len() as u64,
            _ => 0,
        }
    }
}

/// Cheap header peek for the credit controller: when the NIC sheds a
/// pulled large fragment on ring overflow, the receiver wants to aim
/// its `CreditNack` without parsing (the frame is consumed by the
/// ring). Returns the fragment's `(src_ep, dst_ep, recv_handle)`
/// triple, or `None` for any other (or too-short) payload.
pub fn peek_large_frag(payload: &Bytes) -> Option<(u8, u8, u32)> {
    if *payload.first()? != KIND_LARGEFRAG {
        return None;
    }
    let src_ep = *payload.get(1)?;
    let dst_ep = *payload.get(2)?;
    let handle = u32::from_le_bytes(payload.get(3..7)?.try_into().ok()?);
    Some((src_ep, dst_ep, handle))
}

/// GRO train key of a raw frame payload from `src_node`: fragments of
/// one in-flight message share a key, so the bottom half can coalesce
/// consecutive same-key skbuffs into a frame train and amortize the
/// per-frame protocol cost. Returns `None` for non-fragment packets
/// (eager singles, control frames) and unparseably short payloads —
/// anything that must break a train.
///
/// Peeks at fixed header offsets instead of running the full parser:
/// like the kernel's GRO `same_flow` check, this happens once per
/// frame *before* the protocol handler is charged, so it only reads
/// the few bytes it needs (kind, endpoints, and the message sequence
/// or pull handle that names the in-flight message).
pub fn gro_train_key(src_node: u32, payload: &Bytes) -> Option<(u64, u64)> {
    let kind = *payload.first()?;
    let src_ep = *payload.get(1)? as u64;
    let dst_ep = *payload.get(2)? as u64;
    let flow = ((kind as u64) << 48) | (src_ep << 40) | (dst_ep << 32) | src_node as u64;
    match kind {
        // MediumFrag: match_info u64 at 3..11, then msg_seq u32 —
        // the (flow, msg_seq) pair names one eager medium message.
        KIND_MEDIUM => {
            let seq = u32::from_le_bytes(payload.get(11..15)?.try_into().ok()?);
            Some((flow, seq as u64))
        }
        // LargeFrag: recv_handle u32 right after the endpoint pair —
        // one pull handle = one large message being deposited.
        KIND_LARGEFRAG => {
            let handle = u32::from_le_bytes(payload.get(3..7)?.try_into().ok()?);
            Some((flow, handle as u64))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(p: Packet) {
        let bytes = p.pack();
        let q = Packet::parse(&bytes).expect("parse");
        assert_eq!(p, q);
    }

    #[test]
    fn all_kinds_round_trip() {
        round_trip(Packet::Tiny {
            src_ep: 1,
            dst_ep: 2,
            match_info: 0xDEAD_BEEF_CAFE_F00D,
            msg_seq: 7,
            data: Bytes::from_static(b"hello"),
        });
        round_trip(Packet::Small {
            src_ep: 0,
            dst_ep: 0,
            match_info: 0,
            msg_seq: u32::MAX,
            data: Bytes::from(vec![0xAA; 128]),
        });
        round_trip(Packet::MediumFrag {
            src_ep: 3,
            dst_ep: 4,
            match_info: 42,
            msg_seq: 9,
            msg_len: 32 << 10,
            frag_idx: 5,
            frag_count: 8,
            offset: 5 * 4096,
            data: Bytes::from(vec![0x55; 4096]),
        });
        round_trip(Packet::RndvReq {
            src_ep: 1,
            dst_ep: 1,
            match_info: u64::MAX,
            msg_seq: 1,
            msg_len: 16 << 20,
            sender_handle: 77,
        });
        round_trip(Packet::PullReq {
            src_ep: 2,
            dst_ep: 1,
            sender_handle: 77,
            recv_handle: 88,
            frag_start: 16,
            frag_count: 8,
        });
        round_trip(Packet::LargeFrag {
            src_ep: 1,
            dst_ep: 2,
            recv_handle: 88,
            frag_idx: 17,
            offset: 17 * 4096,
            data: Bytes::from(vec![0x77; 4096]),
        });
        round_trip(Packet::Notify {
            src_ep: 2,
            dst_ep: 1,
            sender_handle: 77,
        });
        round_trip(Packet::Ack {
            src_ep: 2,
            dst_ep: 1,
            msg_seq: 9,
        });
        round_trip(Packet::CreditNack {
            src_ep: 2,
            dst_ep: 1,
            sender_handle: 77,
        });
    }

    #[test]
    fn header_overhead_is_modest() {
        // Data-bearing packets keep header overhead well under the MX
        // header budget (~32 bytes) so wire efficiency stays realistic.
        let p = Packet::LargeFrag {
            src_ep: 1,
            dst_ep: 2,
            recv_handle: 88,
            frag_idx: 17,
            offset: 17 * 4096,
            data: Bytes::from(vec![0u8; 4096]),
        };
        let overhead = p.pack().len() - 4096;
        assert!(overhead <= 32, "header {overhead} bytes");
    }

    #[test]
    fn truncated_frames_error() {
        let p = Packet::RndvReq {
            src_ep: 1,
            dst_ep: 1,
            match_info: 5,
            msg_seq: 1,
            msg_len: 100,
            sender_handle: 2,
        };
        let full = p.pack();
        for cut in 0..full.len() {
            let short = full.slice(..cut);
            assert!(
                Packet::parse(&short).is_err(),
                "cut at {cut} should not parse"
            );
        }
        let nack = Packet::CreditNack {
            src_ep: 1,
            dst_ep: 2,
            sender_handle: 9,
        }
        .pack();
        for cut in 0..nack.len() {
            assert!(
                Packet::parse(&nack.slice(..cut)).is_err(),
                "nack cut at {cut} should not parse"
            );
        }
    }

    #[test]
    fn unknown_kind_errors() {
        let buf = Bytes::from(vec![0xEEu8, 0, 0, 0, 0, 0, 0, 0]);
        assert_eq!(Packet::parse(&buf), Err(ParseError::UnknownKind(0xEE)));
    }

    #[test]
    fn accessors_cover_all_kinds() {
        let p = Packet::Ack {
            src_ep: 3,
            dst_ep: 9,
            msg_seq: 1,
        };
        assert_eq!(p.src_ep(), 3);
        assert_eq!(p.dst_ep(), 9);
        assert_eq!(p.data_len(), 0);
        let p = Packet::Tiny {
            src_ep: 0,
            dst_ep: 0,
            match_info: 0,
            msg_seq: 0,
            data: Bytes::from_static(b"abc"),
        };
        assert_eq!(p.data_len(), 3);
    }

    #[test]
    fn gro_train_keys_name_messages() {
        let frag = |msg_seq, frag_idx| Packet::MediumFrag {
            src_ep: 1,
            dst_ep: 2,
            match_info: 0xDEAD_BEEF,
            msg_seq,
            msg_len: 16 << 10,
            frag_idx,
            frag_count: 4,
            offset: frag_idx as u32 * 4096,
            data: Bytes::from(vec![0u8; 4096]),
        };
        // Fragments of one message share the key regardless of index.
        let k0 = gro_train_key(5, &frag(9, 0).pack()).unwrap();
        let k1 = gro_train_key(5, &frag(9, 3).pack()).unwrap();
        assert_eq!(k0, k1);
        // A different message, sender node or endpoint breaks the key.
        assert_ne!(gro_train_key(5, &frag(10, 0).pack()).unwrap(), k0);
        assert_ne!(gro_train_key(6, &frag(9, 0).pack()).unwrap(), k0);
        // Pulled large fragments key on the receive handle.
        let lf = |recv_handle, frag_idx| Packet::LargeFrag {
            src_ep: 1,
            dst_ep: 2,
            recv_handle,
            frag_idx,
            offset: frag_idx as u64 * 4096,
            data: Bytes::from(vec![0u8; 4096]),
        };
        let l0 = gro_train_key(5, &lf(88, 0).pack()).unwrap();
        assert_eq!(l0, gro_train_key(5, &lf(88, 7).pack()).unwrap());
        assert_ne!(l0, gro_train_key(5, &lf(89, 0).pack()).unwrap());
        assert_ne!(l0, k0, "medium and large trains never merge");
        // Control frames and eager singles never form trains.
        for p in [
            Packet::Tiny {
                src_ep: 1,
                dst_ep: 2,
                match_info: 0,
                msg_seq: 0,
                data: Bytes::from_static(b"x"),
            },
            Packet::Ack {
                src_ep: 1,
                dst_ep: 2,
                msg_seq: 3,
            },
            Packet::Notify {
                src_ep: 1,
                dst_ep: 2,
                sender_handle: 7,
            },
        ] {
            assert_eq!(gro_train_key(5, &p.pack()), None);
        }
        // Truncated payloads break the train instead of panicking.
        assert_eq!(gro_train_key(5, &frag(9, 0).pack().slice(..8)), None);
        assert_eq!(gro_train_key(5, &Bytes::new()), None);
    }

    #[test]
    fn peek_large_frag_reads_only_large_fragments() {
        let lf = Packet::LargeFrag {
            src_ep: 3,
            dst_ep: 1,
            recv_handle: 0xABCD_1234,
            frag_idx: 5,
            offset: 5 * 4096,
            data: Bytes::from(vec![0u8; 4096]),
        }
        .pack();
        assert_eq!(peek_large_frag(&lf), Some((3, 1, 0xABCD_1234)));
        // Control frames, eager frames and truncated payloads peek to
        // nothing instead of misattributing (or panicking).
        let ack = Packet::Ack {
            src_ep: 3,
            dst_ep: 1,
            msg_seq: 9,
        }
        .pack();
        assert_eq!(peek_large_frag(&ack), None);
        assert_eq!(peek_large_frag(&lf.slice(..6)), None);
        assert_eq!(peek_large_frag(&Bytes::new()), None);
        // The peek agrees with the full parser.
        if let Packet::LargeFrag {
            src_ep,
            dst_ep,
            recv_handle,
            ..
        } = Packet::parse(&lf).unwrap()
        {
            assert_eq!(peek_large_frag(&lf), Some((src_ep, dst_ep, recv_handle)));
        } else {
            panic!("wrong kind");
        }
    }

    #[test]
    fn zero_copy_payload_slicing() {
        // `rest()` slices the original buffer: parsing never copies the
        // data payload.
        let data = Bytes::from(vec![1u8; 4096]);
        let p = Packet::LargeFrag {
            src_ep: 0,
            dst_ep: 0,
            recv_handle: 1,
            frag_idx: 0,
            offset: 0,
            data,
        };
        let packed = p.pack();
        if let Packet::LargeFrag { data, .. } = Packet::parse(&packed).unwrap() {
            // The parsed payload points into the packed buffer.
            let base = packed.as_ptr() as usize;
            let ptr = data.as_ptr() as usize;
            assert!(ptr >= base && ptr < base + packed.len());
        } else {
            panic!("wrong kind");
        }
    }
}
