//! Open-MX stack configuration.
//!
//! Every threshold and toggle the paper discusses is a field here, with
//! the paper's empirically chosen values as defaults. The figure
//! regenerators flip exactly these switches (I/OAT on/off, registration
//! cache on/off, the counterfactual "ignore the BH copy" of Fig 3).

use crate::fault::FaultPlan;
use omx_sim::Ps;
use serde::{Deserialize, Serialize};

/// Which message-passing stack the cluster runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StackKind {
    /// Open-MX over the generic Ethernet layer (the paper's subject).
    OpenMx,
    /// Native MXoE on the same boards (the baseline).
    Mxoe,
}

/// How synchronous copies wait for I/OAT completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SyncWaitPolicy {
    /// Busy-poll the completion word (what the paper implemented;
    /// §IV-C "rely on busy polling ... with no overlap for now").
    BusyPoll,
    /// Predict the completion time from past copies, release the CPU
    /// and wake up near completion (§VI future work, implemented here
    /// as an extension; see `predict.rs`).
    SleepPredicted,
}

/// Full stack configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OmxConfig {
    /// Stack selector.
    pub stack: StackKind,

    // ---------------- message-class thresholds ----------------
    /// Messages at most this long travel inline in the event (tiny).
    pub tiny_max: u64,
    /// Messages at most this long use the one-slot small path.
    pub small_max: u64,
    /// Messages at most this long use the multi-fragment medium path;
    /// beyond it the rendezvous large path runs ("large message
    /// threshold (32 kB)").
    pub medium_max: u64,
    /// Wire fragment size (page-sized skbuffs).
    pub frag_size: u64,

    // ---------------- large-message pull protocol ----------------
    /// Fragments per pull block (paper footnote 3: 8).
    pub pull_block_frags: u32,
    /// Pull blocks kept outstanding (paper footnote 3: 2).
    pub pull_blocks_outstanding: u32,
    /// Initial retransmission timeout (eager resends and missing pull
    /// fragments). Under repeated timeouts the effective RTO backs off
    /// exponentially (with deterministic jitter) up to [`Self::rto_max`]
    /// and resets on any sign of peer liveness.
    pub retransmit_timeout: Ps,
    /// Cap on the adaptive retransmission timeout.
    pub rto_max: Ps,

    // ---------------- receiver-driven credit control ----------------
    /// Receiver-driven credit-based congestion control for the pull
    /// protocol. Off (the default): every pull independently keeps
    /// [`Self::pull_blocks_outstanding`] blocks requested, exactly the
    /// 2008 model — bit-identical to all committed results. On: block
    /// requests across *all* active pulls of a node draw from one
    /// shared adaptive budget, granted FIFO across pulls, and the
    /// budget tracks RX-ring occupancy (multiplicative decrease on
    /// ring pressure, additive regrowth on sustained headroom). A
    /// `PullReq` doubles as the credit grant, so the control loop adds
    /// no frames to the fast path; only the shed-load NACK is new.
    pub pull_credits: bool,
    /// Initial shared budget, in pull blocks, per receiving node.
    pub credit_budget_init: u32,
    /// Lower clamp for the adaptive budget (effective minimum 1 — the
    /// head-of-line pull must always be able to make progress).
    pub credit_budget_min: u32,
    /// Upper clamp for the adaptive budget. Kept well under the RX
    /// ring depth: regrowth is gated on instantaneous ring headroom,
    /// so without this cap the budget climbs until the standing
    /// backlog's queueing delay alone exceeds the pull RTO and the
    /// receiver re-requests blocks that were merely queued.
    pub credit_budget_max: u32,
    /// RX-ring occupancy, in percent of ring slots, at or above which
    /// the budget is halved (the PR-6 per-queue high-watermark signal
    /// is the controller's input).
    pub credit_high_watermark_pct: u32,
    /// Minimum spacing between two multiplicative decreases, and the
    /// rate limit on shed-load NACK frames.
    pub credit_shrink_cooldown: Ps,
    /// Spacing of additive regrowth (+1 block) while every ring stays
    /// under the high watermark.
    pub credit_regrow_interval: Ps,

    // ---------------- I/OAT offload ----------------
    /// Master switch for the DMA engine offload.
    pub ioat_enabled: bool,
    /// Direct Cache Access: the other I/OAT feature (§II-C) — NIC DMA
    /// writes are steered toward the cache of the core that will run
    /// the bottom half, so the CPU copy reads a warm source. Orthogonal
    /// to the copy offload (an offloaded copy bypasses caches anyway);
    /// default off, as in the paper's experiments.
    pub dca_enabled: bool,
    /// Offload network receive copies only for messages at least this
    /// long (paper: 64 kB).
    pub ioat_net_msg_threshold: u64,
    /// Offload only fragments at least this long (paper: 1 kB).
    pub ioat_frag_threshold: u64,
    /// Offload medium-message synchronous copies too (paper measured a
    /// degradation, default off).
    pub ioat_medium_sync: bool,
    /// Offload shared-memory copies for messages at least this long
    /// (paper: enabled beyond 1 MB).
    pub ioat_shm_threshold: u64,
    /// How synchronous offloads wait.
    pub sync_wait: SyncWaitPolicy,
    /// Batch I/OAT descriptor submission: all descriptors of one
    /// driver copy (and, under GRO, of one coalesced fragment train)
    /// are chained behind a single doorbell, charging
    /// `HwParams::ioat_submit_cpu` once plus
    /// `HwParams::ioat_desc_chain_cpu` per chained descriptor —
    /// instead of the paper's full 350 ns submission cost per
    /// descriptor (§IV-A). Default off: per-descriptor submission,
    /// bit-identical to all committed results.
    pub ioat_batch: bool,
    /// Split one large copy across all DMA channels instead of the
    /// paper's one-channel-per-message policy (§V related-work
    /// ablation; default off).
    pub ioat_multichannel_split: bool,
    /// Copy the first bytes of each offloaded message with memcpy to
    /// warm the consumer's cache, offload the rest (§V last paragraph,
    /// extension; 0 disables).
    pub warm_copy_head_bytes: u64,

    // ---------------- registration ----------------
    /// Keep registered regions cached across messages (deferred
    /// deregistration, Fig 11's "regcache" toggle).
    pub regcache: bool,

    // ---------------- receiver-side structure ----------------
    /// Move matching into the driver so medium messages raise a single
    /// event and their fragment copies can overlap (§VI future work,
    /// extension; default off = library-level matching as in the
    /// paper).
    pub kernel_matching: bool,

    /// GRO-style frame-train coalescing in the bottom half: while
    /// consecutive skbuffs of one BH run belong to the same message
    /// (same flow tuple and message/handle id), every fragment after
    /// the first is charged [`Self::gro_frag_process`] instead of the
    /// full [`Self::bh_frag_process`] — the header parse, endpoint
    /// lookup and bookkeeping are amortized over the train, like the
    /// kernel's generic receive offload amortizes per-packet protocol
    /// cost. Default off (the paper's per-frame receive path).
    pub gro: bool,
    /// Per-fragment BH processing cost for the coalesced tail of a
    /// GRO train (only the per-fragment bookkeeping; the flow lookup
    /// is inherited from the head fragment).
    pub gro_frag_process: Ps,

    // ---------------- counterfactuals / reliability ----------------
    /// Fig 3's prediction mode: process receives normally but charge
    /// zero CPU time for the BH data copy.
    pub ignore_bh_copy: bool,
    /// Drop one frame in N on every link (None = lossless). Kept as a
    /// convenience knob: it is folded into [`Self::fault_plan`]'s link
    /// parameters as a degenerate (memoryless) Gilbert–Elliott channel.
    pub loss_one_in: Option<u64>,
    /// Declarative fault plan: bursty loss, corruption, duplication,
    /// reordering per link; RX ring pressure and scheduled I/OAT
    /// channel faults per node (see [`crate::fault::FaultPlan`]). The
    /// default plan is empty and injects nothing.
    pub fault_plan: FaultPlan,
    /// A pending I/OAT copy whose completion lies further than this
    /// past the poll time is declared stuck: the driver falls back to
    /// CPU memcpy and quarantines the channel (Linux dmaengine style).
    pub ioat_stall_deadline: Ps,
    /// How long a quarantined I/OAT channel is blacklisted before the
    /// driver re-probes it.
    pub ioat_quarantine_cooldown: Ps,
    /// RNG seed for loss injection and channel selection jitter.
    pub seed: u64,

    // ---------------- engine ----------------
    /// Timing-wheel depth of the DES engine driving the cluster: 1 =
    /// single ~67 µs ring (events further out are boxed onto the
    /// overflow heap), 2 = add a coarser ~34 ms ring so retransmit
    /// timers and watchdogs stay slab-resident. Execution order — and
    /// therefore every figure — is bit-identical at either depth; this
    /// is purely an events/sec knob (see BENCH_pr9.json).
    pub wheel_levels: u32,

    // ---------------- observability ----------------
    /// Enable the per-component metrics registry (counters, gauges and
    /// busy-time integrals on links, NIC rings, BH queues, I/OAT
    /// channels and driver copy paths). Recording never charges
    /// simulated time, so timing results are identical either way;
    /// disabling only removes the bookkeeping.
    pub metrics: bool,
    /// Capacity of the structured event-trace ring (0 = tracing off).
    /// The ring is bounded: when full, the oldest events are evicted
    /// and counted as dropped.
    pub trace_capacity: usize,

    // ---------------- calibrated Open-MX software costs ----------------
    /// BH cost to decode and route one incoming fragment (header
    /// parse, endpoint/handle lookup, bookkeeping).
    pub bh_frag_process: Ps,
    /// Effective BH memcpy degradation factor applied on top of the
    /// uncached rate: the copy shares the core with processing and
    /// suffers its own cache pollution (calibrated so the no-I/OAT
    /// receive plateau lands at the paper's ≈800 MiB/s).
    pub bh_copy_slowdown: f64,
    /// Driver cost to build and hand one TX fragment to the NIC
    /// (skbuff setup, user-page attach — the zero-copy send of §II-A).
    pub tx_frag_cost: Ps,
    /// Driver cost to build one control frame (pull request, notify,
    /// ack).
    pub ctrl_frame_cost: Ps,
    /// Library cost to post a request (before the syscall).
    pub lib_post_cost: Ps,
    /// Library cost to reap one event from the ring.
    pub lib_event_cost: Ps,
    /// Driver cost of one command syscall body (on top of
    /// `HwParams::syscall_cost`).
    pub driver_cmd_cost: Ps,
    /// Event-ring slots for small/medium data per endpoint.
    pub recvq_slots: usize,
}

impl Default for OmxConfig {
    fn default() -> Self {
        OmxConfig {
            stack: StackKind::OpenMx,
            tiny_max: 32,
            small_max: 128,
            medium_max: 32 << 10,
            frag_size: 4096,
            pull_block_frags: 8,
            pull_blocks_outstanding: 2,
            retransmit_timeout: Ps::us(500),
            rto_max: Ps::ms(8),
            pull_credits: false,
            credit_budget_init: 16,
            credit_budget_min: 2,
            credit_budget_max: 32,
            credit_high_watermark_pct: 75,
            credit_shrink_cooldown: Ps::us(50),
            credit_regrow_interval: Ps::us(200),
            ioat_enabled: false,
            dca_enabled: false,
            ioat_net_msg_threshold: 64 << 10,
            ioat_frag_threshold: 1 << 10,
            ioat_medium_sync: false,
            ioat_shm_threshold: 1 << 20,
            sync_wait: SyncWaitPolicy::BusyPoll,
            ioat_batch: false,
            ioat_multichannel_split: false,
            warm_copy_head_bytes: 0,
            regcache: true,
            kernel_matching: false,
            gro: false,
            gro_frag_process: Ps::ns(700),
            ignore_bh_copy: false,
            loss_one_in: None,
            fault_plan: FaultPlan::default(),
            ioat_stall_deadline: Ps::ms(2),
            ioat_quarantine_cooldown: Ps::ms(20),
            seed: 0x0031_4159_2653_5897,
            wheel_levels: 1,
            metrics: true,
            trace_capacity: 0,
            bh_frag_process: Ps::ns(1900),
            bh_copy_slowdown: 1.18,
            tx_frag_cost: Ps::ns(500),
            ctrl_frame_cost: Ps::ns(300),
            lib_post_cost: Ps::ns(200),
            lib_event_cost: Ps::ns(120),
            driver_cmd_cost: Ps::ns(250),
            recvq_slots: 256,
        }
    }
}

impl OmxConfig {
    /// Config with I/OAT offload enabled at the paper's thresholds.
    pub fn with_ioat() -> Self {
        OmxConfig {
            ioat_enabled: true,
            ..OmxConfig::default()
        }
    }

    /// Message class for a length.
    pub fn class_of(&self, len: u64) -> MsgClass {
        if len <= self.tiny_max {
            MsgClass::Tiny
        } else if len <= self.small_max {
            MsgClass::Small
        } else if len <= self.medium_max {
            MsgClass::Medium
        } else {
            MsgClass::Large
        }
    }

    /// Whether a network receive copy of `frag_len` bytes belonging to
    /// an `msg_len`-byte message should be offloaded (paper §IV-A
    /// conclusion: message ≥ 64 kB *and* fragment ≥ 1 kB).
    pub fn offload_net_copy(&self, msg_len: u64, frag_len: u64) -> bool {
        self.ioat_enabled
            && msg_len >= self.ioat_net_msg_threshold
            && frag_len >= self.ioat_frag_threshold
    }

    /// Whether a shared-memory copy of `msg_len` bytes should be
    /// offloaded.
    pub fn offload_shm_copy(&self, msg_len: u64) -> bool {
        self.ioat_enabled && msg_len >= self.ioat_shm_threshold
    }

    /// Fragments of an `len`-byte message.
    pub fn frags_for(&self, len: u64) -> u64 {
        len.div_ceil(self.frag_size).max(1)
    }

    /// Whether any fault injection is configured (fault plan or the
    /// legacy uniform-loss knob). Harnesses use this to decide whether
    /// NIC drops mean "injected hazard, recovery expected" or "silent
    /// overload that must fail verification loudly".
    pub fn fault_injection_active(&self) -> bool {
        !self.fault_plan.is_inactive() || matches!(self.loss_one_in, Some(n) if n > 0)
    }
}

/// The four Open-MX message classes (Fig 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MsgClass {
    /// Payload rides inside the event itself.
    Tiny,
    /// One copy into the shared ring, one copy out by the library.
    Small,
    /// Per-fragment ring copies, reassembled by the library.
    Medium,
    /// Rendezvous + pull into a pinned region; single completion event.
    Large,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_thresholds_match_paper() {
        let c = OmxConfig::default();
        assert_eq!(c.medium_max, 32 << 10);
        assert_eq!(c.ioat_net_msg_threshold, 64 << 10);
        assert_eq!(c.ioat_frag_threshold, 1 << 10);
        assert_eq!(c.ioat_shm_threshold, 1 << 20);
        assert_eq!(c.pull_block_frags, 8);
        assert_eq!(c.pull_blocks_outstanding, 2);
        assert!(!c.ioat_enabled);
        assert!(c.regcache);
    }

    #[test]
    fn credits_default_off_and_knobs_sane() {
        // Credits must default off: the fixed per-pull window is the
        // paper's model and every committed result depends on it.
        let c = OmxConfig::default();
        assert!(!c.pull_credits);
        assert!(c.credit_budget_min >= 1);
        assert!(c.credit_budget_min <= c.credit_budget_init);
        assert!(c.credit_budget_init <= c.credit_budget_max);
        assert!(c.credit_high_watermark_pct <= 100);
    }

    #[test]
    fn class_boundaries() {
        let c = OmxConfig::default();
        assert_eq!(c.class_of(0), MsgClass::Tiny);
        assert_eq!(c.class_of(32), MsgClass::Tiny);
        assert_eq!(c.class_of(33), MsgClass::Small);
        assert_eq!(c.class_of(128), MsgClass::Small);
        assert_eq!(c.class_of(129), MsgClass::Medium);
        assert_eq!(c.class_of(32 << 10), MsgClass::Medium);
        assert_eq!(c.class_of((32 << 10) + 1), MsgClass::Large);
    }

    #[test]
    fn offload_policy_needs_both_thresholds() {
        let c = OmxConfig::with_ioat();
        assert!(c.offload_net_copy(64 << 10, 4096));
        assert!(!c.offload_net_copy(63 << 10, 4096), "message too short");
        assert!(!c.offload_net_copy(64 << 10, 512), "fragment too short");
        let off = OmxConfig::default();
        assert!(!off.offload_net_copy(1 << 20, 4096), "master switch off");
    }

    #[test]
    fn shm_offload_threshold() {
        let c = OmxConfig::with_ioat();
        assert!(c.offload_shm_copy(1 << 20));
        assert!(!c.offload_shm_copy((1 << 20) - 1));
    }

    #[test]
    fn fault_injection_detection() {
        let c = OmxConfig::default();
        assert!(!c.fault_injection_active(), "default config is clean");
        let lossy = OmxConfig {
            loss_one_in: Some(100),
            ..OmxConfig::default()
        };
        assert!(lossy.fault_injection_active());
        let planned = OmxConfig {
            fault_plan: FaultPlan::flaky_10g(),
            ..OmxConfig::default()
        };
        assert!(planned.fault_injection_active());
    }

    #[test]
    fn config_with_fault_plan_serializes() {
        // The whole config (fault plan included) lands in the JSON
        // record of a run, so it must serialize cleanly.
        let c = OmxConfig {
            fault_plan: FaultPlan::flaky_10g(),
            ..OmxConfig::with_ioat()
        };
        let json = serde_json::to_string(&c).unwrap();
        for key in [
            "fault_plan",
            "rto_max",
            "ioat_stall_deadline",
            "p_enter_bad",
        ] {
            assert!(json.contains(key), "missing {key}");
        }
    }
}
