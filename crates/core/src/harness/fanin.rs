//! Many-to-one medium-message fan-in harness (multi-queue RX study).
//!
//! Eight sender hosts each stream synchronous medium messages at one
//! receiving host, spread over four receiver endpoints. On a
//! single-queue NIC every fragment funnels through one bottom half on
//! the IRQ core, which becomes the bottleneck long before the (per
//! sender) links do; with RSS steering the flows land on distinct RX
//! queues whose bottom halves drain concurrently on their bound
//! cores. The result reports aggregate drain throughput plus the
//! per-core BH+IRQ busy split, which is what the RSS ablation plots.

use crate::app::{App, AppCtx, Completion};
use crate::cluster::{Cluster, ClusterParams};
use crate::{EpAddr, EpIdx, NodeId};
use omx_hw::cpu::category;
use omx_hw::CoreId;
use omx_sim::{Ps, Sim};
use std::cell::RefCell;
use std::rc::Rc;

const FANIN_MATCH: u64 = 0xFA;
/// Streaming senders (nodes 1..=SENDERS; node 0 receives).
pub const SENDERS: u32 = 8;
/// Receiver endpoints, on the odd cores so the even-core BHs of a
/// 4-queue NIC never contend with application polling.
pub const RECV_ENDPOINTS: u32 = 4;

/// Fan-in harness configuration.
#[derive(Debug, Clone)]
pub struct FaninConfig {
    /// Cluster parameters (must allow `1 + SENDERS` nodes).
    pub params: ClusterParams,
    /// Message size (medium-class: eager fragmented path).
    pub size: u64,
    /// Messages per sender.
    pub count: u32,
}

impl FaninConfig {
    /// A fan-in moving ≈32 MiB total across all senders.
    pub fn new(mut params: ClusterParams, size: u64) -> Self {
        params.nodes = 1 + SENDERS as usize;
        let count = ((32u64 << 20) / (SENDERS as u64) / size).clamp(4, 256) as u32;
        FaninConfig {
            params,
            size,
            count,
        }
    }
}

/// Fan-in harness output.
#[derive(Debug, Clone)]
pub struct FaninResult {
    /// Aggregate receive throughput in MiB/s.
    pub throughput_mibs: f64,
    /// Fan-in duration (first receive post to last delivery).
    pub elapsed: Ps,
    /// Every payload matched its pattern and no send was aborted.
    pub verified: bool,
    /// Engine events executed over the whole run (deterministic; feeds
    /// benchrun's events/sec figure and the perf-smoke fingerprint).
    pub events_executed: u64,
    /// Receiver-host BH+IRQ busy time per core, indexed by core id —
    /// the spread (or pile-up) the multi-queue path is about.
    pub bh_busy_per_core: Vec<Ps>,
    /// Frames that rode a GRO train (0 unless `cfg.gro`).
    pub gro_coalesced: u64,
    /// Aggregate cluster counters at the end of the run.
    pub stats: crate::cluster::Stats,
    /// Per-component time accounting over the fan-in window.
    pub breakdown: super::ComponentBreakdown,
    /// Leak detectors (must both be zero after the run drained).
    pub end_skbuffs_held: u64,
    /// Pinned regions still registered at the end.
    pub end_pinned_regions: u64,
}

/// One constant pattern for every message: verification stays
/// order-independent under the arbitrary interleaving of eight flows.
fn pattern(size: u64) -> Vec<u8> {
    (0..size).map(|b| (b.wrapping_mul(131)) as u8).collect()
}

#[derive(Default)]
struct SharedState {
    received: u32,
    corrupt: u64,
    first_post: Ps,
    last_recv: Ps,
}

struct FaninSender {
    peer: EpAddr,
    size: u64,
    count: u32,
    sent: u32,
}

impl App for FaninSender {
    fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
        self.sent = 1;
        ctx.isend(self.peer, FANIN_MATCH, pattern(self.size), Some(10));
    }

    fn on_completion(&mut self, ctx: &mut AppCtx<'_>, comp: Completion) {
        if !matches!(comp, Completion::Send { .. }) {
            return;
        }
        if self.sent < self.count {
            self.sent += 1;
            ctx.isend(self.peer, FANIN_MATCH, pattern(self.size), Some(10));
        }
    }

    fn is_done(&self) -> bool {
        true
    }
}

struct FaninReceiver {
    size: u64,
    /// Messages this endpoint still has to post a receive for.
    to_post: u32,
    quota: u32,
    got: u32,
    shared: Rc<RefCell<SharedState>>,
}

impl App for FaninReceiver {
    fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
        let mut sh = self.shared.borrow_mut();
        if sh.first_post == Ps::ZERO {
            sh.first_post = ctx.now();
        }
        drop(sh);
        // Keep two receives posted so back-to-back messages from the
        // two senders feeding this endpoint never stall on the post.
        let prepost = self.to_post.min(2);
        for _ in 0..prepost {
            self.to_post -= 1;
            ctx.irecv(FANIN_MATCH, u64::MAX, self.size, Some(11));
        }
    }

    fn on_completion(&mut self, ctx: &mut AppCtx<'_>, comp: Completion) {
        let Completion::Recv { data, .. } = comp else {
            return;
        };
        let mut sh = self.shared.borrow_mut();
        if data != pattern(self.size) {
            sh.corrupt += 1;
        }
        sh.received += 1;
        sh.last_recv = ctx.now();
        drop(sh);
        self.got += 1;
        if self.to_post > 0 {
            self.to_post -= 1;
            ctx.irecv(FANIN_MATCH, u64::MAX, self.size, Some(11));
        }
    }

    fn is_done(&self) -> bool {
        self.got >= self.quota
    }
}

/// Run one fan-in experiment.
pub fn run_fanin(cfg: FaninConfig) -> FaninResult {
    assert_eq!(cfg.params.nodes as u32, 1 + SENDERS, "fan-in topology");
    let shared = Rc::new(RefCell::new(SharedState::default()));
    let total = SENDERS * cfg.count;
    let mut cluster = Cluster::new(cfg.params.clone());
    let mut sim: Sim<Cluster> = Sim::with_wheel_levels(cluster.p.cfg.wheel_levels);
    // Receiver endpoints on the odd cores (1, 3, 5, 7).
    for e in 0..RECV_ENDPOINTS {
        let quota = total / RECV_ENDPOINTS;
        cluster.add_endpoint(
            NodeId(0),
            CoreId(1 + 2 * e),
            Box::new(FaninReceiver {
                size: cfg.size,
                to_post: quota,
                quota,
                got: 0,
                shared: shared.clone(),
            }),
        );
    }
    // Sender s (node s+1) targets receiver endpoint s % RECV_ENDPOINTS.
    for s in 0..SENDERS {
        let peer = EpAddr {
            node: NodeId(0),
            ep: EpIdx((s % RECV_ENDPOINTS) as u8),
        };
        cluster.add_endpoint(
            NodeId(1 + s),
            CoreId(2),
            Box::new(FaninSender {
                peer,
                size: cfg.size,
                count: cfg.count,
                sent: 0,
            }),
        );
    }
    cluster.start(&mut sim);
    sim.run(&mut cluster);
    let sh = shared.borrow();
    assert_eq!(sh.received, total, "fan-in did not complete");
    let elapsed = sh.last_recv - sh.first_post;
    let horizon = elapsed.max(Ps::ps(1));
    let recv_node = cluster.node(NodeId(0));
    let bh_busy_per_core = cluster
        .p
        .topology
        .cores()
        .map(|c| {
            let core = recv_node.cpus.core(c);
            core.busy_in(category::BH) + core.busy_in(category::IRQ)
        })
        .collect();
    let bytes = cfg.size * total as u64;
    let (clean_wire, end_skbuffs_held, end_pinned_regions) = super::drain_check(&cluster);
    FaninResult {
        throughput_mibs: bytes as f64 / horizon.as_secs_f64() / (1u64 << 20) as f64,
        elapsed,
        verified: sh.corrupt == 0 && cluster.stats.sends_failed == 0 && clean_wire,
        events_executed: sim.events_executed(),
        bh_busy_per_core,
        gro_coalesced: cluster.metrics.counter(0, "bh.gro_coalesced"),
        stats: cluster.stats_snapshot(),
        breakdown: super::ComponentBreakdown::from_cluster(&cluster, horizon),
        end_skbuffs_held,
        end_pinned_regions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(num_queues: usize, gro: bool) -> FaninResult {
        let mut params = ClusterParams::default();
        params.nic.num_queues = num_queues;
        params.cfg.gro = gro;
        let mut cfg = FaninConfig::new(params, 16 << 10);
        cfg.count = 8;
        run_fanin(cfg)
    }

    #[test]
    fn single_queue_fanin_piles_on_the_irq_core() {
        let r = quick(1, false);
        assert!(r.verified);
        assert_eq!(r.end_skbuffs_held, 0);
        let busy = &r.bh_busy_per_core;
        let total: Ps = busy.iter().fold(Ps::ZERO, |a, &b| a + b);
        assert!(total > Ps::ZERO);
        assert_eq!(
            busy[0], total,
            "one queue: all BH work on the IRQ core, got {busy:?}"
        );
    }

    #[test]
    fn quad_queue_fanin_spreads_and_speeds_up() {
        let base = quick(1, false);
        let quad = quick(4, false);
        assert!(quad.verified);
        let active = quad
            .bh_busy_per_core
            .iter()
            .filter(|&&b| b > Ps::ZERO)
            .count();
        assert!(
            active >= 3,
            "4 queues must spread BH work, busy {:?}",
            quad.bh_busy_per_core
        );
        assert!(
            quad.throughput_mibs > base.throughput_mibs * 1.5,
            "expected >=1.5x aggregate drain: {} vs {}",
            quad.throughput_mibs,
            base.throughput_mibs
        );
    }

    #[test]
    fn gro_trains_cut_bh_time_on_fanin() {
        let plain = quick(4, false);
        let gro = quick(4, true);
        assert!(gro.verified);
        assert!(gro.gro_coalesced > 0, "trains must form under fan-in");
        assert_eq!(plain.gro_coalesced, 0);
        let sum = |r: &FaninResult| {
            r.bh_busy_per_core
                .iter()
                .fold(Ps::ZERO, |a, &b| a + b)
                .as_ps()
        };
        assert!(
            sum(&gro) < sum(&plain),
            "GRO must shave per-frame BH cost: {} vs {}",
            sum(&gro),
            sum(&plain)
        );
    }
}
