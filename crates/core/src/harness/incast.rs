//! Many-to-one *large*-message incast harness (pull congestion study).
//!
//! A parameterized swarm of sender hosts (64-256 in the experiment)
//! simultaneously rendezvous-sends large messages at one receiving
//! host, spread over four receiver endpoints. Every sender's pull
//! streams block requests at the same instant, so the receiver's RX
//! ring sees the classic incast burst: with per-pull outstanding
//! windows the aggregate in-flight fragment count scales with the
//! sender count and the ring sheds load, while the receiver-driven
//! credit budget (`OmxConfig::pull_credits`) caps the aggregate and
//! admits pulls fairly from the FIFO.
//!
//! Unlike [`super::fanin`], this harness does **not** assert that
//! every message arrived: a collapse under credits-off is a valid
//! result and is recorded honestly in [`IncastResult`]. Callers (the
//! incast experiment, the soak test) decide which cells must complete.

use crate::app::{App, AppCtx, Completion};
use crate::cluster::{Cluster, ClusterParams};
use crate::{EpAddr, EpIdx, NodeId};
use omx_hw::CoreId;
use omx_sim::{Ps, Sim};
use std::cell::RefCell;
use std::rc::Rc;

const INCAST_MATCH: u64 = 0x1C;
/// Receiver endpoints, on the odd cores (same placement as the fan-in
/// harness: BHs of a 4-queue NIC own the even cores).
pub const RECV_ENDPOINTS: u32 = 4;

/// Incast harness configuration.
#[derive(Debug, Clone)]
pub struct IncastConfig {
    /// Cluster parameters (nodes forced to `1 + senders`).
    pub params: ClusterParams,
    /// Simultaneous sender hosts (nodes 1..=senders; node 0 receives).
    pub senders: u32,
    /// Message size (large-class: rendezvous pull path).
    pub size: u64,
    /// Messages per sender, streamed back-to-back.
    pub count: u32,
}

impl IncastConfig {
    /// An incast of `senders` hosts each pushing `count` large
    /// messages of `size` bytes at node 0.
    pub fn new(mut params: ClusterParams, senders: u32, size: u64, count: u32) -> Self {
        assert!(
            senders >= RECV_ENDPOINTS,
            "need at least one flow per endpoint"
        );
        assert!(
            size > params.cfg.medium_max,
            "incast studies the large-message pull path"
        );
        params.nodes = 1 + senders as usize;
        IncastConfig {
            params,
            senders,
            size,
            count,
        }
    }
}

/// Incast harness output. No field is an assertion: credits-off
/// collapse cells report `delivered < expected` with the damage
/// itemized rather than panicking.
#[derive(Debug, Clone)]
pub struct IncastResult {
    /// Sender hosts in this run.
    pub senders: u32,
    /// Messages the senders attempted (`senders * count`).
    pub expected: u32,
    /// Messages that arrived intact at the receiver.
    pub delivered: u32,
    /// Payloads that arrived but failed pattern verification.
    pub corrupt: u64,
    /// Incast duration (first receive post to last delivery).
    pub elapsed: Ps,
    /// Completion time per *delivered* message — the incast scaling
    /// curve plots this against the sender count.
    pub per_msg: Ps,
    /// Fragments sent beyond the minimum needed for the delivered
    /// bytes, as a percentage of that minimum (retransmissions plus
    /// fragments of abandoned pulls; 0 when the wire was exact).
    pub excess_frag_pct: f64,
    /// Receiver-ring frames shed by genuine overload.
    pub ring_dropped_genuine: u64,
    /// Receiver-ring frames shed because a fault plan shrank the ring.
    pub ring_dropped_injected: u64,
    /// Every expected message arrived intact, no send was aborted,
    /// and nothing leaked.
    pub verified: bool,
    /// Engine events executed over the whole run (deterministic; feeds
    /// benchrun's events/sec figure and the perf-smoke fingerprint).
    pub events_executed: u64,
    /// Aggregate cluster counters at the end of the run (includes the
    /// credit counters and per-queue ring high-watermarks).
    pub stats: crate::cluster::Stats,
    /// Per-component time accounting over the incast window.
    pub breakdown: super::ComponentBreakdown,
    /// Skbuffs still held by drivers after the run drained.
    pub end_skbuffs_held: u64,
    /// Pinned regions still registered at the end.
    pub end_pinned_regions: u64,
}

/// One constant pattern for every message, order-independent under
/// the arbitrary interleaving of the flows.
fn pattern(size: u64) -> Vec<u8> {
    (0..size).map(|b| (b.wrapping_mul(131)) as u8).collect()
}

#[derive(Default)]
struct SharedState {
    received: u32,
    corrupt: u64,
    first_post: Ps,
    last_recv: Ps,
}

struct IncastSender {
    peer: EpAddr,
    size: u64,
    count: u32,
    sent: u32,
}

impl App for IncastSender {
    fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
        self.sent = 1;
        ctx.isend(self.peer, INCAST_MATCH, pattern(self.size), Some(20));
    }

    fn on_completion(&mut self, ctx: &mut AppCtx<'_>, comp: Completion) {
        if !matches!(comp, Completion::Send { .. }) {
            return;
        }
        // A failed send still advances: under collapse the swarm keeps
        // pressing, which is exactly the behaviour being measured.
        if self.sent < self.count {
            self.sent += 1;
            ctx.isend(self.peer, INCAST_MATCH, pattern(self.size), Some(20));
        }
    }

    fn is_done(&self) -> bool {
        true
    }
}

struct IncastReceiver {
    size: u64,
    /// Messages this endpoint still has to post a receive for.
    to_post: u32,
    shared: Rc<RefCell<SharedState>>,
}

impl App for IncastReceiver {
    fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
        let mut sh = self.shared.borrow_mut();
        if sh.first_post == Ps::ZERO {
            sh.first_post = ctx.now();
        }
        drop(sh);
        // Keep four receives posted per endpoint: with 16+ flows per
        // endpoint the match queue must never be the bottleneck.
        let prepost = self.to_post.min(4);
        for _ in 0..prepost {
            self.to_post -= 1;
            ctx.irecv(INCAST_MATCH, u64::MAX, self.size, Some(21));
        }
    }

    fn on_completion(&mut self, ctx: &mut AppCtx<'_>, comp: Completion) {
        let Completion::Recv { data, .. } = comp else {
            return;
        };
        let mut sh = self.shared.borrow_mut();
        if data != pattern(self.size) {
            sh.corrupt += 1;
        }
        sh.received += 1;
        sh.last_recv = ctx.now();
        drop(sh);
        if self.to_post > 0 {
            self.to_post -= 1;
            ctx.irecv(INCAST_MATCH, u64::MAX, self.size, Some(21));
        }
    }

    fn is_done(&self) -> bool {
        // Completion is reported, not required: the simulation drains
        // whatever the congested ring let through.
        true
    }
}

/// Per-shard reduction of one (possibly partitioned) incast run. The
/// receiver node (0) lives on exactly one shard, so `window` is `Some`
/// there and `None` on pure-sender shards; with `partitions = 1` the
/// merge is the identity and the result matches the historical
/// single-engine harness byte for byte.
struct ShardTally {
    received: u32,
    corrupt: u64,
    /// `(first_post, last_recv)` on the receiver's shard.
    window: Option<(Ps, Ps)>,
    stats: crate::cluster::Stats,
    busy: super::BusyTotals,
    events: u64,
    skbuffs: u64,
    pinned: u64,
}

/// Run one incast experiment (partitioned per
/// `cfg.params.partitions`; results are identical for every value).
pub fn run_incast(cfg: IncastConfig) -> IncastResult {
    assert_eq!(cfg.params.nodes as u32, 1 + cfg.senders, "incast topology");
    let expected = cfg.senders * cfg.count;
    let (senders, size, count) = (cfg.senders, cfg.size, cfg.count);
    let frag_size = cfg.params.cfg.frag_size;
    let faults_active = cfg.params.cfg.fault_injection_active();
    let install = |cluster: &mut Cluster, _shard: usize| {
        let shared = Rc::new(RefCell::new(SharedState::default()));
        // Receiver endpoints on the odd cores (1, 3, 5, 7). Flows are
        // dealt round-robin, so every endpoint serves senders/4 flows.
        if cluster.owns(NodeId(0)) {
            for e in 0..RECV_ENDPOINTS {
                let quota = expected / RECV_ENDPOINTS + u32::from(e < expected % RECV_ENDPOINTS);
                cluster.add_endpoint(
                    NodeId(0),
                    CoreId(1 + 2 * e),
                    Box::new(IncastReceiver {
                        size,
                        to_post: quota,
                        shared: shared.clone(),
                    }),
                );
            }
        }
        // Sender s (node s+1) targets receiver endpoint s % RECV_ENDPOINTS.
        for s in 0..senders {
            if !cluster.owns(NodeId(1 + s)) {
                continue;
            }
            let peer = EpAddr {
                node: NodeId(0),
                ep: EpIdx((s % RECV_ENDPOINTS) as u8),
            };
            cluster.add_endpoint(
                NodeId(1 + s),
                CoreId(2),
                Box::new(IncastSender {
                    peer,
                    size,
                    count,
                    sent: 0,
                }),
            );
        }
        shared
    };
    let finish = |_shard: usize,
                  sim: &mut Sim<Cluster>,
                  cluster: &mut Cluster,
                  shared: Rc<RefCell<SharedState>>| {
        // Thread-local sanitizer: quiesce on the worker that ran this
        // shard.
        omx_sim::sanitize::SimSanitizer::assert_quiesced();
        let sh = shared.borrow();
        let (skbuffs, pinned) = super::leak_counts(cluster);
        ShardTally {
            received: sh.received,
            corrupt: sh.corrupt,
            window: cluster
                .owns(NodeId(0))
                .then_some((sh.first_post, sh.last_recv)),
            stats: cluster.stats_snapshot(),
            busy: super::BusyTotals::of(cluster),
            events: sim.events_executed(),
            skbuffs,
            pinned,
        }
    };
    let tallies = crate::partition::run_partitioned(cfg.params, install, finish);
    let mut stats: Option<crate::cluster::Stats> = None;
    let mut busy = super::BusyTotals::default();
    let (mut delivered, mut corrupt) = (0u32, 0u64);
    let (mut events, mut skbuffs, mut pinned) = (0u64, 0u64, 0u64);
    let mut window = None;
    for t in tallies {
        delivered += t.received;
        corrupt += t.corrupt;
        if t.window.is_some() {
            window = t.window;
        }
        match &mut stats {
            None => stats = Some(t.stats),
            Some(s) => s.absorb(&t.stats),
        }
        busy.absorb(&t.busy);
        events += t.events;
        skbuffs += t.skbuffs;
        pinned += t.pinned;
    }
    let stats = stats.expect("at least one shard");
    let (first_post, last_recv) = window.expect("the receiver node ran");
    let elapsed = if delivered > 0 {
        last_recv - first_post
    } else {
        Ps::ZERO
    };
    // The minimum fragment count for the bytes that actually landed;
    // anything the senders put on the wire beyond it was retransmitted
    // or belonged to a pull the receiver later abandoned.
    let frags_per_msg = size.div_ceil(frag_size);
    let needed = frags_per_msg * delivered as u64;
    let sent_frags = stats.counters.tx_large_frags;
    let excess_frag_pct = if needed > 0 {
        (sent_frags.saturating_sub(needed)) as f64 * 100.0 / needed as f64
    } else {
        0.0
    };
    let ring_dropped_injected = stats.frames_ring_dropped_injected;
    let ring_dropped_genuine = stats.frames_ring_dropped - ring_dropped_injected;
    let clean_wire = super::wire_stayed_clean(faults_active, &stats);
    // Pinned regions are not part of `verified`: with the registration
    // cache enabled (the default) regions legitimately stay pinned
    // after the run. Callers that disable the cache can check the
    // reported count themselves.
    let verified = delivered == expected
        && corrupt == 0
        && stats.sends_failed == 0
        && clean_wire
        && skbuffs == 0;
    IncastResult {
        senders,
        expected,
        delivered,
        corrupt,
        elapsed,
        per_msg: Ps::ps(elapsed.as_ps() / u64::from(delivered.max(1))),
        excess_frag_pct,
        ring_dropped_genuine,
        ring_dropped_injected,
        verified,
        events_executed: events,
        breakdown: super::ComponentBreakdown::from_totals(&busy, elapsed.max(Ps::ps(1))),
        stats,
        end_skbuffs_held: skbuffs,
        end_pinned_regions: pinned,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(senders: u32, credits: bool) -> IncastResult {
        let mut params = ClusterParams::default();
        params.nic.num_queues = 4;
        params.cfg.pull_credits = credits;
        run_incast(IncastConfig::new(params, senders, 96 << 10, 2))
    }

    #[test]
    fn small_incast_completes_with_and_without_credits() {
        for credits in [false, true] {
            let r = quick(8, credits);
            assert!(
                r.verified,
                "8-sender incast must complete (credits={credits}): \
                 delivered {}/{} corrupt {} sends_failed {} ring_dropped {} \
                 corrupt_dropped {} skbuffs {} pinned {}",
                r.delivered,
                r.expected,
                r.corrupt,
                r.stats.sends_failed,
                r.stats.frames_ring_dropped,
                r.stats.frames_corrupt_dropped,
                r.end_skbuffs_held,
                r.end_pinned_regions
            );
            assert_eq!(r.end_skbuffs_held, 0);
        }
    }

    fn pressured(credits: bool) -> IncastResult {
        let mut params = ClusterParams::default();
        params.nic.num_queues = 4;
        params.cfg.pull_credits = credits;
        params.cfg.fault_plan = crate::fault::FaultPlan::ring_pressure();
        run_incast(IncastConfig::new(params, 8, 96 << 10, 2))
    }

    #[test]
    fn credits_tame_a_pressured_ring() {
        let off = pressured(false);
        let on = pressured(true);
        assert!(on.verified, "credits-on must survive ring pressure");
        assert!(
            on.ring_dropped_injected < off.ring_dropped_injected,
            "credit budget must shed fewer frames on the shrunken ring: {} vs {}",
            on.ring_dropped_injected,
            off.ring_dropped_injected
        );
        assert!(
            on.excess_frag_pct < off.excess_frag_pct,
            "credit budget must waste fewer fragments: {:.2}% vs {:.2}%",
            on.excess_frag_pct,
            off.excess_frag_pct
        );
        assert!(on.stats.credit_shrinks > 0, "AIMD shrink must engage");
        let peak = on
            .stats
            .ring_high_watermarks
            .first()
            .map(|q| q.iter().copied().max().unwrap_or(0))
            .unwrap_or(0);
        assert!(peak > 0, "watermark gauge must be populated");
    }

    #[test]
    fn partitioned_incast_matches_single_engine() {
        let run = |partitions: usize, workers: usize| {
            let mut params = ClusterParams::default();
            params.nic.num_queues = 4;
            params.cfg.pull_credits = true;
            params.partitions = partitions;
            params.partition_workers = workers;
            run_incast(IncastConfig::new(params, 8, 96 << 10, 2))
        };
        let single = run(1, 1);
        for (name, other) in [
            ("partitions=3", run(3, 1)),
            ("partitions=4, 4 workers", run(4, 4)),
        ] {
            assert_eq!(single.delivered, other.delivered, "{name}");
            assert_eq!(single.elapsed, other.elapsed, "{name}");
            assert_eq!(single.events_executed, other.events_executed, "{name}");
            assert_eq!(
                serde_json::to_string(&single.stats).unwrap(),
                serde_json::to_string(&other.stats).unwrap(),
                "{name}: serialized stats"
            );
        }
    }

    #[test]
    fn incast_runs_are_deterministic() {
        let a = quick(8, true);
        let b = quick(8, true);
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.elapsed, b.elapsed);
        assert_eq!(
            a.stats.counters.tx_large_frags,
            b.stats.counters.tx_large_frags
        );
    }
}
