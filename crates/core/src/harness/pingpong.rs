//! Ping-pong harness (Figures 3, 8, 10 and the PingPong of Fig 11).
//!
//! Two endpoints exchange a message back and forth. Every payload is
//! pattern-filled per iteration and verified on receipt, so the whole
//! protocol stack — fragmentation, matching, ring copies, pulls,
//! I/OAT offload, retransmission — is integrity-checked on every run
//! of every figure.

use crate::app::{App, AppCtx, Completion};
use crate::cluster::{Cluster, ClusterParams};
use crate::{EpAddr, EpIdx, NodeId};
use omx_hw::CoreId;
use omx_sim::{Ps, Sim, Summary};
use std::cell::RefCell;
use std::rc::Rc;

const PING_MATCH: u64 = 0x5049;
const PONG_MATCH: u64 = 0x504F;

/// Where the two endpoints live.
#[derive(Debug, Clone, Copy)]
pub enum Placement {
    /// One endpoint per node (network path).
    TwoNodes {
        /// Core of the endpoint on node 0.
        core_a: CoreId,
        /// Core of the endpoint on node 1.
        core_b: CoreId,
    },
    /// Both endpoints on node 0 (shared-memory path).
    SameNode {
        /// Core of the first endpoint.
        core_a: CoreId,
        /// Core of the second endpoint.
        core_b: CoreId,
    },
}

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct PingPongConfig {
    /// Cluster parameters (stack, I/OAT, thresholds, ...).
    pub params: ClusterParams,
    /// Message size in bytes.
    pub size: u64,
    /// Measured iterations.
    pub iters: u32,
    /// Warm-up iterations (excluded from statistics).
    pub warmup: u32,
    /// Endpoint placement.
    pub placement: Placement,
}

impl PingPongConfig {
    /// Default iteration counts scaled to the message size so large
    /// sweeps stay fast.
    pub fn new(params: ClusterParams, size: u64, placement: Placement) -> Self {
        let iters = if size >= 4 << 20 {
            6
        } else if size >= 256 << 10 {
            12
        } else {
            24
        };
        PingPongConfig {
            params,
            size,
            iters,
            warmup: 3,
            placement,
        }
    }
}

/// Harness output.
#[derive(Debug, Clone)]
pub struct PingPongResult {
    /// Per-iteration round-trip times (after warm-up).
    pub rtts: Vec<Ps>,
    /// Half-round-trip summary.
    pub half_rtt: Summary,
    /// IMB-convention throughput: size / median half-RTT, in MiB/s.
    pub throughput_mibs: f64,
    /// Whether every received payload matched its expected pattern, no
    /// send was aborted by retransmission exhaustion and — unless the
    /// configuration deliberately injects faults — the wire stayed
    /// clean (no ring or FCS drops).
    pub verified: bool,
    /// Engine events executed over the whole run — the denominator of
    /// benchrun's events/sec figure, and deterministic (it goes into
    /// the perf-smoke fingerprint).
    pub events_executed: u64,
    /// Simulation end time.
    pub end_time: Ps,
    /// Per-component time accounting over the whole run.
    pub breakdown: super::ComponentBreakdown,
    /// Aggregate cluster counters at the end of the run, fault and
    /// recovery events included.
    pub stats: crate::cluster::Stats,
    /// Skbuffs still held by pending copies after the run drained
    /// (leak detector: must be zero).
    pub end_skbuffs_held: u64,
    /// Pinned regions still registered at the end, summed over every
    /// endpoint (with the registration cache disabled this must be
    /// zero).
    pub end_pinned_regions: u64,
}

fn pattern(iter: u32, size: u64) -> Vec<u8> {
    (0..size)
        .map(|i| ((i as u32).wrapping_mul(31).wrapping_add(iter * 7 + 1)) as u8)
        .collect()
}

#[derive(Default)]
struct SharedState {
    rtts: Vec<Ps>,
    corrupt: u64,
    done: bool,
}

struct Pinger {
    peer: EpAddr,
    size: u64,
    iters: u32,
    warmup: u32,
    cur: u32,
    t_send: Ps,
    shared: Rc<RefCell<SharedState>>,
}

impl Pinger {
    fn kick(&mut self, ctx: &mut AppCtx<'_>) {
        ctx.irecv(PONG_MATCH, u64::MAX, self.size, Some(1));
        self.t_send = ctx.now();
        ctx.isend(self.peer, PING_MATCH, pattern(self.cur, self.size), Some(2));
    }
}

impl App for Pinger {
    fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
        self.kick(ctx);
    }

    fn on_completion(&mut self, ctx: &mut AppCtx<'_>, comp: Completion) {
        let Completion::Recv { data, .. } = comp else {
            return; // send completions are uninteresting here
        };
        let mut sh = self.shared.borrow_mut();
        if data != pattern(self.cur, self.size) {
            sh.corrupt += 1;
        }
        let rtt = ctx.now() - self.t_send;
        if self.cur >= self.warmup {
            sh.rtts.push(rtt);
        }
        self.cur += 1;
        if self.cur >= self.iters + self.warmup {
            sh.done = true;
            return;
        }
        drop(sh);
        self.kick(ctx);
    }

    fn is_done(&self) -> bool {
        self.shared.borrow().done
    }
}

struct Ponger {
    peer: EpAddr,
    size: u64,
    total: u32,
    cur: u32,
    shared: Rc<RefCell<SharedState>>,
}

impl App for Ponger {
    fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
        ctx.irecv(PING_MATCH, u64::MAX, self.size, Some(3));
    }

    fn on_completion(&mut self, ctx: &mut AppCtx<'_>, comp: Completion) {
        let Completion::Recv { data, .. } = comp else {
            return;
        };
        if data != pattern(self.cur, self.size) {
            self.shared.borrow_mut().corrupt += 1;
        }
        // Echo the same pattern back.
        ctx.isend(self.peer, PONG_MATCH, pattern(self.cur, self.size), Some(4));
        self.cur += 1;
        if self.cur < self.total {
            ctx.irecv(PING_MATCH, u64::MAX, self.size, Some(3));
        }
    }

    fn is_done(&self) -> bool {
        true
    }
}

/// Per-shard reduction of one (possibly partitioned) ping-pong run.
/// With `partitions = 1` there is exactly one tally and the merge
/// below is the identity, so the result is byte-identical to the
/// historical single-engine harness.
struct ShardTally {
    rtts: Vec<Ps>,
    corrupt: u64,
    /// `Some(done)` on the shard hosting the pinger, `None` elsewhere.
    done: Option<bool>,
    stats: crate::cluster::Stats,
    busy: super::BusyTotals,
    events: u64,
    end: Ps,
    skbuffs: u64,
    pinned: u64,
}

/// Run one ping-pong experiment (partitioned per
/// `cfg.params.partitions`; results are identical for every value).
pub fn run_pingpong(cfg: PingPongConfig) -> PingPongResult {
    let total = cfg.iters + cfg.warmup;
    let (node_a, core_a, node_b, core_b) = match cfg.placement {
        Placement::TwoNodes { core_a, core_b } => (NodeId(0), core_a, NodeId(1), core_b),
        Placement::SameNode { core_a, core_b } => (NodeId(0), core_a, NodeId(0), core_b),
    };
    // Endpoint indices are deterministic: first added on a node is 0.
    let addr_a = EpAddr {
        node: node_a,
        ep: EpIdx(0),
    };
    let addr_b = EpAddr {
        node: node_b,
        ep: EpIdx(if node_a == node_b { 1 } else { 0 }),
    };
    let size = cfg.size;
    let (iters, warmup) = (cfg.iters, cfg.warmup);
    let faults_active = cfg.params.cfg.fault_injection_active();
    let install = |cluster: &mut Cluster, _shard: usize| {
        // Each shard only hosts the endpoints of its own nodes; the
        // collector is per shard and merged after the run.
        let shared = Rc::new(RefCell::new(SharedState::default()));
        let mut has_pinger = false;
        if cluster.owns(node_a) {
            cluster.add_endpoint(
                node_a,
                core_a,
                Box::new(Pinger {
                    peer: addr_b,
                    size,
                    iters,
                    warmup,
                    cur: 0,
                    t_send: Ps::ZERO,
                    shared: shared.clone(),
                }),
            );
            has_pinger = true;
        }
        if cluster.owns(node_b) {
            cluster.add_endpoint(
                node_b,
                core_b,
                Box::new(Ponger {
                    peer: addr_a,
                    size,
                    total,
                    cur: 0,
                    shared: shared.clone(),
                }),
            );
        }
        (shared, has_pinger)
    };
    let finish = |_shard: usize,
                  sim: &mut Sim<Cluster>,
                  cluster: &mut Cluster,
                  (shared, has_pinger): (Rc<RefCell<SharedState>>, bool)| {
        // The leak sanitizer is thread-local: quiesce on the worker
        // that actually ran this shard's handles.
        omx_sim::sanitize::SimSanitizer::assert_quiesced();
        let sh = shared.borrow();
        let (skbuffs, pinned) = super::leak_counts(cluster);
        ShardTally {
            rtts: sh.rtts.clone(),
            corrupt: sh.corrupt,
            done: has_pinger.then_some(sh.done),
            stats: cluster.stats_snapshot(),
            busy: super::BusyTotals::of(cluster),
            events: sim.events_executed(),
            end: sim.now(),
            skbuffs,
            pinned,
        }
    };
    let tallies = crate::partition::run_partitioned(cfg.params, install, finish);
    let mut rtts = Vec::new();
    let mut stats: Option<crate::cluster::Stats> = None;
    let mut busy = super::BusyTotals::default();
    let (mut corrupt, mut events, mut skbuffs, mut pinned) = (0u64, 0u64, 0u64, 0u64);
    let mut end_time = Ps::ZERO;
    let mut done = None;
    for t in tallies {
        rtts.extend(t.rtts); // only the pinger's shard contributes
        corrupt += t.corrupt;
        if t.done.is_some() {
            done = t.done;
        }
        match &mut stats {
            None => stats = Some(t.stats),
            Some(s) => s.absorb(&t.stats),
        }
        busy.absorb(&t.busy);
        events += t.events;
        end_time = end_time.max(t.end);
        skbuffs += t.skbuffs;
        pinned += t.pinned;
    }
    let stats = stats.expect("at least one shard");
    assert_eq!(
        done,
        Some(true),
        "ping-pong did not complete: a message was lost"
    );
    let halves: Vec<Ps> = rtts.iter().map(|r| *r / 2).collect();
    let half_rtt = Summary::of(&halves).expect("at least one iteration");
    let throughput_mibs = size as f64 / half_rtt.median.as_secs_f64() / (1u64 << 20) as f64;
    let clean_wire = super::wire_stayed_clean(faults_active, &stats);
    PingPongResult {
        verified: corrupt == 0 && stats.sends_failed == 0 && clean_wire,
        rtts,
        half_rtt,
        throughput_mibs,
        events_executed: events,
        end_time,
        breakdown: super::ComponentBreakdown::from_totals(&busy, end_time),
        stats,
        end_skbuffs_held: skbuffs,
        end_pinned_regions: pinned,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OmxConfig;

    fn quick(params: ClusterParams, size: u64) -> PingPongResult {
        let mut cfg = PingPongConfig::new(
            params,
            size,
            Placement::TwoNodes {
                core_a: CoreId(2),
                core_b: CoreId(2),
            },
        );
        cfg.iters = 5;
        cfg.warmup = 1;
        run_pingpong(cfg)
    }

    #[test]
    fn tiny_pingpong_delivers_verified_data() {
        let r = quick(ClusterParams::default(), 16);
        assert!(r.verified, "tiny payload corrupted");
        assert!(r.half_rtt.median > Ps::us(3), "{}", r.half_rtt.median);
        assert!(r.half_rtt.median < Ps::us(50), "{}", r.half_rtt.median);
    }

    #[test]
    fn medium_pingpong_verified() {
        let r = quick(ClusterParams::default(), 16 << 10);
        assert!(r.verified);
        assert!(r.throughput_mibs > 100.0, "rate {}", r.throughput_mibs);
    }

    #[test]
    fn metrics_and_tracing_never_perturb_timing() {
        // The observability layer must be a pure observer: the same
        // run with the registry off, on, or on with tracing produces
        // byte-identical per-iteration timings.
        let run_with = |metrics: bool, trace_capacity: usize| {
            let cfg = OmxConfig {
                metrics,
                trace_capacity,
                ..OmxConfig::with_ioat()
            };
            quick(ClusterParams::with_cfg(cfg), 256 << 10)
        };
        let off = run_with(false, 0);
        let on = run_with(true, 0);
        let traced = run_with(true, 4096);
        assert_eq!(off.rtts, on.rtts, "metrics changed timing");
        assert_eq!(off.rtts, traced.rtts, "tracing changed timing");
        assert_eq!(off.end_time, traced.end_time);
        // Disabled registry reads zero everywhere and attributes the
        // whole window to idle.
        assert_eq!(off.breakdown.wire_ns, 0.0);
        assert_eq!(off.breakdown.elapsed_ns, off.breakdown.idle_ns);
        // Enabled registry actually observed the run.
        assert!(on.breakdown.wire_ns > 0.0);
        assert!(on.breakdown.ioat_channel_ns > 0.0);
    }

    #[test]
    fn partitioned_pingpong_is_byte_identical_to_single_engine() {
        // The satellite regression for the partition-safe delivery
        // seam: every arrival in `send_payload` routes through
        // `deliver_frame`, so splitting the two nodes across shards —
        // with any worker count — must reproduce the single-engine
        // run exactly: timings, event count, end time and the full
        // serialized stats.
        let run = |partitions: usize, workers: usize| {
            let mut params = ClusterParams::with_cfg(OmxConfig::with_ioat());
            params.partitions = partitions;
            params.partition_workers = workers;
            quick(params, 64 << 10)
        };
        let single = run(1, 1);
        let split = run(2, 1);
        let threaded = run(2, 2);
        for (name, other) in [("partitions=2", &split), ("2 threaded workers", &threaded)] {
            assert_eq!(single.rtts, other.rtts, "{name}: per-iteration timings");
            assert_eq!(single.end_time, other.end_time, "{name}: end time");
            assert_eq!(
                single.events_executed, other.events_executed,
                "{name}: event count"
            );
            assert_eq!(
                serde_json::to_string(&single.stats).unwrap(),
                serde_json::to_string(&other.stats).unwrap(),
                "{name}: serialized stats"
            );
        }
    }

    #[test]
    fn large_pingpong_verified_both_copy_modes() {
        let base = quick(ClusterParams::default(), 256 << 10);
        assert!(base.verified);
        let p = ClusterParams::with_cfg(OmxConfig::with_ioat());
        let ioat = quick(p, 256 << 10);
        assert!(ioat.verified);
        assert!(
            ioat.throughput_mibs > base.throughput_mibs,
            "I/OAT {} must beat memcpy {}",
            ioat.throughput_mibs,
            base.throughput_mibs
        );
    }
}
