//! Benchmark harnesses that regenerate the paper's figures.
//!
//! * [`pingpong`] — network and shared-memory ping-pong (Figures 3, 8,
//!   10, 11),
//! * [`stream`] — unidirectional large-message stream with CPU-usage
//!   accounting (Figure 9),
//! * [`copybench`] — raw pipelined memcpy vs I/OAT copy rates
//!   (Figure 7 and the §IV-A micro-benchmark numbers),
//! * [`fanin`] — many-to-one medium-message fan-in (the multi-queue
//!   RSS ablation workload),
//! * [`incast`] — many-to-one large-message incast (the pull
//!   congestion-control survival workload).

pub mod copybench;
pub mod fanin;
pub mod incast;
pub mod pingpong;
pub mod stream;

pub use copybench::{copy_breakdown, copy_rate_mibs, CopyEngine};
pub use fanin::{run_fanin, FaninConfig, FaninResult};
pub use incast::{run_incast, IncastConfig, IncastResult};
pub use pingpong::{run_pingpong, PingPongConfig, PingPongResult, Placement};
pub use stream::{run_stream, StreamConfig, StreamResult};

use crate::cluster::Cluster;
use omx_sim::Ps;
use serde::Serialize;

/// Where the time of a run went, per component, in nanoseconds.
///
/// Computed from the cluster's metrics registry after a run: wire
/// serialization, BH/driver memcpy time (network receive copies plus
/// the one-copy shared-memory path), I/OAT channel occupancy, the CPU
/// cost of building and submitting descriptors, and whatever is left
/// of the elapsed window (`idle_ns`, floored at zero — components on
/// different resources overlap in time, so their sum may legitimately
/// exceed the elapsed wall clock).
///
/// With `OmxConfig::metrics` disabled every component reads zero and
/// `idle_ns == elapsed_ns`; throughput numbers are identical either
/// way because recording never charges simulated time.
#[derive(Debug, Clone, Serialize)]
pub struct ComponentBreakdown {
    /// Elapsed window of the measurement.
    pub elapsed_ns: f64,
    /// Wire serialization busy time summed over all links.
    pub wire_ns: f64,
    /// CPU memcpy time in the receive paths (BH ring/large copies and
    /// shared-memory one-copy moves).
    pub bh_copy_ns: f64,
    /// I/OAT DMA channel busy time (descriptor execution).
    pub ioat_channel_ns: f64,
    /// CPU time spent building and submitting I/OAT descriptors.
    pub submit_cpu_ns: f64,
    /// CPU time spent busy-polling I/OAT completions.
    pub poll_wait_ns: f64,
    /// `elapsed - (wire + bh_copy + ioat_channel + submit_cpu)`,
    /// floored at zero.
    pub idle_ns: f64,
}

/// The five integer-picosecond busy totals a [`ComponentBreakdown`] is
/// computed from, extractable per shard and summed exactly before the
/// one conversion to `f64` — so a partitioned run's breakdown is
/// bit-identical to the single-engine one (each busy interval happens
/// on exactly one shard, and integer addition commutes; floats enter
/// only at the end).
#[derive(Debug, Clone, Copy, Default)]
pub struct BusyTotals {
    /// Wire serialization busy time over all links.
    pub wire: Ps,
    /// BH/driver memcpy time (ring/large copies + shm one-copy).
    pub bh_copy: Ps,
    /// I/OAT DMA channel busy time.
    pub ioat_channel: Ps,
    /// CPU time building and submitting I/OAT descriptors.
    pub submit_cpu: Ps,
    /// CPU time busy-polling I/OAT completions.
    pub poll_wait: Ps,
}

impl BusyTotals {
    /// Read the totals out of one cluster's metrics registry.
    pub fn of(cluster: &Cluster) -> Self {
        let m = &cluster.metrics;
        BusyTotals {
            wire: m.busy_total_all_scopes("link.wire"),
            bh_copy: m.busy_total_all_scopes("bh.copy") + m.busy_total_all_scopes("shm.copy"),
            ioat_channel: m.busy_total_all_scopes("ioat.channel"),
            submit_cpu: m.busy_total_all_scopes("ioat.submit_cpu"),
            poll_wait: m.busy_total_all_scopes("ioat.poll_wait"),
        }
    }

    /// Fold another shard's totals into this one.
    pub fn absorb(&mut self, o: &BusyTotals) {
        self.wire += o.wire;
        self.bh_copy += o.bh_copy;
        self.ioat_channel += o.ioat_channel;
        self.submit_cpu += o.submit_cpu;
        self.poll_wait += o.poll_wait;
    }
}

impl ComponentBreakdown {
    /// Assemble the breakdown from a finished cluster's registry over
    /// the measurement window `elapsed`.
    pub fn from_cluster(cluster: &Cluster, elapsed: Ps) -> Self {
        Self::from_totals(&BusyTotals::of(cluster), elapsed)
    }

    /// Assemble the breakdown from (possibly merged) busy totals.
    pub fn from_totals(t: &BusyTotals, elapsed: Ps) -> Self {
        let accounted = t.wire + t.bh_copy + t.ioat_channel + t.submit_cpu;
        let idle = elapsed.saturating_sub(accounted);
        let ns = |p: Ps| p.as_ps() as f64 / 1e3;
        ComponentBreakdown {
            elapsed_ns: ns(elapsed),
            wire_ns: ns(t.wire),
            bh_copy_ns: ns(t.bh_copy),
            ioat_channel_ns: ns(t.ioat_channel),
            submit_cpu_ns: ns(t.submit_cpu),
            poll_wait_ns: ns(t.poll_wait),
            idle_ns: ns(idle),
        }
    }
}

/// End-of-run hygiene shared by every harness: whether the wire stayed
/// clean enough to call the run `verified`, and the leak detectors.
///
/// Returns `(clean_wire, end_skbuffs_held, end_pinned_regions)`.
/// `clean_wire` is `true` when the configuration deliberately injects
/// faults (drops are then expected and recovery is what is being
/// tested) or when no frame was lost to ring overflow or FCS
/// corruption. The two leak counters must read zero after a drained
/// run — any held skbuff or (with the registration cache disabled)
/// pinned region is driver state that escaped cleanup.
pub fn drain_check(cluster: &Cluster) -> (bool, u64, u64) {
    // Debug builds: every lifecycle handle (skbuff, pinned region,
    // I/OAT descriptor, pull handle) must be completed or released by
    // now — a handle still allocated or in flight is a leak and the
    // sanitizer panics with its allocation site.
    omx_sim::sanitize::SimSanitizer::assert_quiesced();
    let clean_wire = wire_stayed_clean(cluster.p.cfg.fault_injection_active(), &cluster.stats);
    let (end_skbuffs_held, end_pinned_regions) = leak_counts(cluster);
    (clean_wire, end_skbuffs_held, end_pinned_regions)
}

/// The `clean_wire` predicate of [`drain_check`], usable on *merged*
/// stats of a partitioned run (ring/corrupt drops are global
/// properties: each drop happened on exactly one shard).
pub fn wire_stayed_clean(fault_injection_active: bool, stats: &crate::cluster::Stats) -> bool {
    fault_injection_active || (stats.frames_ring_dropped == 0 && stats.frames_corrupt_dropped == 0)
}

/// The leak detectors of [`drain_check`], per world (summable across
/// shards: a shard's unowned nodes never hold driver state).
pub fn leak_counts(cluster: &Cluster) -> (u64, u64) {
    let end_skbuffs_held = cluster.nodes.iter().map(|n| n.driver.skbuffs_held).sum();
    let end_pinned_regions = cluster
        .nodes
        .iter()
        .flat_map(|n| n.endpoints.iter())
        .map(|e| e.regions.pinned_count() as u64)
        .sum();
    (end_skbuffs_held, end_pinned_regions)
}

/// The message-size sweep used by the paper's throughput figures
/// (16 B … `max` by powers of two).
pub fn size_sweep(max: u64) -> Vec<u64> {
    let mut v = Vec::new();
    let mut s = 16u64;
    while s <= max {
        v.push(s);
        s *= 2;
    }
    v
}

#[cfg(test)]
mod tests {
    #[test]
    fn sweep_covers_paper_axis() {
        let s = super::size_sweep(1 << 20);
        assert_eq!(s.first(), Some(&16));
        assert_eq!(s.last(), Some(&(1 << 20)));
        assert!(s.contains(&4096));
        assert!(s.windows(2).all(|w| w[1] == w[0] * 2));
    }
}
