//! Benchmark harnesses that regenerate the paper's figures.
//!
//! * [`pingpong`] — network and shared-memory ping-pong (Figures 3, 8,
//!   10, 11),
//! * [`stream`] — unidirectional large-message stream with CPU-usage
//!   accounting (Figure 9),
//! * [`copybench`] — raw pipelined memcpy vs I/OAT copy rates
//!   (Figure 7 and the §IV-A micro-benchmark numbers).

pub mod copybench;
pub mod pingpong;
pub mod stream;

pub use copybench::{copy_rate_mibs, CopyEngine};
pub use pingpong::{run_pingpong, Placement, PingPongConfig, PingPongResult};
pub use stream::{run_stream, StreamConfig, StreamResult};

/// The message-size sweep used by the paper's throughput figures
/// (16 B … `max` by powers of two).
pub fn size_sweep(max: u64) -> Vec<u64> {
    let mut v = Vec::new();
    let mut s = 16u64;
    while s <= max {
        v.push(s);
        s *= 2;
    }
    v
}

#[cfg(test)]
mod tests {
    #[test]
    fn sweep_covers_paper_axis() {
        let s = super::size_sweep(1 << 20);
        assert_eq!(s.first(), Some(&16));
        assert_eq!(s.last(), Some(&(1 << 20)));
        assert!(s.contains(&4096));
        assert!(s.windows(2).all(|w| w[1] == w[0] * 2));
    }
}
