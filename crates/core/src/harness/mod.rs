//! Benchmark harnesses that regenerate the paper's figures.
//!
//! * [`pingpong`] — network and shared-memory ping-pong (Figures 3, 8,
//!   10, 11),
//! * [`stream`] — unidirectional large-message stream with CPU-usage
//!   accounting (Figure 9),
//! * [`copybench`] — raw pipelined memcpy vs I/OAT copy rates
//!   (Figure 7 and the §IV-A micro-benchmark numbers),
//! * [`fanin`] — many-to-one medium-message fan-in (the multi-queue
//!   RSS ablation workload),
//! * [`incast`] — many-to-one large-message incast (the pull
//!   congestion-control survival workload).

pub mod copybench;
pub mod fanin;
pub mod incast;
pub mod pingpong;
pub mod stream;

pub use copybench::{copy_breakdown, copy_rate_mibs, CopyEngine};
pub use fanin::{run_fanin, FaninConfig, FaninResult};
pub use incast::{run_incast, IncastConfig, IncastResult};
pub use pingpong::{run_pingpong, PingPongConfig, PingPongResult, Placement};
pub use stream::{run_stream, StreamConfig, StreamResult};

use crate::cluster::Cluster;
use omx_sim::Ps;
use serde::Serialize;

/// Where the time of a run went, per component, in nanoseconds.
///
/// Computed from the cluster's metrics registry after a run: wire
/// serialization, BH/driver memcpy time (network receive copies plus
/// the one-copy shared-memory path), I/OAT channel occupancy, the CPU
/// cost of building and submitting descriptors, and whatever is left
/// of the elapsed window (`idle_ns`, floored at zero — components on
/// different resources overlap in time, so their sum may legitimately
/// exceed the elapsed wall clock).
///
/// With `OmxConfig::metrics` disabled every component reads zero and
/// `idle_ns == elapsed_ns`; throughput numbers are identical either
/// way because recording never charges simulated time.
#[derive(Debug, Clone, Serialize)]
pub struct ComponentBreakdown {
    /// Elapsed window of the measurement.
    pub elapsed_ns: f64,
    /// Wire serialization busy time summed over all links.
    pub wire_ns: f64,
    /// CPU memcpy time in the receive paths (BH ring/large copies and
    /// shared-memory one-copy moves).
    pub bh_copy_ns: f64,
    /// I/OAT DMA channel busy time (descriptor execution).
    pub ioat_channel_ns: f64,
    /// CPU time spent building and submitting I/OAT descriptors.
    pub submit_cpu_ns: f64,
    /// CPU time spent busy-polling I/OAT completions.
    pub poll_wait_ns: f64,
    /// `elapsed - (wire + bh_copy + ioat_channel + submit_cpu)`,
    /// floored at zero.
    pub idle_ns: f64,
}

impl ComponentBreakdown {
    /// Assemble the breakdown from a finished cluster's registry over
    /// the measurement window `elapsed`.
    pub fn from_cluster(cluster: &Cluster, elapsed: Ps) -> Self {
        let m = &cluster.metrics;
        let wire = m.busy_total_all_scopes("link.wire");
        let bh_copy = m.busy_total_all_scopes("bh.copy") + m.busy_total_all_scopes("shm.copy");
        let ioat_channel = m.busy_total_all_scopes("ioat.channel");
        let submit_cpu = m.busy_total_all_scopes("ioat.submit_cpu");
        let poll_wait = m.busy_total_all_scopes("ioat.poll_wait");
        let accounted = wire + bh_copy + ioat_channel + submit_cpu;
        let idle = elapsed.saturating_sub(accounted);
        let ns = |p: Ps| p.as_ps() as f64 / 1e3;
        ComponentBreakdown {
            elapsed_ns: ns(elapsed),
            wire_ns: ns(wire),
            bh_copy_ns: ns(bh_copy),
            ioat_channel_ns: ns(ioat_channel),
            submit_cpu_ns: ns(submit_cpu),
            poll_wait_ns: ns(poll_wait),
            idle_ns: ns(idle),
        }
    }
}

/// End-of-run hygiene shared by every harness: whether the wire stayed
/// clean enough to call the run `verified`, and the leak detectors.
///
/// Returns `(clean_wire, end_skbuffs_held, end_pinned_regions)`.
/// `clean_wire` is `true` when the configuration deliberately injects
/// faults (drops are then expected and recovery is what is being
/// tested) or when no frame was lost to ring overflow or FCS
/// corruption. The two leak counters must read zero after a drained
/// run — any held skbuff or (with the registration cache disabled)
/// pinned region is driver state that escaped cleanup.
pub fn drain_check(cluster: &Cluster) -> (bool, u64, u64) {
    // Debug builds: every lifecycle handle (skbuff, pinned region,
    // I/OAT descriptor, pull handle) must be completed or released by
    // now — a handle still allocated or in flight is a leak and the
    // sanitizer panics with its allocation site.
    omx_sim::sanitize::SimSanitizer::assert_quiesced();
    let clean_wire = cluster.p.cfg.fault_injection_active()
        || (cluster.stats.frames_ring_dropped == 0 && cluster.stats.frames_corrupt_dropped == 0);
    let end_skbuffs_held = cluster.nodes.iter().map(|n| n.driver.skbuffs_held).sum();
    let end_pinned_regions = cluster
        .nodes
        .iter()
        .flat_map(|n| n.endpoints.iter())
        .map(|e| e.regions.pinned_count() as u64)
        .sum();
    (clean_wire, end_skbuffs_held, end_pinned_regions)
}

/// The message-size sweep used by the paper's throughput figures
/// (16 B … `max` by powers of two).
pub fn size_sweep(max: u64) -> Vec<u64> {
    let mut v = Vec::new();
    let mut s = 16u64;
    while s <= max {
        v.push(s);
        s *= 2;
    }
    v
}

#[cfg(test)]
mod tests {
    #[test]
    fn sweep_covers_paper_axis() {
        let s = super::size_sweep(1 << 20);
        assert_eq!(s.first(), Some(&16));
        assert_eq!(s.last(), Some(&(1 << 20)));
        assert!(s.contains(&4096));
        assert!(s.windows(2).all(|w| w[1] == w[0] * 2));
    }
}
