//! Unidirectional stream harness (Figure 9).
//!
//! A sender pushes a stream of synchronous large messages (the next
//! send is posted when the previous completed, exactly the workload of
//! §IV-B2); the receiver re-posts a receive per message. The result
//! reports per-category CPU utilization on the receiving host —
//! user-library, driver and bottom-half — which is what Fig 9 plots
//! with and without overlapped copy offload.

use crate::app::{App, AppCtx, Completion};
use crate::cluster::{Cluster, ClusterParams};
use crate::{EpAddr, EpIdx, NodeId};
use omx_hw::cpu::category;
use omx_hw::CoreId;
use omx_sim::{Ps, Sim};
use std::cell::RefCell;
use std::rc::Rc;

const STREAM_MATCH: u64 = 0x57;

/// Stream harness configuration.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Cluster parameters.
    pub params: ClusterParams,
    /// Message size.
    pub size: u64,
    /// Number of messages.
    pub count: u32,
    /// Sender endpoint core (node 0).
    pub send_core: CoreId,
    /// Receiver endpoint core (node 1).
    pub recv_core: CoreId,
}

impl StreamConfig {
    /// A stream moving ≈48 MiB total (enough for stable utilization).
    pub fn new(params: ClusterParams, size: u64) -> Self {
        let count = ((48u64 << 20) / size).clamp(4, 256) as u32;
        StreamConfig {
            params,
            size,
            count,
            send_core: CoreId(2),
            recv_core: CoreId(2),
        }
    }
}

/// Stream harness output.
#[derive(Debug, Clone)]
pub struct StreamResult {
    /// Receive-side bottom-half CPU utilization in `[0, 1]`.
    pub bh_util: f64,
    /// Receive-side driver (syscall/pinning) CPU utilization.
    pub driver_util: f64,
    /// Receive-side user-library CPU utilization.
    pub user_util: f64,
    /// Achieved stream throughput in MiB/s.
    pub throughput_mibs: f64,
    /// Whether every payload matched its pattern, no send was aborted
    /// by retransmission exhaustion and — unless the configuration
    /// deliberately injects faults — the wire stayed clean (no ring or
    /// FCS drops).
    pub verified: bool,
    /// Engine events executed over the whole run (deterministic; feeds
    /// benchrun's events/sec figure and the perf-smoke fingerprint).
    pub events_executed: u64,
    /// Peak skbuffs held by pending I/OAT copies on the receiver (the
    /// §III-B resource bound).
    pub max_skbuffs_held: u64,
    /// Stream duration.
    pub elapsed: Ps,
    /// Per-component time accounting over the stream window.
    pub breakdown: super::ComponentBreakdown,
    /// Aggregate cluster counters at the end of the run, fault and
    /// recovery events included.
    pub stats: crate::cluster::Stats,
    /// Skbuffs still held by pending copies after the run drained
    /// (leak detector: must be zero).
    pub end_skbuffs_held: u64,
    /// Pinned regions still registered at the end, summed over every
    /// endpoint (with the registration cache disabled this must be
    /// zero).
    pub end_pinned_regions: u64,
}

fn pattern(i: u32, size: u64) -> Vec<u8> {
    (0..size)
        .map(|b| ((b as u32).wrapping_add(i.wrapping_mul(131))) as u8)
        .collect()
}

#[derive(Default)]
struct SharedState {
    received: u32,
    corrupt: u64,
    first_recv_post: Ps,
    last_recv: Ps,
    done: bool,
}

struct StreamSender {
    peer: EpAddr,
    size: u64,
    count: u32,
    sent: u32,
}

impl App for StreamSender {
    fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
        self.sent = 1;
        ctx.isend(self.peer, STREAM_MATCH, pattern(0, self.size), Some(10));
    }

    fn on_completion(&mut self, ctx: &mut AppCtx<'_>, comp: Completion) {
        if !matches!(comp, Completion::Send { .. }) {
            return;
        }
        if self.sent < self.count {
            let i = self.sent;
            self.sent += 1;
            ctx.isend(self.peer, STREAM_MATCH, pattern(i, self.size), Some(10));
        }
    }

    fn is_done(&self) -> bool {
        true
    }
}

struct StreamReceiver {
    size: u64,
    count: u32,
    shared: Rc<RefCell<SharedState>>,
}

impl App for StreamReceiver {
    fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
        self.shared.borrow_mut().first_recv_post = ctx.now();
        ctx.irecv(STREAM_MATCH, u64::MAX, self.size, Some(11));
    }

    fn on_completion(&mut self, ctx: &mut AppCtx<'_>, comp: Completion) {
        let Completion::Recv { data, .. } = comp else {
            return;
        };
        let mut sh = self.shared.borrow_mut();
        if data != pattern(sh.received, self.size) {
            sh.corrupt += 1;
        }
        sh.received += 1;
        sh.last_recv = ctx.now();
        if sh.received >= self.count {
            sh.done = true;
            return;
        }
        drop(sh);
        ctx.irecv(STREAM_MATCH, u64::MAX, self.size, Some(11));
    }

    fn is_done(&self) -> bool {
        self.shared.borrow().done
    }
}

/// Run one stream experiment.
pub fn run_stream(cfg: StreamConfig) -> StreamResult {
    let shared = Rc::new(RefCell::new(SharedState::default()));
    let recv_addr = EpAddr {
        node: NodeId(1),
        ep: EpIdx(0),
    };
    let mut cluster = Cluster::new(cfg.params);
    let mut sim: Sim<Cluster> = Sim::with_wheel_levels(cluster.p.cfg.wheel_levels);
    cluster.add_endpoint(
        NodeId(0),
        cfg.send_core,
        Box::new(StreamSender {
            peer: recv_addr,
            size: cfg.size,
            count: cfg.count,
            sent: 0,
        }),
    );
    cluster.add_endpoint(
        NodeId(1),
        cfg.recv_core,
        Box::new(StreamReceiver {
            size: cfg.size,
            count: cfg.count,
            shared: shared.clone(),
        }),
    );
    cluster.start(&mut sim);
    sim.run(&mut cluster);
    let sh = shared.borrow();
    assert!(sh.done, "stream did not complete");
    let elapsed = sh.last_recv - sh.first_recv_post;
    let horizon = elapsed.max(Ps::ps(1));
    let recv_node = cluster.node(NodeId(1));
    let meter = recv_node.cpus.merged_meter();
    let util = |cat: &str| meter.total(cat).as_ps() as f64 / horizon.as_ps() as f64;
    let bytes = cfg.size * cfg.count as u64;
    let max_skbuffs_held = recv_node.driver.skbuffs_held_max;
    let (clean_wire, end_skbuffs_held, end_pinned_regions) = super::drain_check(&cluster);
    StreamResult {
        bh_util: util(category::BH) + util(category::IRQ),
        driver_util: util(category::DRIVER),
        user_util: util(category::USER_LIB),
        throughput_mibs: bytes as f64 / horizon.as_secs_f64() / (1u64 << 20) as f64,
        verified: sh.corrupt == 0 && cluster.stats.sends_failed == 0 && clean_wire,
        events_executed: sim.events_executed(),
        max_skbuffs_held,
        elapsed,
        breakdown: super::ComponentBreakdown::from_cluster(&cluster, horizon),
        stats: cluster.stats_snapshot(),
        end_skbuffs_held,
        end_pinned_regions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OmxConfig;

    #[test]
    fn memcpy_stream_saturates_bh() {
        let mut cfg = StreamConfig::new(ClusterParams::default(), 1 << 20);
        cfg.count = 8;
        let r = run_stream(cfg);
        assert!(r.verified);
        assert!(
            r.bh_util > 0.80,
            "no-I/OAT large stream must be BH-bound: {}",
            r.bh_util
        );
        assert!(r.throughput_mibs > 500.0, "rate {}", r.throughput_mibs);
    }

    #[test]
    fn ioat_stream_cuts_bh_usage_and_raises_rate() {
        let params = ClusterParams::with_cfg(OmxConfig::with_ioat());
        let mut cfg = StreamConfig::new(params, 1 << 20);
        cfg.count = 8;
        let ioat = run_stream(cfg);
        let mut base_cfg = StreamConfig::new(ClusterParams::default(), 1 << 20);
        base_cfg.count = 8;
        let base = run_stream(base_cfg);
        assert!(ioat.verified);
        assert!(
            ioat.bh_util < base.bh_util - 0.1,
            "I/OAT must relieve the BH: {} vs {}",
            ioat.bh_util,
            base.bh_util
        );
        assert!(ioat.throughput_mibs > base.throughput_mibs);
        assert!(ioat.max_skbuffs_held > 0, "async copies must hold skbuffs");
    }
}
