//! Raw copy micro-benchmark (Figure 7 and the §IV-A numbers).
//!
//! Reproduces the paper's pipelined copy experiment: a stream of
//! copies of a given total size, split into fixed-size chunks, moved
//! either by memcpy or by the I/OAT DMA engine. For I/OAT the steady
//! state is paced by the slower of descriptor submission (CPU) and
//! descriptor execution (hardware) — submission pipelines with the
//! engine.

use omx_hw::mem::{CopyContext, MemModel};
use omx_hw::{Distance, HwParams};
use omx_sim::Ps;
use serde::{Deserialize, Serialize};

/// Which engine moves the bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CopyEngine {
    /// CPU memcpy (uncached stream, the Fig 7 condition).
    Memcpy,
    /// CPU memcpy with a fully cache-resident working set (the
    /// "12 GiB/s if the data fits in the cache" §IV-A case).
    MemcpyCached,
    /// I/OAT offloaded copy.
    Ioat,
}

/// Time to move `total` bytes in `chunk`-sized pieces.
pub fn copy_time(hw: &HwParams, engine: CopyEngine, total: u64, chunk: u64) -> Ps {
    assert!(chunk > 0, "chunk must be positive");
    let chunks = total.div_ceil(chunk).max(1);
    match engine {
        CopyEngine::Memcpy => {
            let ctx = CopyContext::uncached(Distance::SameSocket);
            MemModel::copy_time(hw, total, chunks, &ctx)
        }
        CopyEngine::MemcpyCached => {
            let ctx = CopyContext {
                distance: Distance::SameSubchip,
                cached_fraction: 1.0,
                shared_cache_pair: false,
            };
            MemModel::copy_time(hw, total, chunks, &ctx)
        }
        CopyEngine::Ioat => {
            // Steady state: per-descriptor pace is the max of CPU
            // submission and hardware execution; the first descriptor
            // additionally waits for its own submission.
            let t_submit = hw.ioat_submit_cpu;
            let t_hw = hw.ioat_desc_overhead + hw.ioat_raw_rate.time_for(chunk);
            let pace = t_submit.max(t_hw);
            t_submit + pace * chunks
        }
    }
}

/// Effective copy throughput in MiB/s.
pub fn copy_rate_mibs(hw: &HwParams, engine: CopyEngine, total: u64, chunk: u64) -> f64 {
    let t = copy_time(hw, engine, total, chunk);
    total as f64 / t.as_secs_f64() / (1u64 << 20) as f64
}

/// Analytic per-component accounting for one pipelined copy stream.
///
/// The copybench has no cluster, so the breakdown is derived from the
/// same closed-form model as [`copy_time`]: for memcpy all elapsed
/// time is CPU copy; for I/OAT the channel executes `chunks`
/// descriptors while the CPU spends `chunks + 1` submission slots
/// (submission pipelines with execution, so the components overlap and
/// their sum may exceed `elapsed_ns` — `idle_ns` is floored at zero).
pub fn copy_breakdown(
    hw: &HwParams,
    engine: CopyEngine,
    total: u64,
    chunk: u64,
) -> super::ComponentBreakdown {
    let elapsed = copy_time(hw, engine, total, chunk);
    let chunks = total.div_ceil(chunk).max(1);
    let ns = |p: Ps| p.as_ps() as f64 / 1e3;
    let (bh_copy, channel, submit) = match engine {
        CopyEngine::Memcpy | CopyEngine::MemcpyCached => (elapsed, Ps::ZERO, Ps::ZERO),
        CopyEngine::Ioat => {
            let t_hw = hw.ioat_desc_overhead + hw.ioat_raw_rate.time_for(chunk);
            (Ps::ZERO, t_hw * chunks, hw.ioat_submit_cpu * (chunks + 1))
        }
    };
    let accounted = bh_copy + channel + submit;
    super::ComponentBreakdown {
        elapsed_ns: ns(elapsed),
        wire_ns: 0.0,
        bh_copy_ns: ns(bh_copy),
        ioat_channel_ns: ns(channel),
        submit_cpu_ns: ns(submit),
        poll_wait_ns: 0.0,
        idle_ns: ns(elapsed.saturating_sub(accounted)),
    }
}

/// The §IV-A break-even: largest chunk still cheaper to memcpy than to
/// submit (CPU-cost comparison, the paper's "600 bytes").
pub fn cpu_breakeven_bytes(hw: &HwParams) -> u64 {
    let mut lo = 1u64;
    let mut hi = 1 << 20;
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        if hw.memcpy_rate_uncached.time_for(mid) <= hw.ioat_submit_cpu {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hw() -> HwParams {
        HwParams::default()
    }

    #[test]
    fn fig7_shape_4k_chunks() {
        // 4 kB-chunked I/OAT sustains ≈2.4 GiB/s, beating memcpy's
        // ≈1.5 GiB/s.
        let ioat = copy_rate_mibs(&hw(), CopyEngine::Ioat, 1 << 20, 4096);
        let mc = copy_rate_mibs(&hw(), CopyEngine::Memcpy, 1 << 20, 4096);
        assert!((2200.0..2600.0).contains(&ioat), "ioat {ioat}");
        assert!((1450.0..1650.0).contains(&mc), "memcpy {mc}");
    }

    #[test]
    fn fig7_shape_1k_chunks_near_parity() {
        let ioat = copy_rate_mibs(&hw(), CopyEngine::Ioat, 1 << 20, 1024);
        let mc = copy_rate_mibs(&hw(), CopyEngine::Memcpy, 1 << 20, 1024);
        let ratio = ioat / mc;
        assert!((0.8..1.2).contains(&ratio), "1 kB parity ratio {ratio}");
    }

    #[test]
    fn fig7_shape_256b_chunks_ioat_loses() {
        let ioat = copy_rate_mibs(&hw(), CopyEngine::Ioat, 1 << 20, 256);
        let mc = copy_rate_mibs(&hw(), CopyEngine::Memcpy, 1 << 20, 256);
        assert!(ioat < 0.6 * mc, "ioat {ioat} vs memcpy {mc}");
    }

    #[test]
    fn cached_memcpy_dominates_everything() {
        let cached = copy_rate_mibs(&hw(), CopyEngine::MemcpyCached, 256 << 10, 4096);
        let ioat = copy_rate_mibs(&hw(), CopyEngine::Ioat, 256 << 10, 4096);
        assert!(cached > 4.0 * ioat, "cached {cached} vs ioat {ioat}");
    }

    #[test]
    fn breakeven_near_600_bytes() {
        let b = cpu_breakeven_bytes(&hw());
        assert!((550..650).contains(&b), "break-even {b} bytes");
    }

    #[test]
    fn small_total_includes_submission_latency() {
        // A single small chunk cannot amortize the submission.
        let t = copy_time(&hw(), CopyEngine::Ioat, 256, 4096);
        assert!(t >= Ps::ns(350 + 390));
    }
}
