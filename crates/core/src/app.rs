//! The application interface.
//!
//! Benchmark state machines (ping-pong, streams, the MPI engine)
//! implement [`App`]. An app never blocks: it posts non-blocking
//! sends/receives through [`AppCtx`] and is re-entered on each request
//! completion. All completions are delivered through scheduled events,
//! never synchronously from inside a post, so an app's callbacks do
//! not re-enter each other.

use crate::cluster::Cluster;
use crate::{EpAddr, ReqId};
use omx_sim::{Ps, Sim};

/// A completed request delivered to the application.
#[derive(Debug)]
pub enum Completion {
    /// A send finished (buffer reusable).
    Send {
        /// The completed request.
        req: ReqId,
        /// `true` when the send was aborted after exhausting its
        /// retransmission attempts: the data was *not* delivered. The
        /// buffer is still reusable — the driver has dropped all state.
        failed: bool,
    },
    /// A receive finished; `data` is the filled buffer.
    Recv {
        /// The completed request.
        req: ReqId,
        /// Match information of the message that matched.
        match_info: u64,
        /// Delivered payload.
        data: Vec<u8>,
    },
}

impl Completion {
    /// The request id of either kind.
    pub fn req(&self) -> ReqId {
        match self {
            Completion::Send { req, .. } | Completion::Recv { req, .. } => *req,
        }
    }
}

/// An application driving one endpoint.
pub trait App {
    /// Called once at simulation start.
    fn on_start(&mut self, ctx: &mut AppCtx<'_>);
    /// Called whenever one of this endpoint's requests completes.
    fn on_completion(&mut self, ctx: &mut AppCtx<'_>, comp: Completion);
    /// Whether the app has finished its workload (harness query).
    fn is_done(&self) -> bool {
        false
    }
}

/// Capability handed to an app callback for posting operations.
pub struct AppCtx<'a> {
    /// The cluster (world) — public so harnesses embedded in apps can
    /// read stats, never mutated directly by apps.
    pub cluster: &'a mut Cluster,
    /// The simulator, for the clock.
    pub sim: &'a mut Sim<Cluster>,
    /// The endpoint this app owns.
    pub me: EpAddr,
}

impl AppCtx<'_> {
    /// Current simulated time.
    pub fn now(&self) -> Ps {
        self.sim.now()
    }

    /// Post a non-blocking send of `data` to `dest` with the given
    /// match information. `tag` is the stable buffer identity (enables
    /// the registration cache and the cache model to recognize reuse).
    pub fn isend(
        &mut self,
        dest: EpAddr,
        match_info: u64,
        data: Vec<u8>,
        tag: Option<u64>,
    ) -> ReqId {
        self.cluster
            .post_isend(self.sim, self.me, dest, match_info, data, tag)
    }

    /// Post a non-blocking send of an already reference-counted
    /// payload. The stack clones views of the handle instead of
    /// promoting a fresh `Vec` per message — an app resending the same
    /// buffer in a loop stays allocation-free.
    pub fn isend_bytes(
        &mut self,
        dest: EpAddr,
        match_info: u64,
        data: bytes::Bytes,
        tag: Option<u64>,
    ) -> ReqId {
        self.cluster
            .post_isend_bytes(self.sim, self.me, dest, match_info, data, tag)
    }

    /// Post a non-blocking receive of up to `max_len` bytes matching
    /// `(match_info, mask)`.
    pub fn irecv(&mut self, match_info: u64, mask: u64, max_len: u64, tag: Option<u64>) -> ReqId {
        self.cluster
            .post_irecv(self.sim, self.me, match_info, mask, max_len, tag)
    }

    /// Post a non-blocking receive that recycles a caller-donated
    /// buffer (typically the `data` Vec of a previous
    /// [`Completion::Recv`]): the completion hands the same allocation
    /// back, so a receive loop reuses one buffer indefinitely.
    pub fn irecv_into(
        &mut self,
        match_info: u64,
        mask: u64,
        max_len: u64,
        buf: Vec<u8>,
        tag: Option<u64>,
    ) -> ReqId {
        self.cluster
            .post_irecv_into(self.sim, self.me, match_info, mask, max_len, buf, tag)
    }

    /// Post a non-blocking receive into a *scattered* buffer of
    /// `seg_size`-byte segments (the paper's "highly-vectorial
    /// buffers", §IV-A): every receive copy splits at segment
    /// boundaries, multiplying descriptors/chunks.
    pub fn irecv_vectored(
        &mut self,
        match_info: u64,
        mask: u64,
        max_len: u64,
        seg_size: u64,
        tag: Option<u64>,
    ) -> ReqId {
        self.cluster.post_irecv_vectored(
            self.sim,
            self.me,
            match_info,
            mask,
            max_len,
            Some(seg_size),
            tag,
        )
    }

    /// Charge `dur` of application compute time on this endpoint's
    /// core (delays subsequently posted operations).
    pub fn compute(&mut self, dur: Ps) {
        self.cluster.charge_app_compute(self.sim, self.me, dur);
    }
}
