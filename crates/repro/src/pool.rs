//! The experiment thread pool: fan cells out, merge in grid order.
//!
//! Workers claim cells from a shared atomic cursor and send results
//! back tagged with the cell's grid index; the merge slots each result
//! into its index, so the caller always observes declaration order no
//! matter which worker finished first. Cells are self-contained
//! single-threaded simulations (the engine itself stays strictly
//! single-threaded per omx-lint D1) — this module is the one
//! sanctioned place the harness crosses onto OS threads, and it never
//! lets scheduling order leak into results.

use crate::{Cell, CellOut};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};
// The pool spawn below is the single sanctioned use of OS threads
// outside crates/sim: cells are isolated whole-world simulations, and
// the index-merge keeps output independent of interleaving.
// omx-lint: allow(thread) experiment pool fan-out; merge is in deterministic grid order, proven byte-identical across --jobs [test: crates/repro/tests/runner.rs::every_experiment_is_byte_identical_across_thread_counts]
use std::thread;

/// Resolve a `--jobs` request: `0` means one worker per available
/// core (serial if the core count cannot be determined).
pub fn resolve_jobs(jobs: usize) -> usize {
    if jobs > 0 {
        jobs
    } else {
        thread::available_parallelism().map_or(1, |n| n.get())
    }
}

/// Run every cell and return the results in declaration (grid) order.
///
/// `jobs == 1` runs inline on the calling thread — no spawn, no
/// channel — which doubles as the reference ordering the parallel
/// path must reproduce byte-for-byte.
pub fn run_cells(cells: Vec<Cell>, jobs: usize) -> Vec<CellOut> {
    let jobs = resolve_jobs(jobs).min(cells.len().max(1));
    if jobs <= 1 {
        return cells.into_iter().map(|c| (c.run)()).collect();
    }
    let n = cells.len();
    let slots: Vec<Mutex<Option<Cell>>> = cells.into_iter().map(|c| Mutex::new(Some(c))).collect();
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, CellOut)>();
    thread::scope(|s| {
        for _ in 0..jobs {
            let tx = tx.clone();
            let slots = &slots;
            let next = &next;
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let cell = slots[i]
                    .lock()
                    .expect("cell slot poisoned")
                    .take()
                    .expect("cell claimed twice");
                let out = (cell.run)();
                if tx.send((i, out)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        let mut out: Vec<Option<CellOut>> = (0..n).map(|_| None).collect();
        for (i, r) in rx {
            debug_assert!(out[i].is_none(), "cell {i} reported twice");
            out[i] = Some(r);
        }
        out.into_iter()
            .enumerate()
            .map(|(i, o)| o.unwrap_or_else(|| panic!("cell {i} never reported")))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell;

    fn counting_cells(n: usize) -> Vec<Cell> {
        (0..n)
            .map(|i| cell(format!("t/{i}"), move || CellOut::Num(i as f64)))
            .collect()
    }

    #[test]
    fn serial_and_parallel_merge_identically() {
        let a = run_cells(counting_cells(97), 1);
        let b = run_cells(counting_cells(97), 8);
        assert_eq!(a, b);
        assert_eq!(a[13], CellOut::Num(13.0));
    }

    #[test]
    fn empty_plan_is_fine() {
        assert!(run_cells(Vec::new(), 4).is_empty());
    }

    #[test]
    fn jobs_zero_resolves_to_cores() {
        assert!(resolve_jobs(0) >= 1);
        assert_eq!(resolve_jobs(3), 3);
        // More jobs than cells must not hang.
        let out = run_cells(counting_cells(2), 64);
        assert_eq!(out.len(), 2);
    }
}
