//! Figure 10 — one-copy shared-memory ping-pong: memcpy placements vs
//! I/OAT synchronous copy (grid port of the former `fig10` binary).

use super::shm_pingpong;
use crate::{banner, breakdown_line, cell, CellOut, Grid, Outs, Plan, Rendered};
use omx_hw::CoreId;
use omx_sim::stats::{format_bytes, Series};
use open_mx::config::OmxConfig;

fn ioat_shm_cfg() -> OmxConfig {
    OmxConfig {
        // Offload every large local message so the curve shows the raw
        // synchronous-copy capability, as in the figure.
        ioat_shm_threshold: 32 << 10,
        ..OmxConfig::with_ioat()
    }
}

/// Grid: {same-subchip memcpy, cross-socket memcpy, I/OAT sync copy} ×
/// size sweep, plus the representative breakdown cell.
pub fn plan(grid: &Grid) -> Plan {
    let sizes = grid.sweep(16 << 20, 256 << 10);
    let mut cells = Vec::new();
    type CfgFn = fn() -> OmxConfig;
    // Core 1 shares the L2 with core 0; core 4 is on the other socket.
    let curves: [(&str, CoreId, CfgFn); 3] = [
        ("same", CoreId(1), OmxConfig::default),
        ("cross", CoreId(4), OmxConfig::default),
        ("ioat", CoreId(4), ioat_shm_cfg),
    ];
    for (name, core_b, cfg_fn) in curves {
        for &s in &sizes {
            cells.push(cell(format!("fig10/{name}/{s}"), move || {
                CellOut::Num(shm_pingpong(s, core_b, cfg_fn()).throughput_mibs)
            }));
        }
    }
    let bd_size = grid.axis(&[4u64 << 20], &[256 << 10])[0];
    cells.push(cell(format!("fig10/breakdown/{bd_size}"), move || {
        let r = shm_pingpong(bd_size, CoreId(4), ioat_shm_cfg());
        let label = format!("shm I/OAT pingpong {}", format_bytes(bd_size as f64));
        CellOut::Text(breakdown_line(&label, &r.breakdown))
    }));

    let render = Box::new(move |mut o: Outs| {
        let same = o.series("Memcpy same dual-core subchip", &sizes);
        let cross = o.series("Memcpy between sockets", &sizes);
        let ioat = o.series("I/OAT offloaded sync copy", &sizes);
        let all = vec![same, cross, ioat];
        let mut t = banner(
            "Figure 10",
            "One-copy shared-memory ping-pong: memcpy placements vs I/OAT sync copy (MiB/s)",
        );
        t += &Series::table(&all, "size");
        t += "\n";
        t += "Paper shape: shared-L2 memcpy ≈6 GiB/s below ~1-2 MB then collapses;\n";
        t += "cross-socket memcpy ≈1.2 GiB/s; I/OAT ≈2.3 GiB/s beyond 32 kB (+80 %).\n";
        t += &o.text();
        o.finish();
        Rendered {
            text: t,
            series: all,
        }
    });
    Plan { cells, render }
}
