//! §IV-D NAS note — IS-like bucket-sort kernel with and without I/OAT
//! (grid port of the former `nas_is` binary).

use crate::{banner, breakdown_line, cell, CellOut, Grid, Outs, Plan, Rendered};
use omx_mpi::nas::is_scripts;
use omx_mpi::runner::{run_scripts, Layout};
use open_mx::cluster::ClusterParams;
use open_mx::config::OmxConfig;

fn run(total: u64, ioat: bool, layout: Layout) -> f64 {
    let params = ClusterParams::with_cfg(if ioat {
        OmxConfig::with_ioat()
    } else {
        OmxConfig::default()
    });
    let r = run_scripts(params, layout, is_scripts(layout.np(), total, 4));
    r.end.as_secs_f64()
}

/// Grid: layout × key count × {memcpy, I/OAT}, plus the breakdown
/// cell for the largest I/OAT run.
pub fn plan(grid: &Grid) -> Plan {
    let layouts = [(Layout::OnePerNode, 1u32), (Layout::TwoPerNode, 2)];
    let totals = grid.axis(&[8u64 << 20, 32 << 20], &[2u64 << 20]);
    let mut cells = Vec::new();
    for (layout, ppn) in layouts {
        for &total in &totals {
            for ioat in [false, true] {
                cells.push(cell(format!("nas_is/{ppn}ppn/{total}/{ioat}"), move || {
                    CellOut::Num(run(total, ioat, layout))
                }));
            }
        }
    }
    let bd_total = *totals.last().expect("non-empty totals");
    cells.push(cell("nas_is/breakdown", move || {
        let layout = Layout::OnePerNode;
        let r = run_scripts(
            ClusterParams::with_cfg(OmxConfig::with_ioat()),
            layout,
            is_scripts(layout.np(), bd_total, 4),
        );
        let label = format!("NAS-IS Open-MX+I/OAT {}M keys", bd_total >> 20);
        CellOut::Text(breakdown_line(&label, &r.breakdown))
    }));

    let n_totals = totals.clone();
    let render = Box::new(move |mut o: Outs| {
        let mut t = banner(
            "NAS IS (IV-D)",
            "IS-like bucket-sort kernel: total runtime with and without I/OAT",
        );
        t += &format!(
            "{:>10} {:>6} {:>14} {:>14} {:>10}\n",
            "keys", "ppn", "memcpy (ms)", "I/OAT (ms)", "speedup"
        );
        for (_, ppn) in layouts {
            for &total in &n_totals {
                let base = o.num();
                let ioat = o.num();
                t += &format!(
                    "{:>9}M {:>6} {:>14.2} {:>14.2} {:>9.1}%\n",
                    total >> 20,
                    ppn,
                    base * 1e3,
                    ioat * 1e3,
                    (base / ioat - 1.0) * 100.0
                );
            }
        }
        t += "\n";
        t += "Paper shape: up to ~10 % end-to-end gain on IS from I/OAT offload.\n";
        t += &o.text();
        o.finish();
        Rendered {
            text: t,
            series: Vec::new(),
        }
    });
    Plan { cells, render }
}
