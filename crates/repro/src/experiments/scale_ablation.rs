//! Scale ablation — one partitioned simulation across the rank axis.
//!
//! The partitioned engine's reason to exist: a single IMB Alltoall at
//! hundreds-to-thousands of ranks (one rank per node, so the cluster
//! axis is the paper's scale frontier), run with 1, 2 and 4 node
//! partitions. For every `(ranks, partitions)` point the panel prints
//! deterministic figures only — total engine events, simulated time,
//! and the peak-memory proxy (peak pending events and ranks resident
//! on the busiest shard) — plus an `identity` column asserting that
//! the partitioned run's full fingerprint (Stats + breakdown + marks +
//! end time + event total) is byte-identical to the single-engine run.
//!
//! Wall-clock events/sec is deliberately **not** part of the rendered
//! text (golden files must be byte-reproducible on any host). It is
//! still measured, reported on stderr, and — on the full grid, when
//! the host has at least 4 cores — the 4-partition cell of the
//! largest rank count must clear a 2× events/sec speedup over the
//! single-engine run, enforced with an assert.

use crate::{banner, cell, CellOut, Grid, Outs, Plan, Rendered, Scale};
use omx_mpi::runner::{run_kernel, KernelResult, Layout};
use omx_mpi::Kernel;
use omx_sim::walltime::{host_cores, Stopwatch};
use open_mx::cluster::ClusterParams;

const PARTS: [usize; 3] = [1, 2, 4];
const SIZE: u64 = 256;
const ITERS: u32 = 2;

fn alltoall(ranks: usize, parts: usize, workers: usize) -> KernelResult {
    let params = ClusterParams {
        partitions: parts,
        partition_workers: workers,
        ..ClusterParams::default()
    };
    let r = run_kernel(Kernel::Alltoall, Layout::Nodes(ranks), SIZE, ITERS, params);
    assert!(
        r.verified,
        "alltoall failed at {ranks} ranks / {parts} partitions"
    );
    assert_eq!(r.end_skbuffs_held, 0, "skbuff leak at {ranks}/{parts}");
    r
}

/// The byte-identity fingerprint of one run: everything observable.
fn fingerprint(r: &KernelResult) -> String {
    format!(
        "{}\n{}\n{:?}\n{}\n{}",
        serde_json::to_string(&r.stats).expect("stats serialize"),
        serde_json::to_string(&r.breakdown).expect("breakdown serialize"),
        r.marks,
        r.end,
        r.events_executed,
    )
}

/// One rank count: run every partitioning, check identity against the
/// single-engine run, and render the deterministic rows. On the full
/// grid the largest rank count also carries the wall-clock speedup
/// gate (reported on stderr; asserted only when the host has the
/// cores to make 2× physically possible).
fn ranks_cell(ranks: usize, gate_speedup: bool) -> String {
    let mut rows = String::new();
    let mut base_fp = String::new();
    let mut base_secs = 0.0;
    for parts in PARTS {
        // `partition_workers == partitions` fans each run as wide as
        // its partitioning allows; identity across worker counts is
        // pinned separately by tests/determinism.rs.
        let sw = Stopwatch::start();
        let r = alltoall(ranks, parts, parts);
        let secs = sw.elapsed_secs();
        let fp = fingerprint(&r);
        let identical = if parts == 1 {
            base_fp = fp;
            base_secs = secs;
            true
        } else {
            fp == base_fp
        };
        assert!(
            identical,
            "{ranks} ranks: partitions={parts} diverged from the single engine"
        );
        let peak_pending = r.shards.iter().map(|s| s.peak_pending).max().unwrap_or(0);
        let peak_ranks = r.shards.iter().map(|s| s.ranks).max().unwrap_or(0);
        let sim_ms = r.end.as_ps() as f64 / 1e9;
        rows += &format!(
            "{:>8} {:>6} {:>12} {:>10.3} {:>15} {:>12} {:>9}\n",
            ranks, parts, r.events_executed, sim_ms, peak_pending, peak_ranks, "ok"
        );
        let eps = r.events_executed as f64 / secs.max(1e-9);
        eprintln!(
            "scale_ablation: {ranks} ranks x {parts} partitions: \
             {:.0} events/s ({:.2}x vs single engine, host-dependent)",
            eps,
            base_secs / secs.max(1e-9)
        );
        if parts == 4 && gate_speedup {
            let cores = host_cores();
            let speedup = base_secs / secs.max(1e-9);
            if cores >= 4 {
                assert!(
                    speedup >= 2.0,
                    "{ranks}-rank alltoall at 4 partitions must run >=2x the \
                     single-engine events/sec on a {cores}-core host: {speedup:.2}x"
                );
            } else {
                eprintln!(
                    "scale_ablation: speedup gate skipped \
                     ({cores} host core(s) cannot express a 2x wall-clock win)"
                );
            }
        }
    }
    rows
}

/// Grid: ranks × partitions, one cell per rank count (the partitioning
/// sweep must run sequentially inside the cell — the identity check
/// and the speedup measurement both compare against the
/// single-engine run of the same cell).
pub fn plan(grid: &Grid) -> Plan {
    let ranks_axis = grid.axis(&[256usize, 1024], &[32, 64]);
    let gate = grid.scale == Scale::Full;
    let largest = *ranks_axis.last().expect("nonempty ranks axis");
    let mut cells = Vec::new();
    for ranks in ranks_axis.clone() {
        cells.push(cell(
            format!("scale_ablation/alltoall/{ranks}"),
            move || CellOut::Text(ranks_cell(ranks, gate && ranks == largest)),
        ));
    }
    let ranks_for_render = ranks_axis;
    let render = Box::new(move |mut o: Outs| {
        let mut t = banner(
            "Scale ablation",
            "one partitioned Alltoall across the rank axis (1 rank/node)",
        );
        t += &format!(
            "--- IMB Alltoall, {SIZE} B x {ITERS} iters, partitions fan across workers ---\n"
        );
        t += &format!(
            "{:>8} {:>6} {:>12} {:>10} {:>15} {:>12} {:>9}\n",
            "ranks", "parts", "events", "sim-ms", "peak-pend/shard", "ranks/shard", "identity"
        );
        for _ in ranks_for_render {
            t += &o.text();
        }
        t += "\nidentity == ok: the partitioned run's Stats + breakdown + marks +\n";
        t += "end-time fingerprint is byte-identical to the single-engine run.\n";
        t += "Wall-clock events/sec is host-dependent and reported on stderr only;\n";
        t += "the full grid gates a >=2x speedup at 4 partitions on hosts with\n";
        t += ">=4 cores.\n";
        o.finish();
        Rendered {
            text: t,
            series: Vec::new(),
        }
    });
    Plan { cells, render }
}
