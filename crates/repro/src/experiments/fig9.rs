//! Figure 9 — receiver CPU usage per category for a unidirectional
//! large-message stream (grid port of the former `fig9` binary).

use crate::{banner, breakdown_line, cell, CellOut, Grid, Outs, Plan, Rendered};
use omx_sim::stats::format_bytes;
use open_mx::cluster::ClusterParams;
use open_mx::config::OmxConfig;
use open_mx::harness::{run_stream, StreamConfig};

type CfgFn = fn() -> OmxConfig;

const PANELS: [(&str, CfgFn); 2] = [
    ("BH receive with Memcpy", OmxConfig::default),
    ("BH receive with Overlapped DMA Copy", OmxConfig::with_ioat),
];

fn stream_row(size: u64, cfg: OmxConfig) -> String {
    let r = run_stream(StreamConfig::new(ClusterParams::with_cfg(cfg), size));
    assert!(r.verified, "corruption at {size}");
    format!(
        "{:>10} {:>12.1} {:>12.1} {:>12.1} {:>14.1}\n",
        format_bytes(size as f64),
        r.bh_util * 100.0,
        r.driver_util * 100.0,
        r.user_util * 100.0,
        r.throughput_mibs
    )
}

/// Grid: {memcpy, overlapped-DMA} panel × size, each row an isolated
/// stream run, plus the two representative breakdown cells.
pub fn plan(grid: &Grid) -> Plan {
    let sizes = grid.axis(
        &[64u64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20],
        &[64u64 << 10, 256 << 10],
    );
    let mut cells = Vec::new();
    for (title, cfg_fn) in PANELS {
        for &size in &sizes {
            cells.push(cell(format!("fig9/{title}/{size}"), move || {
                CellOut::Text(stream_row(size, cfg_fn()))
            }));
        }
    }
    // The paper's representative breakdown point is 4 MB (mid-curve),
    // not the largest size.
    let bd_size = grid.axis(&[4u64 << 20], &[256 << 10])[0];
    for (name, cfg_fn) in [
        ("memcpy stream", OmxConfig::default as fn() -> OmxConfig),
        ("overlapped-DMA stream", OmxConfig::with_ioat),
    ] {
        cells.push(cell(format!("fig9/breakdown/{name}"), move || {
            let r = run_stream(StreamConfig::new(
                ClusterParams::with_cfg(cfg_fn()),
                bd_size,
            ));
            let label = format!("{name} {}", format_bytes(bd_size as f64));
            CellOut::Text(breakdown_line(&label, &r.breakdown))
        }));
    }

    let n_rows = sizes.len();
    let render = Box::new(move |mut o: Outs| {
        let mut t = banner(
            "Figure 9",
            "Receiver CPU usage per category for a unidirectional large-message stream",
        );
        for (title, _) in PANELS {
            t += &format!("--- {title} ---\n");
            t += &format!(
                "{:>10} {:>12} {:>12} {:>12} {:>14}\n",
                "size", "%BH", "%driver", "%user-lib", "MiB/s"
            );
            for _ in 0..n_rows {
                t += &o.text();
            }
            t += "\n";
        }
        t += "Paper shape: memcpy BH rises to ≈95 % for multi-MB messages;\n";
        t += "overlapped DMA drops overall receive CPU to ≈60 % at higher throughput.\n";
        t += &o.text();
        t += &o.text();
        o.finish();
        Rendered {
            text: t,
            series: Vec::new(),
        }
    });
    Plan { cells, render }
}
