//! Figure 8 — ping-pong improvement from I/OAT asynchronous copy
//! offload in the BH receive path (grid port of the former `fig8`
//! binary).

use super::net_pingpong;
use crate::{banner, breakdown_line, cell, CellOut, Grid, Outs, Plan, Rendered};
use omx_sim::stats::{format_bytes, Series};
use open_mx::config::OmxConfig;

/// Grid: {MX model, no-copy, I/OAT, plain} × size sweep, plus the two
/// representative breakdown cells.
pub fn plan(grid: &Grid) -> Plan {
    let sizes = grid.sweep(4 << 20, 64 << 10);
    let mut cells = Vec::new();
    let mx_params = omx_mx::MxParams::default();
    let link = omx_ethernet::LinkParams::default();
    for &s in &sizes {
        cells.push(cell(format!("fig8/mx/{s}"), move || {
            CellOut::Num(omx_mx::curve::pingpong_throughput_mibs(
                &mx_params, &link, s,
            ))
        }));
    }
    for &s in &sizes {
        cells.push(cell(format!("fig8/nocopy/{s}"), move || {
            let cfg = OmxConfig {
                ignore_bh_copy: true,
                ..OmxConfig::default()
            };
            CellOut::Num(net_pingpong(s, cfg).throughput_mibs)
        }));
    }
    for &s in &sizes {
        cells.push(cell(format!("fig8/ioat/{s}"), move || {
            CellOut::Num(net_pingpong(s, OmxConfig::with_ioat()).throughput_mibs)
        }));
    }
    for &s in &sizes {
        cells.push(cell(format!("fig8/plain/{s}"), move || {
            CellOut::Num(net_pingpong(s, OmxConfig::default()).throughput_mibs)
        }));
    }
    let bd_size = *sizes.last().expect("non-empty sweep");
    for (name, cfg) in [
        ("Open-MX pingpong", OmxConfig::default()),
        ("Open-MX+I/OAT pingpong", OmxConfig::with_ioat()),
    ] {
        cells.push(cell(format!("fig8/breakdown/{name}"), move || {
            let r = net_pingpong(bd_size, cfg);
            let label = format!("{name} {}", format_bytes(bd_size as f64));
            CellOut::Text(breakdown_line(&label, &r.breakdown))
        }));
    }

    let render = Box::new(move |mut o: Outs| {
        let mx = o.series("MX", &sizes);
        let nocopy = o.series("Open-MX ignoring BH copy", &sizes);
        let ioat = o.series("Open-MX with DMA copy in BH", &sizes);
        let plain = o.series("Open-MX", &sizes);
        let all = vec![mx, nocopy, ioat, plain];
        let mut t = banner(
            "Figure 8",
            "Ping-pong with I/OAT asynchronous copy offload vs the no-copy prediction",
        );
        t += &Series::table(&all, "size");

        // Headline numbers the paper quotes (largest point and the
        // point four octaves below it: 4 MB and 256 kB on the full
        // grid).
        let hl = bd_size;
        let hl_low = bd_size >> 4;
        let at = |s: &Series, x: u64| s.y_at(x as f64).unwrap_or(f64::NAN);
        let gain = at(&all[2], hl) / at(&all[3], hl);
        let gap = 1.0 - at(&all[2], hl_low) / at(&all[1], hl_low);
        t += "\n";
        t += &format!(
            "{}: I/OAT {:.0} MiB/s vs plain {:.0} MiB/s  (gain {:.0} %; paper: ~+40-50 %, reaching 1114 of 1186 MiB/s)\n",
            format_bytes(hl as f64),
            at(&all[2], hl),
            at(&all[3], hl),
            (gain - 1.0) * 100.0
        );
        t += &format!(
            "{}: I/OAT {:.0} MiB/s is {:.0} % below the no-copy prediction (paper: ~26 %)\n",
            format_bytes(hl_low as f64),
            at(&all[2], hl_low),
            gap * 100.0
        );
        t += &o.text();
        t += &o.text();
        o.finish();
        Rendered {
            text: t,
            series: all,
        }
    });
    Plan { cells, render }
}
