//! Figure 11 — IMB PingPong, MXoE vs Open-MX with I/OAT and the
//! registration cache toggled (grid port of the former `fig11`
//! binary).

use crate::{banner, breakdown_line, cell, CellOut, Grid, Outs, Plan, Rendered};
use omx_mpi::runner::{run_kernel, Layout};
use omx_mpi::Kernel;
use omx_sim::stats::{format_bytes, Series};
use open_mx::cluster::ClusterParams;
use open_mx::config::{OmxConfig, StackKind};

fn mk(ioat: bool, regcache: bool) -> OmxConfig {
    OmxConfig {
        regcache,
        ..if ioat {
            OmxConfig::with_ioat()
        } else {
            OmxConfig::default()
        }
    }
}

fn mxoe() -> OmxConfig {
    OmxConfig {
        stack: StackKind::Mxoe,
        ..OmxConfig::default()
    }
}

fn rate(size: u64, cfg: OmxConfig) -> f64 {
    let params = ClusterParams::with_cfg(cfg);
    let iters = if size >= 1 << 20 { 6 } else { 12 };
    let r = run_kernel(Kernel::PingPong, Layout::OnePerNode, size, iters, params);
    r.pingpong_mibs(size)
}

/// Grid: five stack configurations × size sweep, plus the headline
/// breakdown cell.
pub fn plan(grid: &Grid) -> Plan {
    let sizes = grid.sweep(16 << 20, 256 << 10);
    type CfgFn = fn() -> OmxConfig;
    let curves: [(&str, CfgFn); 5] = [
        ("mx", mxoe),
        ("ioat", || mk(true, true)),
        ("plain", || mk(false, true)),
        ("ioat-nrc", || mk(true, false)),
        ("plain-nrc", || mk(false, false)),
    ];
    let mut cells = Vec::new();
    for (name, cfg_fn) in curves {
        for &s in &sizes {
            cells.push(cell(format!("fig11/{name}/{s}"), move || {
                CellOut::Num(rate(s, cfg_fn()))
            }));
        }
    }
    let hl = grid.axis(&[4u64 << 20], &[256 << 10])[0];
    cells.push(cell(format!("fig11/breakdown/{hl}"), move || {
        let iters = if hl >= 1 << 20 { 6 } else { 12 };
        let r = run_kernel(
            Kernel::PingPong,
            Layout::OnePerNode,
            hl,
            iters,
            ClusterParams::with_cfg(mk(true, true)),
        );
        let label = format!("IMB PingPong Open-MX+I/OAT {}", format_bytes(hl as f64));
        CellOut::Text(breakdown_line(&label, &r.breakdown))
    }));

    let render = Box::new(move |mut o: Outs| {
        let mx = o.series("MX", &sizes);
        let ioat = o.series("Open-MX I/OAT", &sizes);
        let plain = o.series("Open-MX", &sizes);
        let ioat_nrc = o.series("Open-MX I/OAT w/o regcache", &sizes);
        let plain_nrc = o.series("Open-MX w/o regcache", &sizes);
        let all = vec![mx, ioat, plain, ioat_nrc, plain_nrc];
        let mut t = banner(
            "Figure 11",
            "IMB PingPong: MXoE vs Open-MX with I/OAT and regcache toggled (MiB/s)",
        );
        t += &Series::table(&all, "size");
        let at = |s: &Series, x: u64| s.y_at(x as f64).unwrap_or(f64::NAN);
        t += "\n";
        t += &format!(
            "{}: MX {:.0} | Open-MX I/OAT {:.0} | Open-MX {:.0} | I/OAT w/o regcache {:.0} | w/o regcache {:.0} MiB/s\n",
            format_bytes(hl as f64),
            at(&all[0], hl),
            at(&all[1], hl),
            at(&all[2], hl),
            at(&all[3], hl),
            at(&all[4], hl),
        );
        t += "Paper shape: Open-MX+I/OAT matches MX near line rate for large messages;\n";
        t += "dropping the regcache costs far less than dropping I/OAT.\n";
        t += &o.text();
        o.finish();
        Rendered {
            text: t,
            series: all,
        }
    });
    Plan { cells, render }
}
