//! Figure 7 — pipelined memcpy vs I/OAT copy throughput for 256 B,
//! 1 kB and 4 kB chunks (grid port of the former `fig7` binary).
//!
//! Pure copy-model evaluations (no cluster), so the grid is the same
//! at both scales — the hardware-profile axis is the interesting one.

use crate::{banner, breakdown_line, cell, CellOut, Grid, Outs, Plan, Rendered};
use omx_sim::stats::Series;
use open_mx::harness::copybench::{copy_breakdown, copy_rate_mibs, CopyEngine};

const CHUNKS: [(&str, u64); 3] = [
    ("4kB chunks (page)", 4096),
    ("1kB chunks", 1024),
    ("256B chunks", 256),
];

/// Grid: {memcpy, I/OAT} × chunk size × copy size, plus the 1 MB
/// summary and breakdown cells.
pub fn plan(grid: &Grid) -> Plan {
    let mut sizes = Vec::new();
    let mut s = 256u64;
    while s <= 1 << 20 {
        sizes.push(s);
        s *= 2;
    }
    let hw = grid.hw.clone();
    let mut cells = Vec::new();
    for engine in [CopyEngine::Memcpy, CopyEngine::Ioat] {
        for (label, chunk) in CHUNKS {
            for &total in &sizes {
                let hw = hw.clone();
                cells.push(cell(
                    format!("fig7/{engine:?}/{label}/{total}"),
                    move || CellOut::Num(copy_rate_mibs(&hw, engine, total, chunk.min(total))),
                ));
            }
        }
    }
    {
        let hw = hw.clone();
        cells.push(cell("fig7/summary/1MB-4kB", move || {
            CellOut::Nums(vec![
                copy_rate_mibs(&hw, CopyEngine::Ioat, 1 << 20, 4096),
                copy_rate_mibs(&hw, CopyEngine::Memcpy, 1 << 20, 4096),
            ])
        }));
    }
    for (name, engine) in [
        ("I/OAT copy", CopyEngine::Ioat),
        ("memcpy", CopyEngine::Memcpy),
    ] {
        let hw = hw.clone();
        cells.push(cell(format!("fig7/breakdown/{name}"), move || {
            CellOut::Text(breakdown_line(
                &format!("{name} 1MB/4kB chunks"),
                &copy_breakdown(&hw, engine, 1 << 20, 4096),
            ))
        }));
    }

    let render = Box::new(move |mut o: Outs| {
        let mut all = Vec::new();
        for engine in ["Memcpy", "I/OAT Copy"] {
            for (label, _) in CHUNKS {
                all.push(o.series(&format!("{engine} - {label}"), &sizes));
            }
        }
        let summary = o.nums();
        let (ioat4k, mc4k) = (summary[0], summary[1]);
        let mut t = banner(
            "Figure 7",
            "Pipelined memcpy vs I/OAT copy throughput by chunk size (MiB/s)",
        );
        t += &Series::table(&all, "copy size");
        t += "\n";
        t += "Paper shape: 4kB-chunk I/OAT sustains ≈2.4 GiB/s vs memcpy ≈1.5 GiB/s;\n";
        t += "1kB chunks sit near parity; 256B-chunk I/OAT collapses below memcpy.\n";
        t += &format!(
            "1MB / 4kB chunks: I/OAT {:.2} GiB/s, memcpy {:.2} GiB/s\n",
            ioat4k / 1024.0,
            mc4k / 1024.0
        );
        t += &o.text();
        t += &o.text();
        o.finish();
        Rendered {
            text: t,
            series: all,
        }
    });
    Plan { cells, render }
}
