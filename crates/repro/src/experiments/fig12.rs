//! Figure 12 — all IMB kernels, Open-MX (± I/OAT) normalized to MXoE
//! (grid port of the former `fig12` binary).
//!
//! The old binary parallelized only across kernels within a panel;
//! the grid expands panel × kernel × stack into one cell each, so the
//! pool sees 4 × 11 × 3 independent simulations.

use crate::{banner, breakdown_line, cell, CellOut, Grid, Outs, Plan, Rendered};
use omx_mpi::runner::{run_kernel, Layout};
use omx_mpi::Kernel;
use open_mx::cluster::ClusterParams;
use open_mx::config::{OmxConfig, StackKind};

fn mxoe() -> OmxConfig {
    OmxConfig {
        stack: StackKind::Mxoe,
        ..OmxConfig::default()
    }
}

fn time_iter(kernel: Kernel, layout: Layout, size: u64, cfg: OmxConfig) -> f64 {
    let params = ClusterParams::with_cfg(cfg);
    let iters = if size >= 1 << 20 { 5 } else { 8 };
    run_kernel(kernel, layout, size, iters, params)
        .time_per_iter
        .as_secs_f64()
}

const STACKS: [fn() -> OmxConfig; 3] = [mxoe, OmxConfig::default, OmxConfig::with_ioat];

/// Grid: panel (size × layout) × kernel × stack, plus the Alltoall
/// breakdown cell.
pub fn plan(grid: &Grid) -> Plan {
    let panels = grid.axis(
        &[(128u64 << 10, "128kB"), (4 << 20, "4MB")],
        &[(128u64 << 10, "128kB")],
    );
    let layouts = [(Layout::OnePerNode, 1u32), (Layout::TwoPerNode, 2)];
    let mut cells = Vec::new();
    for &(size, label) in &panels {
        for (layout, ppn) in layouts {
            for k in Kernel::ALL {
                for (si, cfg_fn) in STACKS.iter().enumerate() {
                    let cfg_fn = *cfg_fn;
                    cells.push(cell(
                        format!("fig12/{label}/{ppn}ppn/{}/{si}", k.name()),
                        move || CellOut::Num(time_iter(k, layout, size, cfg_fn())),
                    ));
                }
            }
        }
    }
    let bd_size = grid.axis(&[4u64 << 20], &[128 << 10])[0];
    cells.push(cell("fig12/breakdown/alltoall", move || {
        let iters = if bd_size >= 1 << 20 { 5 } else { 8 };
        let r = run_kernel(
            Kernel::Alltoall,
            Layout::TwoPerNode,
            bd_size,
            iters,
            ClusterParams::with_cfg(OmxConfig::with_ioat()),
        );
        let label = format!(
            "Alltoall Open-MX+I/OAT {} 2ppn",
            omx_sim::stats::format_bytes(bd_size as f64)
        );
        CellOut::Text(breakdown_line(&label, &r.breakdown))
    }));

    let render = Box::new(move |mut o: Outs| {
        let mut t = banner(
            "Figure 12",
            "IMB kernels normalized to MXoE, 128 kB & 4 MB, 1 & 2 processes per node",
        );
        for &(_, label) in &panels {
            for (_, ppn) in layouts {
                t += &format!(
                    "--- {label} messages, {ppn} process(es) per node (percentage of MXoE performance) ---\n"
                );
                t += &format!(
                    "{:>12} {:>12} {:>16}\n",
                    "kernel", "Open-MX", "Open-MX+I/OAT"
                );
                let mut sum_omx = 0.0;
                let mut sum_ioat = 0.0;
                for k in Kernel::ALL {
                    let mx = o.num();
                    let omx_t = o.num();
                    let ioat_t = o.num();
                    // Percentage of MXoE performance (time ratio
                    // inverted).
                    let omx = 100.0 * mx / omx_t;
                    let ioat = 100.0 * mx / ioat_t;
                    t += &format!("{:>12} {:>12.1} {:>16.1}\n", k.name(), omx, ioat);
                    sum_omx += omx;
                    sum_ioat += ioat;
                }
                let n = Kernel::ALL.len() as f64;
                t += &format!(
                    "{:>12} {:>12.1} {:>16.1}   (improvement {:.0} %)\n",
                    "average",
                    sum_omx / n,
                    sum_ioat / n,
                    (sum_ioat / sum_omx - 1.0) * 100.0
                );
                t += "\n";
            }
        }
        t += "Paper shape: 128kB ≈68 % of MXoE average with I/OAT (+24 %);\n";
        t += "4MB 1ppn ≈90 % (+32 %); 4MB 2ppn ≈94 % (+41 %, shm I/OAT).\n";
        t += &o.text();
        o.finish();
        Rendered {
            text: t,
            series: Vec::new(),
        }
    });
    Plan { cells, render }
}
