//! The grid expansions of every committed experiment.
//!
//! Each module ports one former serial generator binary onto the
//! runner: `plan(&Grid)` declares the cells (one isolated simulation
//! per grid point) and a render function that merges the results — in
//! grid order — into the byte-exact text of the results file.

pub mod ablations;
pub mod batch_doorbell;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig3;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod incast;
pub mod microbench;
pub mod nas_is;
pub mod rss_ablation;
pub mod scale_ablation;

use omx_hw::CoreId;
use open_mx::cluster::ClusterParams;
use open_mx::config::OmxConfig;
use open_mx::harness::{run_pingpong, PingPongConfig, PingPongResult, Placement};

/// Two-node network ping-pong at `size` bytes under `cfg`, the shared
/// workload of figures 3, 8 and the ablations (cores as in the paper:
/// the non-interrupt core of each node).
pub(crate) fn net_pingpong(size: u64, cfg: OmxConfig) -> PingPongResult {
    let r = run_pingpong(PingPongConfig::new(
        ClusterParams::with_cfg(cfg),
        size,
        Placement::TwoNodes {
            core_a: CoreId(2),
            core_b: CoreId(2),
        },
    ));
    assert!(r.verified, "payload corruption at {size} B");
    r
}

/// Same-node shared-memory ping-pong (core 0 against `core_b`).
pub(crate) fn shm_pingpong(size: u64, core_b: CoreId, cfg: OmxConfig) -> PingPongResult {
    let r = run_pingpong(PingPongConfig::new(
        ClusterParams::with_cfg(cfg),
        size,
        Placement::SameNode {
            core_a: CoreId(0),
            core_b,
        },
    ));
    assert!(r.verified, "payload corruption at {size} B");
    r
}
