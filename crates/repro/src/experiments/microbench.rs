//! §IV-A micro-benchmarks — calibration constants and break-even
//! points (grid port of the former `microbench` binary).
//!
//! Pure hardware-model arithmetic, so the expansion is the same at
//! both scales; the cells exist so the constants are re-derived from
//! the grid's hardware profile like every other experiment.

use crate::{banner, breakdown_line, cell, CellOut, Grid, Outs, Plan, Rendered};
use omx_hw::IoatEngine;
use omx_sim::Ps;
use open_mx::autotune;
use open_mx::config::OmxConfig;
use open_mx::harness::copybench::{
    copy_breakdown, copy_rate_mibs, cpu_breakeven_bytes, CopyEngine,
};

/// Grid: one constants cell plus one breakdown cell, both against the
/// grid's hardware profile.
pub fn plan(grid: &Grid) -> Plan {
    let hw = grid.hw.clone();
    let mut cells = Vec::new();
    {
        let hw = hw.clone();
        cells.push(cell("microbench/constants", move || {
            let mut t = String::new();
            t += &format!(
                "I/OAT descriptor submission (CPU):        {}   (paper: ~350 ns)\n",
                hw.ioat_submit_cpu
            );
            t += &format!(
                "I/OAT completion check (in-order word):   {}    (paper: negligible)\n",
                hw.ioat_poll_cost
            );
            t += &format!(
                "memcpy rate, uncached:                    {:7.2} GiB/s (paper: ~1.6 GiB/s)\n",
                hw.memcpy_rate_uncached.as_mib_per_sec() / 1024.0
            );
            t += &format!(
                "memcpy rate, cache-resident:              {:7.2} GiB/s (paper: up to 12 GiB/s)\n",
                hw.memcpy_rate_cached.as_mib_per_sec() / 1024.0
            );
            t += &format!(
                "I/OAT sustained, 4 kB descriptors:        {:7.2} GiB/s (paper: ~2.4 GiB/s)\n",
                copy_rate_mibs(&hw, CopyEngine::Ioat, 16 << 20, 4096) / 1024.0
            );
            t += &format!(
                "memcpy sustained, 4 kB chunks:            {:7.2} GiB/s (paper: ~1.5 GiB/s)\n",
                copy_rate_mibs(&hw, CopyEngine::Memcpy, 16 << 20, 4096) / 1024.0
            );
            t += &format!(
                "CPU break-even (memcpy vs one submit):    {:>6} B    (paper: ~600 B)\n",
                cpu_breakeven_bytes(&hw)
            );
            // Cached break-even: how much can the shared-cache memcpy
            // move in one submission time.
            let mut cached_be = 64u64;
            while hw.memcpy_rate_shared_cache_pair.time_for(cached_be) < hw.ioat_submit_cpu {
                cached_be += 64;
            }
            t += &format!(
                "cached break-even:                        {cached_be:>6} B    (paper: ~2 kB)\n"
            );
            t += &format!(
                "submit cost for a 1 MB copy (256 desc):   {}  of CPU time\n",
                IoatEngine::submit_cpu_cost(&hw, 256)
            );
            t += "\n";
            let tune = autotune::calibrate(&hw, &OmxConfig::default());
            t += "auto-tuned thresholds (extension, §VI):\n";
            t += &format!(
                "  fragment ≥ {} B (paper: 1 kB), network message ≥ {} kB (paper: 64 kB), shm ≥ {} kB (paper: 1 MB)\n",
                tune.frag_threshold,
                tune.net_msg_threshold >> 10,
                tune.shm_threshold >> 10
            );
            let one_page = hw.ioat_desc_overhead + hw.ioat_raw_rate.time_for(4096);
            t += &format!(
                "one 4 kB descriptor executes in {} (≥ the {} submission: submission pipelines)\n",
                one_page,
                Ps::ns(350)
            );
            CellOut::Text(t)
        }));
    }
    cells.push(cell("microbench/breakdown", move || {
        CellOut::Text(breakdown_line(
            "I/OAT copy 16MB/4kB chunks",
            &copy_breakdown(&hw, CopyEngine::Ioat, 16 << 20, 4096),
        ))
    }));

    let render = Box::new(move |mut o: Outs| {
        let mut t = banner(
            "§IV-A micro-benchmarks",
            "submission/completion costs, copy rates and break-even points",
        );
        t += &o.text();
        t += &o.text();
        o.finish();
        Rendered {
            text: t,
            series: Vec::new(),
        }
    });
    Plan { cells, render }
}
