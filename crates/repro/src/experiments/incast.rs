//! Incast — receiver-driven credit budget vs pull-protocol incast.
//!
//! The study behind the congestion-control tentpole: a swarm of
//! senders simultaneously rendezvous-pushes large messages at one
//! host. Panel one scales the swarm on a clean wire and plots the
//! per-message completion time — with the credit budget on it must
//! grow sub-linearly in the sender count, with fewer than 5 % excess
//! fragments. Panel two drops the same incast onto adverse fault
//! plans (a ring shrunken to 8 slots, a flaky 1 %-loss link): the
//! credits-off rows record the collapse honestly (fragment waste,
//! shed frames), the credits-on rows must still deliver every
//! message. A final panel embeds the receiver's end-of-run stats —
//! credit shrink/NACK/stall counters and the per-queue ring
//! high-watermarks — into the committed record.

use crate::{banner, breakdown_line, cell, CellOut, Grid, Outs, Plan, Rendered};
use open_mx::cluster::ClusterParams;
use open_mx::fault::FaultPlan;
use open_mx::harness::{run_incast, IncastConfig, IncastResult};

/// Large-class message size (24 pull fragments each).
const SIZE: u64 = 96 << 10;
/// Messages per sender, streamed back-to-back.
const COUNT: u32 = 2;

fn incast_run(senders: u32, credits: bool, plan: Option<&'static str>) -> IncastResult {
    let mut params = ClusterParams::default();
    params.nic.num_queues = 4;
    params.cfg.pull_credits = credits;
    if let Some(name) = plan {
        params.cfg.fault_plan = FaultPlan::named(name).expect("known fault plan");
    }
    run_incast(IncastConfig::new(params, senders, SIZE, COUNT))
}

fn peak_ring(r: &IncastResult) -> u64 {
    r.stats
        .ring_high_watermarks
        .first()
        .map(|q| q.iter().copied().max().unwrap_or(0))
        .unwrap_or(0)
}

fn on_off(credits: bool) -> &'static str {
    if credits {
        "on"
    } else {
        "off"
    }
}

/// Scaling row: per-message completion feeds the cross-cell growth
/// column, everything else is pre-rendered.
fn scaling_cell(senders: u32, credits: bool) -> (f64, String) {
    let r = incast_run(senders, credits, None);
    if credits {
        assert!(
            r.verified,
            "credits-on incast must complete on a clean wire at {senders} senders: {}/{}",
            r.delivered, r.expected
        );
        assert!(
            r.excess_frag_pct < 5.0,
            "credits-on retransmissions must stay under 5 % of fragments \
             at {senders} senders: {:.2}%",
            r.excess_frag_pct
        );
    }
    let usec = r.per_msg.as_ps() as f64 / 1e6;
    let row = format!(
        "{:>10} {:>8} {:>11} {:>10.2} {:>13.2} {:>10}",
        senders,
        on_off(credits),
        format!("{}/{}", r.delivered, r.expected),
        usec,
        r.excess_frag_pct,
        peak_ring(&r),
    );
    (usec, row)
}

/// Survival row under an adverse fault plan.
fn survival_cell(plan: &'static str, senders: u32, credits: bool) -> String {
    let r = incast_run(senders, credits, Some(plan));
    if credits {
        assert!(
            r.verified,
            "credits-on incast must survive {plan} at {senders} senders: {}/{}",
            r.delivered, r.expected
        );
    }
    format!(
        "{:>13} {:>8} {:>11} {:>9.2} {:>10} {:>10} {:>8} {:>6} {:>7}\n",
        plan,
        on_off(credits),
        format!("{}/{}", r.delivered, r.expected),
        r.excess_frag_pct,
        r.ring_dropped_injected,
        r.ring_dropped_genuine,
        r.stats.credit_shrinks,
        r.stats.credit_nacks,
        r.stats.credit_stalls,
    )
}

/// Grid: senders × credits scaling panel, plan × credits survival
/// panel, plus the credit-controller stats line.
pub fn plan(grid: &Grid) -> Plan {
    let senders_axis = grid.axis(&[64u32, 128, 256], &[8, 16]);
    let survival_senders = grid.axis(&[64u32], &[8])[0];
    let mut cells = Vec::new();
    for &s in &senders_axis {
        for credits in [false, true] {
            cells.push(cell(
                format!("incast/scaling/{s}/{}", on_off(credits)),
                move || {
                    let (usec, row) = scaling_cell(s, credits);
                    CellOut::NumText(usec, row)
                },
            ));
        }
    }
    for plan in ["ring-pressure", "flaky-10g"] {
        for credits in [false, true] {
            cells.push(cell(
                format!("incast/survival/{plan}/{}", on_off(credits)),
                move || CellOut::Text(survival_cell(plan, survival_senders, credits)),
            ));
        }
    }
    cells.push(cell("incast/stats/ring-pressure-on", move || {
        let r = incast_run(survival_senders, true, Some("ring-pressure"));
        CellOut::Text(breakdown_line("incast_ring_pressure_credits_on", &r.stats))
    }));

    let render = Box::new(move |mut o: Outs| {
        let mut t = banner(
            "incast",
            "receiver-driven credit budget vs pull-protocol incast",
        );
        t += &format!(
            "--- scaling: N senders x {COUNT} x {} KiB large messages -> 1 host (clean wire) ---\n",
            SIZE >> 10
        );
        t += &format!(
            "{:>10} {:>8} {:>11} {:>10} {:>13} {:>10} {:>8}\n",
            "senders", "credits", "delivered", "usec/msg", "excess-frag%", "peak-ring", "growth"
        );
        let mut base = [0.0f64; 2];
        let mut growth = [0.0f64; 2];
        for (i, &s) in senders_axis.iter().enumerate() {
            for (c, _) in [false, true].into_iter().enumerate() {
                let (usec, row) = o.num_text();
                if i == 0 {
                    base[c] = usec;
                }
                growth[c] = usec / base[c];
                t += &format!("{row} {:>8.2}\n", growth[c]);
            }
            let _ = s;
        }
        // The tentpole's scaling claim: with credits on, per-message
        // completion grows sub-linearly in the sender count.
        let fan = *senders_axis.last().unwrap() as f64 / senders_axis[0] as f64;
        assert!(
            growth[1] < fan,
            "credits-on per-message completion must grow sub-linearly: \
             {:.2}x time over {fan:.0}x senders",
            growth[1]
        );
        t += &format!("\n--- survival: {survival_senders} senders under adverse plans ---\n");
        t += &format!(
            "{:>13} {:>8} {:>11} {:>9} {:>10} {:>10} {:>8} {:>6} {:>7}\n",
            "plan",
            "credits",
            "delivered",
            "excess%",
            "drops-inj",
            "drops-gen",
            "shrinks",
            "nacks",
            "stalls"
        );
        for _ in 0..4 {
            t += &o.text();
        }
        t += "\n--- credit controller state (ring-pressure, credits on) ---\n";
        t += &o.text();
        t += "\nPer-pull windows scale the in-flight fragment load with the\n";
        t += "sender count; the shared receiver budget caps it, sheds load by\n";
        t += "halving on ring pressure (NACKing the pushiest sender), and\n";
        t += "regrows additively once every queue shows sustained headroom.\n";
        o.finish();
        Rendered {
            text: t,
            series: Vec::new(),
        }
    });
    Plan { cells, render }
}
