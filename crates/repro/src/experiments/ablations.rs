//! Ablations of the design choices DESIGN.md calls out (grid port of
//! the former `ablations` binary): thresholds, sync-wait policy,
//! multi-channel split, warm-copy head, medium-path options, vectorial
//! receive buffers, DCA, fault injection and the CPU-relief recap.
//!
//! The fault-injection section expands over the grid's seed axis (the
//! committed record pins the single default root seed).

use super::{net_pingpong, shm_pingpong};
use crate::{banner, breakdown_line, cell, CellOut, Grid, Outs, Plan, Rendered};
use omx_hw::CoreId;
use omx_sim::stats::format_bytes;
use open_mx::autotune;
use open_mx::cluster::ClusterParams;
use open_mx::config::{OmxConfig, SyncWaitPolicy};
use open_mx::fault::FaultPlan;
use open_mx::harness::{run_pingpong, run_stream, PingPongConfig, Placement, StreamConfig};

fn net_rate(size: u64, cfg: OmxConfig) -> f64 {
    net_pingpong(size, cfg).throughput_mibs
}

fn shm_rate(size: u64, cfg: OmxConfig) -> f64 {
    shm_pingpong(size, CoreId(4), cfg).throughput_mibs
}

/// One vectorial-receive measurement: completion time and the number
/// of offloaded copies for `seg`-byte receive segments under
/// `frag_threshold`.
fn vectored_recv(seg: u64, frag_threshold: u64) -> (omx_sim::Ps, u64) {
    use omx_sim::{Ps, Sim};
    use open_mx::app::{App, AppCtx, Completion};
    use open_mx::cluster::Cluster;
    use open_mx::{EpAddr, EpIdx, NodeId};
    use std::cell::Cell as StdCell;
    use std::rc::Rc;

    struct VecSender {
        peer: EpAddr,
    }
    impl App for VecSender {
        fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
            ctx.isend(self.peer, 1, vec![5u8; 1 << 20], Some(1));
        }
        fn on_completion(&mut self, _ctx: &mut AppCtx<'_>, _c: Completion) {}
        fn is_done(&self) -> bool {
            true
        }
    }
    struct VecReceiver {
        seg: u64,
        done_at: Rc<StdCell<Ps>>,
    }
    impl App for VecReceiver {
        fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
            ctx.irecv_vectored(1, u64::MAX, 1 << 20, self.seg, Some(2));
        }
        fn on_completion(&mut self, ctx: &mut AppCtx<'_>, c: Completion) {
            if matches!(c, Completion::Recv { .. }) {
                self.done_at.set(ctx.now());
            }
        }
        fn is_done(&self) -> bool {
            self.done_at.get() > Ps::ZERO
        }
    }

    let done_at = Rc::new(StdCell::new(Ps::ZERO));
    let params = ClusterParams::with_cfg(OmxConfig {
        ioat_frag_threshold: frag_threshold,
        ..OmxConfig::with_ioat()
    });
    let mut cluster = Cluster::new(params);
    let mut sim: Sim<Cluster> = Sim::with_wheel_levels(cluster.p.cfg.wheel_levels);
    let peer = EpAddr {
        node: NodeId(1),
        ep: EpIdx(0),
    };
    cluster.add_endpoint(NodeId(0), CoreId(2), Box::new(VecSender { peer }));
    cluster.add_endpoint(
        NodeId(1),
        CoreId(2),
        Box::new(VecReceiver {
            seg,
            done_at: done_at.clone(),
        }),
    );
    cluster.start(&mut sim);
    sim.run(&mut cluster);
    let offloaded = cluster.ep(peer).counters.copies_offloaded;
    (done_at.get(), offloaded)
}

const VEC_SEGS: [(&str, u64); 3] = [
    ("contiguous", u64::MAX),
    ("4kB segments", 4096),
    ("256B segments", 256),
];

/// Grid: every ablation section expanded into independent cells; the
/// fault section additionally expands over the seed axis.
pub fn plan(grid: &Grid) -> Plan {
    let tuned = autotune::calibrate(&grid.hw, &OmxConfig::default());
    let thr_sizes = grid.axis(&[64u64 << 10, 256 << 10, 1 << 20], &[64u64 << 10]);
    let shm_sizes = grid.axis(&[2u64 << 20, 8 << 20], &[2u64 << 20]);
    let heads = grid.axis(&[0u64, 16 << 10, 64 << 10], &[0u64, 16 << 10]);
    let seeds = grid.seeds.clone();

    let mut cells = Vec::new();

    // thresholds: fixed vs auto-tuned, per size
    for &size in &thr_sizes {
        cells.push(cell(
            format!("ablations/thresholds/fixed/{size}"),
            move || CellOut::Num(net_rate(size, OmxConfig::with_ioat())),
        ));
        cells.push(cell(
            format!("ablations/thresholds/auto/{size}"),
            move || {
                let mut cfg = OmxConfig::with_ioat();
                autotune::apply(&mut cfg, tuned);
                CellOut::Num(net_rate(size, cfg))
            },
        ));
    }

    // shm sync-wait policy, per size
    for &size in &shm_sizes {
        for wait in [SyncWaitPolicy::BusyPoll, SyncWaitPolicy::SleepPredicted] {
            cells.push(cell(
                format!("ablations/sync-wait/{wait:?}/{size}"),
                move || {
                    CellOut::Num(shm_rate(
                        size,
                        OmxConfig {
                            sync_wait: wait,
                            ioat_shm_threshold: 1 << 20,
                            ..OmxConfig::with_ioat()
                        },
                    ))
                },
            ));
        }
    }

    // multi-channel split, per size
    for &size in &shm_sizes {
        for split in [false, true] {
            cells.push(cell(format!("ablations/split/{split}/{size}"), move || {
                CellOut::Num(shm_rate(
                    size,
                    OmxConfig {
                        ioat_shm_threshold: 1 << 20,
                        ioat_multichannel_split: split,
                        ..OmxConfig::with_ioat()
                    },
                ))
            }));
        }
    }

    // warm-copy head, per head size
    for &head in &heads {
        cells.push(cell(format!("ablations/warm-head/{head}"), move || {
            CellOut::Num(net_rate(
                1 << 20,
                OmxConfig {
                    warm_copy_head_bytes: head,
                    ..OmxConfig::with_ioat()
                },
            ))
        }));
    }

    // medium-path options at 16 kB
    cells.push(cell("ablations/medium/base", || {
        CellOut::Num(net_rate(16 << 10, OmxConfig::default()))
    }));
    cells.push(cell("ablations/medium/sync-ioat", || {
        CellOut::Num(net_rate(
            16 << 10,
            OmxConfig {
                ioat_medium_sync: true,
                ..OmxConfig::with_ioat()
            },
        ))
    }));
    cells.push(cell("ablations/medium/kernel-matching", || {
        CellOut::Num(net_rate(
            16 << 10,
            OmxConfig {
                kernel_matching: true,
                ..OmxConfig::with_ioat()
            },
        ))
    }));

    // vectorial receive buffers: segment shape × fragment threshold
    for (label, seg) in VEC_SEGS {
        for frag in [1u64 << 10, 1] {
            cells.push(cell(
                format!("ablations/vectored/{label}/{frag}"),
                move || {
                    let (done, offloads) = vectored_recv(seg, frag);
                    CellOut::U64s(vec![done.0, offloads])
                },
            ));
        }
    }

    // DCA on/off at 4 MB
    for dca in [false, true] {
        cells.push(cell(format!("ablations/dca/{dca}"), move || {
            CellOut::Num(net_rate(
                4 << 20,
                OmxConfig {
                    dca_enabled: dca,
                    ..OmxConfig::default()
                },
            ))
        }));
    }

    // fault injection: one lossless baseline, then flaky-10g per seed
    let fault_pp = |plan: FaultPlan, seed: u64| {
        let cfg = OmxConfig {
            fault_plan: plan,
            regcache: false,
            seed,
            ..OmxConfig::with_ioat()
        };
        let mut pp = PingPongConfig::new(
            ClusterParams::with_cfg(cfg),
            1 << 20,
            Placement::TwoNodes {
                core_a: CoreId(2),
                core_b: CoreId(2),
            },
        );
        pp.iters = 12;
        let r = run_pingpong(pp);
        assert!(r.verified, "fault run failed verification");
        assert_eq!(r.end_skbuffs_held, 0, "leaked skbuffs under faults");
        assert_eq!(
            r.end_pinned_regions, 0,
            "leaked pinned regions under faults"
        );
        r
    };
    {
        let seed = seeds[0];
        cells.push(cell("ablations/fault/lossless", move || {
            CellOut::Num(fault_pp(FaultPlan::default(), seed).throughput_mibs)
        }));
    }
    for &seed in &seeds {
        cells.push(cell(
            format!("ablations/fault/flaky-10g/{seed}"),
            move || {
                let r = fault_pp(FaultPlan::flaky_10g(), seed);
                CellOut::NumText(
                    r.throughput_mibs,
                    breakdown_line("flaky-10g recovery counters", &r.stats),
                )
            },
        ));
    }

    // CPU-relief recap: 1 MB receive stream, memcpy vs I/OAT
    for (label, cfg_fn) in [
        ("memcpy", OmxConfig::default as fn() -> OmxConfig),
        ("I/OAT", OmxConfig::with_ioat),
    ] {
        cells.push(cell(format!("ablations/stream/{label}"), move || {
            let r = run_stream(StreamConfig::new(
                ClusterParams::with_cfg(cfg_fn()),
                1 << 20,
            ));
            let mut t = format!(
                "  {label:>6}: BH {:4.1} % driver {:4.1} % @ {:7.1} MiB/s (skbuffs held peak {})\n",
                r.bh_util * 100.0,
                r.driver_util * 100.0,
                r.throughput_mibs,
                r.max_skbuffs_held
            );
            t += &breakdown_line(&format!("{label} stream 1MB"), &r.breakdown);
            CellOut::Text(t)
        }));
    }

    let render = Box::new(move |mut o: Outs| {
        let mut t = banner("Ablations", "design-choice studies from §V/§VI");

        t += "--- thresholds: paper-fixed vs auto-tuned (§VI) ---\n";
        t += &format!("auto-tuned: {tuned:?}\n");
        for &size in &thr_sizes {
            let fixed = o.num();
            let auto = o.num();
            t += &format!(
                "  net {:>6}: fixed {:7.1} MiB/s | auto-tuned {:7.1} MiB/s\n",
                format_bytes(size as f64),
                fixed,
                auto
            );
        }

        t += "\n--- shm sync copy: busy-poll vs sleep-until-predicted (§VI) ---\n";
        for &size in &shm_sizes {
            let busy = o.num();
            let sleep = o.num();
            t += &format!(
                "  {:>5}: busy-poll {:7.1} MiB/s | sleep-predicted {:7.1} MiB/s\n",
                format_bytes(size as f64),
                busy,
                sleep
            );
        }

        t += "\n--- shm copy: one channel vs split across 4 channels (§V, [22]) ---\n";
        for &size in &shm_sizes {
            let single = o.num();
            let multi = o.num();
            t += &format!(
                "  {:>5}: single-channel {:7.1} MiB/s | 4-channel split {:7.1} MiB/s ({:+.0} %)\n",
                format_bytes(size as f64),
                single,
                multi,
                (multi / single - 1.0) * 100.0
            );
        }

        t += "\n--- warm-copy head: memcpy the first bytes, offload the rest (§V) ---\n";
        for &head in &heads {
            let rate = o.num();
            t += &format!(
                "  head {:>5}: 1MB ping-pong {rate:7.1} MiB/s\n",
                format_bytes(head as f64)
            );
        }

        t += "\n--- medium messages (16 kB): ring path vs sync-I/OAT vs kernel matching ---\n";
        let base = o.num();
        let sync = o.num();
        let kmatch = o.num();
        t += &format!("  library matching + memcpy ring:   {base:7.1} MiB/s (the paper's stack)\n");
        t += &format!(
            "  + synchronous I/OAT ring copies:  {sync:7.1} MiB/s (paper observed a degradation)\n"
        );
        t += &format!("  in-driver matching + async I/OAT: {kmatch:7.1} MiB/s (§VI future work)\n");

        t += "\n--- vectorial receive buffers (§IV-A: tiny chunks vs the threshold) ---\n";
        for (label, _) in VEC_SEGS {
            let a = o.u64s();
            let b = o.u64s();
            let (with_threshold, off_a) = (omx_sim::Ps(a[0]), a[1]);
            let (forced, off_b) = (omx_sim::Ps(b[0]), b[1]);
            t += &format!(
                "  {label:>14}: 1kB threshold {:>10} ({off_a:>4} offloads) | forced offload {:>10} ({off_b:>4} offloads)\n",
                format!("{with_threshold}"),
                format!("{forced}"),
            );
        }
        t += "  Tiny chunks make forced offload pay ~350 ns per 256 B descriptor;\n";
        t += "  the 1 kB fragment threshold falls back to memcpy and stays fast.\n";

        t += "\n--- Direct Cache Access (§II-C): warm-source BH copies, no offload ---\n";
        for label in ["DCA off", "DCA on "] {
            let rate = o.num();
            t += &format!("  {label}: 4MB ping-pong {rate:7.1} MiB/s\n");
        }
        t += "  DCA lifts the memcpy plateau but cannot reach the overlap of the\n";
        t += "  asynchronous offload — the two I/OAT features are complementary.\n";

        t += "\n--- fault injection: lossless wire vs the flaky-10g plan ---\n";
        let clean = o.num();
        t += &format!("  lossless:  1MB ping-pong {clean:7.1} MiB/s\n");
        for _ in &seeds {
            let (flaky, counters) = o.num_text();
            t += &format!(
                "  flaky-10g: 1MB ping-pong {flaky:7.1} MiB/s ({:.1}x slower, verified, no leaks)\n",
                clean / flaky
            );
            t += &counters;
        }
        t += "  Bursty loss, duplication, corruption and a stalled I/OAT channel\n";
        t += "  degrade throughput but never correctness: retransmit timeouts back\n";
        t += "  off adaptively and stuck copies are rescued onto the CPU.\n";

        t += "\n--- receive stream 1MB: CPU relief recap ---\n";
        t += &o.text();
        t += &o.text();
        o.finish();
        Rendered {
            text: t,
            series: Vec::new(),
        }
    });
    Plan { cells, render }
}
