//! RSS ablation — multi-queue receive scaling.
//!
//! The study behind the multi-queue RX path: the same medium-message
//! fan-in (eight senders into one host) and an IMB Alltoall are run
//! with 1, 2 and 4 RSS queues. One queue funnels every fragment
//! through the single IRQ-core bottom half; with four queues the RSS
//! hash lands the flows on four cores whose BHs drain concurrently,
//! and the aggregate drain rate must scale by at least 1.5×. A second
//! panel toggles GRO frame trains on the 4-queue configuration.

use crate::{banner, cell, CellOut, Grid, Outs, Plan, Rendered};
use omx_mpi::runner::{run_kernel, Layout};
use omx_mpi::Kernel;
use omx_sim::Ps;
use open_mx::cluster::ClusterParams;
use open_mx::harness::{run_fanin, FaninConfig, FaninResult};

const QUEUES: [usize; 3] = [1, 2, 4];
const FANIN_MSG: u64 = 16 << 10;

fn fanin_run(queues: usize, count: u32, gro: bool) -> FaninResult {
    let mut params = ClusterParams::default();
    params.nic.num_queues = queues;
    params.cfg.gro = gro;
    let mut cfg = FaninConfig::new(params, FANIN_MSG);
    cfg.count = count;
    let r = run_fanin(cfg);
    assert!(r.verified, "fan-in corruption at {queues} queues");
    assert_eq!(r.end_skbuffs_held, 0, "skbuff leak at {queues} queues");
    r
}

fn busy_total(r: &FaninResult) -> Ps {
    r.bh_busy_per_core.iter().fold(Ps::ZERO, |a, &b| a + b)
}

/// Throughput plus the row prefix (the render appends the speedup
/// column, which needs the single-queue baseline from another cell).
fn fanin_cell(queues: usize, count: u32) -> (f64, String) {
    let r = fanin_run(queues, count, false);
    let total = busy_total(&r);
    let active = r.bh_busy_per_core.iter().filter(|&&b| b > Ps::ZERO).count();
    let max_share = r
        .bh_busy_per_core
        .iter()
        .map(|b| b.as_ps())
        .max()
        .unwrap_or(0) as f64
        / total.as_ps().max(1) as f64;
    let row = format!(
        "{:>10} {:>12.1} {:>17} {:>15.2}",
        queues, r.throughput_mibs, active, max_share
    );
    (r.throughput_mibs, row)
}

fn gro_cell(gro: bool, count: u32) -> String {
    let r = fanin_run(4, count, gro);
    let bh_ms = busy_total(&r).as_ps() as f64 / 1e9;
    format!(
        "{:>10} {:>12.1} {:>17} {:>13.3}\n",
        if gro { "on" } else { "off" },
        r.throughput_mibs,
        r.gro_coalesced,
        bh_ms
    )
}

fn alltoall_cell(queues: usize, size: u64, iters: u32) -> (f64, String) {
    let mut params = ClusterParams::default();
    params.nic.num_queues = queues;
    let r = run_kernel(Kernel::Alltoall, Layout::TwoPerNode, size, iters, params);
    assert!(r.verified, "alltoall failed at {queues} queues");
    let usec = r.time_per_iter.as_ps() as f64 / 1e6;
    (usec, format!("{:>10} {:>12.1}", queues, usec))
}

/// Grid: queue count × {fan-in stream, alltoall}, plus the GRO panel.
pub fn plan(grid: &Grid) -> Plan {
    let fanin_count = grid.axis(&[256u32], &[8])[0];
    let (a2a_size, a2a_iters) = grid.axis(&[(256u64 << 10, 8u32)], &[(16 << 10, 2)])[0];
    let mut cells = Vec::new();
    for q in QUEUES {
        cells.push(cell(format!("rss_ablation/fanin/{q}"), move || {
            let (thr, row) = fanin_cell(q, fanin_count);
            CellOut::NumText(thr, row)
        }));
    }
    for gro in [false, true] {
        cells.push(cell(format!("rss_ablation/gro/{gro}"), move || {
            CellOut::Text(gro_cell(gro, fanin_count))
        }));
    }
    for q in QUEUES {
        cells.push(cell(format!("rss_ablation/alltoall/{q}"), move || {
            let (usec, row) = alltoall_cell(q, a2a_size, a2a_iters);
            CellOut::NumText(usec, row)
        }));
    }

    let render = Box::new(move |mut o: Outs| {
        let mut t = banner(
            "RSS ablation",
            "multi-queue receive: RSS steering, per-core BHs, GRO trains",
        );
        t += &format!(
            "--- medium fan-in stream: 8 senders x {} KiB messages -> 1 host ---\n",
            FANIN_MSG >> 10
        );
        t += &format!(
            "{:>10} {:>12} {:>17} {:>15} {:>10}\n",
            "queues", "MiB/s", "BH-active-cores", "max-core-share", "speedup"
        );
        let mut base = 0.0;
        for q in QUEUES {
            let (thr, row) = o.num_text();
            if q == 1 {
                base = thr;
            }
            let speedup = thr / base;
            if q == 4 {
                assert!(
                    speedup >= 1.5,
                    "4-queue fan-in must drain >=1.5x faster: {speedup:.2}"
                );
            }
            t += &format!("{row} {speedup:>10.2}\n");
        }
        t += "\n--- GRO frame trains (4 queues, same fan-in) ---\n";
        t += &format!(
            "{:>10} {:>12} {:>17} {:>13}\n",
            "gro", "MiB/s", "coalesced-frames", "bh+irq-ms"
        );
        t += &o.text();
        t += &o.text();
        t += "\n--- IMB Alltoall, 2 ppn (4 ranks / 2 nodes) ---\n";
        t += &format!("{:>10} {:>12} {:>10}\n", "queues", "usec/iter", "vs-1q");
        let mut a2a_base = 0.0;
        for q in QUEUES {
            let (usec, row) = o.num_text();
            if q == 1 {
                a2a_base = usec;
            }
            t += &format!("{row} {:>10.2}\n", a2a_base / usec);
        }
        t += "\nOne queue serializes every flow on the IRQ core; RSS spreads the\n";
        t += "fan-in across per-queue bottom halves and the drain rate scales.\n";
        o.finish();
        Rendered {
            text: t,
            series: Vec::new(),
        }
    });
    Plan { cells, render }
}
