//! Doorbell batching on the medium path — §IV-A revisited.
//!
//! The paper's synchronous medium-message offload *loses* because
//! every 4 kB fragment pays the full ~350 ns descriptor-submission
//! CPU cost, so the BH spends as long feeding the DMA engine as the
//! memcpy it replaced would have taken. Batching chains one BH
//! invocation's descriptors behind a single doorbell
//! (`OmxConfig::ioat_batch`), turning the per-fragment charge into
//! `ioat_desc_chain_cpu` for every GRO-coalesced train fragment after
//! the head. This experiment re-asks the paper's question under that
//! amortization: at which chaining cost — if any — does synchronous
//! offload of medium fragments flip from loss to win, and from what
//! message size?
//!
//! Five curves over the medium-class sizes: CPU memcpy (the default
//! medium path), synchronous offload with one doorbell per descriptor
//! (the paper's losing configuration), and synchronous offload with
//! batched submission at chaining costs of 350 ns (today's
//! calibration — must match per-descriptor bit for bit), 100 ns and
//! 35 ns (progressively cheaper chain appends). The verdict block at
//! the bottom is computed from the same numbers the table shows.

use crate::{banner, cell, CellOut, Grid, Outs, Plan, Rendered};
use omx_hw::{CoreId, HwParams};
use omx_sim::stats::{format_bytes, Series};
use omx_sim::Ps;
use open_mx::cluster::ClusterParams;
use open_mx::config::OmxConfig;
use open_mx::harness::{run_pingpong, PingPongConfig, Placement};

/// The paper's medium-degradation workload: a GRO-coalescing network
/// ping-pong, so fragment trains reach the BH back to back and a
/// batched submit site has something to chain.
fn medium_pingpong(size: u64, cfg: OmxConfig, chain: Option<Ps>) -> f64 {
    let mut params = ClusterParams::with_cfg(OmxConfig { gro: true, ..cfg });
    if let Some(c) = chain {
        params.hw = HwParams {
            ioat_desc_chain_cpu: c,
            ..params.hw
        };
    }
    let r = run_pingpong(PingPongConfig::new(
        params,
        size,
        Placement::TwoNodes {
            core_a: CoreId(2),
            core_b: CoreId(2),
        },
    ));
    assert!(r.verified, "payload corruption at {size} B");
    r.throughput_mibs
}

fn sync_cfg() -> OmxConfig {
    OmxConfig {
        ioat_medium_sync: true,
        ..OmxConfig::with_ioat()
    }
}

fn batch_cfg() -> OmxConfig {
    OmxConfig {
        ioat_batch: true,
        ..sync_cfg()
    }
}

/// The verdict line for one offload curve against the memcpy
/// baseline: per-size margins (positive = offload wins), so the
/// conclusion below is backed by the same numbers the table shows.
fn verdict(name: &str, sizes: &[u64], offload: &Series, memcpy: &Series) -> String {
    let margins: Vec<String> = sizes
        .iter()
        .map(|&s| {
            let off = offload.y_at(s as f64).expect("size is on the curve");
            let cpu = memcpy.y_at(s as f64).expect("size is on the curve");
            format!(
                "{} {:+.1}%",
                format_bytes(s as f64),
                (off / cpu - 1.0) * 100.0
            )
        })
        .collect();
    format!("{name}: {}\n", margins.join(", "))
}

/// The honest flip analysis: did batching turn any per-descriptor
/// *loss* into a win, or was there no loss to flip at this
/// calibration?
fn flip_analysis(sizes: &[u64], memcpy: &Series, per_desc: &Series, best_batch: &Series) -> String {
    let at = |s: &Series, x: u64| s.y_at(x as f64).expect("size is on the curve");
    let losses: Vec<u64> = sizes
        .iter()
        .copied()
        .filter(|&s| at(per_desc, s) <= at(memcpy, s))
        .collect();
    if losses.is_empty() {
        return "No loss to flip: at this calibration the per-descriptor submission tax\n\
                already leaves sync offload at (or just above) memcpy parity — the\n\
                paper's measured degradation shows up here as break-even, not a loss\n\
                (see results/ablations.txt, medium section). Batching therefore does\n\
                not flip a verdict; it widens the margin by retiring the per-fragment\n\
                doorbell, and the win grows with message size as GRO trains lengthen.\n"
            .into();
    }
    let flipped: Vec<u64> = losses
        .iter()
        .copied()
        .filter(|&s| at(best_batch, s) > at(memcpy, s))
        .collect();
    if flipped.is_empty() {
        "Verdict not flipped: sizes that lose under per-descriptor submission\n\
         still lose with 35 ns chain appends.\n"
            .into()
    } else {
        format!(
            "Verdict flipped at {}: losses under per-descriptor submission that\n\
             35 ns chain appends turn into wins.\n",
            flipped
                .iter()
                .map(|&s| format_bytes(s as f64))
                .collect::<Vec<_>>()
                .join(", ")
        )
    }
}

/// Grid: {memcpy, per-descriptor sync, batched @350/@100/@35 ns} ×
/// medium sizes.
pub fn plan(grid: &Grid) -> Plan {
    let sizes = grid.axis(
        &[4u64 << 10, 8 << 10, 16 << 10, 32 << 10],
        &[4u64 << 10, 16 << 10],
    );
    type CurveCfg = (fn() -> OmxConfig, Option<Ps>);
    let curves: [(&str, CurveCfg); 5] = [
        ("memcpy", (OmxConfig::with_ioat, None)),
        ("sync_per_desc", (sync_cfg, None)),
        ("batch_350", (batch_cfg, Some(Ps::ns(350)))),
        ("batch_100", (batch_cfg, Some(Ps::ns(100)))),
        ("batch_35", (batch_cfg, Some(Ps::ns(35)))),
    ];
    let mut cells = Vec::new();
    for (name, (cfg_fn, chain)) in curves {
        for &s in &sizes {
            cells.push(cell(format!("batch_doorbell/{name}/{s}"), move || {
                CellOut::Num(medium_pingpong(s, cfg_fn(), chain))
            }));
        }
    }
    let render = Box::new(move |mut o: Outs| {
        let memcpy = o.series("CPU memcpy (default)", &sizes);
        let per_desc = o.series("I/OAT sync, doorbell/desc", &sizes);
        let b350 = o.series("batched, chain 350ns", &sizes);
        let b100 = o.series("batched, chain 100ns", &sizes);
        let b35 = o.series("batched, chain 35ns", &sizes);
        let all = vec![memcpy, per_desc, b350, b100, b35];
        let mut t = banner(
            "Batch doorbell",
            "Medium-message sync I/OAT offload vs memcpy as descriptor submission amortizes (MiB/s)",
        );
        t += &Series::table(&all, "size");
        t += "\n";
        t += "Margin of sync offload over the memcpy medium path (positive = offload wins):\n";
        t += &verdict(
            "  per-descriptor doorbells (paper)",
            &sizes,
            &all[1],
            &all[0],
        );
        t += &verdict(
            "  batched, chain 350ns (=submit)  ",
            &sizes,
            &all[2],
            &all[0],
        );
        t += &verdict(
            "  batched, chain 100ns            ",
            &sizes,
            &all[3],
            &all[0],
        );
        t += &verdict(
            "  batched, chain  35ns            ",
            &sizes,
            &all[4],
            &all[0],
        );
        t += "\n";
        t += &flip_analysis(&sizes, &all[0], &all[1], &all[4]);
        o.finish();
        Rendered {
            text: t,
            series: all,
        }
    });
    Plan { cells, render }
}
