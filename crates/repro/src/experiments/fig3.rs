//! Figure 3 — expected Open-MX improvement when removing the receive
//! copy from the bottom half (grid port of the former `fig3` binary).

use super::net_pingpong;
use crate::{banner, breakdown_line, cell, CellOut, Grid, Outs, Plan, Rendered};
use omx_sim::stats::Series;
use open_mx::config::OmxConfig;

fn omx_cfg(ignore_bh_copy: bool) -> OmxConfig {
    OmxConfig {
        ignore_bh_copy,
        ..OmxConfig::default()
    }
}

/// Grid: {MX model, Open-MX no-copy, Open-MX} × size sweep, plus the
/// representative 4 MB breakdown cell.
pub fn plan(grid: &Grid) -> Plan {
    let sizes = grid.sweep(4 << 20, 64 << 10);
    let mut cells = Vec::new();
    let mx_params = omx_mx::MxParams::default();
    let link = omx_ethernet::LinkParams::default();
    for &s in &sizes {
        cells.push(cell(format!("fig3/mx/{s}"), move || {
            CellOut::Num(omx_mx::curve::pingpong_throughput_mibs(
                &mx_params, &link, s,
            ))
        }));
    }
    for &s in &sizes {
        cells.push(cell(format!("fig3/omx-nocopy/{s}"), move || {
            CellOut::Num(net_pingpong(s, omx_cfg(true)).throughput_mibs)
        }));
    }
    for &s in &sizes {
        cells.push(cell(format!("fig3/omx/{s}"), move || {
            CellOut::Num(net_pingpong(s, omx_cfg(false)).throughput_mibs)
        }));
    }
    let bd_size = *sizes.last().expect("non-empty sweep");
    cells.push(cell(format!("fig3/breakdown/{bd_size}"), move || {
        let r = net_pingpong(bd_size, OmxConfig::default());
        let label = format!(
            "Open-MX pingpong {}",
            omx_sim::stats::format_bytes(bd_size as f64)
        );
        CellOut::Text(breakdown_line(&label, &r.breakdown))
    }));

    let render = Box::new(move |mut o: Outs| {
        let mx = o.series("MX", &sizes);
        let nocopy = o.series("Open-MX ignoring BH copy", &sizes);
        let omx = o.series("Open-MX", &sizes);
        let all = vec![mx, nocopy, omx];
        let mut t = banner(
            "Figure 3",
            "MX vs Open-MX vs Open-MX ignoring the BH receive copy (ping-pong MiB/s)",
        );
        t += &Series::table(&all, "size");
        t += "\n";
        t += "Paper shape: MX ≈1140 MiB/s large; Open-MX plateaus near 800 MiB/s;\n";
        t += "the no-copy counterfactual approaches line rate (1186 MiB/s).\n";
        t += &o.text();
        o.finish();
        Rendered {
            text: t,
            series: all,
        }
    });
    Plan { cells, render }
}
