//! `omx-repro` — regenerate or check the committed experimental
//! record.
//!
//! ```text
//! omx-repro --all [--jobs N] [--reduced]        regenerate results/*.txt
//! omx-repro --check [--jobs N] [--reduced]      byte-compare against committed files
//! omx-repro --only fig3,fig8 --all|--check      restrict to named experiments
//! omx-repro --list                              list experiments and golden paths
//! ```
//!
//! Output is byte-identical for any `--jobs` value (including `0`,
//! one worker per core): cells merge in grid order, never completion
//! order.

use omx_repro::{all, golden_path, run_experiment, Grid, Scale};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Opts {
    check: bool,
    regen: bool,
    list: bool,
    jobs: usize,
    reduced: bool,
    only: Option<Vec<String>>,
    results_dir: Option<PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: omx-repro (--all | --check | --list) [--only a,b] [--jobs N] [--reduced] [--results-dir DIR]"
    );
    std::process::exit(2)
}

fn parse_opts() -> Opts {
    let mut o = Opts {
        check: false,
        regen: false,
        list: false,
        jobs: 0,
        reduced: false,
        only: None,
        results_dir: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--all" => o.regen = true,
            "--check" => o.check = true,
            "--list" => o.list = true,
            "--reduced" => o.reduced = true,
            "--jobs" => {
                o.jobs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--only" => {
                o.only = Some(
                    args.next()
                        .unwrap_or_else(|| usage())
                        .split(',')
                        .map(|s| s.trim().to_string())
                        .filter(|s| !s.is_empty())
                        .collect(),
                )
            }
            "--results-dir" => {
                o.results_dir = Some(PathBuf::from(args.next().unwrap_or_else(|| usage())))
            }
            _ => usage(),
        }
    }
    if !(o.regen || o.check || o.list) || (o.regen && o.check) {
        usage()
    }
    o
}

/// Repo root: golden paths are committed repo-relative, so resolve
/// them against the workspace rather than the invocation directory.
fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root")
}

/// First line number and pair of lines where two texts diverge.
fn first_diff(a: &str, b: &str) -> Option<(usize, String, String)> {
    let (mut la, mut lb) = (a.lines(), b.lines());
    for n in 1.. {
        match (la.next(), lb.next()) {
            (None, None) => return None,
            (x, y) if x == y => continue,
            (x, y) => {
                return Some((
                    n,
                    x.unwrap_or("<end of file>").to_string(),
                    y.unwrap_or("<end of file>").to_string(),
                ))
            }
        }
    }
    unreachable!()
}

fn main() -> ExitCode {
    let opts = parse_opts();
    let scale = if opts.reduced {
        Scale::Reduced
    } else {
        Scale::Full
    };
    let grid = match scale {
        Scale::Full => Grid::full(),
        Scale::Reduced => Grid::reduced(),
    };
    let root = opts.results_dir.clone().unwrap_or_else(repo_root);

    let experiments: Vec<_> = match &opts.only {
        None => all(),
        Some(names) => {
            for n in names {
                if omx_repro::by_name(n).is_none() {
                    eprintln!("unknown experiment: {n}");
                    return ExitCode::from(2);
                }
            }
            all()
                .into_iter()
                .filter(|e| names.iter().any(|n| n == e.name))
                .collect()
        }
    };

    if opts.list {
        for e in &experiments {
            println!("{:<12} {:<32} {}", e.name, golden_path(e, scale), e.title);
        }
        return ExitCode::SUCCESS;
    }

    let mut drift = false;
    for e in &experiments {
        let rendered = run_experiment(e, &grid, opts.jobs);
        let path = root.join(golden_path(e, scale));
        if opts.check {
            match std::fs::read_to_string(&path) {
                Err(err) => {
                    println!("DRIFT {:<12} {} ({err})", e.name, path.display());
                    drift = true;
                }
                Ok(committed) if committed != rendered.text => {
                    let (n, want, got) = first_diff(&committed, &rendered.text)
                        .expect("unequal texts must diverge somewhere");
                    println!("DRIFT {:<12} {} (line {n})", e.name, path.display());
                    println!("  committed:   {want}");
                    println!("  regenerated: {got}");
                    drift = true;
                }
                Ok(_) => println!("OK    {:<12} {}", e.name, path.display()),
            }
        } else {
            if let Some(dir) = path.parent() {
                std::fs::create_dir_all(dir).expect("create results dir");
            }
            std::fs::write(&path, &rendered.text).expect("write results file");
            println!("WROTE {:<12} {}", e.name, path.display());
        }
    }
    if drift {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
