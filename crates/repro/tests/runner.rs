//! The determinism and golden-gate contracts of the experiment
//! runner:
//!
//! * for every experiment, the reduced grid renders **byte-identical**
//!   output with `--jobs 1` and `--jobs 8` — the merge happens in grid
//!   order, never completion order;
//! * the committed reduced goldens (`results/golden/reduced/*.txt`)
//!   match what the runner regenerates, so the CI `repro-check` job
//!   gates on a tree that must already pass here.

use omx_repro::{all, by_name, golden_path, run_experiment, Grid, Scale};
use std::path::PathBuf;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn every_experiment_is_byte_identical_across_thread_counts() {
    let grid = Grid::reduced();
    for e in all() {
        let serial = run_experiment(&e, &grid, 1);
        let parallel = run_experiment(&e, &grid, 8);
        assert_eq!(
            serial.text, parallel.text,
            "{}: output depends on the thread count",
            e.name
        );
        assert_eq!(
            serial.series.len(),
            parallel.series.len(),
            "{}: series depend on the thread count",
            e.name
        );
        for (a, b) in serial.series.iter().zip(&parallel.series) {
            assert_eq!(
                serde_json::to_string(a).unwrap(),
                serde_json::to_string(b).unwrap(),
                "{}: series values depend on the thread count",
                e.name
            );
        }
    }
}

#[test]
fn reduced_goldens_match_the_committed_tree() {
    let grid = Grid::reduced();
    for e in all() {
        let path = repo_root().join(golden_path(&e, Scale::Reduced));
        let committed = std::fs::read_to_string(&path).unwrap_or_else(|err| {
            panic!("{}: unreadable golden {}: {err}", e.name, path.display())
        });
        let rendered = run_experiment(&e, &grid, 4);
        assert_eq!(
            rendered.text, committed,
            "{}: reduced golden drifted — regenerate with `omx-repro --all --reduced`",
            e.name
        );
    }
}

#[test]
fn runs_do_not_share_state() {
    // Two runs of the same experiment in one process must agree: cells
    // own their whole world, so nothing (sanitizer registries, RNG,
    // caches) may leak between cells or runs.
    let grid = Grid::reduced();
    let e = by_name("fig3").expect("fig3 registered");
    let a = run_experiment(&e, &grid, 4);
    let b = run_experiment(&e, &grid, 4);
    assert_eq!(a.text, b.text);
}

#[test]
fn full_and_reduced_share_cell_structure() {
    // The reduced grid is a strict shrink: every experiment still
    // expands at least one cell and renders non-empty output at both
    // scales, so the CI gate exercises the same generators.
    for e in all() {
        for grid in [Grid::full(), Grid::reduced()] {
            let plan = (e.plan)(&grid);
            assert!(
                !plan.cells.is_empty(),
                "{}: empty expansion at {:?}",
                e.name,
                grid.scale
            );
            let mut labels: Vec<&str> = plan.cells.iter().map(|c| c.label.as_str()).collect();
            let n = labels.len();
            labels.sort_unstable();
            labels.dedup();
            assert_eq!(labels.len(), n, "{}: duplicate cell labels", e.name);
        }
    }
}

#[test]
fn golden_paths_are_distinct_and_repo_relative() {
    let mut files: Vec<String> = all()
        .iter()
        .flat_map(|e| [golden_path(e, Scale::Full), golden_path(e, Scale::Reduced)])
        .collect();
    for f in &files {
        assert!(f.starts_with("results/"), "absolute or stray path: {f}");
    }
    let n = files.len();
    files.sort();
    files.dedup();
    assert_eq!(files.len(), n, "two experiments share a golden file");
}
