//! Syntactic intra-workspace call graph.
//!
//! For every function the resolver knows about, this pass scans the
//! body token range for call sites and resolves them through the
//! module's import table:
//!
//! * **path calls** — `a::b::f(..)`, `Type::method(..)`,
//!   `Self::helper(..)` — resolved with [`Workspace::resolve`]
//!   (`Self` substituted with the impl type first);
//! * **bare calls** — `f(..)` — resolved against the module's own
//!   defs and `use` bindings;
//! * **method calls** — `x.f(..)` — resolved *by name*: when the
//!   receiver is literally `self`, only methods of the impl type are
//!   candidates; otherwise every workspace method named `f` is. This
//!   deliberately over-approximates (no type inference offline), which
//!   is the safe direction for reachability rules: a false edge can
//!   only make a hot-path rule *more* suspicious, never blind.
//!
//! Closure bodies are part of the enclosing fn's token range, so a
//! call made inside a scheduled closure is attributed to the function
//! that creates the closure — exactly the "schedules work" edge the
//! hot-path rules want. Calls through function-valued variables
//! (`f(world, sim)` where `f` is data) produce no edge; the engine's
//! event dispatch is therefore a natural reachability boundary.

use crate::resolve::Workspace;
use crate::TokKind;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// One resolved call site.
#[derive(Debug, Clone)]
pub struct Edge {
    /// Canonical id of the callee.
    pub callee: String,
    /// 1-based line of the call site.
    pub line: u32,
}

/// The workspace call graph.
pub struct CallGraph {
    /// Caller canonical id → deduplicated callees in first-seen order.
    pub edges: BTreeMap<String, Vec<Edge>>,
}

/// How a function became reachable from an entry point.
#[derive(Debug, Clone)]
pub struct Reach {
    /// Call-graph distance from the nearest entry (0 = entry itself).
    pub hops: usize,
    /// The caller that reached it (`None` for entries).
    pub via: Option<String>,
    /// The entry point this path started from.
    pub entry: String,
}

impl CallGraph {
    /// Build the graph for every function in `ws` (test-gated fns are
    /// excluded as callers *and* callees — test code is exempt from
    /// every rule, so edges through it would only manufacture noise).
    pub fn build(ws: &Workspace, files: &BTreeMap<String, crate::resolve::FileData>) -> CallGraph {
        let mut edges: BTreeMap<String, Vec<Edge>> = BTreeMap::new();
        for module in &ws.modules {
            let Some(data) = files.get(&module.file) else {
                continue;
            };
            for f in &module.fns {
                if f.cfg_test {
                    continue;
                }
                let Some((start, end)) = f.body else { continue };
                let mut out: Vec<Edge> = Vec::new();
                let mut seen: BTreeSet<String> = BTreeSet::new();
                let toks = &data.toks;
                let mut i = start;
                while i <= end && i < toks.len() {
                    let t = &toks[i];
                    if t.kind != TokKind::Ident
                        || toks.get(i + 1).map(|n| n.text.as_str()) != Some("(")
                    {
                        i += 1;
                        continue;
                    }
                    let prev = i.checked_sub(1).map(|p| toks[p].text.as_str());
                    if prev == Some(".") {
                        // Method call. `self.f(..)` restricts the
                        // candidates to the impl type's own methods.
                        // Names that collide with std container/Option
                        // methods are never matched for non-self
                        // receivers: `opt.take()` must not edge into a
                        // workspace `Reader::take`.
                        let recv_is_self = i >= 2 && toks[i - 2].text == "self";
                        if !recv_is_self && STD_COLLIDING_METHODS.contains(&t.text.as_str()) {
                            i += 1;
                            continue;
                        }
                        let candidates = ws
                            .methods_by_name
                            .get(&t.text)
                            .map(|v| v.as_slice())
                            .unwrap_or(&[]);
                        for canon in candidates {
                            if recv_is_self {
                                let Some(self_ty) = f.self_ty.as_deref() else {
                                    continue;
                                };
                                let is_own = ws.fn_info(canon).and_then(|fi| fi.self_ty.as_deref())
                                    == Some(self_ty);
                                if !is_own {
                                    continue;
                                }
                            }
                            push_edge(&mut out, &mut seen, canon.clone(), t.line, ws);
                        }
                        i += 1;
                        continue;
                    }
                    // Path or bare call: walk back over `a :: b ::`.
                    let mut segs = vec![t.text.clone()];
                    let mut j = i;
                    while j >= 3
                        && toks[j - 1].text == ":"
                        && toks[j - 2].text == ":"
                        && toks[j - 3].kind == TokKind::Ident
                    {
                        segs.insert(0, toks[j - 3].text.clone());
                        j -= 3;
                    }
                    // `<T as Trait>::f(` and `.await`-style tails are
                    // not paths we can resolve; skip them.
                    if j >= 1 && (toks[j - 1].text == ":" || toks[j - 1].text == "<") {
                        i += 1;
                        continue;
                    }
                    if segs[0] == "Self" {
                        match f.self_ty.as_deref() {
                            Some(ty) => segs[0] = ty.to_string(),
                            None => {
                                i += 1;
                                continue;
                            }
                        }
                    }
                    let canon = ws.resolve(f.module, &segs);
                    if ws.fn_index.contains_key(&canon) {
                        push_edge(&mut out, &mut seen, canon, t.line, ws);
                    } else if segs.len() == 1 {
                        // A bare call to a method of the same impl
                        // block (`helper(..)` inside `impl T`) — try
                        // `Type::name` in the defining module.
                        if let Some(ty) = f.self_ty.as_deref() {
                            let assoc = format!(
                                "{}::{}::{}",
                                ws.modules[f.module].path.join("::"),
                                ty,
                                segs[0]
                            );
                            if ws.fn_index.contains_key(&assoc) {
                                push_edge(&mut out, &mut seen, assoc, t.line, ws);
                            }
                        }
                    }
                    i += 1;
                }
                edges.insert(f.canon.clone(), out);
            }
        }
        CallGraph { edges }
    }

    /// BFS reachability from `entries` up to `max_hops` call-graph
    /// hops. Returns every reached fn (entries included at hop 0) with
    /// its provenance; deterministic (BTreeMap order).
    pub fn reachable(&self, entries: &[String], max_hops: usize) -> BTreeMap<String, Reach> {
        let mut out: BTreeMap<String, Reach> = BTreeMap::new();
        let mut queue: VecDeque<String> = VecDeque::new();
        for e in entries {
            if out.contains_key(e) {
                continue;
            }
            out.insert(
                e.clone(),
                Reach {
                    hops: 0,
                    via: None,
                    entry: e.clone(),
                },
            );
            queue.push_back(e.clone());
        }
        while let Some(cur) = queue.pop_front() {
            let cur_reach = out.get(&cur).cloned().expect("queued without reach");
            if cur_reach.hops >= max_hops {
                continue;
            }
            let Some(callees) = self.edges.get(&cur) else {
                continue;
            };
            for edge in callees {
                if out.contains_key(&edge.callee) {
                    continue;
                }
                out.insert(
                    edge.callee.clone(),
                    Reach {
                        hops: cur_reach.hops + 1,
                        via: Some(cur.clone()),
                        entry: cur_reach.entry.clone(),
                    },
                );
                queue.push_back(edge.callee.clone());
            }
        }
        out
    }

    /// Render the call chain from `reach`'s entry to `canon`
    /// (`entry → ... → canon`), for rule messages.
    pub fn chain_to(&self, reached: &BTreeMap<String, Reach>, canon: &str) -> String {
        let mut parts = vec![short(canon).to_string()];
        let mut cur = canon.to_string();
        let mut guard = 0;
        while let Some(r) = reached.get(&cur) {
            guard += 1;
            if guard > 32 {
                break;
            }
            match &r.via {
                Some(v) => {
                    parts.push(short(v).to_string());
                    cur = v.clone();
                }
                None => break,
            }
        }
        parts.reverse();
        parts.join(" -> ")
    }
}

/// Method names shared with std's containers/Option/Iterator. A
/// non-`self` receiver is almost always one of those types, so
/// matching these by name would flood the graph with false edges;
/// workspace methods with these names are still reached through
/// `self.` calls and `Type::name(..)` paths.
const STD_COLLIDING_METHODS: &[&str] = &[
    "take",
    "get",
    "get_mut",
    "insert",
    "remove",
    "push",
    "pop",
    "clear",
    "len",
    "is_empty",
    "contains",
    "contains_key",
    "next",
    "iter",
    "into_iter",
    "drain",
    "extend",
    "clone",
    "last",
    "first",
    "entry",
    "min",
    "max",
    "cmp",
    "eq",
    "fmt",
    "hash",
    "write",
    "read",
    "flush",
    "as_ref",
    "as_mut",
    "into",
    "from",
];

fn push_edge(
    out: &mut Vec<Edge>,
    seen: &mut BTreeSet<String>,
    canon: String,
    line: u32,
    ws: &Workspace,
) {
    // Never edge into test-gated fns.
    if ws.fn_info(&canon).map(|f| f.cfg_test).unwrap_or(false) {
        return;
    }
    if seen.insert(canon.clone()) {
        out.push(Edge {
            callee: canon,
            line,
        });
    }
}

/// `crate::module::Type::fn` → `Type::fn` (or `module::fn` for free
/// fns) for readable chains.
fn short(canon: &str) -> &str {
    let mut it = canon.rsplitn(3, "::");
    let last = it.next().unwrap_or(canon);
    let second = it.next();
    match second {
        Some(s) if s.chars().next().map(char::is_uppercase).unwrap_or(false) => {
            // Type::method — include the type.
            let start = canon.len() - last.len() - 2 - s.len();
            &canon[start..]
        }
        _ => last,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resolve::{load_file, Workspace};
    use std::collections::BTreeMap;
    use std::path::Path;

    fn build(files: &[(&str, &str)]) -> (Workspace, CallGraph) {
        let mut map = BTreeMap::new();
        for (rel, src) in files {
            map.insert(rel.to_string(), load_file(src));
        }
        let ws = Workspace::build(Path::new("/nonexistent"), &map);
        let cg = CallGraph::build(&ws, &map);
        (ws, cg)
    }

    #[test]
    fn free_fn_and_method_edges_resolve() {
        let (_, cg) = build(&[(
            "crates/a/src/lib.rs",
            "pub struct S;\n\
             impl S {\n\
                 pub fn entry(&self) { self.helper(); free(); }\n\
                 fn helper(&self) { crate::free(); }\n\
             }\n\
             pub fn free() {}\n",
        )]);
        let entry = &cg.edges["a::S::entry"];
        let names: Vec<&str> = entry.iter().map(|e| e.callee.as_str()).collect();
        assert!(names.contains(&"a::S::helper"), "edges: {names:?}");
        assert!(names.contains(&"a::free"), "edges: {names:?}");
        assert!(cg.edges["a::S::helper"]
            .iter()
            .any(|e| e.callee == "a::free"));
    }

    #[test]
    fn cross_crate_method_calls_over_approximate() {
        let (_, cg) = build(&[
            (
                "crates/a/src/lib.rs",
                "pub struct Q;\nimpl Q { pub fn drain_all(&mut self) {} pub fn drain(&mut self) {} }\n",
            ),
            (
                "crates/b/src/lib.rs",
                "pub fn go(q: &mut a::Q) { q.drain_all(); q.drain(); }\n",
            ),
        ]);
        let names: Vec<&str> = cg.edges["b::go"]
            .iter()
            .map(|e| e.callee.as_str())
            .collect();
        assert!(names.contains(&"a::Q::drain_all"), "edges: {names:?}");
        // `drain` collides with a std method name: no non-self edge.
        assert!(!names.contains(&"a::Q::drain"), "edges: {names:?}");
    }

    #[test]
    fn reachability_respects_hop_limit() {
        let (_, cg) = build(&[(
            "crates/a/src/lib.rs",
            "pub fn e() { one(); }\nfn one() { two(); }\nfn two() { three(); }\nfn three() {}\n",
        )]);
        let r1 = cg.reachable(&["a::e".to_string()], 1);
        assert!(r1.contains_key("a::one") && !r1.contains_key("a::two"));
        let r3 = cg.reachable(&["a::e".to_string()], 3);
        assert!(r3.contains_key("a::three"));
        assert_eq!(r3["a::three"].hops, 3);
        let chain = cg.chain_to(&r3, "a::three");
        assert_eq!(chain, "e -> one -> two -> three");
    }

    #[test]
    fn closure_bodies_attribute_calls_to_enclosing_fn() {
        let (_, cg) = build(&[(
            "crates/a/src/lib.rs",
            "pub fn sched() { run(move || { fire(); }); }\n\
             pub fn run(_f: impl FnOnce()) {}\n\
             pub fn fire() {}\n",
        )]);
        let names: Vec<&str> = cg.edges["a::sched"]
            .iter()
            .map(|e| e.callee.as_str())
            .collect();
        assert!(names.contains(&"a::fire"), "edges: {names:?}");
    }

    #[test]
    fn test_gated_fns_produce_no_edges() {
        let (_, cg) = build(&[(
            "crates/a/src/lib.rs",
            "pub fn live() {}\n#[cfg(test)]\nmod tests { pub fn t() { crate::live(); } }\n",
        )]);
        assert!(!cg.edges.contains_key("a::tests::t"));
    }
}
