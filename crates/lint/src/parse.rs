//! Recursive-descent *item* parser on top of the [`crate::tokenize`]
//! token stream.
//!
//! The v1 lint rules are token-pattern matches; the v2 rules (resolved
//! D2, hot-path D5/D6, config-knob D7) need to know *what an
//! identifier means* — which requires item structure: which `mod`s a
//! file declares, what every `use` binds (aliases, globs, nested
//! groups), where each `fn` body starts and ends, what types an `impl`
//! block attaches methods to. This module recovers exactly that much
//! structure and no more: bodies stay token ranges (scanned later by
//! the rules), types are skimmed, expressions are never parsed.
//!
//! The parser is *total*: it never fails. Anything it does not
//! understand is attributed to an [`ItemKind::Other`] and skimmed with
//! balanced-bracket matching. Every token index is marked in a
//! consumption map, and `tests/parser_roundtrip.rs` property-tests
//! that the map has no holes — the "round-trips without loss"
//! guarantee that makes skim-on-confusion safe: confusion can hide an
//! item from the resolver, but it can never silently eat half a file.

use crate::{TokKind, Token};

/// One `use` binding after flattening nested groups.
///
/// `use a::{b, c as d, e::*};` flattens to three imports. For a glob,
/// `name` is empty and `glob` is set; the `path` is the glob's prefix.
#[derive(Debug, Clone)]
pub struct Import {
    /// Path segments as written (`["std", "collections", "HashMap"]`).
    /// For `use a::b::{self}` the path is `["a", "b"]`.
    pub path: Vec<String>,
    /// Local binding name: the alias if `as` was used, else the last
    /// path segment. Empty for globs.
    pub name: String,
    /// Whether this is a `::*` glob import.
    pub glob: bool,
    /// Whether the binding is re-exported (`pub use`).
    pub is_pub: bool,
    /// 1-based line of the binding.
    pub line: u32,
}

/// A parsed function (free or associated).
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token-index range `[start, end]` of the body including both
    /// braces; `None` for bodiless declarations (trait methods).
    pub body: Option<(usize, usize)>,
    /// Whether the item carries `#[cfg(test)]`-style gating.
    pub cfg_test: bool,
    /// Whether the item carries `#[cfg(debug_assertions)]` gating.
    pub cfg_debug: bool,
}

/// A parsed struct and its named fields.
#[derive(Debug, Clone)]
pub struct StructItem {
    /// Struct name.
    pub name: String,
    /// 1-based line of the `struct` keyword.
    pub line: u32,
    /// Named fields `(name, line)` in declaration order (empty for
    /// tuple/unit structs).
    pub fields: Vec<(String, u32)>,
}

/// A parsed inline or out-of-line module declaration.
#[derive(Debug)]
pub struct ModItem {
    /// Module name.
    pub name: String,
    /// Inline items, or `None` for `mod foo;` (lives in another file).
    pub inline: Option<Vec<Item>>,
    /// Whether the module is `#[cfg(test)]`-gated.
    pub cfg_test: bool,
    /// 1-based line of the `mod` keyword.
    pub line: u32,
    /// 1-based line of the closing brace for inline modules (equal to
    /// `line` for `mod foo;`) — used to map a source line back to its
    /// innermost module.
    pub end_line: u32,
}

/// An `impl` block: the self type's final name plus its methods.
#[derive(Debug)]
pub struct ImplItem {
    /// Last path segment of the implementing type (`Sim` for
    /// `impl<W> Sim<W>`, `Nic` for `impl Foo for Nic`).
    pub self_ty: String,
    /// Methods with bodies declared in the block.
    pub fns: Vec<FnItem>,
    /// Whether the block is `#[cfg(test)]`-gated.
    pub cfg_test: bool,
    /// Whether the block is `#[cfg(debug_assertions)]`-gated.
    pub cfg_debug: bool,
    /// 1-based line of the `impl` keyword.
    pub line: u32,
}

/// One parsed top-level or module-level item.
#[derive(Debug)]
pub enum Item {
    /// `mod name;` or `mod name { ... }`.
    Mod(ModItem),
    /// One `use` declaration, flattened.
    Use(Vec<Import>),
    /// A function with optional body.
    Fn(FnItem),
    /// A struct with named fields.
    Struct(StructItem),
    /// An enum (name only; variants are not needed by any rule).
    Enum { name: String, line: u32 },
    /// An impl block and its methods.
    Impl(ImplItem),
    /// A trait and its default-bodied methods.
    Trait {
        name: String,
        fns: Vec<FnItem>,
        line: u32,
    },
    /// Anything else (consts, statics, type aliases, macros, extern
    /// blocks): skimmed, attributed, ignored by the resolver.
    Other,
}

/// Result of parsing one file's token stream.
#[derive(Debug)]
pub struct ParsedFile {
    /// The item tree.
    pub items: Vec<Item>,
    /// Per-token consumption map — `consumed[i]` is true iff token `i`
    /// was attributed to some item (including skims). The round-trip
    /// property test asserts this has no holes.
    pub consumed: Vec<bool>,
}

/// Attribute facts gathered ahead of an item.
#[derive(Debug, Default, Clone, Copy)]
struct Attrs {
    cfg_test: bool,
    cfg_debug: bool,
}

struct Parser<'t> {
    toks: &'t [Token],
    pos: usize,
    consumed: Vec<bool>,
}

/// Parse a token stream into an item tree.
pub fn parse(toks: &[Token]) -> ParsedFile {
    let mut p = Parser {
        toks,
        pos: 0,
        consumed: vec![false; toks.len()],
    };
    let items = p.items(None);
    // Anything after a stray closing brace at top level: skim it so
    // the consumption map still closes.
    while p.pos < p.toks.len() {
        p.bump();
    }
    ParsedFile {
        items,
        consumed: p.consumed,
    }
}

impl<'t> Parser<'t> {
    fn peek(&self) -> Option<&'t Token> {
        self.toks.get(self.pos)
    }

    fn peek_at(&self, off: usize) -> Option<&'t Token> {
        self.toks.get(self.pos + off)
    }

    fn is(&self, text: &str) -> bool {
        self.peek().map(|t| t.text == text).unwrap_or(false)
    }

    fn bump(&mut self) -> Option<&'t Token> {
        let t = self.toks.get(self.pos)?;
        self.consumed[self.pos] = true;
        self.pos += 1;
        Some(t)
    }

    fn eat(&mut self, text: &str) -> bool {
        if self.is(text) {
            self.bump();
            true
        } else {
            false
        }
    }

    /// Skim tokens up to (and including) the next `;` at bracket depth
    /// zero, or a balanced brace block if one opens first (covers
    /// `const X: T = { .. };` and `static`).
    fn skim_to_semi(&mut self) {
        let mut depth = 0i32;
        while let Some(t) = self.peek() {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    if depth == 0 {
                        return; // stray closer belongs to the caller
                    }
                    depth -= 1;
                }
                ";" if depth == 0 => {
                    self.bump();
                    return;
                }
                _ => {}
            }
            self.bump();
        }
    }

    /// Skim a balanced `{ ... }` block (the opener must be next);
    /// returns the inclusive token range, or `None` at EOF.
    fn skim_braces(&mut self) -> Option<(usize, usize)> {
        if !self.is("{") {
            return None;
        }
        let start = self.pos;
        let mut depth = 0i32;
        while let Some(t) = self.peek() {
            match t.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        let end = self.pos;
                        self.bump();
                        return Some((start, end));
                    }
                }
                _ => {}
            }
            self.bump();
        }
        Some((start, self.toks.len().saturating_sub(1)))
    }

    /// Skim a generic-parameter list `<...>`, tolerating `->`/`=>`
    /// (whose `>` must not close the list) and shift operators inside
    /// braced const-generic expressions.
    fn skim_angles(&mut self) {
        if !self.is("<") {
            return;
        }
        let mut depth = 0i32;
        let mut prev = String::new();
        while let Some(t) = self.peek() {
            match t.text.as_str() {
                "<" => depth += 1,
                ">" if prev != "-" && prev != "=" => {
                    depth -= 1;
                    if depth == 0 {
                        self.bump();
                        return;
                    }
                }
                "(" | "[" | "{" => {
                    // Balanced sub-groups (Fn(..), const-generic
                    // blocks) are opaque to angle counting.
                    let open = t.text.clone();
                    let close = match open.as_str() {
                        "(" => ")",
                        "[" => "]",
                        _ => "}",
                    };
                    let mut d = 0i32;
                    while let Some(u) = self.peek() {
                        if u.text == open {
                            d += 1;
                        } else if u.text == close {
                            d -= 1;
                            if d == 0 {
                                break;
                            }
                        }
                        self.bump();
                    }
                }
                _ => {}
            }
            prev = self.peek().map(|t| t.text.clone()).unwrap_or_default();
            self.bump();
        }
    }

    /// Collect leading attributes (`#[...]` / `#![...]`), recording
    /// `cfg(test)` / `cfg(all(test, ..))` and `cfg(debug_assertions)`.
    fn attrs(&mut self) -> Attrs {
        let mut out = Attrs::default();
        while self.is("#") {
            let save = self.pos;
            self.bump();
            self.eat("!");
            if !self.is("[") {
                self.pos = save;
                // A stray `#`: consume it as unknown and stop.
                self.bump();
                break;
            }
            // Balanced `[ ... ]`, scanning for cfg facts.
            let mut depth = 0i32;
            let mut saw_cfg = false;
            while let Some(t) = self.peek() {
                match t.text.as_str() {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            self.bump();
                            break;
                        }
                    }
                    "cfg" | "cfg_attr" => saw_cfg = true,
                    "test" if saw_cfg => out.cfg_test = true,
                    "debug_assertions" if saw_cfg => out.cfg_debug = true,
                    _ => {}
                }
                self.bump();
            }
        }
        out
    }

    /// Skip a visibility qualifier (`pub`, `pub(crate)`, `pub(in a)`).
    /// Returns whether the item is `pub`.
    fn visibility(&mut self) -> bool {
        if !self.is("pub") {
            return false;
        }
        self.bump();
        if self.is("(") {
            let mut depth = 0i32;
            while let Some(t) = self.peek() {
                match t.text.as_str() {
                    "(" => depth += 1,
                    ")" => {
                        depth -= 1;
                        if depth == 0 {
                            self.bump();
                            break;
                        }
                    }
                    _ => {}
                }
                self.bump();
            }
        }
        true
    }

    /// Parse items until EOF or an unmatched `}` (which is left for
    /// the caller when `stop_at_brace`).
    fn items(&mut self, stop_at_brace: Option<()>) -> Vec<Item> {
        let mut out = Vec::new();
        while let Some(t) = self.peek() {
            if t.text == "}" && stop_at_brace.is_some() {
                break;
            }
            let attrs = self.attrs();
            let is_pub = self.visibility();
            let Some(head) = self.peek() else { break };
            let line = head.line;
            let item = match (head.kind, head.text.as_str()) {
                (TokKind::Ident, "mod") => self.item_mod(attrs, line),
                (TokKind::Ident, "use") => self.item_use(is_pub),
                (TokKind::Ident, "fn") => self
                    .item_fn(attrs, line)
                    .map(Item::Fn)
                    .unwrap_or(Item::Other),
                (TokKind::Ident, "unsafe")
                | (TokKind::Ident, "async")
                | (TokKind::Ident, "extern") => {
                    // Possible fn modifiers; otherwise an unsafe/extern
                    // block or extern crate — skim.
                    let save = self.pos;
                    while matches!(
                        self.peek().map(|t| t.text.as_str()),
                        Some("unsafe") | Some("async") | Some("extern") | Some("const")
                    ) || self.peek().map(|t| t.kind) == Some(TokKind::Str)
                    {
                        self.bump();
                    }
                    if self.is("fn") {
                        self.item_fn(attrs, line)
                            .map(Item::Fn)
                            .unwrap_or(Item::Other)
                    } else {
                        self.pos = save;
                        self.skim_item()
                    }
                }
                (TokKind::Ident, "const") => {
                    // `const fn` vs `const NAME: ...;`.
                    if self.peek_at(1).map(|t| t.text.as_str()) == Some("fn") {
                        self.bump(); // const
                        self.item_fn(attrs, line)
                            .map(Item::Fn)
                            .unwrap_or(Item::Other)
                    } else {
                        self.skim_to_semi();
                        Item::Other
                    }
                }
                (TokKind::Ident, "struct") => self.item_struct(line),
                (TokKind::Ident, "enum") => {
                    self.bump();
                    let name = self.ident().unwrap_or_default();
                    self.skim_angles();
                    // `enum X { .. }` or (never in practice) `;`.
                    if self.is("{") {
                        self.skim_braces();
                    } else {
                        self.skim_to_semi();
                    }
                    Item::Enum { name, line }
                }
                (TokKind::Ident, "impl") => self.item_impl(attrs, line),
                (TokKind::Ident, "trait") => self.item_trait(attrs, line),
                (TokKind::Ident, "macro_rules") => {
                    self.bump();
                    self.eat("!");
                    self.ident();
                    self.skim_braces();
                    Item::Other
                }
                (TokKind::Ident, "type") | (TokKind::Ident, "static") => {
                    self.skim_to_semi();
                    Item::Other
                }
                _ => self.skim_item(),
            };
            out.push(item);
        }
        out
    }

    fn ident(&mut self) -> Option<String> {
        match self.peek() {
            Some(t) if t.kind == TokKind::Ident => {
                let s = t.text.clone();
                self.bump();
                Some(s)
            }
            _ => None,
        }
    }

    /// Consume one unknown construct: a balanced brace block if one
    /// opens before a `;`, else through the `;`. Guarantees progress.
    fn skim_item(&mut self) -> Item {
        let start = self.pos;
        let mut depth = 0i32;
        while let Some(t) = self.peek() {
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => {
                    if depth == 0 {
                        break; // caller's closer
                    }
                    depth -= 1;
                }
                "{" if depth == 0 => {
                    self.skim_braces();
                    return Item::Other;
                }
                "{" => depth += 1,
                "}" => {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                }
                ";" if depth == 0 => {
                    self.bump();
                    return Item::Other;
                }
                _ => {}
            }
            self.bump();
        }
        if self.pos == start {
            self.bump(); // stray closer or EOF straggler
        }
        Item::Other
    }

    fn item_mod(&mut self, attrs: Attrs, line: u32) -> Item {
        self.bump(); // mod
        let name = self.ident().unwrap_or_default();
        if self.eat(";") {
            return Item::Mod(ModItem {
                name,
                inline: None,
                cfg_test: attrs.cfg_test,
                line,
                end_line: line,
            });
        }
        if self.is("{") {
            self.bump(); // {
            let items = self.items(Some(()));
            let end_line = self.peek().map(|t| t.line).unwrap_or(u32::MAX);
            self.eat("}");
            return Item::Mod(ModItem {
                name,
                inline: Some(items),
                cfg_test: attrs.cfg_test,
                line,
                end_line,
            });
        }
        Item::Other
    }

    fn item_use(&mut self, is_pub: bool) -> Item {
        self.bump(); // use
        let mut imports = Vec::new();
        // Leading `::` (2015-style absolute path).
        self.eat(":");
        self.eat(":");
        self.use_tree(Vec::new(), is_pub, &mut imports);
        self.eat(";");
        Item::Use(imports)
    }

    /// Parse one use-tree with `prefix` already accumulated.
    fn use_tree(&mut self, prefix: Vec<String>, is_pub: bool, out: &mut Vec<Import>) {
        let mut path = prefix;
        loop {
            match self.peek() {
                Some(t) if t.kind == TokKind::Ident && t.text == "as" => {
                    self.bump();
                    let line = self.peek().map(|t| t.line).unwrap_or(0);
                    let alias = self.ident().unwrap_or_default();
                    out.push(Import {
                        path,
                        name: alias,
                        glob: false,
                        is_pub,
                        line,
                    });
                    return;
                }
                Some(t) if t.kind == TokKind::Ident => {
                    let seg = t.text.clone();
                    let line = t.line;
                    self.bump();
                    if seg == "self" && !path.is_empty() {
                        // `a::b::{self, ..}`: bind the prefix itself.
                        let name = path.last().cloned().unwrap_or_default();
                        // Optional `as` rename of self.
                        if self.peek().map(|t| t.text.as_str()) == Some("as") {
                            self.bump();
                            let alias = self.ident().unwrap_or_default();
                            out.push(Import {
                                path,
                                name: alias,
                                glob: false,
                                is_pub,
                                line,
                            });
                        } else {
                            out.push(Import {
                                path,
                                name,
                                glob: false,
                                is_pub,
                                line,
                            });
                        }
                        return;
                    }
                    path.push(seg);
                    if self.is(":") && self.peek_at(1).map(|t| t.text.as_str()) == Some(":") {
                        self.bump();
                        self.bump();
                        continue;
                    }
                    // Terminal segment without alias.
                    let name = path.last().cloned().unwrap_or_default();
                    if self.peek().map(|t| t.text.as_str()) == Some("as") {
                        continue; // handled by the `as` arm above
                    }
                    out.push(Import {
                        path,
                        name,
                        glob: false,
                        is_pub,
                        line,
                    });
                    return;
                }
                Some(t) if t.text == "*" => {
                    let line = t.line;
                    self.bump();
                    out.push(Import {
                        path,
                        name: String::new(),
                        glob: true,
                        is_pub,
                        line,
                    });
                    return;
                }
                Some(t) if t.text == "{" => {
                    self.bump();
                    loop {
                        if self.eat("}") {
                            return;
                        }
                        if self.peek().is_none() {
                            return;
                        }
                        self.use_tree(path.clone(), is_pub, out);
                        if !self.eat(",") && self.eat("}") {
                            return;
                        }
                    }
                }
                _ => return,
            }
        }
    }

    fn item_fn(&mut self, attrs: Attrs, line: u32) -> Option<FnItem> {
        self.bump(); // fn
        let name = self.ident().unwrap_or_default();
        self.skim_angles();
        // Parameters.
        if self.is("(") {
            let mut depth = 0i32;
            while let Some(t) = self.peek() {
                match t.text.as_str() {
                    "(" => depth += 1,
                    ")" => {
                        depth -= 1;
                        if depth == 0 {
                            self.bump();
                            break;
                        }
                    }
                    _ => {}
                }
                self.bump();
            }
        }
        // Return type / where clause: scan to the body `{` or `;` at
        // group depth zero.
        let mut depth = 0i32;
        loop {
            match self.peek() {
                None => {
                    return Some(FnItem {
                        name,
                        line,
                        body: None,
                        cfg_test: attrs.cfg_test,
                        cfg_debug: attrs.cfg_debug,
                    })
                }
                Some(t) => match t.text.as_str() {
                    "(" | "[" => {
                        depth += 1;
                        self.bump();
                    }
                    ")" | "]" => {
                        depth -= 1;
                        self.bump();
                    }
                    ";" if depth == 0 => {
                        self.bump();
                        return Some(FnItem {
                            name,
                            line,
                            body: None,
                            cfg_test: attrs.cfg_test,
                            cfg_debug: attrs.cfg_debug,
                        });
                    }
                    "{" if depth == 0 => {
                        let body = self.skim_braces();
                        return Some(FnItem {
                            name,
                            line,
                            body,
                            cfg_test: attrs.cfg_test,
                            cfg_debug: attrs.cfg_debug,
                        });
                    }
                    _ => {
                        self.bump();
                    }
                },
            }
        }
    }

    fn item_struct(&mut self, line: u32) -> Item {
        self.bump(); // struct
        let name = self.ident().unwrap_or_default();
        self.skim_angles();
        // `where` clause before the brace.
        let mut depth = 0i32;
        loop {
            match self.peek() {
                None => {
                    return Item::Struct(StructItem {
                        name,
                        line,
                        fields: Vec::new(),
                    })
                }
                Some(t) => match t.text.as_str() {
                    "(" | "[" => {
                        depth += 1;
                        self.bump();
                    }
                    ")" | "]" => {
                        depth -= 1;
                        self.bump();
                    }
                    ";" if depth == 0 => {
                        // Unit struct or tuple struct terminator.
                        self.bump();
                        return Item::Struct(StructItem {
                            name,
                            line,
                            fields: Vec::new(),
                        });
                    }
                    "{" if depth == 0 => break,
                    _ => {
                        self.bump();
                    }
                },
            }
        }
        // Named fields.
        self.bump(); // {
        let mut fields = Vec::new();
        loop {
            if self.eat("}") || self.peek().is_none() {
                break;
            }
            self.attrs();
            self.visibility();
            let Some(t) = self.peek() else { break };
            if t.kind == TokKind::Ident && self.peek_at(1).map(|t| t.text.as_str()) == Some(":") {
                fields.push((t.text.clone(), t.line));
                self.bump(); // name
                self.bump(); // :
                             // Skim the type to `,` or `}` at depth 0.
                let mut depth = 0i32;
                let mut prev = String::new();
                while let Some(t) = self.peek() {
                    match t.text.as_str() {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" => depth -= 1,
                        "<" => depth += 1,
                        ">" if prev != "-" && prev != "=" => depth -= 1,
                        "}" => {
                            if depth == 0 {
                                break;
                            }
                            depth -= 1;
                        }
                        "," if depth == 0 => {
                            self.bump();
                            break;
                        }
                        _ => {}
                    }
                    prev = t.text.clone();
                    self.bump();
                }
            } else {
                // Confused: skim one token and keep going.
                self.bump();
            }
        }
        Item::Struct(StructItem { name, line, fields })
    }

    /// `impl [generics] Type [for Type] [where ...] { items }`.
    fn item_impl(&mut self, attrs: Attrs, line: u32) -> Item {
        self.bump(); // impl
        self.skim_angles();
        // Collect the type path (possibly twice: `Trait for Type`).
        let mut last_ident = String::new();
        let mut depth = 0i32;
        let mut prev = String::new();
        loop {
            match self.peek() {
                None => return Item::Other,
                Some(t) => match t.text.as_str() {
                    "for" if depth == 0 => {
                        last_ident.clear(); // the self type follows
                        self.bump();
                    }
                    "where" if depth == 0 => {
                        self.bump();
                    }
                    "{" if depth == 0 => break,
                    "(" | "[" => {
                        depth += 1;
                        self.bump();
                    }
                    ")" | "]" => {
                        depth -= 1;
                        self.bump();
                    }
                    "<" => {
                        depth += 1;
                        self.bump();
                    }
                    ">" if prev != "-" && prev != "=" => {
                        depth -= 1;
                        self.bump();
                    }
                    _ => {
                        if t.kind == TokKind::Ident && depth == 0 && t.text != "dyn" {
                            last_ident = t.text.clone();
                        }
                        prev = t.text.clone();
                        self.bump();
                    }
                },
            }
        }
        // Body: parse inner items, keeping the fns.
        self.bump(); // {
        let items = self.items(Some(()));
        self.eat("}");
        let fns = items
            .into_iter()
            .filter_map(|i| match i {
                Item::Fn(f) => Some(f),
                _ => None,
            })
            .collect();
        Item::Impl(ImplItem {
            self_ty: last_ident,
            fns,
            cfg_test: attrs.cfg_test,
            cfg_debug: attrs.cfg_debug,
            line,
        })
    }

    fn item_trait(&mut self, _attrs: Attrs, line: u32) -> Item {
        self.bump(); // trait
        let name = self.ident().unwrap_or_default();
        self.skim_angles();
        // Supertraits / where clause up to the brace.
        while let Some(t) = self.peek() {
            if t.text == "{" {
                break;
            }
            if t.text == ";" {
                self.bump();
                return Item::Trait {
                    name,
                    fns: Vec::new(),
                    line,
                };
            }
            self.bump();
        }
        if !self.is("{") {
            return Item::Trait {
                name,
                fns: Vec::new(),
                line,
            };
        }
        self.bump(); // {
        let items = self.items(Some(()));
        self.eat("}");
        let fns = items
            .into_iter()
            .filter_map(|i| match i {
                Item::Fn(f) => Some(f),
                _ => None,
            })
            .collect();
        Item::Trait { name, fns, line }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenize;

    fn parsed(src: &str) -> ParsedFile {
        let (toks, _) = tokenize(src);
        parse(&toks)
    }

    #[test]
    fn parses_use_aliases_and_groups() {
        let f = parsed(
            "use std::collections::HashMap as Map;\n\
             use a::b::{c, d as e, f::*, g::{self, h}};\n",
        );
        let mut imports = Vec::new();
        for i in &f.items {
            if let Item::Use(v) = i {
                imports.extend(v.iter().cloned());
            }
        }
        assert_eq!(imports.len(), 6);
        assert_eq!(imports[0].name, "Map");
        assert_eq!(imports[0].path, vec!["std", "collections", "HashMap"]);
        assert_eq!(imports[1].name, "c");
        assert_eq!(imports[2].name, "e");
        assert_eq!(imports[2].path, vec!["a", "b", "d"]);
        assert!(imports[3].glob);
        assert_eq!(imports[3].path, vec!["a", "b", "f"]);
        assert_eq!(imports[4].name, "g", "use ...::{{self}} binds the prefix");
        assert_eq!(imports[4].path, vec!["a", "b", "g"]);
        assert_eq!(imports[5].name, "h");
    }

    #[test]
    fn parses_fns_structs_impls() {
        let f = parsed(
            "pub struct S<T> { pub a: u32, b: Vec<T>, }\n\
             impl<T> S<T> { pub fn m(&self) -> u32 { self.a } }\n\
             impl Clone for S<u8> { fn clone(&self) -> Self { todo!() } }\n\
             fn free<F: Fn(u32) -> u32>(f: F) -> u32 { f(1) }\n",
        );
        let mut names = Vec::new();
        for i in &f.items {
            match i {
                Item::Struct(s) => {
                    assert_eq!(s.name, "S");
                    let fields: Vec<_> = s.fields.iter().map(|(n, _)| n.as_str()).collect();
                    assert_eq!(fields, vec!["a", "b"]);
                }
                Item::Impl(im) => {
                    assert_eq!(im.self_ty, "S");
                    names.extend(im.fns.iter().map(|f| f.name.clone()));
                }
                Item::Fn(fun) => names.push(fun.name.clone()),
                _ => {}
            }
        }
        assert_eq!(names, vec!["m", "clone", "free"]);
        assert!(f.consumed.iter().all(|&c| c), "no token left behind");
    }

    #[test]
    fn parses_mods_inline_and_file() {
        let f = parsed(
            "mod wire;\n\
             #[cfg(test)]\nmod tests { fn t() {} }\n\
             pub mod outer { pub mod inner { pub fn g() {} } }\n",
        );
        let mods: Vec<&ModItem> = f
            .items
            .iter()
            .filter_map(|i| match i {
                Item::Mod(m) => Some(m),
                _ => None,
            })
            .collect();
        assert_eq!(mods.len(), 3);
        assert!(mods[0].inline.is_none());
        assert!(mods[1].cfg_test);
        assert!(mods[2].inline.is_some());
    }

    #[test]
    fn cfg_debug_assertions_is_recorded() {
        let f = parsed("#[cfg(debug_assertions)]\nfn dbg_only() { panic!(\"x\") }\n");
        match &f.items[0] {
            Item::Fn(fun) => assert!(fun.cfg_debug),
            other => panic!("expected fn, got {other:?}"),
        }
    }

    #[test]
    fn unknown_items_are_skimmed_without_loss() {
        let f = parsed(
            "const X: [u8; 2] = { [0, 1] };\n\
             static Y: u32 = 7;\n\
             type Z = Vec<u32>;\n\
             macro_rules! m { () => {}; }\n\
             extern crate alloc;\n\
             fn after() {}\n",
        );
        assert!(f.consumed.iter().all(|&c| c));
        assert!(f
            .items
            .iter()
            .any(|i| matches!(i, Item::Fn(fun) if fun.name == "after")));
    }
}
