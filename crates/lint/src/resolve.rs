//! Workspace module graph and offline symbol resolution.
//!
//! Built on top of [`crate::parse`]: discovers the workspace's crate
//! roots (any `<dir>/src/lib.rs` or `src/main.rs` next to a
//! `Cargo.toml`, or bare fixture crates without one), follows
//! `mod foo;` declarations to `foo.rs` / `foo/mod.rs`, and materialises
//! one [`Module`] per declared module (inline modules included). Each
//! module carries its import table, its item definitions, and its
//! functions (free and associated).
//!
//! [`Workspace::resolve`] then canonicalises any path *as written in
//! some module* to its defining `crate::module::item` path, following
//! `use` aliases, nested/group imports, glob imports and `pub use`
//! re-export chains — entirely offline, with no rustc involved. Paths
//! that leave the workspace (e.g. `std::...`) canonicalise to their
//! literal spelling, which is exactly what the rules need to recognise
//! `use std::collections::HashMap as M` through any number of hops.
//!
//! The resolver is deliberately *syntactic*: no type inference, no
//! trait resolution, no macro expansion. Rules built on it
//! over-approximate (see `callgraph.rs`) and rely on per-site waivers
//! for the residue, which keeps the whole pass dependency-free and
//! byte-deterministic.

use crate::parse::{self, FnItem, Import, Item, ParsedFile, StructItem};
use crate::{tokenize, Token};
use std::collections::BTreeMap;
use std::path::Path;

/// Identifier of a module in [`Workspace::modules`].
pub type ModId = usize;

/// Per-file data shared between the token rules and the resolver.
pub struct FileData {
    /// Token stream of the file.
    pub toks: Vec<Token>,
    /// Waiver directives `(line, rule, reason)` found in comments.
    pub waivers: Vec<(u32, String, String)>,
    /// Item tree.
    pub parsed: ParsedFile,
}

/// One function known to the workspace (free or associated).
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// Canonical id: `crate::module::fn` or `crate::module::Type::fn`.
    pub canon: String,
    /// Bare name.
    pub name: String,
    /// `Some(Type)` for associated functions.
    pub self_ty: Option<String>,
    /// File (relative to the checked root).
    pub file: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Body token range in the file's token stream.
    pub body: Option<(usize, usize)>,
    /// Module the function is defined in.
    pub module: ModId,
    /// Whether the fn (or an enclosing item) is `#[cfg(test)]`-gated.
    pub cfg_test: bool,
    /// Whether the fn (or an enclosing item) is
    /// `#[cfg(debug_assertions)]`-gated.
    pub cfg_debug: bool,
}

/// One module (a crate root, a file module, or an inline module).
pub struct Module {
    /// Canonical path segments, starting with the crate's lib name.
    pub path: Vec<String>,
    /// File the module lives in (relative to the checked root).
    pub file: String,
    /// Line range `[start, end]` of the module within its file
    /// (`[0, MAX]` for file-level modules).
    pub lines: (u32, u32),
    /// Parent module, `None` for crate roots.
    pub parent: Option<ModId>,
    /// Directory child `mod x;` declarations resolve against.
    pub child_dir: String,
    /// Import table in declaration order.
    pub imports: Vec<Import>,
    /// Child modules by name.
    pub submods: BTreeMap<String, ModId>,
    /// Type/fn definitions by name (structs, enums, traits, free fns).
    pub defs: BTreeMap<String, DefKind>,
    /// Structs declared here (D7 needs their fields).
    pub structs: BTreeMap<String, StructItem>,
    /// Functions (free and associated) declared here.
    pub fns: Vec<FnInfo>,
    /// Whether the module itself is `#[cfg(test)]`-gated.
    pub cfg_test: bool,
}

/// Kind of a named definition in a module.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DefKind {
    /// A struct/enum/trait definition.
    Type,
    /// A free function.
    Fn,
}

/// The resolved workspace: module graph + indexes.
pub struct Workspace {
    /// All modules; index is the [`ModId`].
    pub modules: Vec<Module>,
    /// Crate lib-name → root module.
    pub crate_roots: BTreeMap<String, ModId>,
    /// File → modules declared in it (file module first, then inline
    /// modules in declaration order).
    pub file_modules: BTreeMap<String, Vec<ModId>>,
    /// Canonical fn id → `(module, index into its fns)`.
    pub fn_index: BTreeMap<String, (ModId, usize)>,
    /// Method name → canonical fn ids of every associated fn with that
    /// name anywhere in the workspace.
    pub methods_by_name: BTreeMap<String, Vec<String>>,
}

impl Workspace {
    /// Build the module graph for the tree rooted at `root` from the
    /// already-tokenized-and-parsed `files` (keyed by relative path).
    pub fn build(root: &Path, files: &BTreeMap<String, FileData>) -> Workspace {
        let mut ws = Workspace {
            modules: Vec::new(),
            crate_roots: BTreeMap::new(),
            file_modules: BTreeMap::new(),
            fn_index: BTreeMap::new(),
            methods_by_name: BTreeMap::new(),
        };
        // Crate roots: every `<prefix>/src/lib.rs` (libs) and
        // `<prefix>/src/main.rs` (bins without a lib of the same name
        // — the lib wins the crate name when both exist).
        let mut claimed: Vec<String> = Vec::new();
        for kind in ["lib.rs", "main.rs"] {
            for rel in files.keys() {
                let suffix = format!("src/{kind}");
                let Some(prefix) = rel
                    .strip_suffix(&suffix)
                    .map(|p| p.trim_end_matches('/').to_string())
                else {
                    continue;
                };
                if kind == "main.rs" && claimed.contains(&prefix) {
                    continue; // lib.rs of the same crate took the name
                }
                claimed.push(prefix.clone());
                let name = crate_lib_name(root, &prefix);
                let child_dir = if prefix.is_empty() {
                    "src".to_string()
                } else {
                    format!("{prefix}/src")
                };
                let id = ws.add_module(
                    vec![name.clone()],
                    rel.clone(),
                    (0, u32::MAX),
                    None,
                    child_dir,
                    false,
                    files,
                );
                ws.crate_roots.entry(name).or_insert(id);
            }
        }
        // Stray files not reached through any `mod` chain (helper
        // binaries, generators): give each its own pseudo-module so
        // their imports still resolve.
        let reached: Vec<String> = ws.modules.iter().map(|m| m.file.clone()).collect();
        let strays: Vec<String> = files
            .keys()
            .filter(|rel| !reached.contains(rel))
            .cloned()
            .collect();
        for rel in strays {
            let path = vec![rel.replace(['/', '.'], "_")];
            let dir = rel
                .rsplit_once('/')
                .map(|(d, _)| d)
                .unwrap_or("")
                .to_string();
            ws.add_module(path, rel, (0, u32::MAX), None, dir, false, files);
        }
        ws.index();
        ws
    }

    /// Materialise one module (and, recursively, its children).
    #[allow(clippy::too_many_arguments)]
    fn add_module(
        &mut self,
        path: Vec<String>,
        file: String,
        lines: (u32, u32),
        parent: Option<ModId>,
        child_dir: String,
        cfg_test: bool,
        files: &BTreeMap<String, FileData>,
    ) -> ModId {
        let id = self.modules.len();
        self.modules.push(Module {
            path: path.clone(),
            file: file.clone(),
            lines,
            parent,
            child_dir: child_dir.clone(),
            imports: Vec::new(),
            submods: BTreeMap::new(),
            defs: BTreeMap::new(),
            structs: BTreeMap::new(),
            fns: Vec::new(),
            cfg_test,
        });
        self.file_modules.entry(file.clone()).or_default().push(id);
        let Some(data) = files.get(&file) else {
            return id;
        };
        // Inline modules of an inline module re-borrow `files`, so
        // collect child work first, then recurse.
        enum Child {
            File {
                name: String,
                rel: String,
            },
            Inline {
                name: String,
                lines: (u32, u32),
                cfg_test: bool,
            },
        }
        let mut children = Vec::new();
        {
            let items = items_for_module(&data.parsed, lines);
            self.fill_module(id, items, &file);
            for item in items {
                if let Item::Mod(m) = item {
                    match &m.inline {
                        None => {
                            // `mod foo;` → foo.rs or foo/mod.rs.
                            let cand1 = join_rel(&child_dir, &format!("{}.rs", m.name));
                            let cand2 = join_rel(&child_dir, &format!("{}/mod.rs", m.name));
                            let rel = if files.contains_key(&cand1) {
                                Some(cand1)
                            } else if files.contains_key(&cand2) {
                                Some(cand2)
                            } else {
                                None
                            };
                            if let Some(rel) = rel {
                                children.push(Child::File {
                                    name: m.name.clone(),
                                    rel,
                                });
                            }
                        }
                        Some(_) => children.push(Child::Inline {
                            name: m.name.clone(),
                            lines: (m.line, m.end_line),
                            cfg_test: m.cfg_test,
                        }),
                    }
                }
            }
        }
        for child in children {
            match child {
                Child::File { name, rel } => {
                    let mut cpath = path.clone();
                    cpath.push(name.clone());
                    let cdir = join_rel(&child_dir, &name);
                    let cid =
                        self.add_module(cpath, rel, (0, u32::MAX), Some(id), cdir, cfg_test, files);
                    self.modules[id].submods.insert(name, cid);
                }
                Child::Inline {
                    name,
                    lines,
                    cfg_test: child_test,
                } => {
                    let mut cpath = path.clone();
                    cpath.push(name.clone());
                    let cdir = join_rel(&child_dir, &name);
                    let cid = self.add_module(
                        cpath,
                        file.clone(),
                        lines,
                        Some(id),
                        cdir,
                        child_test || cfg_test,
                        files,
                    );
                    self.modules[id].submods.insert(name, cid);
                }
            }
        }
        id
    }

    /// Record a module's own imports, defs, structs and fns.
    fn fill_module(&mut self, id: ModId, items: &[Item], file: &str) {
        let base_cfg_test = self.modules[id].cfg_test;
        let mod_path = self.modules[id].path.join("::");
        for item in items {
            match item {
                Item::Use(imports) => {
                    self.modules[id].imports.extend(imports.iter().cloned());
                }
                Item::Fn(f) => {
                    let canon = format!("{mod_path}::{}", f.name);
                    self.modules[id].defs.insert(f.name.clone(), DefKind::Fn);
                    self.modules[id].fns.push(fn_info(
                        canon,
                        f,
                        None,
                        file,
                        id,
                        base_cfg_test,
                        false,
                    ));
                }
                Item::Struct(s) => {
                    self.modules[id].defs.insert(s.name.clone(), DefKind::Type);
                    self.modules[id].structs.insert(s.name.clone(), s.clone());
                }
                Item::Enum { name, .. } => {
                    self.modules[id].defs.insert(name.clone(), DefKind::Type);
                }
                Item::Trait { name, fns, .. } => {
                    self.modules[id].defs.insert(name.clone(), DefKind::Type);
                    // Default-bodied trait methods are real code; hang
                    // them off the trait's name.
                    for f in fns {
                        if f.body.is_some() {
                            let canon = format!("{mod_path}::{name}::{}", f.name);
                            self.modules[id].fns.push(fn_info(
                                canon,
                                f,
                                Some(name.clone()),
                                file,
                                id,
                                base_cfg_test,
                                false,
                            ));
                        }
                    }
                }
                Item::Impl(im) => {
                    for f in &im.fns {
                        let canon = format!("{mod_path}::{}::{}", im.self_ty, f.name);
                        self.modules[id].fns.push(fn_info(
                            canon,
                            f,
                            Some(im.self_ty.clone()),
                            file,
                            id,
                            base_cfg_test || im.cfg_test,
                            im.cfg_debug,
                        ));
                    }
                }
                Item::Mod(_) | Item::Other => {}
            }
        }
    }

    /// Build the fn and method indexes (after all modules exist).
    fn index(&mut self) {
        for (mid, m) in self.modules.iter().enumerate() {
            for (fi, f) in m.fns.iter().enumerate() {
                self.fn_index.insert(f.canon.clone(), (mid, fi));
                if f.self_ty.is_some() {
                    self.methods_by_name
                        .entry(f.name.clone())
                        .or_default()
                        .push(f.canon.clone());
                }
            }
        }
    }

    /// Look up a function by canonical id.
    pub fn fn_info(&self, canon: &str) -> Option<&FnInfo> {
        let &(mid, fi) = self.fn_index.get(canon)?;
        self.modules[mid].fns.get(fi)
    }

    /// The innermost module containing `line` of `file`, if any.
    pub fn module_at(&self, file: &str, line: u32) -> Option<ModId> {
        let mods = self.file_modules.get(file)?;
        mods.iter()
            .copied()
            .filter(|&id| {
                let (a, b) = self.modules[id].lines;
                line >= a && line <= b
            })
            .min_by_key(|&id| {
                let (a, b) = self.modules[id].lines;
                b.saturating_sub(a) // tightest range wins
            })
    }

    /// Canonicalise `segs`, as written inside module `m`, to the
    /// defining path. Returns the literal joined path when resolution
    /// leaves the workspace (externals) or gives up.
    pub fn resolve(&self, m: ModId, segs: &[String]) -> String {
        self.resolve_inner(m, segs, 0).join("::")
    }

    fn resolve_inner(&self, m: ModId, segs: &[String], depth: u8) -> Vec<String> {
        if segs.is_empty() || depth > 24 {
            return segs.to_vec();
        }
        let first = segs[0].as_str();
        // Path-root keywords.
        match first {
            "crate" => {
                let root = self.crate_root_of(m);
                return self.walk(root, &segs[1..], depth + 1);
            }
            "self" => return self.walk(m, &segs[1..], depth + 1),
            "super" => {
                let mut cur = m;
                let mut rest = segs;
                while rest.first().map(String::as_str) == Some("super") {
                    cur = match self.modules[cur].parent {
                        Some(p) => p,
                        None => return segs.to_vec(),
                    };
                    rest = &rest[1..];
                }
                return self.walk(cur, rest, depth + 1);
            }
            "Self" => return segs.to_vec(), // caller substitutes the impl type
            _ => {}
        }
        // A workspace crate name.
        if let Some(&root) = self.crate_roots.get(first) {
            return self.walk(root, &segs[1..], depth + 1);
        }
        // A local `use` binding (aliases included).
        if let Some(imp) = self.modules[m]
            .imports
            .iter()
            .find(|i| !i.glob && i.name == first)
        {
            let mut spliced = imp.path.clone();
            spliced.extend(segs[1..].iter().cloned());
            return self.resolve_inner(m, &spliced, depth + 1);
        }
        // A local submodule or definition.
        if self.modules[m].submods.contains_key(first) || self.modules[m].defs.contains_key(first) {
            return self.walk(m, segs, depth + 1);
        }
        // Glob imports: workspace-verified hits first, then a single
        // speculative external join.
        let globs: Vec<&Import> = self.modules[m].imports.iter().filter(|i| i.glob).collect();
        for g in &globs {
            let mut spliced = g.path.clone();
            spliced.extend(segs.iter().cloned());
            let out = self.resolve_inner(m, &spliced, depth + 1);
            // Accept if the glob target turned out to define the name
            // inside the workspace.
            if let Some(root_seg) = out.first() {
                if self.crate_roots.contains_key(root_seg) && self.lands_on_def(&out) {
                    return out;
                }
            }
        }
        for g in &globs {
            let root_is_external = g
                .path
                .first()
                .map(|s| {
                    !self.crate_roots.contains_key(s.as_str())
                        && !matches!(s.as_str(), "crate" | "self" | "super")
                })
                .unwrap_or(false);
            if root_is_external {
                let mut out = g.path.clone();
                out.extend(segs.iter().cloned());
                return out;
            }
        }
        // Prelude name, local variable, or external root: literal.
        segs.to_vec()
    }

    /// Walk `segs` down from module `cur`, descending submodules,
    /// stopping at definitions, and splicing through `pub use`
    /// re-exports.
    fn walk(&self, cur: ModId, segs: &[String], depth: u8) -> Vec<String> {
        if depth > 24 {
            let mut out = self.modules[cur].path.clone();
            out.extend(segs.iter().cloned());
            return out;
        }
        let Some(first) = segs.first() else {
            return self.modules[cur].path.clone();
        };
        if let Some(&sub) = self.modules[cur].submods.get(first) {
            return self.walk(sub, &segs[1..], depth + 1);
        }
        if self.modules[cur].defs.contains_key(first) {
            let mut out = self.modules[cur].path.clone();
            out.extend(segs.iter().cloned());
            return out;
        }
        // A re-export (`pub use`) visible from outside; when walking
        // within the module where resolution started the non-pub
        // imports were already consulted by `resolve_inner`.
        if let Some(imp) = self.modules[cur]
            .imports
            .iter()
            .find(|i| i.is_pub && !i.glob && i.name == *first)
        {
            let mut spliced = imp.path.clone();
            spliced.extend(segs[1..].iter().cloned());
            return self.resolve_inner(cur, &spliced, depth + 1);
        }
        // Re-export globs: `pub use inner::*`.
        for g in self.modules[cur]
            .imports
            .iter()
            .filter(|i| i.is_pub && i.glob)
        {
            let mut spliced = g.path.clone();
            spliced.extend(segs.iter().cloned());
            let out = self.resolve_inner(cur, &spliced, depth + 1);
            if self.lands_on_def(&out) {
                return out;
            }
        }
        // Unknown below this module: keep the literal tail.
        let mut out = self.modules[cur].path.clone();
        out.extend(segs.iter().cloned());
        out
    }

    /// Whether a canonical path names a definition (or fn) the
    /// workspace actually contains — used to validate glob guesses.
    fn lands_on_def(&self, canon_segs: &[String]) -> bool {
        let joined = canon_segs.join("::");
        if self.fn_index.contains_key(&joined) {
            return true;
        }
        // Try `module::Def` and `module::Def::assoc` shapes.
        for split in (1..canon_segs.len()).rev() {
            let mod_path = canon_segs[..split].join("::");
            if let Some(mid) = self.module_by_path(&mod_path) {
                let rest = &canon_segs[split..];
                if let Some(name) = rest.first() {
                    if self.modules[mid].defs.contains_key(name) {
                        return true;
                    }
                }
            }
        }
        false
    }

    /// Linear scan is fine: called only while validating glob guesses.
    fn module_by_path(&self, path: &str) -> Option<ModId> {
        self.modules.iter().position(|m| m.path.join("::") == path)
    }

    fn crate_root_of(&self, m: ModId) -> ModId {
        let mut cur = m;
        while let Some(p) = self.modules[cur].parent {
            cur = p;
        }
        cur
    }
}

fn fn_info(
    canon: String,
    f: &FnItem,
    self_ty: Option<String>,
    file: &str,
    module: ModId,
    extra_cfg_test: bool,
    extra_cfg_debug: bool,
) -> FnInfo {
    FnInfo {
        canon,
        name: f.name.clone(),
        self_ty,
        file: file.to_string(),
        line: f.line,
        body: f.body,
        module,
        cfg_test: f.cfg_test || extra_cfg_test,
        cfg_debug: f.cfg_debug || extra_cfg_debug,
    }
}

/// The items belonging to the module covering `lines` of a parsed
/// file: the top-level items for a file module, or the inline items of
/// the matching `mod` for an inline module.
fn items_for_module(parsed: &ParsedFile, lines: (u32, u32)) -> &[Item] {
    if lines == (0, u32::MAX) {
        return &parsed.items;
    }
    fn find(items: &[Item], lines: (u32, u32)) -> Option<&[Item]> {
        for item in items {
            if let Item::Mod(m) = item {
                if (m.line, m.end_line) == lines {
                    return m.inline.as_deref();
                }
                if let Some(inner) = &m.inline {
                    if let Some(found) = find(inner, lines) {
                        return Some(found);
                    }
                }
            }
        }
        None
    }
    find(&parsed.items, lines).unwrap_or(&[])
}

/// `dir/name` with empty-dir handling.
fn join_rel(dir: &str, name: &str) -> String {
    if dir.is_empty() {
        name.to_string()
    } else {
        format!("{dir}/{name}")
    }
}

/// The lib name of the crate whose sources live under
/// `<prefix>/src/`: the `name` in `<prefix>/Cargo.toml`'s `[package]`
/// section with `-` normalised to `_`, falling back to the directory
/// name (fixture trees carry no manifests).
fn crate_lib_name(root: &Path, prefix: &str) -> String {
    let manifest = if prefix.is_empty() {
        root.join("Cargo.toml")
    } else {
        root.join(prefix).join("Cargo.toml")
    };
    if let Ok(text) = std::fs::read_to_string(&manifest) {
        for line in text.lines() {
            let line = line.trim();
            if let Some(rest) = line.strip_prefix("name") {
                let rest = rest.trim_start();
                if let Some(rest) = rest.strip_prefix('=') {
                    let v = rest.trim().trim_matches('"');
                    if !v.is_empty() {
                        return v.replace('-', "_");
                    }
                }
            }
        }
    }
    let dir_name = prefix.rsplit('/').next().unwrap_or(prefix);
    if dir_name.is_empty() {
        "crate_root".to_string()
    } else {
        dir_name.replace('-', "_")
    }
}

/// Tokenize + parse one file into [`FileData`].
pub fn load_file(src: &str) -> FileData {
    let (toks, waivers) = tokenize(src);
    let parsed = parse::parse(&toks);
    FileData {
        toks,
        waivers,
        parsed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws_from(files: &[(&str, &str)]) -> (Workspace, BTreeMap<String, FileData>) {
        let mut map = BTreeMap::new();
        for (rel, src) in files {
            map.insert(rel.to_string(), load_file(src));
        }
        let ws = Workspace::build(Path::new("/nonexistent"), &map);
        (ws, map)
    }

    fn module_named(ws: &Workspace, path: &str) -> ModId {
        ws.modules
            .iter()
            .enumerate()
            .find(|(_, m)| m.path.join("::") == path)
            .map(|(i, _)| i)
            .unwrap_or_else(|| panic!("no module {path}"))
    }

    #[test]
    fn module_graph_follows_mod_decls() {
        let (ws, _) = ws_from(&[
            ("crates/a/src/lib.rs", "pub mod x;\n"),
            ("crates/a/src/x.rs", "pub mod y;\npub fn in_x() {}\n"),
            ("crates/a/src/x/y.rs", "pub fn in_y() {}\n"),
        ]);
        assert!(ws.crate_roots.contains_key("a"));
        let y = module_named(&ws, "a::x::y");
        assert_eq!(ws.modules[y].file, "crates/a/src/x/y.rs");
        assert!(ws.fn_index.contains_key("a::x::y::in_y"));
    }

    #[test]
    fn aliased_import_resolves_to_std_target() {
        let (ws, _) = ws_from(&[(
            "crates/a/src/lib.rs",
            "use std::collections::HashMap as Map;\nfn f() {}\n",
        )]);
        let m = module_named(&ws, "a");
        let r = ws.resolve(m, &["Map".to_string()]);
        assert_eq!(r, "std::collections::HashMap");
    }

    #[test]
    fn pub_use_chain_resolves_through_two_crates() {
        let (ws, _) = ws_from(&[
            (
                "crates/helpers/src/lib.rs",
                "pub mod maps;\npub use maps::Map;\n",
            ),
            (
                "crates/helpers/src/maps.rs",
                "pub use std::collections::HashMap as Map;\n",
            ),
            ("crates/core/src/lib.rs", "use helpers::Map;\nfn f() {}\n"),
        ]);
        let m = module_named(&ws, "core");
        let r = ws.resolve(m, &["Map".to_string()]);
        assert_eq!(r, "std::collections::HashMap");
    }

    #[test]
    fn glob_import_of_external_module_resolves_speculatively() {
        let (ws, _) = ws_from(&[(
            "crates/a/src/lib.rs",
            "use std::collections::*;\nfn f() {}\n",
        )]);
        let m = module_named(&ws, "a");
        let r = ws.resolve(m, &["HashSet".to_string()]);
        assert_eq!(r, "std::collections::HashSet");
    }

    #[test]
    fn crate_relative_paths_resolve() {
        let (ws, _) = ws_from(&[
            ("crates/a/src/lib.rs", "pub mod x;\n"),
            (
                "crates/a/src/x.rs",
                "pub fn g() {}\nfn f() { crate::x::g(); super::x::g(); self::g(); }\n",
            ),
        ]);
        let x = module_named(&ws, "a::x");
        for segs in [
            vec!["crate".to_string(), "x".to_string(), "g".to_string()],
            vec!["super".to_string(), "x".to_string(), "g".to_string()],
            vec!["self".to_string(), "g".to_string()],
            vec!["g".to_string()],
        ] {
            assert_eq!(ws.resolve(x, &segs), "a::x::g", "segs {segs:?}");
        }
    }

    #[test]
    fn inline_modules_get_line_ranges() {
        let (ws, _) = ws_from(&[(
            "crates/a/src/lib.rs",
            "pub fn top() {}\nmod inner {\n    pub fn f() {}\n}\n",
        )]);
        let inner = module_named(&ws, "a::inner");
        assert_eq!(ws.modules[inner].lines, (2, 4));
        let m_top = ws.module_at("crates/a/src/lib.rs", 1).unwrap();
        assert_eq!(ws.modules[m_top].path.join("::"), "a");
        let m_in = ws.module_at("crates/a/src/lib.rs", 3).unwrap();
        assert_eq!(m_in, inner);
    }
}
