//! CLI for the workspace static-analysis pass.
//!
//! ```text
//! cargo run -p omx-lint -- check .        # exit 0 when clean
//! ```

use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, root) = match args.as_slice() {
        [cmd, root] => (cmd.as_str(), root.as_str()),
        [cmd] => (cmd.as_str(), "."),
        _ => {
            eprintln!("usage: omx-lint check [PATH]");
            return ExitCode::from(2);
        }
    };
    if cmd != "check" {
        eprintln!("unknown command `{cmd}`; usage: omx-lint check [PATH]");
        return ExitCode::from(2);
    }
    let report = omx_lint::check(Path::new(root));
    if !report.waivers.is_empty() {
        println!("waivers in effect ({}):", report.waivers.len());
        for w in &report.waivers {
            println!(
                "  {}:{}: allow({}) — {}",
                w.file,
                w.line,
                w.rule,
                if w.reason.is_empty() {
                    "(no reason given)"
                } else {
                    &w.reason
                }
            );
        }
    }
    if report.is_clean() {
        println!(
            "omx-lint: clean ({} files, {} waiver(s))",
            report.files_scanned,
            report.waivers.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("omx-lint: {} violation(s):", report.violations.len());
        for v in &report.violations {
            eprintln!("  {v}");
        }
        ExitCode::FAILURE
    }
}
