//! CLI for the workspace static-analysis pass.
//!
//! ```text
//! cargo run -p omx-lint -- check .          # exit 0 when clean
//! cargo run -p omx-lint -- check --json .   # machine-readable report
//! ```
//!
//! `--json` prints the byte-deterministic report (stable finding ids,
//! sorted, line-number-free waivers) that CI diffs against
//! `results/golden/lint_baseline.json`. The exit code is unchanged:
//! 0 when clean, 1 on findings, 2 on usage errors.

use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    args.retain(|a| a != "--json");
    let (cmd, root) = match args.as_slice() {
        [cmd, root] => (cmd.as_str(), root.as_str()),
        [cmd] => (cmd.as_str(), "."),
        _ => {
            eprintln!("usage: omx-lint check [--json] [PATH]");
            return ExitCode::from(2);
        }
    };
    if cmd != "check" {
        eprintln!("unknown command `{cmd}`; usage: omx-lint check [--json] [PATH]");
        return ExitCode::from(2);
    }
    let report = omx_lint::check(Path::new(root));
    if json {
        print!("{}", report.to_json());
        return if report.is_clean() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    if !report.waivers.is_empty() {
        println!("waivers in effect ({}):", report.waivers.len());
        for w in &report.waivers {
            println!(
                "  {}:{}: allow({}) — {}",
                w.file,
                w.line,
                w.rule,
                if w.reason.is_empty() {
                    "(no reason given)"
                } else {
                    &w.reason
                }
            );
        }
    }
    for e in &report.entries_missing {
        eprintln!("omx-lint: config error: {e}");
    }
    if report.is_clean() {
        println!(
            "omx-lint: clean ({} files, {} waiver(s))",
            report.files_scanned,
            report.waivers.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("omx-lint: {} violation(s):", report.violations.len());
        for v in &report.violations {
            eprintln!("  {v}");
        }
        ExitCode::FAILURE
    }
}
