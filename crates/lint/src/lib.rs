//! `omx-lint`: a self-contained static-analysis pass over the
//! workspace sources enforcing the determinism and lifecycle
//! invariants the simulation's reproducibility rests on.
//!
//! The container build environment is offline, so this is not a
//! rustc/clippy driver: it is a small hand-rolled Rust tokenizer plus
//! token-pattern rules. That limits it to syntactic checks — which is
//! exactly what the rules need:
//!
//! * **D1 `wall-clock` / `thread` / `ad-hoc-rng`** — no
//!   `std::time::Instant`/`SystemTime`, no `std::thread`, and no
//!   ad-hoc RNG construction (`SplitMix64::new`) outside `crates/sim`.
//!   All randomness must flow from the cluster's root seed through
//!   `SplitMix64::derive`.
//! * **D2 `unordered-iter`** — no `HashMap`/`HashSet` in the
//!   simulation crates (`core`, `ethernet`, `hw`, `mpi`): iteration
//!   order feeds event ordering, so only sorted collections
//!   (`BTreeMap`/`BTreeSet`) are deterministic. Waivable per site.
//! * **D3 `counters-registry`** — every public field of
//!   `struct Counters` must be published to the metrics registry under
//!   a `"counters.<field>"` name, and `cluster::Stats` must carry a
//!   `counters` field surfacing the aggregate (a cross-file check).
//! * **D4 `lifecycle-ctor`** — the four `SimSanitizer` lifecycle types
//!   (`Skbuff`, `Region`, `CopyHandle`, `PullState`) must be
//!   constructed through their checked constructors: a struct-literal
//!   expression of one of these types outside its home module
//!   bypasses token minting, and each home module must actually thread
//!   the sanitizer.
//!
//! Violations can be waived per site with
//! `// omx-lint: allow(<rule>) <reason>` on the same or the previous
//! line; every waiver is surfaced in the report so reviews see them.
//!
//! Exemptions: `compat/` (offline stand-ins for external crates, not
//! simulation code), `target/`, `.git/`, test fixtures, and test code
//! (`tests/`/`benches/`/`examples/` directories and `#[cfg(test)]`
//! modules — libtest itself runs tests on threads, and test-local
//! collections never feed event ordering).

pub mod callgraph;
pub mod parse;
pub mod resolve;
pub mod rules_v2;

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

// ---------------------------------------------------------------------
// tokens
// ---------------------------------------------------------------------

/// Kind of one lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Single punctuation character.
    Punct,
    /// String literal (regular, raw or byte), contents included.
    Str,
    /// Character or lifetime literal.
    CharOrLifetime,
    /// Numeric literal.
    Num,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokKind,
    /// The token's text (for `Str`, the unquoted contents).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

/// A waiver comment: `// omx-lint: allow(<rule>) <reason>`.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// File the waiver appears in (relative to the checked root).
    pub file: String,
    /// 1-based line of the comment.
    pub line: u32,
    /// Rule slug being waived.
    pub rule: String,
    /// Free-form justification following the directive.
    pub reason: String,
}

/// Tokenize Rust source, collecting waiver directives from comments.
///
/// The lexer understands line/block comments (nested), regular, raw
/// and byte string literals, character literals vs. lifetimes, and
/// identifiers — enough to make token-pattern rules immune to matches
/// inside strings or comments.
pub fn tokenize(src: &str) -> (Vec<Token>, Vec<(u32, String, String)>) {
    let b: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut waivers = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < b.len() && b[i + 1] == '/' => {
                let start = i;
                while i < b.len() && b[i] != '\n' {
                    i += 1;
                }
                let text: String = b[start..i].iter().collect();
                if let Some((rule, reason)) = parse_waiver(&text) {
                    waivers.push((line, rule, reason));
                }
            }
            '/' if i + 1 < b.len() && b[i + 1] == '*' => {
                // Nested block comments, as in Rust proper.
                let mut depth = 1;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == '/' && i + 1 < b.len() && b[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == '*' && i + 1 < b.len() && b[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            '"' => {
                let start_line = line;
                i += 1;
                let s = lex_string_body(&b, &mut i, &mut line);
                toks.push(Token {
                    kind: TokKind::Str,
                    text: s,
                    line: start_line,
                });
            }
            'r' if starts_raw_string(&b, i) => {
                let start_line = line;
                i += 1; // past 'r'
                let mut hashes = 0;
                while i < b.len() && b[i] == '#' {
                    hashes += 1;
                    i += 1;
                }
                i += 1; // past opening quote
                let mut s = String::new();
                'raw: while i < b.len() {
                    if b[i] == '"' {
                        let mut ok = true;
                        for k in 0..hashes {
                            if b.get(i + 1 + k) != Some(&'#') {
                                ok = false;
                                break;
                            }
                        }
                        if ok {
                            i += 1 + hashes;
                            break 'raw;
                        }
                    }
                    if b[i] == '\n' {
                        line += 1;
                    }
                    s.push(b[i]);
                    i += 1;
                }
                toks.push(Token {
                    kind: TokKind::Str,
                    text: s,
                    line: start_line,
                });
            }
            '\'' => {
                // Lifetime ('a) or char literal ('x', '\n', '\'').
                let start_line = line;
                if i + 2 < b.len()
                    && (b[i + 1].is_alphabetic() || b[i + 1] == '_')
                    && b[i + 2] != '\''
                {
                    // Lifetime: consume the identifier.
                    let mut j = i + 1;
                    while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_') {
                        j += 1;
                    }
                    toks.push(Token {
                        kind: TokKind::CharOrLifetime,
                        text: b[i..j].iter().collect(),
                        line: start_line,
                    });
                    i = j;
                } else {
                    // Char literal: consume to closing quote, honoring
                    // escapes.
                    let start = i;
                    i += 1;
                    while i < b.len() {
                        if b[i] == '\\' {
                            i += 2;
                        } else if b[i] == '\'' {
                            i += 1;
                            break;
                        } else {
                            if b[i] == '\n' {
                                line += 1;
                            }
                            i += 1;
                        }
                    }
                    toks.push(Token {
                        kind: TokKind::CharOrLifetime,
                        text: b[start..i.min(b.len())].iter().collect(),
                        line: start_line,
                    });
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
                let text: String = b[start..i].iter().collect();
                // Byte string b"..." / raw byte string br"...".
                if (text == "b" || text == "br") && i < b.len() && (b[i] == '"' || b[i] == '#') {
                    continue; // let the string arms handle the quote
                }
                toks.push(Token {
                    kind: TokKind::Ident,
                    text,
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_' || b[i] == '.') {
                    // Stop a range expression `0..n` from being eaten.
                    if b[i] == '.' && b.get(i + 1) == Some(&'.') {
                        break;
                    }
                    i += 1;
                }
                toks.push(Token {
                    kind: TokKind::Num,
                    text: b[start..i].iter().collect(),
                    line,
                });
            }
            _ => {
                toks.push(Token {
                    kind: TokKind::Punct,
                    text: c.to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    (toks, waivers)
}

fn starts_raw_string(b: &[char], i: usize) -> bool {
    let mut j = i + 1;
    while j < b.len() && b[j] == '#' {
        j += 1;
    }
    j < b.len() && b[j] == '"' && (j > i + 1 || b[i + 1] == '"')
}

fn lex_string_body(b: &[char], i: &mut usize, line: &mut u32) -> String {
    let mut s = String::new();
    while *i < b.len() {
        match b[*i] {
            '\\' => {
                if let Some(&e) = b.get(*i + 1) {
                    s.push(e);
                }
                *i += 2;
            }
            '"' => {
                *i += 1;
                break;
            }
            c => {
                if c == '\n' {
                    *line += 1;
                }
                s.push(c);
                *i += 1;
            }
        }
    }
    s
}

fn parse_waiver(comment: &str) -> Option<(String, String)> {
    let idx = comment.find("omx-lint:")?;
    let rest = comment[idx + "omx-lint:".len()..].trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let close = rest.find(')')?;
    let rule = rest[..close].trim().to_string();
    let reason = rest[close + 1..].trim().to_string();
    // Only kebab-case slugs are directives — this keeps prose like
    // `allow(<rule>)` in documentation from registering as a waiver.
    if rule.is_empty() || !rule.chars().all(|c| c.is_ascii_lowercase() || c == '-') {
        return None;
    }
    Some((rule, reason))
}

// ---------------------------------------------------------------------
// test-module exclusion
// ---------------------------------------------------------------------

/// Line ranges (inclusive) covered by `#[cfg(test)] mod` (or
/// `#[cfg(all(test, ...))] mod`) items — unit-test code is exempt from
/// every rule.
pub fn test_mod_ranges(toks: &[Token]) -> Vec<(u32, u32)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i + 3 < toks.len() {
        // Match `# [ cfg ( ... test ... ) ]` then `mod name {`.
        if toks[i].text == "#" && toks[i + 1].text == "[" && toks[i + 2].text == "cfg" {
            if let Some(close) = matching(toks, i + 3, "(", ")") {
                let has_test = toks[i + 3..close].iter().any(|t| t.text == "test");
                let mut j = close + 1;
                if has_test && toks.get(j).map(|t| t.text.as_str()) == Some("]") {
                    j += 1;
                    // Skip further attributes between the cfg and the item.
                    while toks.get(j).map(|t| t.text.as_str()) == Some("#") {
                        if toks.get(j + 1).map(|t| t.text.as_str()) == Some("[") {
                            match matching(toks, j + 1, "[", "]") {
                                Some(c) => j = c + 1,
                                None => break,
                            }
                        } else {
                            break;
                        }
                    }
                    if toks.get(j).map(|t| t.text.as_str()) == Some("mod") {
                        // Find the `{` after the module name.
                        let mut k = j + 1;
                        while k < toks.len() && toks[k].text != "{" && toks[k].text != ";" {
                            k += 1;
                        }
                        if k < toks.len() && toks[k].text == "{" {
                            if let Some(end) = matching(toks, k, "{", "}") {
                                ranges.push((toks[i].line, toks[end].line));
                                i = end;
                            }
                        }
                    }
                }
            }
        }
        i += 1;
    }
    ranges
}

/// Index of the token closing the bracket opened at `open_idx` (which
/// must hold `open`).
pub(crate) fn matching(toks: &[Token], open_idx: usize, open: &str, close: &str) -> Option<usize> {
    if toks.get(open_idx)?.text != open {
        return None;
    }
    let mut depth = 0usize;
    for (k, t) in toks.iter().enumerate().skip(open_idx) {
        if t.kind == TokKind::Punct || t.kind == TokKind::Ident {
            if t.text == open {
                depth += 1;
            } else if t.text == close {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
        }
    }
    None
}

pub(crate) fn in_ranges(line: u32, ranges: &[(u32, u32)]) -> bool {
    ranges.iter().any(|&(a, b)| line >= a && line <= b)
}

// ---------------------------------------------------------------------
// report
// ---------------------------------------------------------------------

/// One rule violation.
#[derive(Debug, Clone)]
pub struct Violation {
    /// File, relative to the checked root.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule slug (`wall-clock`, `thread`, `ad-hoc-rng`,
    /// `unordered-iter`, `counters-registry`, `lifecycle-ctor`,
    /// `hot-path-alloc`, `fast-path-panic`, `config-knob`,
    /// `waiver-citation`).
    pub rule: String,
    /// Human-readable description of the finding.
    pub message: String,
    /// Stable finding id: fnv1a64 over `rule|file|message` (line-free,
    /// so findings keep their identity as unrelated code moves), with a
    /// `-N` occurrence suffix for repeats. Assigned at finalize.
    pub id: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Outcome of a full check: violations plus every waiver in effect.
#[derive(Debug, Default)]
pub struct Report {
    /// Unwaived violations; a non-empty list fails the check.
    pub violations: Vec<Violation>,
    /// All waiver directives found (used or not) — surfaced so code
    /// review sees each escape hatch and its justification.
    pub waivers: Vec<Waiver>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Configured rule anchors (D5/D6 entry fns, D7 knob structs) the
    /// resolver could not find. A non-empty list fails the check: a
    /// rule whose entry point silently vanished checks nothing.
    pub entries_missing: Vec<String>,
}

impl Report {
    /// Whether the workspace is clean.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.entries_missing.is_empty()
    }

    /// Machine-readable report. Byte-deterministic: everything is
    /// sorted, ids are content hashes, and volatile fields (scan
    /// counts, waiver line numbers) are omitted so the committed
    /// baseline only churns when findings or waivers actually change.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n  \"version\": 2,\n");
        s.push_str(&format!("  \"clean\": {},\n", self.is_clean()));
        s.push_str("  \"violations\": [");
        for (i, v) in self.violations.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            s.push_str(&format!(
                "    {{\"id\": \"{}\", \"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \
                 \"message\": \"{}\"}}",
                json_escape(&v.id),
                json_escape(&v.rule),
                json_escape(&v.file),
                v.line,
                json_escape(&v.message)
            ));
        }
        s.push_str(if self.violations.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        let mut waivers: Vec<&Waiver> = self.waivers.iter().collect();
        waivers.sort_by(|a, b| (&a.file, &a.rule, &a.reason).cmp(&(&b.file, &b.rule, &b.reason)));
        s.push_str("  \"waivers\": [");
        for (i, w) in waivers.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            s.push_str(&format!(
                "    {{\"rule\": \"{}\", \"file\": \"{}\", \"reason\": \"{}\"}}",
                json_escape(&w.rule),
                json_escape(&w.file),
                json_escape(&w.reason)
            ));
        }
        s.push_str(if waivers.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        s.push_str("  \"entries_missing\": [");
        for (i, e) in self.entries_missing.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            s.push_str(&format!("    \"{}\"", json_escape(e)));
        }
        s.push_str(if self.entries_missing.is_empty() {
            "]\n"
        } else {
            "\n  ]\n"
        });
        s.push_str("}\n");
        s
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// 64-bit FNV-1a — the finding-id hash. Stable across runs and
/// platforms by construction.
fn fnv1a64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------
// the rules
// ---------------------------------------------------------------------

/// A lifecycle type checked by rule D4.
struct LifecycleType {
    /// Type name whose struct-literal construction is restricted.
    name: &'static str,
    /// Home file (relative path, `/`-separated) that owns the checked
    /// constructor and may build the literal.
    home: &'static str,
}

const LIFECYCLE_TYPES: &[LifecycleType] = &[
    LifecycleType {
        name: "Skbuff",
        home: "crates/ethernet/src/skbuff.rs",
    },
    LifecycleType {
        name: "Region",
        home: "crates/core/src/region.rs",
    },
    LifecycleType {
        name: "CopyHandle",
        home: "crates/hw/src/ioat.rs",
    },
    LifecycleType {
        name: "PullState",
        home: "crates/core/src/driver/mod.rs",
    },
];

/// Crates whose iteration order feeds event ordering (rule D2).
pub(crate) const SIM_PATH_CRATES: &[&str] = &[
    "crates/core/",
    "crates/ethernet/",
    "crates/hw/",
    "crates/mpi/",
];

/// Tokens that, when directly preceding `Name {`, make the brace part
/// of a declaration/pattern rather than a struct-literal expression.
const NON_LITERAL_PRECEDERS: &[&str] = &[
    "struct", "enum", "union", "impl", "for", "trait", "mod", "fn", "dyn", ">", ":",
];

pub(crate) fn is_waived(rule: &str, line: u32, waivers: &[(u32, String, String)]) -> bool {
    waivers
        .iter()
        .any(|(l, r, _)| r == rule && (*l == line || *l + 1 == line))
}

/// Run the per-file token rules over one source file.
fn check_file_tokens(
    rel: &str,
    toks: &[Token],
    waivers: &[(u32, String, String)],
    out: &mut Report,
) {
    let excluded = test_mod_ranges(toks);
    let in_sim = rel.starts_with("crates/sim/");
    let in_sim_path_crate = SIM_PATH_CRATES.iter().any(|p| rel.starts_with(p));
    let push = |rule: &str, line: u32, message: String, out: &mut Report| {
        if !in_ranges(line, &excluded) && !is_waived(rule, line, waivers) {
            out.violations.push(Violation {
                file: rel.to_string(),
                line,
                rule: rule.to_string(),
                message,
                id: String::new(),
            });
        }
    };
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        // D1: wall-clock time sources.
        if !in_sim && (t.text == "Instant" || t.text == "SystemTime") {
            push(
                "wall-clock",
                t.line,
                format!(
                    "`{}` is wall-clock time; simulation time comes from `Sim::now()` (Ps)",
                    t.text
                ),
                out,
            );
        }
        // D1: std::thread.
        if !in_sim
            && t.text == "thread"
            && i >= 3
            && toks[i - 1].text == ":"
            && toks[i - 2].text == ":"
            && toks[i - 3].text == "std"
        {
            push(
                "thread",
                t.line,
                "`std::thread` breaks single-threaded determinism; the event loop is the only \
                 scheduler"
                    .to_string(),
                out,
            );
        }
        // D1: ad-hoc RNG construction.
        if !in_sim
            && t.text == "SplitMix64"
            && toks.get(i + 1).map(|t| t.text.as_str()) == Some(":")
            && toks.get(i + 2).map(|t| t.text.as_str()) == Some(":")
            && toks.get(i + 3).map(|t| t.text.as_str()) == Some("new")
        {
            push(
                "ad-hoc-rng",
                t.line,
                "ad-hoc RNG construction; derive a stream from the run's root seed with \
                 `SplitMix64::derive` instead"
                    .to_string(),
                out,
            );
        }
        // D2: unordered collections in simulation crates.
        if in_sim_path_crate && (t.text == "HashMap" || t.text == "HashSet") {
            push(
                "unordered-iter",
                t.line,
                format!(
                    "`{}` iteration order is nondeterministic; use BTreeMap/BTreeSet (or waive \
                     with a reason if iteration order provably never escapes)",
                    t.text
                ),
                out,
            );
        }
        // D4: struct-literal construction of lifecycle types outside
        // their home module bypasses the checked constructor.
        for lt in LIFECYCLE_TYPES {
            if t.text == lt.name
                && rel != lt.home
                && toks.get(i + 1).map(|t| t.text.as_str()) == Some("{")
            {
                let prev_ok = i
                    .checked_sub(1)
                    .map(|p| NON_LITERAL_PRECEDERS.contains(&toks[p].text.as_str()))
                    .unwrap_or(true);
                if !prev_ok {
                    push(
                        "lifecycle-ctor",
                        t.line,
                        format!(
                            "struct-literal construction of `{}` outside {}; use the checked \
                             constructor so the SimSanitizer token is minted",
                            lt.name, lt.home
                        ),
                        out,
                    );
                }
            }
        }
    }
    // Surface the file's waivers.
    for (line, rule, reason) in waivers {
        out.waivers.push(Waiver {
            file: rel.to_string(),
            line: *line,
            rule: rule.clone(),
            reason: reason.clone(),
        });
    }
}

/// Rule D3: every public `Counters` field must be published under a
/// `"counters.<field>"` registry name, and `Stats` must surface the
/// aggregate. Runs only when the checked tree contains the counters
/// module.
fn check_counters_registry(root: &Path, out: &mut Report) {
    let counters_rel = "crates/core/src/counters.rs";
    let cluster_rel = "crates/core/src/cluster.rs";
    let counters_path = root.join(counters_rel);
    let Ok(src) = std::fs::read_to_string(&counters_path) else {
        return;
    };
    let (toks, _) = tokenize(&src);
    // Collect `pub <field> :` inside `struct Counters { ... }`.
    let mut fields: Vec<(String, u32)> = Vec::new();
    let mut i = 0;
    while i + 1 < toks.len() {
        if toks[i].text == "struct" && toks[i + 1].text == "Counters" {
            let mut j = i + 2;
            while j < toks.len() && toks[j].text != "{" {
                j += 1;
            }
            if let Some(end) = matching(&toks, j, "{", "}") {
                let mut k = j + 1;
                while k + 2 < end {
                    if toks[k].text == "pub"
                        && toks[k + 1].kind == TokKind::Ident
                        && toks[k + 2].text == ":"
                    {
                        fields.push((toks[k + 1].text.clone(), toks[k + 1].line));
                        k += 3;
                    } else {
                        k += 1;
                    }
                }
            }
            break;
        }
        i += 1;
    }
    // Every field needs a `"counters.<field>"` string literal somewhere
    // in the module (the `publish` registration).
    for (field, line) in &fields {
        let want = format!("counters.{field}");
        let registered = toks
            .iter()
            .any(|t| t.kind == TokKind::Str && t.text == want);
        if !registered {
            out.violations.push(Violation {
                file: counters_rel.to_string(),
                line: *line,
                rule: "counters-registry".to_string(),
                message: format!(
                    "counter field `{field}` is not registered with the Metrics registry \
                     (no \"{want}\" name in Counters::publish)"
                ),
                id: String::new(),
            });
        }
    }
    // `Stats` must carry a `counters` field so the aggregate reaches
    // serialized results.
    let Ok(cluster_src) = std::fs::read_to_string(root.join(cluster_rel)) else {
        return;
    };
    let (ctoks, _) = tokenize(&cluster_src);
    let mut i = 0;
    let mut stats_found = false;
    let mut surfaced = false;
    while i + 1 < ctoks.len() {
        if ctoks[i].text == "struct" && ctoks[i + 1].text == "Stats" {
            stats_found = true;
            let mut j = i + 2;
            while j < ctoks.len() && ctoks[j].text != "{" {
                j += 1;
            }
            if let Some(end) = matching(&ctoks, j, "{", "}") {
                let mut k = j + 1;
                while k + 2 < end {
                    if ctoks[k].text == "counters" && ctoks[k + 1].text == ":" {
                        surfaced = true;
                        break;
                    }
                    k += 1;
                }
            }
            break;
        }
        i += 1;
    }
    if stats_found && !surfaced && !fields.is_empty() {
        out.violations.push(Violation {
            file: cluster_rel.to_string(),
            line: 1,
            rule: "counters-registry".to_string(),
            message: "`Stats` has no `counters` field; aggregated endpoint counters never reach \
                      serialized results"
                .to_string(),
            id: String::new(),
        });
    }
}

/// Rule D4's cross-file half: each lifecycle home module must actually
/// thread the sanitizer (reference the `sanitize` module).
fn check_lifecycle_homes(root: &Path, out: &mut Report) {
    for lt in LIFECYCLE_TYPES {
        let path = root.join(lt.home);
        let Ok(src) = std::fs::read_to_string(&path) else {
            continue;
        };
        let (toks, _) = tokenize(&src);
        let threads_sanitizer = toks.iter().any(|t| {
            t.kind == TokKind::Ident && (t.text == "sanitize" || t.text == "SimSanitizer")
        });
        if !threads_sanitizer {
            out.violations.push(Violation {
                file: lt.home.to_string(),
                line: 1,
                rule: "lifecycle-ctor".to_string(),
                message: format!(
                    "home module of lifecycle type `{}` never references the SimSanitizer; its \
                     checked constructor must mint a lifecycle token",
                    lt.name
                ),
                id: String::new(),
            });
        }
    }
}

// ---------------------------------------------------------------------
// walking + entry point
// ---------------------------------------------------------------------

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &[
    "target", ".git", "compat", "fixtures", "tests", "benches", "examples",
];

fn collect_sources(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
        entries.sort();
        for path in entries {
            if path.is_dir() {
                let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
                if !SKIP_DIRS.contains(&name) {
                    stack.push(path);
                }
            } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

/// Check the workspace rooted at `root` with the default (real
/// workspace) rule configuration; returns the full report.
pub fn check(root: &Path) -> Report {
    check_with(root, &rules_v2::RulesConfig::default())
}

/// Check with an explicit v2 rule configuration (fixture suites pin
/// their own entry points and knob structs).
pub fn check_with(root: &Path, cfg: &rules_v2::RulesConfig) -> Report {
    let mut report = Report::default();
    // Tokenize + parse every source once; both the token rules and the
    // resolution layer run off this map.
    let mut files: BTreeMap<String, resolve::FileData> = BTreeMap::new();
    for path in collect_sources(root) {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let Ok(src) = std::fs::read_to_string(&path) else {
            continue;
        };
        files.insert(rel, resolve::load_file(&src));
        report.files_scanned += 1;
    }
    for (rel, data) in &files {
        check_file_tokens(rel, &data.toks, &data.waivers, &mut report);
    }
    check_counters_registry(root, &mut report);
    check_lifecycle_homes(root, &mut report);
    // v2: module graph, import resolution, call graph, resolved rules.
    let ws = resolve::Workspace::build(root, &files);
    let cg = callgraph::CallGraph::build(&ws, &files);
    rules_v2::run(root, &ws, &cg, &files, cfg, &mut report);
    finalize(&mut report);
    report
}

/// Sort, dedup (token rules and resolved rules can flag the same site)
/// and assign stable finding ids.
fn finalize(report: &mut Report) {
    report.violations.sort_by(|a, b| {
        (&a.file, a.line, &a.rule, &a.message).cmp(&(&b.file, b.line, &b.rule, &b.message))
    });
    report
        .violations
        .dedup_by(|a, b| a.file == b.file && a.line == b.line && a.rule == b.rule);
    let mut seen: BTreeMap<String, u32> = BTreeMap::new();
    for v in &mut report.violations {
        let base = format!(
            "{:016x}",
            fnv1a64(&format!("{}|{}|{}", v.rule, v.file, v.message))
        );
        let n = seen.entry(base.clone()).or_insert(0);
        *n += 1;
        v.id = if *n == 1 { base } else { format!("{base}-{n}") };
    }
    report.entries_missing.sort();
    report.entries_missing.dedup();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizer_skips_strings_and_comments() {
        let src = concat!(
            "// HashMap in a comment\n",
            "/* HashMap in /* a nested */ block */\n",
            "let s = \"HashMap in a string\";\n",
            "let raw = r\"HashMap raw\";\n",
            "let m = BTreeMap::new();\n",
        );
        let (toks, _) = tokenize(src);
        assert!(!toks
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text == "HashMap"));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text == "BTreeMap"));
    }

    #[test]
    fn tokenizer_handles_lifetimes_and_chars() {
        let (toks, _) = tokenize("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::CharOrLifetime)
            .collect();
        assert_eq!(lifetimes.len(), 3); // 'a, 'a, 'x'
        assert!(toks.iter().any(|t| t.text == "str"));
    }

    #[test]
    fn waiver_directive_parses() {
        let (_, w) = tokenize("// omx-lint: allow(unordered-iter) keys are never iterated\n");
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].1, "unordered-iter");
        assert!(w[0].2.contains("never iterated"));
    }

    #[test]
    fn test_mod_ranges_cover_cfg_test() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n fn b() {}\n}\nfn c() {}\n";
        let (toks, _) = tokenize(src);
        let r = test_mod_ranges(&toks);
        assert_eq!(r.len(), 1);
        assert!(in_ranges(3, &r) && in_ranges(4, &r));
        assert!(!in_ranges(1, &r) && !in_ranges(6, &r));
    }

    #[test]
    fn cfg_all_test_also_excluded() {
        let src = "#[cfg(all(test, debug_assertions))]\nmod tests {\n use std::thread;\n}\n";
        let (toks, _) = tokenize(src);
        let r = test_mod_ranges(&toks);
        assert_eq!(r.len(), 1);
        assert!(in_ranges(3, &r));
    }

    #[test]
    fn line_numbers_survive_multiline_strings() {
        let src = "let a = \"line\nline\nline\";\nlet m = HashMap::new();\n";
        let (toks, _) = tokenize(src);
        let hm = toks.iter().find(|t| t.text == "HashMap").unwrap();
        assert_eq!(hm.line, 4);
    }
}
