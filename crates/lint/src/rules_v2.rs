//! Resolved rules (v2): checks that need the module graph, import
//! resolution and the call graph rather than raw tokens.
//!
//! * **D1/D2 resolved** — the token rules only fire where a name
//!   literally spells `HashMap` or `Instant`. Here every `use` is
//!   canonicalised through aliases, groups, globs and `pub use`
//!   re-export chains, so `use std::collections::HashMap as M` and
//!   `use helpers::Map` (where `helpers` re-exports the hash map) are
//!   caught at the import site.
//! * **D5 `hot-path-alloc`** — no allocating construct (`Box::new`,
//!   `Vec::new`, `vec!`, `format!`, `.to_vec()`, `.collect()`)
//!   reachable within `d5_hops` call-graph hops from the timing-wheel
//!   schedule/fire and BH drain entry points. This statically pins the
//!   zero-steady-state-allocation property that
//!   `crates/sim/tests/alloc_count.rs` checks dynamically, on the same
//!   entry points.
//! * **D6 `fast-path-panic`** — no `unwrap`/`expect`/`panic!`/
//!   slice-index-without-`get` reachable from the NIC deliver → BH →
//!   driver receive chain, outside `debug_assert!` arguments,
//!   `#[cfg(debug_assertions)]` functions and the sanitizer module.
//! * **D7 `config-knob`** — every field of the configured knob structs
//!   (`OmxConfig`, `NicParams`) must be covered by a `Default` arm and
//!   mentioned in README.md or DESIGN.md.
//! * **`waiver-citation`** — waivers must carry a reason *and* cite a
//!   test proving the exemption safe (`[test: <file>::<fn>]`, where
//!   the file exists and defines that fn). Not itself waivable.
//!
//! When a configured anchor (entry fn, knob struct) cannot be found
//! the rule reports it via [`crate::Report::entries_missing`] instead
//! of silently checking nothing.

use crate::callgraph::CallGraph;
use crate::resolve::{FileData, Workspace};
use crate::{
    in_ranges, is_waived, matching, test_mod_ranges, Report, TokKind, Token, Violation,
    SIM_PATH_CRATES,
};
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

/// One struct whose fields are configuration knobs (rule D7).
#[derive(Debug, Clone)]
pub struct KnobStruct {
    /// Struct name (e.g. `OmxConfig`).
    pub name: String,
    /// File (relative to the checked root) that must define it.
    pub file: String,
}

/// Configuration for the resolved rules. [`Default`] pins the real
/// workspace's entry points; fixture suites build their own.
#[derive(Debug, Clone)]
pub struct RulesConfig {
    /// D5 entry points (canonical fn ids): timing-wheel schedule/fire
    /// and BH drain.
    pub d5_entries: Vec<String>,
    /// Call-graph hop budget for D5.
    pub d5_hops: usize,
    /// D6 entry points: the NIC deliver → BH → driver receive chain.
    pub d6_entries: Vec<String>,
    /// Call-graph hop budget for D6.
    pub d6_hops: usize,
    /// D7 knob structs.
    pub knobs: Vec<KnobStruct>,
    /// Files (relative to root) where knob fields must be documented.
    pub doc_files: Vec<String>,
    /// Whether waivers must cite a proving test.
    pub require_citation: bool,
}

impl Default for RulesConfig {
    fn default() -> Self {
        let own = |s: &str| s.to_string();
        RulesConfig {
            d5_entries: vec![
                own("omx_sim::engine::Sim::schedule_at"),
                own("omx_sim::engine::Sim::schedule_in"),
                own("omx_sim::engine::Sim::schedule_at_cancellable"),
                own("omx_sim::engine::Sim::schedule_in_cancellable"),
                own("omx_sim::engine::Sim::step"),
                own("omx_sim::engine::Sim::run_until"),
                own("open_mx::cluster::Cluster::run_bh"),
                own("omx_ethernet::bh::BottomHalfQueue::pop_next"),
                // Driver/library data paths: the zero-steady-state-alloc
                // guarantee extends past the engine into fragment
                // receive, pull, shared-memory offload and library
                // assembly (dynamic pin: the driver_paths cases in
                // crates/sim/tests/alloc_count.rs).
                own("open_mx::driver::recv::Cluster::rx_medium_frag"),
                own("open_mx::driver::pull::Cluster::rx_large_frag"),
                own("open_mx::driver::pull::Cluster::start_pull"),
                own("open_mx::driver::shm::Cluster::shm_send"),
                own("open_mx::libproc::Cluster::lib_apply_medium_frag"),
            ],
            d5_hops: 2,
            d6_entries: vec![
                own("omx_ethernet::nic::Nic::deliver"),
                own("omx_ethernet::bh::BottomHalfQueue::pop_next"),
                own("open_mx::cluster::Cluster::run_bh"),
            ],
            d6_hops: 2,
            knobs: vec![
                KnobStruct {
                    name: "OmxConfig".to_string(),
                    file: "crates/core/src/config.rs".to_string(),
                },
                KnobStruct {
                    name: "NicParams".to_string(),
                    file: "crates/ethernet/src/nic.rs".to_string(),
                },
            ],
            doc_files: vec!["README.md".to_string(), "DESIGN.md".to_string()],
            require_citation: true,
        }
    }
}

/// Run every resolved rule, appending findings to `out`.
pub fn run(
    root: &Path,
    ws: &Workspace,
    cg: &CallGraph,
    files: &BTreeMap<String, FileData>,
    cfg: &RulesConfig,
    out: &mut Report,
) {
    check_resolved_imports(ws, files, out);
    check_hot_path(ws, cg, files, cfg, out, HotRule::Alloc);
    check_hot_path(ws, cg, files, cfg, out, HotRule::Panic);
    check_config_knobs(root, ws, files, cfg, out);
    check_waiver_citations(root, files, cfg, out);
}

// ---------------------------------------------------------------------
// D1/D2 resolved: imports canonicalised through aliases + re-exports
// ---------------------------------------------------------------------

fn check_resolved_imports(ws: &Workspace, files: &BTreeMap<String, FileData>, out: &mut Report) {
    for (mid, module) in ws.modules.iter().enumerate() {
        if module.cfg_test {
            continue;
        }
        let Some(data) = files.get(&module.file) else {
            continue;
        };
        let excluded = test_mod_ranges(&data.toks);
        let in_sim = module.file.starts_with("crates/sim/");
        let in_sim_path = SIM_PATH_CRATES.iter().any(|p| module.file.starts_with(p));
        for imp in &module.imports {
            if in_ranges(imp.line, &excluded) {
                continue;
            }
            // Resolve the import's own target. Resolving through the
            // *declaring* module follows local aliases and, for
            // workspace paths, `pub use` chains in other modules.
            let canon = ws.resolve(mid, &imp.path);
            if in_sim_path
                && (canon == "std::collections::HashMap" || canon == "std::collections::HashSet")
            {
                let ty = canon.rsplit("::").next().unwrap_or(&canon);
                push(
                    out,
                    &module.file,
                    imp.line,
                    "unordered-iter",
                    format!(
                        "import binds `{}` to `{canon}`; {ty} iteration order is \
                         nondeterministic — use BTreeMap/BTreeSet",
                        imp.name
                    ),
                    &data.waivers,
                );
            }
            if !in_sim && (canon == "std::time::Instant" || canon == "std::time::SystemTime") {
                push(
                    out,
                    &module.file,
                    imp.line,
                    "wall-clock",
                    format!(
                        "import binds `{}` to `{canon}` (wall-clock time); simulation time \
                         comes from `Sim::now()`",
                        imp.name
                    ),
                    &data.waivers,
                );
            }
            if !in_sim && (canon == "std::thread" || canon.starts_with("std::thread::")) {
                push(
                    out,
                    &module.file,
                    imp.line,
                    "thread",
                    format!(
                        "import binds `{}` to `{canon}`; `std::thread` breaks \
                         single-threaded determinism",
                        imp.name
                    ),
                    &data.waivers,
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// D5/D6: hot-path reachability rules
// ---------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq)]
enum HotRule {
    Alloc,
    Panic,
}

impl HotRule {
    fn slug(self) -> &'static str {
        match self {
            HotRule::Alloc => "hot-path-alloc",
            HotRule::Panic => "fast-path-panic",
        }
    }
}

fn check_hot_path(
    ws: &Workspace,
    cg: &CallGraph,
    files: &BTreeMap<String, FileData>,
    cfg: &RulesConfig,
    out: &mut Report,
    rule: HotRule,
) {
    let (entries, hops) = match rule {
        HotRule::Alloc => (&cfg.d5_entries, cfg.d5_hops),
        HotRule::Panic => (&cfg.d6_entries, cfg.d6_hops),
    };
    if entries.is_empty() {
        return;
    }
    for e in entries {
        if ws.fn_info(e).is_none() {
            out.entries_missing.push(format!(
                "{} entry `{e}` not found in the workspace",
                rule.slug()
            ));
        }
    }
    let reach = cg.reachable(entries, hops);
    for (canon, _) in reach.iter() {
        let Some(fi) = ws.fn_info(canon) else {
            continue;
        };
        if fi.cfg_test || fi.cfg_debug || fi.file.ends_with("sanitize.rs") {
            continue;
        }
        let Some((start, end)) = fi.body else {
            continue;
        };
        let Some(data) = files.get(&fi.file) else {
            continue;
        };
        let findings = match rule {
            HotRule::Alloc => scan_alloc(ws, fi.module, &data.toks, start, end),
            HotRule::Panic => scan_panic(&data.toks, start, end),
        };
        for (line, what) in findings {
            let chain = cg.chain_to(&reach, canon);
            let msg = match rule {
                HotRule::Alloc => format!(
                    "`{what}` allocates on a hot path (reachable: {chain}); steady state \
                     must stay allocation-free (see crates/sim/tests/alloc_count.rs)"
                ),
                HotRule::Panic => format!(
                    "`{what}` can panic on the receive fast path (reachable: {chain}); \
                     use a checked form or waive with a proving test"
                ),
            };
            push(out, &fi.file, line, rule.slug(), msg, &data.waivers);
        }
    }
}

/// Allocating constructs inside one fn body: `Box::new`/`Vec::new`
/// (alias-resolved), `vec!`/`format!`, `.to_vec()`/`.collect()`.
fn scan_alloc(
    ws: &Workspace,
    module: usize,
    toks: &[Token],
    start: usize,
    end: usize,
) -> Vec<(u32, String)> {
    let mut found = Vec::new();
    let mut i = start;
    while i <= end && i < toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        let next = toks.get(i + 1).map(|n| n.text.as_str());
        // Allocating macros.
        if (t.text == "vec" || t.text == "format") && next == Some("!") {
            found.push((t.line, format!("{}!", t.text)));
            i += 1;
            continue;
        }
        if next == Some("(") {
            let prev = i.checked_sub(1).map(|p| toks[p].text.as_str());
            // Allocating methods.
            if prev == Some(".") && (t.text == "to_vec" || t.text == "collect") {
                found.push((t.line, format!(".{}()", t.text)));
                i += 1;
                continue;
            }
            // `Box::new` / `Vec::new` through any alias.
            if t.text == "new" && prev == Some(":") {
                let mut segs = vec![t.text.clone()];
                let mut j = i;
                while j >= 3
                    && toks[j - 1].text == ":"
                    && toks[j - 2].text == ":"
                    && toks[j - 3].kind == TokKind::Ident
                {
                    segs.insert(0, toks[j - 3].text.clone());
                    j -= 3;
                }
                if segs.len() >= 2 {
                    let ty = ws.resolve(module, &segs[..segs.len() - 1]);
                    let hit = match ty.as_str() {
                        "Box" | "std::boxed::Box" | "alloc::boxed::Box" => Some("Box::new"),
                        "Vec" | "std::vec::Vec" | "alloc::vec::Vec" => Some("Vec::new"),
                        _ => None,
                    };
                    if let Some(h) = hit {
                        found.push((t.line, h.to_string()));
                    }
                }
            }
        }
        i += 1;
    }
    found
}

/// Identifier-like tokens that precede `[` without making it an index
/// expression (`&mut [T]`, `x as [u8; 4]`, `return [..]`, ...).
const NON_INDEX_PRECEDERS: &[&str] = &[
    "mut", "ref", "dyn", "as", "in", "return", "break", "else", "match", "if", "while", "loop",
    "for", "move", "impl", "where", "unsafe", "let", "const", "static", "box", "await", "async",
    "yield", "use", "pub", "crate", "super", "type", "fn", "extern",
];

/// Panicking constructs inside one fn body: `.unwrap()`, `.expect()`,
/// `panic!`, and slice indexing (`x[i]` where a checked `get` would be
/// the total form). Tokens inside `debug_assert*!(...)` arguments are
/// exempt — debug assertions are the sanctioned place for panics.
fn scan_panic(toks: &[Token], start: usize, end: usize) -> Vec<(u32, String)> {
    // Token-index ranges covered by debug_assert!/debug_assert_eq!/...
    let mut exempt: Vec<(usize, usize)> = Vec::new();
    let mut i = start;
    while i <= end && i < toks.len() {
        if toks[i].kind == TokKind::Ident
            && toks[i].text.starts_with("debug_assert")
            && toks.get(i + 1).map(|t| t.text.as_str()) == Some("!")
        {
            if let Some(close) = matching(toks, i + 2, "(", ")") {
                exempt.push((i, close));
                i = close + 1;
                continue;
            }
        }
        i += 1;
    }
    let exempted = |idx: usize| exempt.iter().any(|&(a, b)| idx >= a && idx <= b);
    let mut found = Vec::new();
    let mut i = start;
    while i <= end && i < toks.len() {
        let t = &toks[i];
        if exempted(i) {
            i += 1;
            continue;
        }
        let next = toks.get(i + 1).map(|n| n.text.as_str());
        let prev = i.checked_sub(1).map(|p| &toks[p]);
        if t.kind == TokKind::Ident {
            if (t.text == "unwrap" || t.text == "expect")
                && next == Some("(")
                && prev.map(|p| p.text.as_str()) == Some(".")
            {
                found.push((t.line, format!(".{}()", t.text)));
            }
            if t.text == "panic" && next == Some("!") {
                found.push((t.line, "panic!".to_string()));
            }
        } else if t.text == "[" {
            // Index expression: `expr[..]` — previous token ends an
            // expression (identifier, `)`, or `]`).
            let is_index = prev
                .map(|p| {
                    (p.kind == TokKind::Ident && !NON_INDEX_PRECEDERS.contains(&p.text.as_str()))
                        || p.text == ")"
                        || p.text == "]"
                })
                .unwrap_or(false);
            if is_index {
                found.push((t.line, "slice index (use .get())".to_string()));
                // One finding per bracketed expression.
                if let Some(close) = matching(toks, i, "[", "]") {
                    i = close + 1;
                    continue;
                }
            }
        }
        i += 1;
    }
    found
}

// ---------------------------------------------------------------------
// D7: config-knob hygiene
// ---------------------------------------------------------------------

fn check_config_knobs(
    root: &Path,
    ws: &Workspace,
    files: &BTreeMap<String, FileData>,
    cfg: &RulesConfig,
    out: &mut Report,
) {
    if cfg.knobs.is_empty() {
        return;
    }
    let docs: String = cfg
        .doc_files
        .iter()
        .filter_map(|f| std::fs::read_to_string(root.join(f)).ok())
        .collect::<Vec<_>>()
        .join("\n");
    let doc_names = cfg.doc_files.join(" or ");
    for knob in &cfg.knobs {
        let Some(data) = files.get(&knob.file) else {
            out.entries_missing.push(format!(
                "config-knob file `{}` not found in the workspace",
                knob.file
            ));
            continue;
        };
        let found = ws
            .modules
            .iter()
            .filter(|m| m.file == knob.file)
            .find_map(|m| m.structs.get(&knob.name));
        let Some(item) = found else {
            out.entries_missing.push(format!(
                "config-knob struct `{}` not found in `{}`",
                knob.name, knob.file
            ));
            continue;
        };
        let covered = default_covered_fields(&data.toks, &knob.name);
        for (field, line) in &item.fields {
            if !covered.all && !covered.fields.contains(field) {
                push(
                    out,
                    &knob.file,
                    *line,
                    "config-knob",
                    format!(
                        "config knob `{}.{field}` has no `Default` arm; every knob needs a \
                         documented default",
                        knob.name
                    ),
                    &data.waivers,
                );
            }
            if !word_mentioned(&docs, field) {
                push(
                    out,
                    &knob.file,
                    *line,
                    "config-knob",
                    format!(
                        "config knob `{}.{field}` is not documented in {doc_names}",
                        knob.name
                    ),
                    &data.waivers,
                );
            }
        }
    }
}

struct DefaultCoverage {
    /// `#[derive(Default)]` or a `..base` functional-update tail: every
    /// field is covered.
    all: bool,
    /// Fields explicitly assigned in `impl Default`.
    fields: BTreeSet<String>,
}

/// Which fields of `name` get a value in its `Default` (derive or
/// `impl Default for <name>`), scanning the defining file's tokens.
fn default_covered_fields(toks: &[Token], name: &str) -> DefaultCoverage {
    let mut cov = DefaultCoverage {
        all: false,
        fields: BTreeSet::new(),
    };
    let mut i = 0;
    while i + 1 < toks.len() {
        // `derive ( .. Default .. )` with the next `struct` being ours.
        if toks[i].text == "derive" && toks[i + 1].text == "(" {
            if let Some(close) = matching(toks, i + 1, "(", ")") {
                let has_default = toks[i + 1..close].iter().any(|t| t.text == "Default");
                if has_default {
                    let mut j = close + 1;
                    while j < toks.len() && toks[j].text != "struct" && toks[j].text != "enum" {
                        j += 1;
                    }
                    if toks.get(j + 1).map(|t| t.text.as_str()) == Some(name) {
                        cov.all = true;
                        return cov;
                    }
                }
                i = close;
            }
        }
        // `impl Default for <name> { .. }`.
        if toks[i].text == "impl"
            && toks[i + 1].text == "Default"
            && toks.get(i + 2).map(|t| t.text.as_str()) == Some("for")
            && toks.get(i + 3).map(|t| t.text.as_str()) == Some(name)
        {
            let mut j = i + 4;
            while j < toks.len() && toks[j].text != "{" {
                j += 1;
            }
            if let Some(end) = matching(toks, j, "{", "}") {
                let mut k = j + 1;
                while k + 1 < end {
                    if toks[k].kind == TokKind::Ident
                        && toks[k + 1].text == ":"
                        && toks.get(k + 2).map(|t| t.text.as_str()) != Some(":")
                        && toks
                            .get(k.wrapping_sub(1))
                            .map(|t| t.text != ":")
                            .unwrap_or(true)
                    {
                        cov.fields.insert(toks[k].text.clone());
                    }
                    // `..base` functional update covers the rest.
                    if toks[k].text == "." && toks[k + 1].text == "." {
                        cov.all = true;
                    }
                    k += 1;
                }
                return cov;
            }
        }
        i += 1;
    }
    cov
}

/// Whether `word` appears in `text` bounded by non-identifier chars.
fn word_mentioned(text: &str, word: &str) -> bool {
    let bytes = text.as_bytes();
    let mut from = 0;
    while let Some(pos) = text[from..].find(word) {
        let start = from + pos;
        let end = start + word.len();
        let pre_ok =
            start == 0 || !(bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_');
        let post_ok =
            end >= bytes.len() || !(bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_');
        if pre_ok && post_ok {
            return true;
        }
        from = end;
    }
    false
}

// ---------------------------------------------------------------------
// waiver hygiene: reasons + test citations
// ---------------------------------------------------------------------

fn check_waiver_citations(
    root: &Path,
    files: &BTreeMap<String, FileData>,
    cfg: &RulesConfig,
    out: &mut Report,
) {
    for (rel, data) in files {
        let excluded = test_mod_ranges(&data.toks);
        for (line, rule, reason) in &data.waivers {
            if in_ranges(*line, &excluded) {
                continue; // test code is rule-exempt; its waivers are inert
            }
            let mut fail = |msg: String| {
                // Deliberately not waivable: a waiver cannot vouch for
                // itself.
                out.violations.push(Violation {
                    file: rel.clone(),
                    line: *line,
                    rule: "waiver-citation".to_string(),
                    message: msg,
                    id: String::new(),
                });
            };
            if reason.trim().is_empty() {
                fail(format!(
                    "waiver for `{rule}` carries no reason; every waiver must say why the \
                     exemption is safe"
                ));
                continue;
            }
            if !cfg.require_citation {
                continue;
            }
            let Some((cite_file, cite_fn)) = parse_citation(reason) else {
                fail(format!(
                    "waiver for `{rule}` cites no proving test; append `[test: <file>::<fn>]` \
                     naming the test that covers the exemption"
                ));
                continue;
            };
            let Ok(src) = std::fs::read_to_string(root.join(&cite_file)) else {
                fail(format!(
                    "waiver for `{rule}` cites missing test file `{cite_file}`"
                ));
                continue;
            };
            if !word_mentioned(&src, &format!("fn {cite_fn}"))
                && !src.contains(&format!("fn {cite_fn}"))
            {
                fail(format!(
                    "waiver for `{rule}` cites `{cite_file}::{cite_fn}`, but that file defines \
                     no `fn {cite_fn}`"
                ));
            }
        }
    }
}

/// Extract `[test: <file>::<fn>]` from a waiver reason.
pub fn parse_citation(reason: &str) -> Option<(String, String)> {
    let start = reason.find("[test:")?;
    let rest = &reason[start + "[test:".len()..];
    let end = rest.find(']')?;
    let body = rest[..end].trim();
    let (file, func) = body.rsplit_once("::")?;
    if file.is_empty() || func.is_empty() {
        return None;
    }
    Some((file.trim().to_string(), func.trim().to_string()))
}

// ---------------------------------------------------------------------

fn push(
    out: &mut Report,
    file: &str,
    line: u32,
    rule: &str,
    message: String,
    waivers: &[(u32, String, String)],
) {
    if !is_waived(rule, line, waivers) {
        out.violations.push(Violation {
            file: file.to_string(),
            line,
            rule: rule.to_string(),
            message,
            id: String::new(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn citation_parses() {
        let r = parse_citation(
            "root seeding point [test: crates/core/tests/determinism.rs::same_seed_same_digest]",
        );
        assert_eq!(
            r,
            Some((
                "crates/core/tests/determinism.rs".to_string(),
                "same_seed_same_digest".to_string()
            ))
        );
        assert_eq!(parse_citation("no citation here"), None);
        assert_eq!(parse_citation("[test: broken]"), None);
    }

    #[test]
    fn word_boundaries_respected() {
        assert!(word_mentioned("the `mtu` knob", "mtu"));
        assert!(!word_mentioned("the mtu_bytes knob", "mtu"));
        assert!(word_mentioned("mtu", "mtu"));
    }
}
