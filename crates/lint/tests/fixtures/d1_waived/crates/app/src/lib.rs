pub fn tolerated() {
    // omx-lint: allow(ad-hoc-rng) fixture demonstrates the waiver path
    let _r = SplitMix64::new(42);
}
