pub fn tolerated() {
    // omx-lint: allow(ad-hoc-rng) fixture demonstrates the waiver path [test: tests/proof.rs::covers_fixture_waiver]
    let _r = SplitMix64::new(42);
}
