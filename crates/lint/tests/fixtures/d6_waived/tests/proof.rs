fn covers_slot_index() {}
