pub struct Nic {
    slots: Vec<u32>,
}

impl Nic {
    pub fn deliver(&mut self, i: usize) -> u32 {
        self.pick(i)
    }

    fn pick(&self, i: usize) -> u32 {
        // omx-lint: allow(fast-path-panic) slot ids are asserted at the deliver boundary in this fixture [test: tests/proof.rs::covers_slot_index]
        self.slots[i]
    }
}
