use util::FastMap;

pub fn histogram(xs: &[u32]) -> usize {
    let mut m: FastMap<u32, u32> = FastMap::new();
    for &x in xs {
        *m.entry(x).or_insert(0) += 1;
    }
    m.len()
}
