// A helper crate outside the simulation path: re-exports the std map
// under a friendly name. No token-level rule fires here.
pub use std::collections::HashMap as FastMap;
